"""Service quickstart: submit, watch, detach/resume, cancel.

The approximate-query service (``repro.service``) turns the EARL
engines into long-lived, resumable sessions: submit a spec, get a
session id, then poll a monotonically event-id'd stream of progressive
snapshots.  This example runs the whole protocol in-process — the same
handlers serve the TCP transport (``ServiceServer``/``ServiceClient``).

It demonstrates the three client moves:

1. **watch** — long-poll a session to completion, acking as you go;
2. **detach/resume** — drop a page on the floor, re-poll from the last
   acked event id, and verify the replay is byte-identical;
3. **cancel** — stop a session mid-run; the stream seals with a
   terminal ``cancelled`` state event and sampling stops.

Run with:  python examples/service_quickstart.py
"""

import asyncio

import numpy as np

from repro.core import EarlConfig
from repro.service import EVENT_SNAPSHOT, ApproxQueryService, LocalClient


async def main() -> None:
    rng = np.random.default_rng(7)
    service = ApproxQueryService(
        config=EarlConfig(sigma=0.03, B_override=15, n_override=200,
                          max_iterations=8),
        seed=42, batch_window=5.0)
    service.register_dataset(
        "latencies", rng.lognormal(mean=3.0, sigma=1.0, size=500_000))
    await service.start()
    client = LocalClient(service)

    print("=== approximate-query service quickstart ===")

    # 1. Submit two specs in one window: they share a pilot and one
    #    engine loop (the M3R/Shark-style hot-state reuse).
    mean_sid = await client.submit({"kind": "statistic",
                                    "dataset": "latencies",
                                    "statistic": "mean"})
    p90_sid = await client.submit({"kind": "statistic",
                                   "dataset": "latencies",
                                   "statistic": "p90"})
    await service.flush()
    print(f"submitted sessions: {mean_sid} (mean), {p90_sid} (p90)")

    # 2. Watch the mean session: long-poll, ack by passing the last
    #    seen event id as `after`.
    committed = 0
    while True:
        page = await client.poll(mean_sid, after=committed, wait=True,
                                 timeout=5.0)
        for event in page.events:
            if event.type == EVENT_SNAPSHOT:
                p = event.payload
                print(f"  [{event.seq}] iter {p['iteration']}: "
                      f"estimate {p['estimate']:,.3f}  "
                      f"cv {p['cv']:.4f}  n={p['sample_size']:,}")
            else:
                print(f"  [{event.seq}] {event.type}: {event.payload}")
        if page.events:
            committed = page.events[-1].seq
        elif page.terminal:
            break
    print(f"mean session finished: {page.state}")

    # 3. Detach/resume on the p90 session: read a page, "crash" before
    #    acking it, and replay from the committed floor.
    first = await client.poll(p90_sid, after=0, wait=True, timeout=5.0)
    replay = await client.poll(p90_sid, after=0, wait=True, timeout=5.0)
    lost = [e.raw for e in first.events]
    replayed = [e.raw for e in replay.events]
    assert replayed[:len(lost)] == lost
    print(f"resume replayed {len(lost)} events byte-identically")
    final = await client.drain(p90_sid, after=replay.events[-1].seq)
    print(f"p90 session finished with {len(final)} more events")

    # 4. Cancel: a never-met bound would iterate forever; stop paying.
    endless = await client.submit({"kind": "statistic",
                                   "dataset": "latencies",
                                   "statistic": "std",
                                   "sigma": 0.0001})
    await service.flush()
    await client.poll(endless, after=0, wait=True, timeout=5.0)
    response = await client.cancel(endless)
    print(f"cancelled {endless}: state={response['state']}")

    status = await client.stats()
    print(f"service saw {status['sessions']} sessions; "
          f"buffer high-water {status['max_retained_events']} events")
    await service.stop()


if __name__ == "__main__":
    asyncio.run(main())
