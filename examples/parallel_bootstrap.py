"""Parallel execution backends: same numbers, different wall-clock.

The engine's fan-out points (bootstrap resampling, task waves, figure
sweeps) run through a pluggable executor (see ``repro/exec/`` and
DESIGN.md).  This example runs the *same seeded workload* on the
``serial`` and ``processes`` backends and shows

1. the results are byte-identical — the backend is a pure performance
   knob, never a statistical one; and
2. the real wall-clock difference (on a multi-core machine the process
   pool wins; on a single core it mostly shows its overhead).

Run with:  python examples/parallel_bootstrap.py
Or flip any existing script without touching code:
           REPRO_EXECUTOR=processes python examples/quickstart.py
"""

import os
import time

import numpy as np

from repro import EarlConfig, EarlSession
from repro.core.bootstrap import bootstrap


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def interdecile_mean(a: np.ndarray) -> float:
    """A custom statistic (module-level, hence process-portable).

    Arbitrary callables get the recompute-per-resample FunctionalState,
    which is exactly the work the parallel resample evaluation targets —
    registered statistics keep O(1)-readable states and deliberately
    skip the pool.
    """
    lo, hi = np.quantile(a, [0.1, 0.9])
    inner = a[(a >= lo) & (a <= hi)]
    return float(inner.mean()) if inner.size else float(a.mean())


def main() -> None:
    print(f"=== parallel bootstrap ({os.cpu_count()} CPU(s)) ===\n")

    # -- 1. raw Monte-Carlo bootstrap, B=400 resamples of a 100k sample
    rng = np.random.default_rng(11)
    sample = rng.lognormal(mean=3.0, sigma=1.0, size=100_000)

    serial, t_serial = timed(
        lambda: bootstrap(sample, "median", B=400, seed=7,
                          executor="serial"))
    procs, t_procs = timed(
        lambda: bootstrap(sample, "median", B=400, seed=7,
                          executor="processes"))

    identical = np.array_equal(serial.estimates, procs.estimates)
    print(f"bootstrap(median, B=400, n=100,000)")
    print(f"  serial    : {t_serial:6.2f}s   cv={serial.cv:.4f}")
    print(f"  processes : {t_procs:6.2f}s   cv={procs.cv:.4f}")
    print(f"  result distributions identical: {identical}")
    print(f"  speedup: {t_serial / t_procs:.2f}x\n")

    # -- 2. one full EarlSession run per backend, same seed.  A *custom*
    # statistic is used on purpose: registered ones (mean, median, ...)
    # keep O(1)-readable incremental states, so their resample
    # evaluation never touches the pool — arbitrary callables are the
    # case the parallel evaluation exists for.
    population = rng.lognormal(mean=3.0, sigma=1.2, size=300_000)
    runs = {}
    for backend in ("serial", "processes"):
        config = EarlConfig(sigma=0.05, seed=42, executor=backend)
        runs[backend], seconds = timed(
            lambda: EarlSession(population, interdecile_mean,
                                config=config).run())
        result = runs[backend]
        print(f"EarlSession(interdecile_mean, sigma=5%) on {backend!r}: "
              f"{seconds:5.2f}s  estimate={result.estimate:.4f}  "
              f"cv={result.error:.4f}  n={result.n:,}")

    same = (runs["serial"].estimate == runs["processes"].estimate
            and runs["serial"].error == runs["processes"].error)
    print(f"EarlSession results identical across backends: {same}")


if __name__ == "__main__":
    main()
