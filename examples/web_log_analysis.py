"""Web-log analytics on the simulated MapReduce cluster.

The motivating scenario of the paper's introduction: an analyst waiting
on an interactive answer over a large log file.  We simulate a 40 GB
access log (stand-in file, see DESIGN.md), then answer three questions
with EARL on the full cluster substrate and compare against the exact
(stock Hadoop) answers:

1. mean response size per endpoint      (grouped aggregate),
2. median response size overall         (non-trivial statistic),
3. HTTP error rate                      (categorical, Appendix A).

Run with:  python examples/web_log_analysis.py
"""

import numpy as np

from repro import EarlConfig, EarlJob
from repro.cluster import Cluster
from repro.core.categorical import proportion_estimate
from repro.jobs import run_aggregate
from repro.workloads import GB

ENDPOINTS = ["/home", "/search", "/checkout"]
#: Mean response size (bytes) per endpoint in the synthetic log.
SIZES = {"/home": 2_000.0, "/search": 8_000.0, "/checkout": 25_000.0}
ERROR_RATE = 0.021  # true fraction of 5xx responses


def generate_log(rng: np.random.Generator, records: int) -> list[str]:
    """``endpoint<TAB>bytes`` lines, with a known size mix per endpoint."""
    endpoints = rng.choice(len(ENDPOINTS), size=records)
    lines = []
    for endpoint_idx in endpoints:
        endpoint = ENDPOINTS[int(endpoint_idx)]
        size = rng.lognormal(np.log(SIZES[endpoint]), 0.8)
        lines.append(f"{endpoint}\t{size:015.4f}")
    return lines


def main() -> None:
    rng = np.random.default_rng(11)
    cluster = Cluster(n_nodes=5, block_size=1 << 20, seed=12)
    lines = generate_log(rng, records=60_000)
    actual_bytes = sum(len(l) + 1 for l in lines)
    scale = 40 * GB / actual_bytes
    cluster.hdfs.write_lines("/logs/access", lines, logical_scale=scale)
    print(f"simulated log: {len(lines):,} records standing in for "
          f"{40} GB\n")

    # --- 1. per-endpoint mean response size -----------------------------
    earl = EarlJob(cluster, "/logs/access", statistic="mean", n_reducers=3,
                   config=EarlConfig(sigma=0.05, seed=13)).run()
    exact, stock = run_aggregate(cluster, "/logs/access", "mean",
                                 n_reducers=3, seed=14)
    print("mean response size per endpoint (EARL vs exact):")
    for endpoint in ENDPOINTS:
        approx = earl.key_estimates[endpoint]
        truth = exact[endpoint]
        print(f"  {endpoint:<10} earl={approx:>12,.1f}  "
              f"exact={truth:>12,.1f}  "
              f"err={abs(approx - truth) / truth:.2%}")
    speedup = stock.simulated_seconds / earl.simulated_seconds
    print(f"  simulated time: EARL {earl.simulated_seconds:,.1f}s vs "
          f"stock {stock.simulated_seconds:,.1f}s  ({speedup:.1f}x)\n")

    # --- 2. overall median response size ---------------------------------
    # GlobalValueMapper drops the endpoint column: one statistic over the
    # whole distribution instead of one per endpoint.
    from repro.mapreduce import GlobalValueMapper

    median_job = EarlJob(cluster, "/logs/access", statistic="median",
                         mapper=GlobalValueMapper(),
                         config=EarlConfig(sigma=0.05, seed=15)).run()
    sizes = np.array([float(l.split("\t")[1]) for l in lines])
    print(f"median response size: earl={median_job.estimate:,.1f}  "
          f"exact={np.median(sizes):,.1f}  "
          f"(cv={median_job.error:.3f}, n={median_job.n:,})")
    if median_job.used_fallback:
        ssabe = median_job.ssabe
        print(f"  note: SSABE estimated B×n = {ssabe.B}×{ssabe.n:,} ≥ "
              f"N = {median_job.population_size:,}; the density near this "
              "trimodal median is low, so sampling cannot beat the exact "
              "job — EARL fell back to the full computation (§3.1).")
    print()

    # --- 3. HTTP error rate (categorical, Appendix A) --------------------
    status_sample = rng.random(median_job.n) < ERROR_RATE
    est = proportion_estimate(int(status_sample.sum()), len(status_sample))
    print(f"5xx error rate      : {est.proportion:.3%} "
          f"(true {ERROR_RATE:.3%}), "
          f"95% CI [{est.ci_low:.3%}, {est.ci_high:.3%}], cv={est.cv:.3f}")


if __name__ == "__main__":
    main()
