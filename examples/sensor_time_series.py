"""Dependent data: why the block bootstrap matters (paper Appendix A).

Sensor readings are autocorrelated: a naive i.i.d. bootstrap destroys
the dependence and *underestimates* the error of the mean, so EARL would
stop sampling too early and return an over-confident answer.  The
moving-block bootstrap resamples whole blocks of consecutive readings,
preserving the dependence and producing an honest error estimate.

Run with:  python examples/sensor_time_series.py
"""

import numpy as np

from repro.core import bootstrap
from repro.core.dependent import (
    auto_block_length,
    block_bootstrap,
    lag1_autocorrelation,
)
from repro.workloads import ar1_series


def main() -> None:
    # Temperature sensor sampled at 1 Hz, strongly autocorrelated.
    series = ar1_series(20_000, phi=0.9, scale=0.5, loc=21.0, seed=31)
    print("=== sensor time-series analytics ===")
    print(f"readings            : {len(series):,}")
    print(f"lag-1 autocorrelation: {lag1_autocorrelation(series):.3f}")

    block_len = auto_block_length(series)
    print(f"auto block length   : {block_len} readings\n")

    sample = series[:2_000]  # EARL-style early sample (first 10%)
    naive = bootstrap(sample, "mean", B=200, seed=32)
    blocked = block_bootstrap(sample, "mean", B=200,
                              block_length=block_len, seed=33)

    print("error estimates for the mean of a 2,000-reading sample:")
    print(f"  naive bootstrap  : std={naive.std:.4f}  cv={naive.cv:.5f}")
    print(f"  block bootstrap  : std={blocked.std:.4f}  cv={blocked.cv:.5f}")
    print(f"  ratio            : {blocked.std / naive.std:.1f}x "
          "(the naive estimate is over-confident by this factor)\n")

    # Validate against the actual sampling distribution: means of many
    # independent windows of the same length.
    windows = series.reshape(10, 2_000)
    empirical_std = float(np.std(windows.mean(axis=1), ddof=1))
    print("validation against 10 independent windows:")
    print(f"  empirical std of window means: {empirical_std:.4f}")
    print(f"  block bootstrap said         : {blocked.std:.4f}")
    print(f"  naive bootstrap said         : {naive.std:.4f}")
    better = abs(blocked.std - empirical_std) < abs(naive.std - empirical_std)
    print(f"  block bootstrap closer       : {better}\n")

    # The full EARL loop for dependent data: block sampling + moving-
    # block bootstrap, expanding until the error bound holds.
    from repro.core import EarlConfig
    from repro.core.dependent_session import DependentEarlSession

    result = DependentEarlSession(
        series, "mean", config=EarlConfig(sigma=0.001, seed=34)).run()
    print("DependentEarlSession (σ = 0.1%):")
    print(f"  block length b   : {result.block_length}")
    print(f"  readings sampled : {result.n:,} "
          f"({result.sample_fraction:.1%} of the series)")
    print(f"  estimate         : {result.estimate:.4f} "
          f"(true {series.mean():.4f})")
    print(f"  error (cv)       : {result.error:.5f}  met: {result.achieved}")


if __name__ == "__main__":
    main()
