"""Progressive-results dashboard: watch EARL refine answers live.

Three demos of the streaming layer (``repro.streaming``):

1. **Single query, progressive estimates** — iterate
   ``EarlSession.stream()`` and print each snapshot: the paper's early
   answers, observable while they are computed instead of only at the
   end.
2. **Consumer-driven early stop** — a ``StreamConsumer`` that walks
   away as soon as the CI is "good enough for the dashboard", long
   before the configured σ would stop the run; the underlying job is
   torn down cleanly and only the completed iterations were charged.
3. **Concurrent multi-query session** — a ``SessionManager`` answering
   mean, median and p90 over ONE shared pilot and ONE shared growing
   sample, each query terminating independently at its own σ.

Run with ``PYTHONPATH=src python examples/streaming_dashboard.py``.
"""

from __future__ import annotations

import numpy as np

from repro import EarlConfig, EarlSession
from repro.streaming import SessionManager, StreamConsumer

RECORDS = 400_000


def banner(title: str) -> None:
    print(f"\n=== {title} ===")


def fmt_snapshot(name: str, snap) -> str:
    flag = "FINAL" if snap.final else "  ..."
    return (f"  [{flag}] {name:<7s} iter {snap.iteration}: "
            f"estimate {snap.estimate:10.4f}  "
            f"CI [{snap.ci_low:8.3f}, {snap.ci_high:8.3f}]  "
            f"cv {snap.cv:6.4f}  n={snap.sample_size:>7,d} "
            f"({snap.sample_fraction:7.3%} of data)")


def main() -> None:
    data = np.random.default_rng(7).lognormal(3.0, 1.2, RECORDS)
    truth = float(np.mean(data))

    banner("1. progressive estimates from one streaming query")
    cfg = EarlConfig(sigma=0.02, seed=42, B_override=30, n_override=500,
                     expansion_factor=2.0)
    for snap in EarlSession(data, "mean", config=cfg).stream():
        print(fmt_snapshot("mean", snap))
    print(f"  true mean: {truth:.4f}")

    banner("2. consumer-driven early stop (CI good enough -> cancel)")
    consumer = StreamConsumer(
        on_snapshot=lambda s: print(fmt_snapshot("mean", s)),
        stop_when=lambda s: (s.ci_high - s.ci_low) / s.estimate < 0.25)
    result = consumer.consume(EarlSession(
        data, "mean", config=EarlConfig(sigma=0.001, seed=42,
                                        B_override=30, n_override=500)))
    print(f"  stopped early: {consumer.stopped_early} "
          f"after {len(consumer.snapshots)} snapshot(s); "
          f"batch result returned: {result is not None}")

    banner("3. concurrent queries over one shared sample")
    manager = SessionManager(data, config=EarlConfig(sigma=0.03, seed=9))
    manager.submit("mean")
    manager.submit("median", sigma=0.02)
    manager.submit("p90", sigma=0.05)
    for query, snap in manager.stream():
        print(fmt_snapshot(query.name, snap))
    print("  final answers:")
    for query in manager.queries:
        res = query.result
        print(f"    {query.name:<7s} = {res.estimate:10.4f}  "
              f"(error {res.error:.4f} <= sigma {res.sigma}: "
              f"{res.achieved}; {res.num_iterations} iteration(s), "
              f"n={res.n:,d})")


if __name__ == "__main__":
    main()
