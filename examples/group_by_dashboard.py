"""Approximate GROUP BY dashboard: per-group bounds refining live.

Two demos of the grouped query engine (``repro.query``):

1. **Streaming per-group error bounds** — a
   ``Query(select=[agg("mean", "value")], group_by="key")`` over a
   Zipf-skewed keyed table.  Each round prints every group's current
   estimate, CI and error; groups whose bound is met stop sampling
   (marked DONE) while the laggards keep expanding — the per-group
   counterpart of EARL's early termination.
2. **Budgeted Neyman allocation** — the same query with a fixed
   per-round row budget split ``N_h x S_h`` across the still-active
   groups: finished groups automatically donate their budget to the
   laggards.

Run with ``PYTHONPATH=src python examples/group_by_dashboard.py``.
"""

from __future__ import annotations

import numpy as np

from repro.core import EarlConfig
from repro.query import Query, agg
from repro.workloads import skewed_keyed_values

ROWS = 150_000
KEYS = 6


def banner(title: str) -> None:
    print(f"\n=== {title} ===")


def print_round(snap) -> None:
    print(f"  round {snap.round}: {snap.rows_processed:,} rows processed "
          f"({snap.rows_processed / snap.population_size:.2%} of the "
          f"table), {snap.active_groups} group(s) still sampling")
    for key in sorted(snap.groups):
        for entry in snap.groups[key].values():
            state = "DONE " if entry.done else "  ..."
            extra = " (exact)" if entry.used_fallback else ""
            print(f"    [{state}] {str(key):<6s} "
                  f"mean {entry.estimate:9.3f}  "
                  f"CI [{entry.ci_low:8.3f}, {entry.ci_high:8.3f}]  "
                  f"error {entry.error:6.4f}  "
                  f"n={entry.sample_size:>7,d}/{entry.group_size:,d}"
                  f"{extra}")


def main() -> None:
    keys, values = skewed_keyed_values(ROWS, KEYS, skew=1.4, seed=11)
    table = {"key": keys, "value": values}

    banner("1. per-group bounds streaming (schedule allocation)")
    query = Query([agg("mean", "value")], group_by="key").on(
        table, config=EarlConfig(sigma=0.03, seed=5,
                                 B_override=25, n_override=150))
    final = None
    for snap in query.stream():
        print_round(snap)
        final = snap
    result = final.result
    print(f"  -> all bounds met: {result.achieved} after "
          f"{result.rounds} round(s), {result.rows_processed:,} of "
          f"{result.population_size:,} rows")
    truth = {k: float(np.mean(values[keys == k])) for k in result.groups}
    worst = max(abs(res.estimate / truth[k] - 1.0)
                for k, by in result.groups.items()
                for res in by.values())
    print(f"  -> worst true relative deviation across groups: {worst:.3%}")

    banner("2. budgeted Neyman allocation (laggards inherit the budget)")
    budgeted = Query([agg("mean", "value")], group_by="key",
                     allocation="neyman", round_budget=3_000).on(
        table, config=EarlConfig(sigma=0.03, seed=5,
                                 B_override=25, n_override=150))
    rounds = 0
    for snap in budgeted.stream():
        rounds += 1
        if snap.final:
            print(f"  {len(snap.groups)} group(s) finished in {rounds} "
                  f"budgeted round(s); rows processed: "
                  f"{snap.rows_processed:,} "
                  f"(vs {result.rows_processed:,} under schedule "
                  f"allocation)")
            print(f"  bounds met: {snap.result.achieved}")


if __name__ == "__main__":
    main()
