"""Fault tolerance through approximation (paper §3.4).

"Given a user specified approximation bound ... even when most of the
nodes have been lost, a reasonable result can still be provided."  This
example loads a dataset on a 5-node simulated cluster, kills nodes
mid-analysis, and shows that:

* stock Hadoop cannot complete once any block loses all replicas, while
* EARL keeps answering from the surviving data, with an error bound.

Run with:  python examples/fault_tolerant_analytics.py
"""

from repro import EarlConfig, EarlJob, run_stock_job
from repro.cluster import Cluster, FailureInjector, expected_daily_failures
from repro.mapreduce import JobFailedError
from repro.workloads import GB, load_stand_in


def main() -> None:
    print("=== fault-tolerant analytics ===")
    print(f"(context: at a 3%/yr disk failure rate, a 1M-device farm "
          f"loses {expected_daily_failures(1_000_000):.0f} disks per day)\n")

    cluster = Cluster(n_nodes=5, block_size=256 * 1024, replication=2,
                      seed=41)
    dataset = load_stand_in(cluster, "/data/metrics", logical_gb=25.0,
                            records=50_000, seed=42)
    truth = dataset.truth["mean"]
    print(f"dataset: {dataset.records:,} records standing in for "
          f"{dataset.logical_gb:.0f} GB, true mean {truth:,.2f}\n")

    # Healthy run for reference.
    earl = EarlJob(cluster, dataset.path, statistic="mean",
                   config=EarlConfig(sigma=0.05, seed=43)).run()
    print(f"healthy cluster : estimate {earl.estimate:,.2f} "
          f"(err {abs(earl.estimate - truth) / truth:.2%}, "
          f"cv {earl.error:.3f}, input {earl.input_fraction:.0%})")

    # Kill three of five nodes — with replication 2 some blocks are gone.
    injector = FailureInjector(cluster, seed=44)
    lost = injector.fail_nodes(["node-0", "node-2", "node-4"])
    frac = cluster.hdfs.available_fraction(dataset.path)
    print(f"\nfailing nodes {lost} -> only {frac:.0%} of the file is "
          "still readable\n")

    try:
        run_stock_job(cluster, dataset.path, "mean", seed=45)
        print("stock Hadoop    : completed (unexpected!)")
    except JobFailedError as exc:
        print(f"stock Hadoop    : JOB FAILED — {exc}")

    survivor = EarlJob(cluster, dataset.path, statistic="mean",
                       config=EarlConfig(sigma=0.05, seed=46)).run()
    print(f"EARL            : estimate {survivor.estimate:,.2f} "
          f"(err {abs(survivor.estimate - truth) / truth:.2%}, "
          f"cv {survivor.error:.3f}, "
          f"input {survivor.input_fraction:.0%})")
    print("\nEARL returned a usable answer with an error bound despite "
          "losing most of the cluster — no task restarts required.")


if __name__ == "__main__":
    main()
