"""Telemetry dashboard: watch a live service through its own metrics.

Enables the :mod:`repro.obs` subsystem (off by default — it costs
nothing until you flip it), drives a mixed workload through the
approximate-query service, then renders what an operator's dashboard
would show:

1. the **metrics snapshot** from the service's read-only ``metrics``
   op — session/snapshot/terminal counters, engine rounds and rows,
   simulated cost by category, plus the raw Prometheus text a scraper
   would ingest;
2. each query's **convergence table** — error vs. rows vs. wall time,
   round by round, from the service's :class:`ConvergenceTrace`;
3. one session's **Chrome trace export** (``trace`` op) — load the JSON
   in ``chrome://tracing`` / https://ui.perfetto.dev to see the
   submit → queue → run → round span tree.

``--snapshot-out`` / ``--trace-out`` write the two JSON documents to
disk (CI uploads them as artifacts).

Run with:  python examples/telemetry_dashboard.py
"""

import argparse
import asyncio
import json

import numpy as np

from repro.core import EarlConfig
from repro.obs import disable_telemetry, enable_telemetry, reset_telemetry
from repro.service import ApproxQueryService, LocalClient

SPECS = [
    ("mean latency", {"kind": "statistic", "dataset": "latencies",
                      "statistic": "mean"}),
    ("p90 latency", {"kind": "statistic", "dataset": "latencies",
                     "statistic": "p90"}),
    ("mean amount by region",
     {"kind": "query", "table": "orders", "group_by": "region",
      "select": [{"statistic": "mean", "column": "amount"}]}),
]


async def run_workload():
    rng = np.random.default_rng(7)
    service = ApproxQueryService(
        config=EarlConfig(sigma=0.02, B_override=15, n_override=200,
                          expansion_factor=1.5, max_iterations=10),
        seed=42, batch_window=5.0)
    service.register_dataset(
        "latencies", rng.lognormal(mean=3.0, sigma=1.0, size=300_000))
    service.register_table(
        "orders", {"region": np.repeat(["east", "west", "south"], 20_000),
                   "amount": rng.exponential(40.0, 60_000)})
    await service.start()
    client = LocalClient(service)

    titles = {}
    for title, spec in SPECS:
        titles[await client.submit(spec)] = title
    await service.flush()
    for sid in titles:
        await client.drain(sid)

    metrics = await client.metrics()
    traces = {sid: await client.trace(sid) for sid in titles}
    await service.stop()
    return titles, metrics, traces


def show_metrics(metrics):
    print("=== metrics snapshot (the `metrics` op) ===")
    for name, metric in sorted(metrics["snapshot"]["metrics"].items()):
        for series in metric["series"]:
            labels = ",".join(f"{k}={v}"
                              for k, v in sorted(series["labels"].items()))
            value = series.get("value", series.get("count"))
            print(f"  {name:<38} {{{labels}}} = {value}")
    lines = metrics["prometheus"].splitlines()
    print(f"\n  ... and {len(lines)} lines of Prometheus text, e.g.:")
    for line in lines[:4]:
        print(f"    {line}")


def show_convergence(titles, traces):
    print("\n=== per-query convergence (error vs rows vs time) ===")
    for sid, trace in traces.items():
        print(f"\n  {titles[sid]}  ({sid}, trace {trace['trace_id']})")
        print(f"  {'round':>5}  {'rows':>8}  {'error':>9}  {'wall ms':>8}")
        for p in trace["convergence"]["points"]:
            err = "n/a" if p["error"] is None else f"{p['error']:.4f}"
            wall = p["wall_seconds"] or 0.0
            print(f"  {p['round']:>5}  {p['rows']:>8,}  {err:>9}  "
                  f"{wall * 1e3:>8.1f}")


def show_trace(titles, traces):
    sid, trace = next(iter(traces.items()))
    events = trace["chrome"]["traceEvents"]
    print(f"\n=== span tree for {titles[sid]!r} "
          f"({len(events)} spans, Chrome trace format) ===")
    for event in events[:8]:
        print(f"  {event['name']:<24} {event['dur'] / 1e3:>9.2f} ms")


async def main(args) -> None:
    enable_telemetry()
    reset_telemetry()
    try:
        titles, metrics, traces = await run_workload()
        show_metrics(metrics)
        show_convergence(titles, traces)
        show_trace(titles, traces)
        if args.snapshot_out:
            with open(args.snapshot_out, "w", encoding="utf-8") as fh:
                json.dump(metrics["snapshot"], fh, indent=2)
            print(f"\nwrote metrics snapshot to {args.snapshot_out}")
        if args.trace_out:
            sid = next(iter(traces))
            with open(args.trace_out, "w", encoding="utf-8") as fh:
                json.dump(traces[sid]["chrome"], fh, indent=2)
            print(f"wrote Chrome trace for {sid} to {args.trace_out} "
                  f"(open in chrome://tracing)")
    finally:
        disable_telemetry()
        reset_telemetry()


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--snapshot-out", help="write the metrics "
                        "snapshot JSON here")
    parser.add_argument("--trace-out", help="write one session's Chrome "
                        "trace JSON here")
    asyncio.run(main(parser.parse_args()))
