"""Early approximate K-Means (paper §6.3 / Fig. 7).

K-Means on MapReduce pays a full scan per Lloyd iteration.  EARL runs
the same algorithm on a small uniform sample and uses the bootstrap to
certify centroid stability — the paper reports centroids "within 5% of
the optimal" at a fraction of the cost.

Run with:  python examples/kmeans_clustering.py
"""

import numpy as np

from repro.cluster import Cluster
from repro.core import EarlConfig
from repro.jobs import (
    EarlKMeans,
    centroid_relative_error,
    kmeans_inmemory,
    kmeans_mapreduce,
)
from repro.workloads import GB, gaussian_mixture_points, point_lines

TRUE_CENTERS = [[0.0, 0.0], [25.0, 25.0], [50.0, 0.0], [25.0, -20.0]]


def main() -> None:
    points, _ = gaussian_mixture_points(
        60_000, TRUE_CENTERS, spread=2.5, seed=21)
    cluster = Cluster(n_nodes=5, block_size=1 << 20, seed=22)
    lines = point_lines(points)
    actual_bytes = sum(len(l) + 1 for l in lines)
    scale = 20 * GB / actual_bytes
    cluster.hdfs.write_lines("/data/points", lines, logical_scale=scale)
    print(f"{len(points):,} points standing in for a 20 GB dataset, "
          f"k={len(TRUE_CENTERS)}\n")

    reference, _, _ = kmeans_inmemory(points, len(TRUE_CENTERS), seed=23)

    stock = kmeans_mapreduce(cluster, "/data/points", len(TRUE_CENTERS),
                             seed=24)
    print("stock MapReduce K-Means (full scans):")
    print(f"  iterations      : {stock.iterations} "
          f"(converged: {stock.converged})")
    print(f"  simulated time  : {stock.simulated_seconds:,.1f}s")
    print(f"  vs optimal      : "
          f"{centroid_relative_error(reference, stock.centroids):.2%}\n")

    earl = EarlKMeans(cluster, "/data/points", len(TRUE_CENTERS),
                      config=EarlConfig(sigma=0.05, seed=25),
                      initial_sample_size=600).run()
    print("EARL K-Means (sampled + bootstrap stability):")
    print(f"  sample size     : {earl.sample_size:,} points "
          f"({earl.expansions} expansions)")
    print(f"  bootstrap error : {earl.error:.2%} (σ = 5%)")
    print(f"  simulated time  : {earl.simulated_seconds:,.1f}s")
    print(f"  vs optimal      : "
          f"{centroid_relative_error(reference, earl.centroids):.2%}")
    print(f"\nspeed-up: {stock.simulated_seconds / earl.simulated_seconds:.1f}x")

    print("\ncentroids (EARL, matched to true centers):")
    from repro.jobs import match_centroids
    matched = match_centroids(np.asarray(TRUE_CENTERS, dtype=float),
                              earl.centroids)
    for truth, found in zip(TRUE_CENTERS, matched):
        print(f"  true {np.round(truth, 1)}  ->  found {np.round(found, 2)}")


if __name__ == "__main__":
    main()
