"""The paper's Figure 4 user-code loop, executed step by step.

Figure 4 shows what an EARL user's main() looks like: a Sampler is
initialized with the dataset, samples and resamples are generated, the
user job runs once per resample, an AES job computes the error, and the
parameters are updated — all inside ``while (error > sigma)``.  This
example drives :class:`repro.core.Figure4Sampler` through exactly those
steps, printing the loop's state as it converges.

Run with:  python examples/figure4_loop.py
"""

from repro.cluster import Cluster
from repro.core import Figure4Sampler
from repro.workloads import load_stand_in

SIGMA = 0.05


def main() -> None:
    cluster = Cluster(n_nodes=5, seed=51)
    ds = load_stand_in(cluster, "/data/values", logical_gb=10.0,
                       records=40_000, seed=52)
    print(f"dataset: {ds.records:,} records standing in for "
          f"{ds.logical_gb:.0f} GB; true mean {ds.truth['mean']:.3f}\n")

    # --- the Figure 4 loop, spelled out --------------------------------
    s = Figure4Sampler(cluster, statistic="mean", seed=53)
    s.init(ds.path)                       # s.Init(path_string)
    iteration = 0
    while s.error is None or s.error > SIGMA:
        iteration += 1
        # s.GenerateSamples(sample_size, num_resamples)
        s.generate_samples(s.sample_size, s.num_resamples)
        # for i in range(num_resamples): JobClient.runJob(user_job)
        estimates = s.run_user_job()
        # JobClient.runJob(aes_job)
        accuracy = s.run_aes_job(estimates)
        print(f"iter {iteration}: n={s.sample_size:>6,}  "
              f"B={s.num_resamples:>3}  cv={accuracy.cv:.4f}  "
              f"estimate={accuracy.estimate:.3f}")
        if s.error <= SIGMA or s.full_data_mode:
            break
        # UpdateSampleSizeAndNumResamples()
        s.update_sample_size_and_num_resamples(SIGMA)

    result = s.result()
    truth = ds.truth["mean"]
    print(f"\nfinal estimate : {result.estimate:.3f} "
          f"(true {truth:.3f}, err {abs(result.estimate - truth) / truth:.2%})")
    print(f"final error cv : {result.cv:.4f}  (σ = {SIGMA})")
    print(f"simulated time : {s.simulated_seconds:.1f}s")
    if s.full_data_mode:
        print("note: fell back to the full data "
              "(sample_size=N, num_resamples=1)")


if __name__ == "__main__":
    main()
