"""Quickstart: early accurate results over an in-memory dataset.

EARL's promise (paper §1): instead of scanning all N records, draw a
small uniform sample, bootstrap the statistic on it, and return as soon
as the estimated error falls below the requested bound σ.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import EarlConfig, EarlSession


def main() -> None:
    # A heavy-tailed population: 2 million "transaction amounts".
    rng = np.random.default_rng(7)
    population = rng.lognormal(mean=3.0, sigma=1.2, size=2_000_000)
    true_mean = float(population.mean())

    # Ask for the mean, accurate to within 5% — the paper's §6 setting.
    config = EarlConfig(sigma=0.05, seed=42)
    result = EarlSession(population, "mean", config=config).run()

    print("=== EARL quickstart ===")
    print(f"population size      : {result.population_size:,}")
    print(f"SSABE picked         : B={result.B} bootstraps, "
          f"n={result.iterations[0].sample_size:,} initial sample")
    print(f"records actually used: {result.n:,} "
          f"({result.sample_fraction:.2%} of the data)")
    print(f"estimate             : {result.estimate:,.4f}")
    print(f"true mean            : {true_mean:,.4f}")
    print(f"actual relative error: "
          f"{abs(result.estimate - true_mean) / true_mean:.2%}")
    print(f"estimated error (cv) : {result.error:.2%}  "
          f"(bound σ = {result.sigma:.0%}, met: {result.achieved})")
    lo, hi = result.ci
    print(f"95% bootstrap CI     : [{lo:,.2f}, {hi:,.2f}]")
    print()
    print("iteration trace:")
    for record in result.iterations:
        print(f"  iter {record.iteration}: n={record.sample_size:>8,}  "
              f"cv={record.accuracy.cv:.4f}  "
              f"{'-> expand' if record.expanded else '-> done'}")

    # The same pipeline handles any registered statistic:
    median = EarlSession(population, "median", config=config).run()
    print(f"\nmedian estimate      : {median.estimate:,.4f} "
          f"(true {np.median(population):,.4f}, "
          f"used {median.sample_fraction:.2%} of the data)")


if __name__ == "__main__":
    main()
