"""Tests for the Cluster facade and failure injection."""

import pytest

from repro.cluster import (
    DISK_ANNUAL_FAILURE_RATE,
    Cluster,
    FailureInjector,
    expected_daily_failures,
)


class TestCluster:
    def test_slots_accounting(self):
        cluster = Cluster(n_nodes=5, map_slots_per_node=2,
                          reduce_slots_per_node=1, seed=1)
        assert cluster.total_map_slots == 10
        assert cluster.total_reduce_slots == 5

    def test_fail_node_removes_slots_and_storage(self):
        cluster = Cluster(n_nodes=3, seed=2)
        cluster.fail_node("node-0")
        assert cluster.total_map_slots == 4
        assert not cluster.hdfs.datanodes["datanode-0"].alive

    def test_recover_node(self):
        cluster = Cluster(n_nodes=3, seed=3)
        cluster.fail_node("node-1")
        cluster.recover_node("node-1")
        assert cluster.total_map_slots == 6
        assert cluster.hdfs.datanodes["datanode-1"].alive

    def test_unknown_node_raises(self):
        cluster = Cluster(n_nodes=2, seed=4)
        with pytest.raises(KeyError):
            cluster.fail_node("node-99")

    def test_new_ledger_bound_to_params(self):
        cluster = Cluster(n_nodes=2, seed=5)
        ledger = cluster.new_ledger()
        assert ledger.params is cluster.cost_params

    def test_deterministic_hdfs_placement(self):
        a = Cluster(n_nodes=4, block_size=32, seed=42)
        b = Cluster(n_nodes=4, block_size=32, seed=42)
        a.hdfs.write_bytes("/f", b"x" * 100)
        b.hdfs.write_bytes("/f", b"x" * 100)
        replicas_a = [blk.replicas for blk in a.hdfs.namenode.get("/f").blocks]
        replicas_b = [blk.replicas for blk in b.hdfs.namenode.get("/f").blocks]
        assert replicas_a == replicas_b


class TestFailureModel:
    def test_paper_arithmetic(self):
        # §3.4: 1,000,000 devices at 3 %/yr => "over 83 will fail every day"
        assert expected_daily_failures(1_000_000) > 82
        assert expected_daily_failures(1_000_000) == pytest.approx(
            1_000_000 * DISK_ANNUAL_FAILURE_RATE / 365)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_daily_failures(0)
        with pytest.raises(ValueError):
            expected_daily_failures(10, afr=2.0)


class TestFailureInjector:
    def test_fail_named_nodes(self):
        cluster = Cluster(n_nodes=4, seed=6)
        injector = FailureInjector(cluster, seed=7)
        failed = injector.fail_nodes(["node-0", "node-2"])
        assert failed == ["node-0", "node-2"]
        assert len(cluster.healthy_nodes) == 2

    def test_fail_random_nodes(self):
        cluster = Cluster(n_nodes=5, seed=8)
        injector = FailureInjector(cluster, seed=9)
        failed = injector.fail_random_nodes(2)
        assert len(failed) == 2
        assert len(cluster.healthy_nodes) == 3

    def test_fail_more_than_healthy_rejected(self):
        cluster = Cluster(n_nodes=2, seed=10)
        injector = FailureInjector(cluster, seed=11)
        with pytest.raises(ValueError):
            injector.fail_random_nodes(3)

    def test_fail_random_fraction(self):
        cluster = Cluster(n_nodes=10, seed=12)
        injector = FailureInjector(cluster, seed=13)
        injector.fail_random_fraction(0.4)
        assert len(cluster.healthy_nodes) == 6

    def test_deterministic_with_seed(self):
        def run():
            cluster = Cluster(n_nodes=6, seed=1)
            injector = FailureInjector(cluster, seed=2)
            return injector.fail_random_nodes(3)
        assert run() == run()
