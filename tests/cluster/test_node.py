"""Tests for ClusterNode."""

import pytest

from repro.cluster.node import ClusterNode


class TestClusterNode:
    def test_defaults(self):
        node = ClusterNode(node_id="n0")
        assert node.map_slots == 2
        assert node.reduce_slots == 1
        assert node.alive

    def test_fail_recover(self):
        node = ClusterNode(node_id="n0")
        node.fail()
        assert not node.alive
        node.recover()
        assert node.alive

    @pytest.mark.parametrize("field", ["map_slots", "reduce_slots"])
    def test_slot_validation(self, field):
        with pytest.raises(ValueError):
            ClusterNode(node_id="n0", **{field: 0})
