"""Tests for the simulated-time cost model."""

import pytest

from repro.cluster.costmodel import CATEGORIES, CostLedger, CostParameters


class TestCostParameters:
    def test_defaults_valid(self):
        params = CostParameters()
        assert params.disk_bandwidth > 0

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            CostParameters(disk_bandwidth=0)

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            CostParameters(task_startup_seconds=-1)

    def test_frozen(self):
        with pytest.raises(Exception):
            CostParameters().disk_bandwidth = 1.0


class TestCostLedger:
    def test_starts_empty(self):
        ledger = CostLedger()
        assert ledger.total_seconds == 0.0
        for cat in CATEGORIES:
            assert ledger.seconds(cat) == 0.0

    def test_disk_read_charging(self):
        ledger = CostLedger(params=CostParameters(disk_bandwidth=100.0))
        ledger.charge_disk_read(250.0)
        assert ledger.seconds("disk_read") == pytest.approx(2.5)

    def test_seek_charging(self):
        ledger = CostLedger(params=CostParameters(disk_seek_seconds=0.01))
        ledger.charge_seeks(5)
        assert ledger.seconds("disk_seek") == pytest.approx(0.05)

    def test_network_charging(self):
        ledger = CostLedger(params=CostParameters(network_bandwidth=1000.0))
        ledger.charge_network(500.0)
        assert ledger.seconds("network") == pytest.approx(0.5)

    def test_cpu_records_with_factor(self):
        params = CostParameters(cpu_seconds_per_record=0.001)
        ledger = CostLedger(params=params)
        ledger.charge_cpu_records(100, cpu_factor=2.0)
        assert ledger.seconds("cpu") == pytest.approx(0.2)

    def test_startup_charges(self):
        params = CostParameters(task_startup_seconds=1.5, job_setup_seconds=3.0)
        ledger = CostLedger(params=params)
        ledger.charge_task_startup(2)
        ledger.charge_job_setup()
        assert ledger.seconds("startup") == pytest.approx(6.0)

    def test_total_is_sum(self):
        ledger = CostLedger()
        ledger.charge_disk_read(1e8)
        ledger.charge_network(1.25e8)
        ledger.charge_cpu_seconds(3.0)
        assert ledger.total_seconds == pytest.approx(
            ledger.seconds("disk_read") + ledger.seconds("network") + 3.0)

    def test_merge(self):
        a, b = CostLedger(), CostLedger()
        a.charge_cpu_seconds(1.0)
        b.charge_cpu_seconds(2.0)
        a.merge(b)
        assert a.seconds("cpu") == pytest.approx(3.0)
        assert b.seconds("cpu") == pytest.approx(2.0)

    def test_spawn_shares_params(self):
        params = CostParameters(disk_bandwidth=42.0)
        child = CostLedger(params=params).spawn()
        assert child.params.disk_bandwidth == 42.0
        assert child.total_seconds == 0.0

    def test_reset(self):
        ledger = CostLedger()
        ledger.charge_cpu_seconds(5.0)
        ledger.reset()
        assert ledger.total_seconds == 0.0

    def test_negative_charges_rejected(self):
        ledger = CostLedger()
        with pytest.raises(ValueError):
            ledger.charge_seeks(-1)
        with pytest.raises(ValueError):
            ledger.charge_cpu_records(-5)

    def test_unknown_category_raises(self):
        with pytest.raises(KeyError):
            CostLedger().seconds("quantum")

    def test_breakdown_is_copy(self):
        ledger = CostLedger()
        ledger.charge_cpu_seconds(1.0)
        snapshot = ledger.breakdown()
        snapshot["cpu"] = 0.0
        assert ledger.seconds("cpu") == 1.0
