"""Tests for the slot scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.scheduler import schedule_tasks

durations = st.lists(st.floats(min_value=0.0, max_value=100.0,
                               allow_nan=False), min_size=0, max_size=40)


class TestScheduleTasks:
    def test_empty(self):
        sched = schedule_tasks([], 4)
        assert sched.makespan == 0.0
        assert sched.waves == 0

    def test_single_task(self):
        sched = schedule_tasks([5.0], 2)
        assert sched.makespan == 5.0
        assert sched.waves == 1

    def test_perfect_parallelism(self):
        sched = schedule_tasks([2.0, 2.0, 2.0, 2.0], 4)
        assert sched.makespan == 2.0
        assert sched.waves == 1

    def test_two_waves(self):
        sched = schedule_tasks([1.0] * 6, 3)
        assert sched.makespan == pytest.approx(2.0)
        assert sched.waves == 2

    def test_single_slot_serializes(self):
        sched = schedule_tasks([1.0, 2.0, 3.0], 1)
        assert sched.makespan == pytest.approx(6.0)

    def test_fifo_order(self):
        sched = schedule_tasks([4.0, 1.0, 1.0, 1.0], 2)
        # slot A: 4.0; slot B: 1+1+1 -> makespan 4.0
        assert sched.makespan == pytest.approx(4.0)

    def test_invalid_slots(self):
        with pytest.raises(ValueError):
            schedule_tasks([1.0], 0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            schedule_tasks([-1.0], 1)

    @given(ds=durations, slots=st.integers(min_value=1, max_value=8))
    @settings(max_examples=80, deadline=None)
    def test_property_makespan_bounds(self, ds, slots):
        sched = schedule_tasks(ds, slots)
        total = sum(ds)
        longest = max(ds) if ds else 0.0
        # Classic list-scheduling bounds.
        assert sched.makespan >= longest - 1e-9
        assert sched.makespan >= total / slots - 1e-9
        assert sched.makespan <= total + 1e-9
        # No slot overlap:
        by_slot = {}
        for task in sched.tasks:
            by_slot.setdefault(task.slot, []).append(task)
        for tasks in by_slot.values():
            tasks.sort(key=lambda t: t.start)
            for prev, cur in zip(tasks, tasks[1:]):
                assert cur.start >= prev.end - 1e-9
