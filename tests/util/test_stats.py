"""Tests for the removable running statistics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.stats import (
    RunningStats,
    coefficient_of_variation,
    relative_half_width,
)

finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False)


class TestRunningStats:
    def test_empty_has_zero_count(self):
        assert RunningStats().count == 0

    def test_mean_of_empty_raises(self):
        with pytest.raises(ValueError):
            RunningStats().mean

    def test_single_value(self):
        s = RunningStats()
        s.add(5.0)
        assert s.mean == 5.0
        assert s.variance() == 0.0

    def test_matches_numpy(self):
        values = [1.5, 2.5, -3.0, 7.25, 0.0, 11.0]
        s = RunningStats.from_values(values)
        assert s.mean == pytest.approx(np.mean(values))
        assert s.variance() == pytest.approx(np.var(values, ddof=1))
        assert s.std() == pytest.approx(np.std(values, ddof=1))

    def test_sum_property(self):
        s = RunningStats.from_values([1.0, 2.0, 3.5])
        assert s.sum == pytest.approx(6.5)

    def test_remove_inverts_add(self):
        s = RunningStats.from_values([1.0, 2.0, 3.0, 4.0])
        s.add(10.0)
        s.remove(10.0)
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.variance() == pytest.approx(np.var([1, 2, 3, 4], ddof=1))

    def test_remove_to_empty(self):
        s = RunningStats.from_values([42.0])
        s.remove(42.0)
        assert s.count == 0

    def test_remove_from_empty_raises(self):
        with pytest.raises(ValueError):
            RunningStats().remove(1.0)

    def test_merge_matches_batch(self):
        a = RunningStats.from_values([1.0, 2.0, 3.0])
        b = RunningStats.from_values([10.0, 20.0])
        a.merge(b)
        combined = [1.0, 2.0, 3.0, 10.0, 20.0]
        assert a.count == 5
        assert a.mean == pytest.approx(np.mean(combined))
        assert a.variance() == pytest.approx(np.var(combined, ddof=1))

    def test_merge_with_empty_is_noop(self):
        a = RunningStats.from_values([1.0, 2.0])
        a.merge(RunningStats())
        assert a.count == 2
        b = RunningStats()
        b.merge(a)
        assert b.count == 2
        assert b.mean == pytest.approx(1.5)

    def test_copy_is_independent(self):
        a = RunningStats.from_values([1.0, 2.0])
        b = a.copy()
        b.add(100.0)
        assert a.count == 2
        assert b.count == 3

    def test_cv(self):
        s = RunningStats.from_values([10.0, 20.0, 30.0])
        assert s.cv() == pytest.approx(np.std([10, 20, 30], ddof=1) / 20.0)

    @given(st.lists(finite_floats, min_size=2, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_property_matches_numpy(self, values):
        s = RunningStats.from_values(values)
        assert s.mean == pytest.approx(np.mean(values), rel=1e-8, abs=1e-6)
        assert s.variance() == pytest.approx(np.var(values, ddof=1),
                                             rel=1e-6, abs=1e-4)

    @given(st.lists(finite_floats, min_size=3, max_size=40),
           st.integers(min_value=0, max_value=39))
    @settings(max_examples=60, deadline=None)
    def test_property_add_remove_roundtrip(self, values, pick):
        pick = pick % len(values)
        s = RunningStats.from_values(values)
        removed = values[pick]
        s.remove(removed)
        remaining = values[:pick] + values[pick + 1:]
        assert s.count == len(remaining)
        assert s.mean == pytest.approx(np.mean(remaining), rel=1e-6, abs=1e-5)


class TestCoefficientOfVariation:
    def test_basic(self):
        assert coefficient_of_variation(10.0, 2.0) == pytest.approx(0.2)

    def test_negative_mean_uses_absolute(self):
        assert coefficient_of_variation(-10.0, 2.0) == pytest.approx(0.2)

    def test_zero_mean_zero_std(self):
        assert coefficient_of_variation(0.0, 0.0) == 0.0

    def test_zero_mean_positive_std_is_inf(self):
        assert math.isinf(coefficient_of_variation(0.0, 1.0))

    def test_negative_std_raises(self):
        with pytest.raises(ValueError):
            coefficient_of_variation(1.0, -0.1)

    def test_relative_half_width(self):
        assert relative_half_width(10.0, 2.0, z=2.0) == pytest.approx(0.4)
