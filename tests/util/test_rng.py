"""Tests for the RNG discipline."""

import numpy as np
import pytest

from repro.util.rng import ensure_rng, spawn_child


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, size=10)
        b = ensure_rng(42).integers(0, 1000, size=10)
        assert (a == b).all()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(7)
        assert isinstance(ensure_rng(seq), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not a seed")


class TestSpawnChild:
    def test_children_are_independent_streams(self):
        parent = ensure_rng(3)
        a, b = spawn_child(parent, 2)
        assert not (a.integers(0, 2**31, 50) == b.integers(0, 2**31, 50)).all()

    def test_deterministic_given_parent_seed(self):
        kids1 = [g.integers(0, 1000, 5) for g in spawn_child(ensure_rng(9), 3)]
        kids2 = [g.integers(0, 1000, 5) for g in spawn_child(ensure_rng(9), 3)]
        for x, y in zip(kids1, kids2):
            assert (x == y).all()

    def test_count_validated(self):
        with pytest.raises(ValueError):
            spawn_child(ensure_rng(1), 0)
