"""Tests for argument validation helpers."""

import pytest

from repro.util.validation import check_fraction, check_positive, check_positive_int


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 0.5) == 0.5

    @pytest.mark.parametrize("bad", [0, -1, -0.001])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError):
            check_positive("x", bad)


class TestCheckPositiveInt:
    def test_accepts_positive_int(self):
        assert check_positive_int("n", 3) == 3

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int("n", 0)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int("n", 3.0)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int("n", True)


class TestCheckFraction:
    def test_accepts_half(self):
        assert check_fraction("p", 0.5) == 0.5

    def test_default_excludes_zero(self):
        with pytest.raises(ValueError):
            check_fraction("p", 0.0)

    def test_inclusive_low(self):
        assert check_fraction("p", 0.0, inclusive_low=True) == 0.0

    def test_default_includes_one(self):
        assert check_fraction("p", 1.0) == 1.0

    def test_exclusive_high(self):
        with pytest.raises(ValueError):
            check_fraction("p", 1.0, inclusive_high=False)

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_fraction("p", 1.5)
