"""Unit tests for the pluggable execution backends (repro.exec)."""

from __future__ import annotations

import pytest

from repro.exec import (
    EXECUTOR_ENV,
    MAX_WORKERS_ENV,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    as_executor,
    available_executors,
    chunk_sizes,
    get_executor,
    resolve_executor,
)


def _square(x: int) -> int:
    """Module-level so the process backend can pickle it by reference."""
    return x * x


def _raise_on_three(x: int) -> int:
    if x == 3:
        raise ValueError("three is right out")
    return x


# ---------------------------------------------------------------- selection


def test_available_executors_names():
    assert available_executors() == ["processes", "serial", "threads"]


@pytest.mark.parametrize("name,cls,is_parallel,shares_memory", [
    ("serial", SerialExecutor, False, True),
    ("threads", ThreadExecutor, True, True),
    ("processes", ProcessExecutor, True, False),
])
def test_get_executor_builds_the_right_backend(name, cls, is_parallel,
                                               shares_memory):
    ex = get_executor(name)
    try:
        assert isinstance(ex, cls)
        assert ex.name == name
        assert ex.is_parallel is is_parallel
        assert ex.shares_memory is shares_memory
    finally:
        ex.close()


def test_get_executor_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown executor"):
        get_executor("gpu")


@pytest.mark.parametrize("bad", [0, -1, 2.5, "four"])
def test_bad_max_workers_rejected_by_every_backend(bad):
    # Same semantics as EarlConfig.max_workers (check_positive_int):
    # wrong type -> TypeError, non-positive int -> ValueError.
    for name in available_executors():
        with pytest.raises((ValueError, TypeError), match="max_workers"):
            get_executor(name, max_workers=bad)


def test_pool_backends_default_worker_count_positive():
    for cls in (ThreadExecutor, ProcessExecutor):
        ex = cls()
        try:
            assert ex.max_workers >= 1
        finally:
            ex.close()


# ------------------------------------------------------------------ resolve


class _FakeConfig:
    def __init__(self, executor="serial", max_workers=None):
        self.executor = executor
        self.max_workers = max_workers


def test_resolve_prefers_env_over_name_over_config(monkeypatch):
    monkeypatch.delenv(EXECUTOR_ENV, raising=False)
    cfg = _FakeConfig(executor="threads", max_workers=2)

    ex = resolve_executor(cfg)
    try:
        assert isinstance(ex, ThreadExecutor)
        assert ex.max_workers == 2
    finally:
        ex.close()

    ex = resolve_executor(cfg, name="serial")
    try:
        assert isinstance(ex, SerialExecutor)
    finally:
        ex.close()

    monkeypatch.setenv(EXECUTOR_ENV, "processes")
    monkeypatch.setenv(MAX_WORKERS_ENV, "3")
    ex = resolve_executor(cfg, name="serial")
    try:
        assert isinstance(ex, ProcessExecutor)
        assert ex.max_workers == 3
    finally:
        ex.close()


def test_resolve_defaults_to_serial(monkeypatch):
    monkeypatch.delenv(EXECUTOR_ENV, raising=False)
    ex = resolve_executor()
    try:
        assert isinstance(ex, SerialExecutor)
    finally:
        ex.close()


def test_as_executor_normalization():
    ex, owned = as_executor(None)
    assert isinstance(ex, SerialExecutor) and owned

    ex, owned = as_executor("threads")
    try:
        assert isinstance(ex, ThreadExecutor) and owned
    finally:
        ex.close()

    borrowed = SerialExecutor()
    ex, owned = as_executor(borrowed)
    assert ex is borrowed and not owned

    with pytest.raises(TypeError, match="executor must be"):
        as_executor(42)


def test_earlconfig_validates_executor_fields():
    from repro import EarlConfig

    cfg = EarlConfig(executor="processes", max_workers=4)
    assert cfg.executor == "processes" and cfg.max_workers == 4
    with pytest.raises(ValueError, match="unknown executor"):
        EarlConfig(executor="gpu")
    with pytest.raises(ValueError, match="max_workers"):
        EarlConfig(max_workers=0)


# ---------------------------------------------------------------------- map


@pytest.mark.parametrize("name", ["serial", "threads", "processes"])
def test_map_preserves_submission_order(name):
    with get_executor(name, max_workers=2) as ex:
        assert ex.map(_square, range(10)) == [x * x for x in range(10)]


@pytest.mark.parametrize("name", ["serial", "threads", "processes"])
def test_map_propagates_exceptions(name):
    with get_executor(name, max_workers=2) as ex:
        with pytest.raises(ValueError, match="three"):
            ex.map(_raise_on_three, range(6))


def test_map_empty_and_singleton():
    for name in available_executors():
        with get_executor(name) as ex:
            assert ex.map(_square, []) == []
            assert ex.map(_square, [7]) == [49]


def test_close_is_idempotent():
    ex = get_executor("threads", max_workers=1)
    ex.map(_square, [1, 2])
    ex.close()
    ex.close()


def test_abstract_map_not_implemented():
    with pytest.raises(NotImplementedError):
        Executor().map(_square, [1])


# -------------------------------------------------------------- chunk_sizes


def test_chunk_sizes_decomposition():
    assert chunk_sizes(10, 4) == [4, 4, 2]
    assert chunk_sizes(8, 4) == [4, 4]
    assert chunk_sizes(3, 10) == [3]
    assert chunk_sizes(0, 5) == []


def test_chunk_sizes_depends_only_on_total_and_chunk():
    # Worker counts never enter the decomposition — that's the property
    # cross-backend determinism rests on.
    assert sum(chunk_sizes(1000, 32)) == 1000
    assert chunk_sizes(1000, 32) == chunk_sizes(1000, 32)


def test_chunk_sizes_validation():
    with pytest.raises(ValueError):
        chunk_sizes(-1, 4)
    with pytest.raises(ValueError):
        chunk_sizes(10, 0)
