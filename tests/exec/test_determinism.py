"""Cross-backend determinism: serial, threads and processes must produce
byte-identical results for any fixed seed.

This is the contract that makes the executor a pure performance knob —
flipping ``EarlConfig.executor`` (or ``REPRO_EXECUTOR``) may change
wall-clock time but never a number, including the simulated
:class:`~repro.cluster.costmodel.CostLedger` makespans.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import EarlConfig, EarlJob, EarlSession, run_stock_job
from repro.cluster import Cluster
from repro.core.bootstrap import bootstrap
from repro.core.delta import ResampleSet
from repro.exec import get_executor
from repro.workloads import load_stand_in

BACKENDS = ["serial", "threads", "processes"]


@pytest.fixture(autouse=True)
def _no_env_override(monkeypatch):
    """REPRO_EXECUTOR takes precedence over EarlConfig.executor, so a
    suite run under e.g. ``REPRO_EXECUTOR=processes make test`` would
    silently compare a backend against itself.  Clear it for every test
    here (test_env_override_* sets it back explicitly)."""
    monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
    monkeypatch.delenv("REPRO_MAX_WORKERS", raising=False)


@pytest.fixture(scope="module")
def data() -> np.ndarray:
    return np.random.default_rng(3).lognormal(3.0, 1.0, 4000)


# ---------------------------------------------------------------- bootstrap


@pytest.mark.parametrize("statistic", ["mean", "median"])
def test_bootstrap_identical_across_backends(data, statistic):
    results = [bootstrap(data, statistic, B=50, seed=7, executor=name,
                         chunk_b=16)
               for name in BACKENDS]
    for other in results[1:]:
        assert np.array_equal(results[0].estimates, other.estimates)
        assert results[0].point_estimate == other.point_estimate


def test_bootstrap_chunked_independent_of_worker_count(data):
    one = bootstrap(data, "mean", B=40, seed=7,
                    executor=get_executor("threads", max_workers=1))
    four = bootstrap(data, "mean", B=40, seed=7,
                     executor=get_executor("threads", max_workers=4))
    assert np.array_equal(one.estimates, four.estimates)


def test_bootstrap_executor_path_is_seed_reproducible(data):
    a = bootstrap(data, "mean", B=40, seed=11, executor="serial")
    b = bootstrap(data, "mean", B=40, seed=11, executor="serial")
    assert np.array_equal(a.estimates, b.estimates)


# -------------------------------------------------------------- resample set


def _interquartile_mean(a: np.ndarray) -> float:
    """Module-level arbitrary statistic: resolves to a FunctionalState
    (full re-evaluation per resample — the case the executor fan-out in
    ResampleSet.estimates() exists for) and is picklable by reference."""
    lo, hi = np.quantile(a, [0.25, 0.75])
    inner = a[(a >= lo) & (a <= hi)]
    return float(np.mean(inner)) if inner.size else float(np.mean(a))


def test_resample_set_estimates_identical_with_executor(data):
    def build():
        rs = ResampleSet(_interquartile_mean, 20, seed=5)
        rs.initialize(data[:300])
        rs.expand(data[300:450])
        return rs

    plain = build().estimates()
    with get_executor("threads", max_workers=2) as ex:
        threaded = build().estimates(executor=ex)
    with get_executor("processes", max_workers=2) as ex:
        processed = build().estimates(executor=ex)
    assert np.array_equal(plain, threaded)
    assert np.array_equal(plain, processed)


def test_resample_set_cheap_states_skip_the_pool(data):
    """Registered statistics keep O(1)-readable states; estimates() must
    not pay pool dispatch (or pickling) for those — and the numbers are
    identical either way."""
    def build():
        rs = ResampleSet("median", 20, seed=5)
        rs.initialize(data[:300])
        return rs

    with get_executor("processes", max_workers=2) as ex:
        assert np.array_equal(build().estimates(executor=ex),
                              build().estimates())


# -------------------------------------------------------------- EarlSession


def test_earl_session_identical_across_backends(data):
    results = {}
    for name in BACKENDS:
        cfg = EarlConfig(sigma=0.05, seed=42, executor=name, max_workers=2)
        results[name] = EarlSession(data, "mean", config=cfg).run()
    ref = results["serial"]
    for name in BACKENDS[1:]:
        res = results[name]
        assert res.estimate == ref.estimate
        assert res.error == ref.error
        assert res.n == ref.n and res.B == ref.B
        assert len(res.iterations) == len(ref.iterations)
        for a, b in zip(res.iterations, ref.iterations):
            assert a.sample_size == b.sample_size
            assert a.accuracy.cv == b.accuracy.cv


# ------------------------------------------------------------------ EarlJob


def _job_cluster():
    cluster = Cluster(n_nodes=4, block_size=1 << 18, seed=9)
    ds = load_stand_in(cluster, "/data/det", logical_gb=1.0,
                       records=8_000, seed=10)
    return cluster, ds


@pytest.mark.parametrize("backend", BACKENDS[1:])
def test_earl_job_identical_across_backends(backend):
    def run(name):
        cluster, ds = _job_cluster()
        cfg = EarlConfig(sigma=0.05, seed=21, executor=name, max_workers=2)
        return EarlJob(cluster, ds.path, statistic="mean", config=cfg).run()

    ref, res = run("serial"), run(backend)
    assert res.estimate == ref.estimate
    assert res.error == ref.error
    assert res.n == ref.n
    # Simulated makespans — the CostLedger totals — must match exactly:
    # backends change where tasks run, never what the cost model charges.
    assert res.simulated_seconds == ref.simulated_seconds
    assert [it.simulated_seconds for it in res.iterations] \
        == [it.simulated_seconds for it in ref.iterations]


@pytest.mark.parametrize("backend", BACKENDS[1:])
def test_stock_job_identical_across_backends(backend):
    def run(name):
        cluster, ds = _job_cluster()
        return run_stock_job(cluster, ds.path, "mean", seed=22,
                             executor=name)

    (ref_value, ref_job), (value, job) = run("serial"), run(backend)
    assert value == ref_value
    assert job.output == ref_job.output
    assert job.simulated_seconds == ref_job.simulated_seconds
    assert job.breakdown == ref_job.breakdown
    assert job.counters.as_dict() == ref_job.counters.as_dict()


def test_env_override_switches_backend_without_changing_results(
        data, monkeypatch):
    cfg = EarlConfig(sigma=0.05, seed=42)
    monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
    ref = EarlSession(data, "median", config=cfg).run()
    monkeypatch.setenv("REPRO_EXECUTOR", "threads")
    res = EarlSession(data, "median", config=cfg).run()
    assert res.estimate == ref.estimate
    assert res.error == ref.error
