"""Broadcast-once data plane: shared handles across every backend.

The contract: a :class:`~repro.exec.BroadcastHandle` never changes what
is computed — it only changes how the payload travels (zero-copy
reference on shared-memory backends, one per-worker transfer at pool
construction on the process backend).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bootstrap import bootstrap
from repro.exec import (
    BroadcastHandle,
    broadcast_value,
    get_executor,
)

BACKENDS = ["serial", "threads", "processes"]


def _payload_fingerprint(args):
    """Module-level work unit (picklable by reference): resolve the
    broadcast and report on the payload."""
    shared, lo, hi = args
    data = broadcast_value(shared)
    return float(np.sum(data[lo:hi]))


def _identity_probe(shared):
    """Return id(value) worker-side — used to show payload reuse."""
    return id(broadcast_value(shared))


class TestHandleSemantics:
    @pytest.mark.parametrize("name", ["serial", "threads"])
    def test_shared_memory_backends_are_zero_copy(self, name):
        data = np.arange(1000.0)
        with get_executor(name) as ex:
            handle = ex.broadcast(data)
            assert isinstance(handle, BroadcastHandle)
            assert handle.value is data  # the reference, not a copy

    def test_broadcast_value_passthrough(self):
        raw = np.arange(5.0)
        assert broadcast_value(raw) is raw
        with get_executor("serial") as ex:
            assert broadcast_value(ex.broadcast(raw)) is raw

    @pytest.mark.parametrize("name", BACKENDS)
    def test_work_units_read_the_payload(self, name):
        data = np.arange(10_000.0)
        with get_executor(name, max_workers=2) as ex:
            shared = ex.broadcast(data)
            work = [(shared, i * 1000, (i + 1) * 1000) for i in range(10)]
            results = ex.map(_payload_fingerprint, work)
        expected = [float(np.sum(data[lo:hi])) for _, lo, hi in work]
        assert results == expected

    def test_process_tasks_carry_only_the_id(self):
        """A process-pool handle pickles as its id — the payload is not
        re-serialized into every task."""
        import pickle

        data = np.arange(50_000.0)
        with get_executor("processes", max_workers=2) as ex:
            handle = ex.broadcast(data)
            assert len(pickle.dumps(handle)) < 200  # id, not 400 KB
            # ... and workers still resolve it (installed at pool start).
            work = [(handle, 0, 100)] * 4
            assert ex.map(_payload_fingerprint, work) \
                == [float(np.sum(data[:100]))] * 4

    def test_process_workers_reuse_one_copy_across_maps(self):
        """Consecutive map waves see the same worker-side object — the
        payload was shipped once, at pool construction."""
        data = np.arange(1000.0)
        with get_executor("processes", max_workers=1) as ex:
            shared = ex.broadcast(data)
            first = ex.map(_identity_probe, [shared, shared])
            second = ex.map(_identity_probe, [shared, shared])
        assert set(first) == set(second)  # same resident object(s)

    def test_broadcast_after_pool_start_falls_back_by_value(self):
        """Late broadcasts still reach workers — pickled by value per
        task (the pre-broadcast cost) — and never tear the pool down."""
        with get_executor("processes", max_workers=2) as ex:
            a = ex.broadcast(np.arange(100.0))
            assert ex.map(_payload_fingerprint, [(a, 0, 10), (a, 10, 20)]) \
                == [45.0, 145.0]
            pool = ex._pool
            b = ex.broadcast(np.arange(100.0, 200.0))
            assert ex.map(_payload_fingerprint, [(b, 0, 10), (a, 0, 10)]) \
                == [1045.0, 45.0]
            assert ex._pool is pool  # same workers throughout

    def test_release_retires_payloads_and_reenables_initializer(self):
        """The repeated-bootstrap pattern: each call broadcasts,
        fans out, and releases.  Releasing an initializer-shipped
        payload marks the pool stale, so the next call's payload rides
        a fresh pool's initializer (id-only tasks) instead of being
        re-pickled per task, and retired samples do not stay resident
        in workers."""
        import pickle

        data = np.random.default_rng(3).lognormal(3.0, 1.0, 2000)
        with get_executor("processes", max_workers=2) as ex:
            for seed in (5, 6, 7):
                bootstrap(data, "mean", B=24, seed=seed, executor=ex)
                assert ex._broadcasts == {}  # released after every call
                # The next broadcast ships via the (rebuilt) pool's
                # initializer again — its handle pickles as an id.
                probe = ex.broadcast(np.arange(4000.0))
                assert len(pickle.dumps(probe)) < 200
                ex.release(probe)


class TestBootstrapOnBroadcastPlane:
    """The bootstrap ships its sample through the broadcast plane; the
    numbers must stay byte-identical across backends and chunkings."""

    @pytest.fixture(scope="class")
    def data(self):
        return np.random.default_rng(3).lognormal(3.0, 1.0, 4000)

    def test_identical_across_backends(self, data):
        results = [bootstrap(data, "median", B=48, seed=11, executor=name,
                             chunk_b=16)
                   for name in BACKENDS]
        for other in results[1:]:
            np.testing.assert_array_equal(results[0].estimates,
                                          other.estimates)

    def test_borrowed_executor_runs_many_bootstraps(self, data):
        """One pool, several bootstraps: each broadcast is independent
        and the results match the owned-executor runs."""
        with get_executor("processes", max_workers=2) as ex:
            first = bootstrap(data, "mean", B=32, seed=5, executor=ex)
            second = bootstrap(data, "mean", B=32, seed=6, executor=ex)
        assert first.estimates.shape == second.estimates.shape
        np.testing.assert_array_equal(
            first.estimates,
            bootstrap(data, "mean", B=32, seed=5,
                      executor="serial").estimates)
        np.testing.assert_array_equal(
            second.estimates,
            bootstrap(data, "mean", B=32, seed=6,
                      executor="serial").estimates)
