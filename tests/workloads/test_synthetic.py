"""Tests for synthetic dataset generators."""

import numpy as np
import pytest

from repro.workloads import (
    ar1_series,
    categorical_dataset,
    clustered_lines,
    gaussian_mixture_points,
    keyed_lines,
    numeric_dataset,
    numeric_lines,
    parse_point,
    point_lines,
    population_summary,
)


class TestNumericDataset:
    @pytest.mark.parametrize("dist", ["normal", "lognormal", "exponential",
                                      "uniform", "pareto"])
    def test_distributions_available(self, dist):
        data = numeric_dataset(500, dist, seed=1)
        assert data.shape == (500,)
        assert np.isfinite(data).all()

    def test_unknown_distribution(self):
        with pytest.raises(ValueError):
            numeric_dataset(10, "cauchy-ish")

    def test_deterministic(self):
        a = numeric_dataset(100, "lognormal", seed=2)
        b = numeric_dataset(100, "lognormal", seed=2)
        np.testing.assert_array_equal(a, b)

    def test_params_forwarded(self):
        data = numeric_dataset(5000, "normal", seed=3, loc=500.0, scale=1.0)
        assert np.mean(data) == pytest.approx(500.0, abs=1.0)


class TestLineRendering:
    def test_numeric_lines_fixed_width(self):
        lines = numeric_lines([1.5, 123456.789])
        assert all(len(line) == 15 for line in lines)
        assert float(lines[0]) == 1.5

    def test_roundtrip_precision(self):
        values = numeric_dataset(100, "lognormal", seed=4)
        parsed = [float(line) for line in numeric_lines(values)]
        np.testing.assert_allclose(parsed, values, atol=1e-6)

    def test_keyed_lines_format(self):
        lines = keyed_lines([1.0, 2.0, 3.0], 2, seed=5)
        for line in lines:
            key, _, value = line.partition("\t")
            assert key.startswith("k")
            float(value)

    def test_clustered_lines_sorted(self):
        lines = clustered_lines([3.0, 1.0, 2.0])
        values = [float(l) for l in lines]
        assert values == sorted(values)


class TestCategoricalDataset:
    def test_values_binary(self):
        data = categorical_dataset(1000, 0.3, seed=6)
        assert set(np.unique(data)) <= {0, 1}

    def test_proportion_close(self):
        data = categorical_dataset(20_000, 0.3, seed=7)
        assert np.mean(data) == pytest.approx(0.3, abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            categorical_dataset(10, 0.0)


class TestAr1Series:
    def test_stationary_around_loc(self):
        series = ar1_series(5000, phi=0.5, loc=100.0, seed=8)
        assert np.mean(series) == pytest.approx(100.0, abs=1.0)

    def test_phi_bounds(self):
        with pytest.raises(ValueError):
            ar1_series(10, phi=1.0)

    def test_dependence_increases_with_phi(self):
        from repro.core.dependent import lag1_autocorrelation
        weak = ar1_series(3000, phi=0.1, seed=9)
        strong = ar1_series(3000, phi=0.9, seed=9)
        assert lag1_autocorrelation(strong) > lag1_autocorrelation(weak)


class TestMixturePoints:
    def test_shapes(self):
        pts, labels = gaussian_mixture_points(
            300, [[0, 0], [10, 10]], seed=10)
        assert pts.shape == (300, 2)
        assert labels.shape == (300,)
        assert set(np.unique(labels)) <= {0, 1}

    def test_weights_respected(self):
        _, labels = gaussian_mixture_points(
            10_000, [[0, 0], [10, 10]], weights=[0.9, 0.1], seed=11)
        assert np.mean(labels == 0) == pytest.approx(0.9, abs=0.02)

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            gaussian_mixture_points(10, [[0, 0]], weights=[0.5])

    def test_point_lines_roundtrip(self):
        pts, _ = gaussian_mixture_points(50, [[5, 5]], seed=12)
        lines = point_lines(pts)
        parsed = np.array([parse_point(line) for line in lines])
        np.testing.assert_allclose(parsed, pts, atol=1e-6)


class TestPopulationSummary:
    def test_fields(self):
        summary = population_summary([1.0, 2.0, 3.0, 4.0])
        assert summary["mean"] == 2.5
        assert summary["median"] == 2.5
        assert summary["sum"] == 10.0
        assert summary["std"] == pytest.approx(np.std([1, 2, 3, 4], ddof=1))
        assert summary["cv"] == pytest.approx(summary["std"] / 2.5)


class TestSkewedKeyedValues:
    def test_shape_and_key_coverage(self):
        from repro.workloads import skewed_keyed_values
        keys, values = skewed_keyed_values(10_000, 8, seed=3)
        assert len(keys) == len(values) == 10_000
        counts = {k: int((keys == k).sum()) for k in set(keys)}
        assert len(counts) == 8                 # every key appears
        ordered = [counts[f"g{i:03d}"] for i in range(8)]
        assert ordered == sorted(ordered, reverse=True)  # Zipf head-heavy
        assert min(ordered) >= 1

    @pytest.mark.parametrize("n,n_keys", [(50, 50), (100, 80), (20, 20),
                                          (200, 150), (65, 64)])
    def test_n_close_to_n_keys_rounding_slack(self, n, n_keys):
        # regression: bumping floored-to-zero tail keys up to one row
        # each can overshoot n; the trim must keep every key >= 1
        from repro.workloads import skewed_keyed_values
        keys, values = skewed_keyed_values(n, n_keys, seed=1)
        assert len(keys) == len(values) == n
        assert len(set(keys)) == n_keys

    def test_validation(self):
        from repro.workloads import skewed_keyed_values
        with pytest.raises(ValueError):
            skewed_keyed_values(5, 10)
        with pytest.raises(ValueError):
            skewed_keyed_values(10, 2, skew=-1.0)
