"""Tests for HDFS dataset loaders."""

import pytest

from repro.cluster import Cluster
from repro.workloads import GB, load_lines, load_numeric, load_stand_in


@pytest.fixture
def cluster() -> Cluster:
    return Cluster(n_nodes=4, block_size=1 << 18, seed=60)


class TestLoadNumeric:
    def test_records_and_truth(self, cluster):
        ds = load_numeric(cluster, "/n", [1.0, 2.0, 3.0])
        assert ds.records == 3
        assert ds.truth["mean"] == 2.0
        assert cluster.hdfs.exists("/n")

    def test_logical_scale_applied(self, cluster):
        ds = load_numeric(cluster, "/scaled", [1.0] * 100,
                          logical_scale=50.0)
        assert ds.logical_bytes == 50 * ds.actual_bytes


class TestLoadLines:
    def test_arbitrary_lines(self, cluster):
        ds = load_lines(cluster, "/l", ["a,b", "c,d"], truth={"rows": 2.0})
        assert ds.records == 2
        assert ds.truth["rows"] == 2.0
        assert cluster.hdfs.read_lines("/l") == ["a,b", "c,d"]


class TestLoadStandIn:
    def test_logical_size_hits_target(self, cluster):
        ds = load_stand_in(cluster, "/big", logical_gb=10.0,
                           records=20_000, seed=61)
        assert ds.logical_gb == pytest.approx(10.0, rel=0.01)
        assert ds.records == 20_000
        assert ds.actual_bytes < 1_000_000  # laptop-sized on disk

    def test_truth_recorded(self, cluster):
        ds = load_stand_in(cluster, "/big2", logical_gb=1.0,
                           records=5000, seed=62)
        assert "mean" in ds.truth and ds.truth["mean"] > 0

    def test_splits_match_logical_size(self, cluster):
        ds = load_stand_in(cluster, "/big3", logical_gb=2.0,
                           records=10_000, seed=63)
        splits = cluster.hdfs.get_splits(ds.path, 64 * 1024 * 1024)
        expected_tasks = 2.0 * GB / (64 * 1024 * 1024)
        assert len(splits) == pytest.approx(expected_tasks, rel=0.05)

    def test_small_target_never_scales_below_one(self, cluster):
        ds = load_stand_in(cluster, "/tiny", logical_gb=0.000001,
                           records=1000, seed=64)
        assert ds.logical_bytes >= ds.actual_bytes
