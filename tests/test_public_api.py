"""Public-API contract tests: every advertised name must import and be
documented."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.hdfs",
    "repro.cluster",
    "repro.mapreduce",
    "repro.sampling",
    "repro.jobs",
    "repro.workloads",
    "repro.util",
    "repro.evaluation",
    "repro.exec",
    "repro.streaming",
]


class TestPublicApi:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_module_docstrings_exist(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and len(module.__doc__.strip()) > 20

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_public_callables_are_documented(self):
        """Every public item reachable from the top-level namespaces must
        carry a docstring (deliverable e).  Typing aliases (which report
        as callable but cannot hold meaningful docstrings) are skipped.
        """
        import typing

        undocumented = []
        for package in PACKAGES:
            module = importlib.import_module(package)
            for name in getattr(module, "__all__", []):
                obj = getattr(module, name)
                if isinstance(obj, (typing._GenericAlias,)):  # noqa: SLF001
                    continue
                if callable(obj) and not (obj.__doc__ or "").strip():
                    undocumented.append(f"{package}.{name}")
        assert not undocumented, f"undocumented: {undocumented}"

    def test_public_classes_document_public_methods(self):
        """Public methods of the main driver classes carry docstrings."""
        import inspect

        from repro import EarlJob, EarlSession
        from repro.core import Figure4Sampler
        from repro.mapreduce import JobClient

        missing = []
        for cls in [EarlSession, EarlJob, JobClient, Figure4Sampler]:
            for name, member in inspect.getmembers(cls):
                if name.startswith("_") or not callable(member):
                    continue
                if not (getattr(member, "__doc__", "") or "").strip():
                    missing.append(f"{cls.__name__}.{name}")
        assert not missing, f"undocumented methods: {missing}"
