"""SessionManager: concurrent EARL queries over one shared sample."""

import numpy as np
import pytest

from repro.core import EarlConfig
from repro.streaming import SessionManager

BACKENDS = ["serial", "threads", "processes"]


@pytest.fixture
def population():
    return np.random.default_rng(8).lognormal(0.5, 1.0, 250_000)


class TestConcurrentQueries:
    def test_three_queries_share_one_sample(self, population):
        manager = SessionManager(population,
                                 config=EarlConfig(sigma=0.03, seed=21))
        manager.submit("mean")
        manager.submit("median", sigma=0.02)
        manager.submit("p90", sigma=0.05)
        results = manager.run()
        assert sorted(results) == ["mean", "median", "p90"]
        truths = {"mean": float(np.mean(population)),
                  "median": float(np.median(population)),
                  "p90": float(np.quantile(population, 0.9))}
        for name, result in results.items():
            assert result is not None and result.achieved
            rel_err = abs(result.estimate - truths[name]) / truths[name]
            assert rel_err < 0.15, f"{name}: {rel_err}"
        # One shared growing sample: every query's per-iteration sample
        # sizes are a prefix of the longest query's size sequence.
        sizes = {name: [rec.sample_size for rec in result.iterations]
                 for name, result in results.items()}
        longest = max(sizes.values(), key=len)
        for seq in sizes.values():
            assert seq == longest[:len(seq)]

    def test_deterministic_across_backends(self, population):
        def run(executor):
            manager = SessionManager(
                population, config=EarlConfig(sigma=0.04, seed=33,
                                              executor=executor,
                                              max_workers=2))
            manager.submit("mean")
            manager.submit("median")
            manager.submit("p90", sigma=0.08)
            return manager.run()

        reference = run("serial")
        for executor in BACKENDS[1:]:
            assert run(executor) == reference

    def test_correlation_queries_over_pairs(self):
        rng = np.random.default_rng(12)
        x = rng.normal(size=120_000)
        pairs = np.column_stack([x, 0.7 * x
                                 + 0.7 * rng.normal(size=120_000)])
        truth = float(np.corrcoef(pairs[:, 0], pairs[:, 1])[0, 1])
        manager = SessionManager(pairs,
                                 config=EarlConfig(sigma=0.05, seed=13))
        manager.submit("correlation")
        manager.submit("correlation", sigma=0.02, name="tight")
        results = manager.run()
        for result in results.values():
            assert abs(result.estimate - truth) < 0.12
        # the tighter bound cannot use fewer samples than the looser one
        assert results["tight"].n >= results["correlation"].n

    def test_exact_fallback_query(self, population):
        # sigma so strict SSABE concludes B*n >= N for this query
        manager = SessionManager(population[:2000],
                                 config=EarlConfig(sigma=0.05, seed=3))
        query = manager.submit("mean", sigma=0.001)
        results = manager.run()
        assert results["mean"].used_fallback
        assert results["mean"].estimate == pytest.approx(
            float(np.mean(population[:2000])))
        assert query.snapshots[0].final


class TestLifecycle:
    def test_cancel_one_query_mid_stream(self, population):
        cfg = EarlConfig(sigma=0.001, seed=11, B_override=20,
                         n_override=200, expansion_factor=1.5,
                         max_iterations=6)
        manager = SessionManager(population, config=cfg)
        q_mean = manager.submit("mean")
        q_median = manager.submit("median")
        for query, snapshot in manager.stream():
            if query is q_mean and len(q_mean.snapshots) == 1:
                q_mean.cancel()
        assert q_mean.cancelled and q_mean.result is None
        assert len(q_mean.snapshots) == 1
        assert q_median.result is not None
        assert len(q_median.snapshots) == 6

    def test_cancel_before_start_excluded_from_shared_sample(
            self, population):
        """A query withdrawn before streaming gets no pilot and must
        not count toward the broadcast bound or any round's target: the
        siblings' snapshots and the rows consumed are byte-identical to
        a manager that never saw it (regression: a cancelled query with
        a huge SSABE ask used to inflate every shared draw)."""
        cfg = EarlConfig(sigma=0.04, seed=33)

        def run(include_withdrawn):
            manager = SessionManager(population, config=cfg)
            manager.submit("mean")
            manager.submit("median")
            doomed = None
            if include_withdrawn:
                # Never-met σ and a deliberately huge pilot ask: if its
                # withdrawal leaked into the shared schedule, the first
                # round would draw 50k rows instead of the siblings'.
                doomed = manager.submit("p99", sigma=0.0001,
                                        B_override=100,
                                        n_override=50_000)
                doomed.cancel()
            results = manager.run()
            return manager, doomed, results

        manager_3q, doomed, results_3q = run(include_withdrawn=True)
        manager_2q, _, results_2q = run(include_withdrawn=False)

        # The withdrawn query never piloted: no SSABE, no snapshots.
        assert doomed.ssabe is None and doomed.B is None
        assert doomed.snapshots == [] and doomed.result is None
        assert results_3q.pop("p99") is None
        # Siblings byte-identical, and the shared sample drew the same
        # rows — the withdrawn ask bought nothing.
        assert results_3q == results_2q
        for q3, q2 in zip(manager_3q.queries, manager_2q.queries):
            assert q3.snapshots == q2.snapshots
        assert manager_3q.consumed == manager_2q.consumed

    def test_closing_stream_cancels_session(self, population):
        cfg = EarlConfig(sigma=0.001, seed=11, B_override=20,
                         n_override=200, max_iterations=6)
        manager = SessionManager(population, config=cfg)
        manager.submit("mean")
        manager.submit("median")
        gen = manager.stream()
        next(gen)
        gen.close()
        assert all(q.result is None for q in manager.queries)

    def test_streams_only_once(self, population):
        manager = SessionManager(population,
                                 config=EarlConfig(sigma=0.05, seed=1))
        manager.submit("mean")
        manager.run()
        with pytest.raises(RuntimeError):
            manager.run()

    def test_submit_after_start_rejected(self, population):
        manager = SessionManager(population,
                                 config=EarlConfig(sigma=0.05, seed=1))
        manager.submit("mean")
        manager.run()
        with pytest.raises(RuntimeError):
            manager.submit("median")

    def test_no_queries_rejected(self, population):
        manager = SessionManager(population)
        with pytest.raises(RuntimeError):
            manager.run()

    def test_scalar_statistic_rejected_over_pair_data(self):
        pairs = np.zeros((5000, 2))
        manager = SessionManager(pairs)
        manager.submit("correlation")  # row-wise: fine
        with pytest.raises(ValueError, match="scalar items"):
            manager.submit("mean")

    def test_duplicate_names(self, population):
        manager = SessionManager(population)
        first = manager.submit("mean")
        second = manager.submit("mean")  # auto-suffixed
        assert first.name == "mean" and second.name == "mean#2"
        with pytest.raises(ValueError):
            manager.submit("median", name="mean")
