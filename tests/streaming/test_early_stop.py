"""Early-stop and cancellation: a consumer walking away after k
snapshots leaves no running work behind, and the cost ledger holds only
the k completed iterations."""

import numpy as np
import pytest

from repro import EarlConfig, EarlJob, EarlSession
from repro.cluster import Cluster
from repro.streaming import StreamConsumer, stream
from repro.workloads import load_stand_in

#: Never-met bound + small starting sample => many iterations to cancel.
LOOP_CFG = dict(sigma=0.001, seed=77, B_override=20, n_override=200,
                expansion_factor=1.6, max_iterations=10)


@pytest.fixture
def population():
    return np.random.default_rng(4).lognormal(1.0, 1.0, 100_000)


def make_job(seed=9):
    cluster = Cluster(n_nodes=5, block_size=1 << 20, seed=seed)
    ds = load_stand_in(cluster, "/data/stop", logical_gb=5.0,
                       records=12_000, seed=seed + 1)
    return EarlJob(cluster, ds.path, statistic="mean",
                   config=EarlConfig(**LOOP_CFG))


class TestSessionEarlyStop:
    def test_closing_after_k_snapshots_matches_prefix(self, population):
        full = list(EarlSession(population, "mean",
                                config=EarlConfig(**LOOP_CFG)).stream())
        assert len(full) > 3
        gen = EarlSession(population, "mean",
                          config=EarlConfig(**LOOP_CFG)).stream()
        taken = [next(gen), next(gen)]
        gen.close()  # cancellation: GeneratorExit tears the run down
        assert taken == full[:2]

    def test_stream_wrapper_predicate_stops(self, population):
        session = EarlSession(population, "mean",
                              config=EarlConfig(**LOOP_CFG))
        seen = list(stream(session, stop_when=lambda s: s.iteration >= 2))
        assert len(seen) == 2
        assert not seen[-1].final


class TestJobCancellation:
    def test_cancel_after_k_iterations(self):
        # Reference run: every iteration's cost, to compare prefixes.
        full = list(make_job().stream())
        assert len(full) > 3, "config must produce a multi-iteration run"

        job = make_job()
        gen = job.stream()
        taken = [next(gen), next(gen)]
        gen.close()

        # 1. Clean teardown: the stop flag the persistent mappers poll
        #    is raised, so no task keeps running (§3.3 termination).
        assert job.last_channel is not None
        assert job.last_channel.stop_requested()
        # 2. No further sampling happened after the consumer stopped.
        assert job.last_sampler.sampled_count == taken[1].sample_size
        # 3. The cost ledger charges exactly the k completed iterations:
        #    the cancelled run's snapshots are byte-identical to the
        #    full run's first k, and the total stops there.
        assert taken == full[:2]
        assert taken[1].cost_total_seconds < full[-1].cost_total_seconds
        assert taken[1].cost_total_seconds == pytest.approx(
            taken[0].cost_total_seconds + taken[1].cost_delta_seconds)

    def test_stop_flag_also_raised_on_normal_completion(self):
        job = make_job()
        list(job.stream())
        assert job.last_channel.stop_requested()


class TestStreamConsumer:
    def test_max_snapshots_budget(self, population):
        consumer = StreamConsumer(max_snapshots=3)
        result = consumer.consume(
            EarlSession(population, "mean", config=EarlConfig(**LOOP_CFG)))
        assert result is None
        assert consumer.stopped_early
        assert len(consumer.snapshots) == 3
        assert consumer.result is None

    def test_stop_callable_from_callback(self, population):
        consumer = StreamConsumer(on_snapshot=lambda s: consumer.stop())
        result = consumer.consume(
            EarlSession(population, "mean", config=EarlConfig(**LOOP_CFG)))
        assert result is None and consumer.stopped_early
        assert len(consumer.snapshots) == 1

    def test_full_consume_returns_batch_result(self, population):
        cfg = EarlConfig(sigma=0.05, seed=5)
        batch = EarlSession(population, "mean", config=cfg).run()
        consumer = StreamConsumer()
        result = consumer.consume(EarlSession(population, "mean",
                                              config=cfg))
        assert not consumer.stopped_early
        assert result == batch
        assert consumer.snapshots[-1].final

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            StreamConsumer(max_snapshots=0)
        with pytest.raises(ValueError):
            list(stream(object(), max_snapshots=0))
