"""Early-stop and cancellation: a consumer walking away after k
snapshots leaves no running work behind, and the cost ledger holds only
the k completed iterations."""

import gc
import threading

import numpy as np
import pytest

from repro import EarlConfig, EarlJob, EarlSession
from repro.cluster import Cluster
from repro.exec import live_pool_executors
from repro.query import Query, agg
from repro.streaming import StreamConsumer, stream
from repro.workloads import load_stand_in

#: Never-met bound + small starting sample => many iterations to cancel.
LOOP_CFG = dict(sigma=0.001, seed=77, B_override=20, n_override=200,
                expansion_factor=1.6, max_iterations=10)


@pytest.fixture
def population():
    return np.random.default_rng(4).lognormal(1.0, 1.0, 100_000)


def make_job(seed=9):
    cluster = Cluster(n_nodes=5, block_size=1 << 20, seed=seed)
    ds = load_stand_in(cluster, "/data/stop", logical_gb=5.0,
                       records=12_000, seed=seed + 1)
    return EarlJob(cluster, ds.path, statistic="mean",
                   config=EarlConfig(**LOOP_CFG))


class TestSessionEarlyStop:
    def test_closing_after_k_snapshots_matches_prefix(self, population):
        full = list(EarlSession(population, "mean",
                                config=EarlConfig(**LOOP_CFG)).stream())
        assert len(full) > 3
        gen = EarlSession(population, "mean",
                          config=EarlConfig(**LOOP_CFG)).stream()
        taken = [next(gen), next(gen)]
        gen.close()  # cancellation: GeneratorExit tears the run down
        assert taken == full[:2]

    def test_stream_wrapper_predicate_stops(self, population):
        session = EarlSession(population, "mean",
                              config=EarlConfig(**LOOP_CFG))
        seen = list(stream(session, stop_when=lambda s: s.iteration >= 2))
        assert len(seen) == 2
        assert not seen[-1].final


class TestJobCancellation:
    def test_cancel_after_k_iterations(self):
        # Reference run: every iteration's cost, to compare prefixes.
        full = list(make_job().stream())
        assert len(full) > 3, "config must produce a multi-iteration run"

        job = make_job()
        gen = job.stream()
        taken = [next(gen), next(gen)]
        gen.close()

        # 1. Clean teardown: the stop flag the persistent mappers poll
        #    is raised, so no task keeps running (§3.3 termination).
        assert job.last_channel is not None
        assert job.last_channel.stop_requested()
        # 2. No further sampling happened after the consumer stopped.
        assert job.last_sampler.sampled_count == taken[1].sample_size
        # 3. The cost ledger charges exactly the k completed iterations:
        #    the cancelled run's snapshots are byte-identical to the
        #    full run's first k, and the total stops there.
        assert taken == full[:2]
        assert taken[1].cost_total_seconds < full[-1].cost_total_seconds
        assert taken[1].cost_total_seconds == pytest.approx(
            taken[0].cost_total_seconds + taken[1].cost_delta_seconds)

    def test_stop_flag_also_raised_on_normal_completion(self):
        job = make_job()
        list(job.stream())
        assert job.last_channel.stop_requested()


class TestStreamConsumer:
    def test_max_snapshots_budget(self, population):
        consumer = StreamConsumer(max_snapshots=3)
        result = consumer.consume(
            EarlSession(population, "mean", config=EarlConfig(**LOOP_CFG)))
        assert result is None
        assert consumer.stopped_early
        assert len(consumer.snapshots) == 3
        assert consumer.result is None

    def test_stop_callable_from_callback(self, population):
        consumer = StreamConsumer(on_snapshot=lambda s: consumer.stop())
        result = consumer.consume(
            EarlSession(population, "mean", config=EarlConfig(**LOOP_CFG)))
        assert result is None and consumer.stopped_early
        assert len(consumer.snapshots) == 1

    def test_full_consume_returns_batch_result(self, population):
        cfg = EarlConfig(sigma=0.05, seed=5)
        batch = EarlSession(population, "mean", config=cfg).run()
        consumer = StreamConsumer()
        result = consumer.consume(EarlSession(population, "mean",
                                              config=cfg))
        assert not consumer.stopped_early
        assert result == batch
        assert consumer.snapshots[-1].final

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            StreamConsumer(max_snapshots=0)
        with pytest.raises(ValueError):
            list(stream(object(), max_snapshots=0))


def grouped_query(executor, **overrides):
    """A grouped query whose bound is never met: it streams rounds
    until the consumer stops it (the pool-release scenarios)."""
    rng = np.random.default_rng(21)
    table = {"key": np.tile(["a", "b"], 3000),
             "value": rng.exponential(5.0, 6000)}
    cfg_kwargs = dict(sigma=0.0001, seed=31, B_override=10, n_override=60,
                      expansion_factor=1.5, max_iterations=8,
                      executor=executor, max_workers=2)
    cfg_kwargs.update(overrides)
    return Query([agg("mean", "value")], group_by="key").on(
        table, config=EarlConfig(**cfg_kwargs))


class TestPoolRelease:
    """A consumer that walks away from ``Query.stream()`` must not leak
    the executor's worker pool (regression: the suspended generator
    used to keep a process pool alive until interpreter exit)."""

    @pytest.fixture(autouse=True)
    def baseline(self):
        gc.collect()
        before = set(id(ex) for ex in live_pool_executors())
        yield
        gc.collect()
        leaked = [ex for ex in live_pool_executors()
                  if id(ex) not in before]
        assert leaked == []

    def test_early_break_under_processes_backend_closes_pool(self):
        gen = grouped_query("processes").stream()
        first = next(gen)
        assert not first.final
        assert len(live_pool_executors()) >= 1   # pool is live mid-stream
        gen.close()   # GeneratorExit runs the stream's teardown
        assert live_pool_executors() == []

    def test_abandoned_stream_is_released_by_gc(self):
        gen = grouped_query("threads").stream()
        next(gen)
        assert len(live_pool_executors()) >= 1
        del gen       # no explicit close: finalizer must tear down
        gc.collect()
        assert live_pool_executors() == []

    def test_cross_thread_cancel_releases_pool(self):
        # A generator may only be close()d by the thread driving it —
        # other threads use cancel(), and the driving thread's own
        # loop exit runs the teardown.
        query = grouped_query("threads")
        session = query.plan()
        query.last_session = session
        snapshots = []
        started = threading.Event()

        def drive():
            for snap in session.stream():
                snapshots.append(snap)
                started.set()

        thread = threading.Thread(target=drive)
        thread.start()
        assert started.wait(timeout=30)
        query.last_session.cancel()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert snapshots                      # it did stream
        assert not snapshots[-1].final        # ... and stopped early
        assert live_pool_executors() == []

    def test_query_stream_records_cancel_handle(self):
        query = grouped_query("serial")
        gen = query.stream()
        next(gen)
        assert query.last_session is not None
        query.last_session.cancel()
        assert list(gen) == []    # cooperative stop, no further rounds
        assert query.last_session.cancelled
