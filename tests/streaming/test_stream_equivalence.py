"""Streaming-equivalence matrix: draining ``stream()`` == batch ``run()``.

The tentpole contract of the progressive engines: for any fixed seed,
the final :class:`ProgressSnapshot` of a stream carries an
:class:`EarlResult` **field-for-field identical** to what the batch
``run()`` returns — across statistics (mean / median / correlation),
pre- and post-map samplers, and all three executor backends.
"""

import numpy as np
import pytest

from repro import EarlConfig, EarlJob, EarlSession
from repro.cluster import Cluster
from repro.workloads import load_stand_in

SEED = 1234
BACKENDS = ["serial", "threads", "processes"]


def lognormal(n=60_000, seed=0):
    return np.random.default_rng(seed).lognormal(0.5, 1.0, n)


def assert_results_identical(a, b):
    """Field-for-field equality of two EarlResults (floats exact)."""
    assert type(a) is type(b)
    for name in a.__dataclass_fields__:
        assert getattr(a, name) == getattr(b, name), \
            f"field {name!r} differs: {getattr(a, name)!r} " \
            f"!= {getattr(b, name)!r}"


def assert_final_snapshot_mirrors(final, result):
    """The final snapshot's own fields restate the batch result."""
    assert final.final
    assert final.estimate == result.estimate
    assert final.uncorrected_estimate == result.uncorrected_estimate
    assert final.error == result.error
    assert final.achieved == result.achieved
    assert final.sample_size == result.n
    assert final.population_size == result.population_size
    assert final.sample_fraction == result.sample_fraction
    assert final.statistic == result.statistic
    assert final.cost_total_seconds == result.simulated_seconds


class TestEarlSessionMatrix:
    @pytest.mark.parametrize("statistic", ["mean", "median"])
    @pytest.mark.parametrize("executor", BACKENDS)
    def test_final_snapshot_matches_batch(self, statistic, executor):
        data = lognormal()
        cfg = EarlConfig(sigma=0.04, seed=SEED, executor=executor,
                         max_workers=2)
        batch = EarlSession(data, statistic, config=cfg).run()
        snapshots = list(EarlSession(data, statistic,
                                     config=cfg).stream())
        final = snapshots[-1]
        assert final.result is not None
        assert_results_identical(final.result, batch)
        assert_final_snapshot_mirrors(final, batch)
        # one snapshot per expansion-loop iteration, prefix-consistent
        assert len(snapshots) == batch.num_iterations
        for snap, record in zip(snapshots, batch.iterations):
            assert snap.sample_size == record.sample_size
            assert snap.accuracy == record.accuracy

    @pytest.mark.parametrize("executor", BACKENDS)
    def test_correlation_final_snapshot_matches_batch(self, executor):
        rng = np.random.default_rng(3)
        x = rng.normal(size=40_000)
        pairs = np.column_stack([x, 0.8 * x
                                 + 0.6 * rng.normal(size=40_000)])
        cfg = EarlConfig(sigma=0.05, seed=SEED, executor=executor,
                         max_workers=2, B_override=25, n_override=400)
        batch = EarlSession(pairs, "correlation", config=cfg).run()
        snapshots = list(EarlSession(pairs, "correlation",
                                     config=cfg).stream())
        assert snapshots[-1].result is not None
        assert_results_identical(snapshots[-1].result, batch)
        truth = float(np.corrcoef(pairs[:, 0], pairs[:, 1])[0, 1])
        assert abs(batch.estimate - truth) < 0.15

    def test_exact_fallback_single_final_snapshot(self):
        data = lognormal(500)
        cfg = EarlConfig(sigma=0.05, seed=SEED)  # tiny N -> B*n >= N
        batch = EarlSession(data, "mean", config=cfg).run()
        assert batch.used_fallback
        snapshots = list(EarlSession(data, "mean", config=cfg).stream())
        assert len(snapshots) == 1
        assert snapshots[0].final and snapshots[0].iteration == 0
        assert_results_identical(snapshots[0].result, batch)


def make_job(*, statistic, sampler, executor, seed=SEED, **cfg):
    cluster = Cluster(n_nodes=5, block_size=1 << 20, seed=5)
    ds = load_stand_in(cluster, "/data/eq", logical_gb=5.0,
                       records=12_000, seed=6)
    return EarlJob(cluster, ds.path, statistic=statistic,
                   config=EarlConfig(sigma=0.05, seed=seed,
                                     sampler=sampler, executor=executor,
                                     max_workers=2, **cfg))


class TestEarlJobMatrix:
    @pytest.mark.parametrize("sampler", ["premap", "postmap"])
    @pytest.mark.parametrize("executor", BACKENDS)
    def test_final_snapshot_matches_batch(self, sampler, executor):
        batch = make_job(statistic="mean", sampler=sampler,
                         executor=executor).run()
        job = make_job(statistic="mean", sampler=sampler,
                       executor=executor)
        snapshots = list(job.stream())
        final = snapshots[-1]
        assert final.result is not None
        assert_results_identical(final.result, batch)
        assert_final_snapshot_mirrors(final, batch)
        if batch.used_fallback:  # SSABE chose the §3.1 exact path
            assert len(snapshots) == 1 and final.iteration == 0
        else:
            assert len(snapshots) == batch.num_iterations
            # per-iteration simulated cost is the snapshot delta
            for snap, record in zip(snapshots, batch.iterations):
                assert snap.cost_delta_seconds == record.simulated_seconds

    def test_postmap_expansion_loop_equivalence(self):
        """Force the expansion loop under post-map sampling (the matrix
        cell the SSABE pilot above may route to the exact fallback)."""
        overrides = dict(B_override=20, n_override=300,
                         expansion_factor=2.0)
        batch = make_job(statistic="mean", sampler="postmap",
                         executor="serial", **overrides).run()
        assert not batch.used_fallback
        job = make_job(statistic="mean", sampler="postmap",
                       executor="serial", **overrides)
        snapshots = list(job.stream())
        assert len(snapshots) == batch.num_iterations >= 1
        assert_results_identical(snapshots[-1].result, batch)

    def test_median_stream_equals_batch(self):
        batch = make_job(statistic="median", sampler="premap",
                         executor="serial").run()
        job = make_job(statistic="median", sampler="premap",
                       executor="serial")
        snapshots = list(job.stream())
        assert_results_identical(snapshots[-1].result, batch)

    def test_stream_results_identical_across_backends(self):
        finals = []
        for executor in BACKENDS:
            job = make_job(statistic="mean", sampler="premap",
                           executor=executor)
            finals.append(list(job.stream())[-1].result)
        assert_results_identical(finals[0], finals[1])
        assert_results_identical(finals[0], finals[2])
