"""Chaos building blocks: seeded schedules, the deterministic
:class:`FlakyMapper` decorator, and :class:`FailureInjector`
reproducibility — the same seed must replay the same faults."""

import json

import numpy as np
import pytest

from repro.chaos import (
    KIND_KILL_NODES,
    KIND_LOSS,
    KIND_SLOW_NODE,
    ChaosEvent,
    ChaosSchedule,
    FlakyMapper,
)
from repro.cluster import Cluster, FailureInjector
from repro.mapreduce import (
    FaultPolicy,
    JobClient,
    JobConf,
    Mapper,
    MeanReducer,
    ProjectionMapper,
    TaskFailedError,
)
from repro.mapreduce import counters as C

GEN = dict(rounds=12, loss_rate=0.4, kill_rate=0.3, slow_rate=0.2)


class TestScheduleGeneration:
    def test_same_seed_same_schedule(self):
        assert (ChaosSchedule.generate(11, **GEN)
                == ChaosSchedule.generate(11, **GEN))

    def test_different_seeds_differ(self):
        assert (ChaosSchedule.generate(1, **GEN)
                != ChaosSchedule.generate(2, **GEN))

    def test_round_trips_through_json(self):
        sched = ChaosSchedule.generate(5, keys=("a", "b"), **GEN)
        doc = json.loads(json.dumps(sched.to_dict()))
        assert ChaosSchedule.from_dict(doc) == sched

    def test_none_is_empty_and_falsy(self):
        assert not ChaosSchedule.none()
        assert len(ChaosSchedule.none()) == 0
        assert ChaosSchedule.none().events_at(0) == ()

    def test_events_pinned_to_their_rounds(self):
        sched = ChaosSchedule.generate(3, rounds=6, loss_rate=1.0)
        assert len(sched) == 6
        for at in range(6):
            events = sched.events_at(at)
            assert len(events) == 1 and events[0].at == at
        assert sched.events_at(6) == ()

    @pytest.mark.parametrize("bad", [
        dict(rounds=-1),
        dict(rounds=3, loss_rate=1.5),
        dict(rounds=3, kill_rate=-0.1),
        dict(rounds=3, max_fraction=0.0),
    ])
    def test_generate_rejects_bad_arguments(self, bad):
        with pytest.raises(ValueError):
            ChaosSchedule.generate(0, **{"rounds": 3, **bad})

    @pytest.mark.parametrize("bad", [
        dict(at=-1, kind=KIND_LOSS, fraction=0.5),
        dict(at=0, kind="meteor-strike"),
        dict(at=0, kind=KIND_LOSS, fraction=0.0),
        dict(at=0, kind=KIND_KILL_NODES, fraction=1.5),
        dict(at=0, kind=KIND_SLOW_NODE, factor=0.5),
    ])
    def test_event_validation(self, bad):
        with pytest.raises(ValueError):
            ChaosEvent(**bad)


@pytest.fixture
def loaded_cluster():
    cluster = Cluster(n_nodes=5, block_size=2048, replication=2, seed=3)
    values = np.random.default_rng(4).normal(50.0, 5.0, 3000)
    cluster.hdfs.write_lines("/in", [f"{v:.6f}" for v in values])
    return cluster


def mean_conf(mapper, policy=None):
    return JobConf(name="mean", input_path="/in", mapper=mapper,
                   reducer=MeanReducer(), seed=1, fault_policy=policy)


class TestFlakyMapper:
    def test_budgets_are_a_pure_function_of_seed(self):
        a = FlakyMapper(ProjectionMapper(), rate=0.3, seed=7)
        b = FlakyMapper(ProjectionMapper(), rate=0.3, seed=7)
        budgets = [a.budget(i) for i in range(64)]
        assert budgets == [b.budget(i) for i in range(64)]
        assert any(budgets)          # some tasks are flaky...
        assert not all(budgets)      # ...and some are not
        other = FlakyMapper(ProjectionMapper(), rate=0.3, seed=8)
        assert budgets != [other.budget(i) for i in range(64)]

    def test_explicit_budgets_override_the_coin(self):
        flaky = FlakyMapper(ProjectionMapper(), rate=1.0,
                            extra_attempts=5, fail_attempts={3: 0},
                            seed=0)
        assert flaky.budget(3) == 0
        assert flaky.budget(4) == 5

    def test_parallel_safety_inherited_from_inner(self):
        assert FlakyMapper(ProjectionMapper()).parallel_safe is True
        assert FlakyMapper(Mapper()).parallel_safe is False

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            FlakyMapper(ProjectionMapper(), rate=1.2)
        with pytest.raises(ValueError):
            FlakyMapper(ProjectionMapper(), extra_attempts=0)

    def test_zero_rate_is_transparent(self, loaded_cluster):
        clean = JobClient(loaded_cluster).run(
            mean_conf(ProjectionMapper()))
        wrapped = JobClient(loaded_cluster).run(
            mean_conf(FlakyMapper(ProjectionMapper(), rate=0.0)))
        assert wrapped.output == clean.output
        assert wrapped.simulated_seconds == clean.simulated_seconds

    def test_flaky_job_recovers_under_a_fault_policy(self, loaded_cluster):
        clean = JobClient(loaded_cluster).run(
            mean_conf(ProjectionMapper()))
        flaky = FlakyMapper(ProjectionMapper(), rate=0.5, seed=11)
        result = JobClient(loaded_cluster).run(
            mean_conf(flaky, FaultPolicy(max_task_retries=2)))
        assert result.output == clean.output
        assert result.counters[C.TASK_RETRIES] > 0

    def test_without_a_policy_injected_faults_propagate(
            self, loaded_cluster):
        flaky = FlakyMapper(ProjectionMapper(), fail_attempts={0: 1})
        with pytest.raises(TaskFailedError, match="chaos"):
            JobClient(loaded_cluster).run(mean_conf(flaky))

    def test_faulted_job_is_deterministic(self, loaded_cluster):
        def run():
            flaky = FlakyMapper(ProjectionMapper(), rate=0.5, seed=11)
            r = JobClient(loaded_cluster).run(
                mean_conf(flaky, FaultPolicy(max_task_retries=2)))
            return r.output, r.simulated_seconds, r.counters.as_dict()

        assert run() == run()


class TestFailureInjectorDeterminism:
    @staticmethod
    def twin():
        return Cluster(n_nodes=10, seed=5)

    def test_same_seed_fails_the_same_nodes(self):
        a, b = self.twin(), self.twin()
        failed_a = FailureInjector(a, seed=13).fail_random_nodes(3)
        failed_b = FailureInjector(b, seed=13).fail_random_nodes(3)
        assert failed_a == failed_b
        assert ([n.node_id for n in a.healthy_nodes]
                == [n.node_id for n in b.healthy_nodes])

    def test_fraction_failures_are_deterministic(self):
        a, b = self.twin(), self.twin()
        assert (FailureInjector(a, seed=2).fail_random_fraction(0.4)
                == FailureInjector(b, seed=2).fail_random_fraction(0.4))

    def test_different_seeds_pick_different_victims(self):
        picks = {tuple(FailureInjector(self.twin(),
                                       seed=s).fail_random_nodes(3))
                 for s in range(8)}
        assert len(picks) > 1
