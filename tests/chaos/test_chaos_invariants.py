"""Chaos-harness invariants (§3.4 degrade-don't-die, end to end):

* zero-fault runs are byte-identical to undriven runs on every
  executor backend, and no pool executor leaks;
* any single sample loss leaves bounds valid over the survivors;
* every query a SessionManager accepted finalizes exactly once;
* node kills mid-job salvage and finish instead of dying;
* the service keeps its event sequence contiguous (zero event loss)
  while a session degrades under it.

The long randomized sweeps are marked ``chaos`` and deselected from
the default tier-1 run (``make test-all`` includes them).
"""

import asyncio

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos import (
    KIND_KILL_NODES,
    KIND_LOSS,
    KIND_RECOVER,
    ChaosDriver,
    ChaosEvent,
    ChaosSchedule,
)
from repro.cluster import Cluster
from repro.core import EarlConfig, EarlJob, EarlSession
from repro.core.grouped import GroupedEarlSession, Measure
from repro.exec.executor import available_executors, live_pool_executors
from repro.service import STATE_DONE, ApproxQueryService, LocalClient
from repro.streaming import SessionManager
from repro.workloads import load_stand_in


@pytest.fixture(scope="module")
def data():
    return np.random.default_rng(7).lognormal(0.0, 1.0, 120_000)


@pytest.fixture(scope="module")
def grouped_table():
    rng = np.random.default_rng(8)
    keys = rng.choice(["a", "b", "c"], size=120_000, p=[0.6, 0.3, 0.1])
    vals = rng.lognormal(3.0, 1.0, 120_000)
    return keys, vals


def run(coro, timeout=60.0):
    # A chaos bug that hangs a session must fail the test, not CI.
    return asyncio.run(asyncio.wait_for(coro, timeout))


class TestZeroFaultByteIdentity:
    @pytest.mark.parametrize("backend", sorted(available_executors()))
    def test_empty_schedule_is_transparent(self, data, backend):
        cfg = EarlConfig(sigma=0.05, seed=3, executor=backend)
        report = ChaosDriver(ChaosSchedule.none()).run_session(
            EarlSession(data, "mean", config=cfg))
        reference = EarlSession(data, "mean", config=cfg).run()
        assert report.fired == [] and not report.degraded
        result = report.final.result
        assert result.estimate == reference.estimate
        assert result.n == reference.n
        assert not result.degraded and result.lost_fraction == 0.0
        # Driving through the harness leaks no worker pools.
        assert live_pool_executors() == []

    def test_backends_agree_on_the_answer(self, data):
        estimates = set()
        for backend in sorted(available_executors()):
            cfg = EarlConfig(sigma=0.05, seed=3, executor=backend)
            report = ChaosDriver().run_session(
                EarlSession(data, "mean", config=cfg))
            estimates.add(report.final.result.estimate)
        assert len(estimates) == 1
        assert live_pool_executors() == []


class TestLossInvariants:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(fraction=st.floats(0.05, 0.9),
           loss_at=st.integers(0, 2),
           seed=st.integers(0, 2**32 - 1))
    def test_any_single_loss_keeps_bounds_valid(self, data, fraction,
                                                loss_at, seed):
        sched = ChaosSchedule((ChaosEvent(
            at=loss_at, kind=KIND_LOSS, fraction=fraction, seed=seed),))
        report = ChaosDriver(sched).run_session(EarlSession(
            data, "mean", config=EarlConfig(sigma=0.02, seed=1)))
        final = report.final
        assert final.final
        result = final.result
        assert np.isfinite(result.estimate)
        if result.accuracy is not None:   # None on exact fallback
            assert (result.accuracy.ci_low <= result.estimate
                    <= result.accuracy.ci_high)
        if report.fired and report.degraded:
            assert 0.0 < result.lost_fraction < 1.0
            assert result.population_size < len(data)

    def test_chaotic_run_is_reproducible(self, data):
        sched = ChaosSchedule((ChaosEvent(
            at=1, kind=KIND_LOSS, fraction=0.4, seed=99),))

        def chaotic():
            return ChaosDriver(sched).run_session(EarlSession(
                data, "mean", config=EarlConfig(sigma=0.02, seed=1)))

        a, b = chaotic(), chaotic()
        assert a.final.to_dict() == b.final.to_dict()
        assert a.fired == b.fired
        assert a.degraded   # the comparison is not vacuous


class TestManagerChaos:
    def _manager(self, data):
        mgr = SessionManager(data, config=EarlConfig(sigma=0.015,
                                                     seed=1))
        mgr.submit("mean")
        mgr.submit("p90", sigma=0.06)
        return mgr

    def test_every_query_finalizes_exactly_once(self, data):
        sched = ChaosSchedule.generate(21, rounds=6, loss_rate=0.6,
                                       max_fraction=0.6)
        finals = {}
        mgr = self._manager(data)
        for query, snap in ChaosDriver(sched).drive(mgr.stream(),
                                                    loss_target=mgr):
            if snap.final:
                finals[query.name] = finals.get(query.name, 0) + 1
        # Zero result loss: nothing dropped, nothing duplicated.
        assert finals == {"mean": 1, "p90": 1}

    def test_run_manager_reports_per_query_results(self, data):
        sched = ChaosSchedule.generate(21, rounds=6, loss_rate=0.6,
                                       max_fraction=0.6)
        report = ChaosDriver(sched).run_manager(self._manager(data))
        assert set(report.results) == {"mean", "p90"}
        for snap in report.results.values():
            res = snap.result
            assert np.isfinite(res.estimate)
            assert (res.accuracy.ci_low <= res.estimate
                    <= res.accuracy.ci_high)

    def test_chaotic_manager_is_reproducible(self, data):
        sched = ChaosSchedule.generate(21, rounds=6, loss_rate=0.6,
                                       max_fraction=0.6)

        def estimates():
            report = ChaosDriver(sched).run_manager(self._manager(data))
            return {name: snap.result.estimate
                    for name, snap in report.results.items()}

        assert estimates() == estimates()


class TestGroupedChaos:
    def _run(self, grouped_table, sched):
        keys, vals = grouped_table
        session = GroupedEarlSession(keys, [Measure("m", "mean", vals)],
                                     config=EarlConfig(sigma=0.02,
                                                       seed=1))
        return ChaosDriver(sched).run_grouped(session)

    def test_keyed_loss_terminates_with_a_full_board(self, grouped_table):
        sched = ChaosSchedule((ChaosEvent(
            at=1, kind=KIND_LOSS, fraction=0.5, keys=("a",), seed=4),))
        report = self._run(grouped_table, sched)
        assert report.final.final
        assert report.final.result is not None
        assert set(report.final.result.groups) == {"a", "b", "c"}

    def test_chaotic_grouped_run_is_reproducible(self, grouped_table):
        sched = ChaosSchedule.generate(9, rounds=5, loss_rate=0.5,
                                       max_fraction=0.7, keys=("a",))
        a = self._run(grouped_table, sched)
        b = self._run(grouped_table, sched)
        assert a.final.to_dict() == b.final.to_dict()
        assert a.fired == b.fired


class TestClusterChaos:
    @staticmethod
    def make_cluster():
        cluster = Cluster(n_nodes=8, block_size=16 * 1024,
                          replication=2, seed=5)
        ds = load_stand_in(cluster, "/data/chaos", logical_gb=3.0,
                           records=9_000, seed=6)
        return cluster, ds

    def test_node_kills_mid_job_salvage_and_finish(self):
        cluster, ds = self.make_cluster()
        sched = ChaosSchedule((ChaosEvent(
            at=0, kind=KIND_KILL_NODES, fraction=0.25, seed=3),))
        job = EarlJob(cluster, ds.path, statistic="mean",
                      config=EarlConfig(sigma=0.05, seed=2))
        report = ChaosDriver(sched, cluster=cluster).run_job(job)
        assert report.fired and report.fired[0].kind == KIND_KILL_NODES
        assert len(cluster.healthy_nodes) == 6
        assert report.final is not None and report.final.final
        assert np.isfinite(report.final.result.estimate)

    def test_recover_event_heals_the_cluster(self):
        cluster, ds = self.make_cluster()
        sched = ChaosSchedule((
            ChaosEvent(at=0, kind=KIND_KILL_NODES, fraction=0.25,
                       seed=3),
            ChaosEvent(at=1, kind=KIND_RECOVER),
        ))
        job = EarlJob(cluster, ds.path, statistic="mean",
                      config=EarlConfig(sigma=0.05, seed=2))
        report = ChaosDriver(sched, cluster=cluster).run_job(job)
        assert report.final is not None and report.final.final
        if len(report.fired) == 2:   # the job ran past round 1
            assert len(cluster.healthy_nodes) == 8
            assert cluster.slow_factors == {}

    def test_loss_event_without_a_target_raises(self, data):
        sched = ChaosSchedule((ChaosEvent(
            at=0, kind=KIND_LOSS, fraction=0.5),))
        stream = iter([object(), object()])
        with pytest.raises(ValueError, match="loss target"):
            list(ChaosDriver(sched).drive(stream))

    def test_cluster_event_without_a_cluster_raises(self, data):
        sched = ChaosSchedule((ChaosEvent(
            at=0, kind=KIND_KILL_NODES, fraction=0.5),))
        with pytest.raises(ValueError, match="cluster"):
            list(ChaosDriver(sched).drive(iter([object()])))


class TestServiceChaos:
    def test_degrading_service_session_loses_no_events(self):
        async def scenario():
            rng = np.random.default_rng(3)
            table = {"k": rng.choice(["a", "b"], size=200_000),
                     "v": rng.lognormal(3.0, 1.0, 200_000)}
            service = ApproxQueryService(
                config=EarlConfig(sigma=0.01, n_override=500,
                                  B_override=30, expansion_factor=1.3,
                                  max_iterations=30),
                seed=42, event_capacity=2)
            service.register_table("t", table)
            await service.start()
            try:
                client = LocalClient(service)
                sid = await client.submit({
                    "kind": "query", "table": "t", "group_by": "k",
                    "select": [{"statistic": "mean", "column": "v"}]})
                events, after, lost = [], 0, False
                while True:
                    page = await client.poll(sid, after=after,
                                             wait=True, timeout=5.0)
                    events.extend(page.events)
                    if page.events:
                        after = page.events[-1].seq
                        if not lost:
                            service.store.get(sid).engine.report_loss(
                                0.3, seed=7)
                            lost = True
                        continue
                    if page.terminal:
                        return events, await client.status(sid)
            finally:
                await service.stop()

        events, status = run(scenario())
        assert status["state"] == STATE_DONE
        seqs = [e.seq for e in events]
        # Zero event loss: the consumed sequence is contiguous even
        # though the session degraded under tight backpressure.
        assert seqs == list(range(seqs[0], seqs[0] + len(seqs)))
        assert live_pool_executors() == []


@pytest.mark.chaos
class TestChaosSweep:
    """Randomized schedule sweeps (deselected from tier-1 by default)."""

    def test_generated_schedules_never_break_session_invariants(
            self, data):
        for seed in range(10):
            sched = ChaosSchedule.generate(seed, rounds=8,
                                           loss_rate=0.5,
                                           max_fraction=0.8)
            report = ChaosDriver(sched).run_session(EarlSession(
                data, "mean", config=EarlConfig(sigma=0.02, seed=seed)))
            final = report.final
            assert final.final and np.isfinite(final.result.estimate)
            acc = final.result.accuracy
            if acc is not None:   # None on the exact-fallback path
                assert (acc.ci_low <= final.result.estimate
                        <= acc.ci_high)
            assert final.result.degraded == (
                final.result.lost_fraction > 0.0)

    def test_generated_schedules_never_break_grouped_invariants(
            self, grouped_table):
        keys, vals = grouped_table
        for seed in range(6):
            sched = ChaosSchedule.generate(100 + seed, rounds=8,
                                           loss_rate=0.5,
                                           max_fraction=0.8)
            session = GroupedEarlSession(
                keys, [Measure("m", "mean", vals)],
                config=EarlConfig(sigma=0.02, seed=seed))
            report = ChaosDriver(sched).run_grouped(session)
            assert report.final.final
            board = report.final.result
            assert board is not None
            for by in board.groups.values():
                res = by["m"]
                assert np.isfinite(res.estimate)
                if res.accuracy is not None:
                    assert res.accuracy.ci_low <= res.accuracy.ci_high
