"""Kill-and-restart chaos: crash drills against the durable service.

The quick tests pin the harness wiring (kill-restart events belong to
the restart harness, not the engine driver; empty schedules fire no
kills).  The randomized sweep — marked ``chaos``, run by ``make
test-chaos`` — generates seeded kill schedules and asserts the
tentpole invariant: any number of service crashes at snapshot
boundaries leaves every session's collected event stream byte-identical
to an uninterrupted run.
"""

import asyncio

import numpy as np
import pytest

from repro.chaos import (
    KIND_KILL_RESTART,
    ChaosDriver,
    ChaosEvent,
    ChaosSchedule,
    run_with_restarts,
)
from repro.core import EarlConfig, EarlSession
from repro.service import ApproxQueryService

#: Forces multi-round streams (see tests/service/test_restart.py).
CFG = dict(sigma=0.01, B_override=15, n_override=100,
           expansion_factor=1.6, max_iterations=12)

SPECS = [
    {"kind": "statistic", "dataset": "pop", "statistic": "mean"},
    {"kind": "statistic", "dataset": "pop", "statistic": "std"},
]


def build(store):
    service = ApproxQueryService(
        config=EarlConfig(**CFG), seed=99, batch_window=5.0,
        event_capacity=8, store=store)
    service.register_dataset(
        "pop", np.random.default_rng(0).lognormal(1.0, 0.5, 20_000))
    return service


def run(coro, timeout=180.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


class TestHarnessWiring:
    def test_schedule_generates_kill_restart_events(self):
        sched = ChaosSchedule.generate(5, rounds=20, loss_rate=0.0,
                                       kill_restart_rate=1.0)
        assert len(sched) == 20
        assert all(e.kind == KIND_KILL_RESTART for e in sched.events)
        # Round-trips through JSON like every other event kind.
        assert ChaosSchedule.from_dict(sched.to_dict()) == sched

    def test_rate_is_validated(self):
        with pytest.raises(ValueError):
            ChaosSchedule.generate(0, rounds=4, kill_restart_rate=1.5)

    def test_engine_driver_rejects_kill_restart(self):
        data = np.random.default_rng(1).lognormal(0, 1, 50_000)
        sched = ChaosSchedule(
            (ChaosEvent(at=0, kind=KIND_KILL_RESTART),))
        session = EarlSession(data, "mean",
                              config=EarlConfig(sigma=0.05, seed=2))
        with pytest.raises(ValueError, match="run_with_restarts"):
            ChaosDriver(sched).run_session(session)

    def test_empty_schedule_means_zero_restarts(self, tmp_path):
        report = run(run_with_restarts(
            build, str(tmp_path / "store"), SPECS[:1],
            ChaosSchedule.none()))
        assert report.restarts == 0
        assert report.snapshots > 3
        (stream,) = report.events.values()
        assert stream   # the session ran to completion

    def test_single_scheduled_kill_is_byte_identical(self, tmp_path):
        reference = run(run_with_restarts(
            build, str(tmp_path / "ref"), SPECS, ChaosSchedule.none()))
        sched = ChaosSchedule(
            (ChaosEvent(at=3, kind=KIND_KILL_RESTART),))
        chaotic = run(run_with_restarts(
            build, str(tmp_path / "live"), SPECS, sched))
        assert chaotic.restarts == 1
        assert chaotic.events == reference.events


@pytest.mark.chaos
class TestKillRestartSweep:
    """Randomized seeded kill schedules (deselected from tier-1)."""

    def test_random_kill_schedules_never_change_a_byte(self, tmp_path):
        reference = run(run_with_restarts(
            build, str(tmp_path / "ref"), SPECS, ChaosSchedule.none()))
        assert reference.restarts == 0
        for seed in range(3):
            sched = ChaosSchedule.generate(
                seed, rounds=reference.snapshots, loss_rate=0.0,
                kill_restart_rate=0.4)
            report = run(run_with_restarts(
                build, str(tmp_path / f"run{seed}"), SPECS, sched))
            assert report.restarts == len(sched)
            assert report.events == reference.events
            assert report.snapshots == reference.snapshots
