"""Tests for deterministic hash partitioning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.partitioner import HashPartitioner, stable_hash

keys = st.one_of(st.integers(), st.text(max_size=20),
                 st.tuples(st.integers(), st.text(max_size=5)))


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("alpha") == stable_hash("alpha")

    def test_differs_across_keys(self):
        values = {stable_hash(f"key-{i}") for i in range(100)}
        assert len(values) > 90  # collisions possible but rare

    def test_32bit_range(self):
        for key in ["a", 123, (1, "x"), None]:
            h = stable_hash(key)
            assert 0 <= h <= 0xFFFFFFFF


class TestHashPartitioner:
    def test_partition_in_range(self):
        part = HashPartitioner(4)
        for i in range(200):
            assert 0 <= part.partition(f"k{i}") < 4

    def test_same_key_same_partition(self):
        part = HashPartitioner(8)
        assert part.partition("x") == part.partition("x")

    def test_roughly_uniform(self):
        part = HashPartitioner(4)
        counts = [0] * 4
        for i in range(4000):
            counts[part.partition(f"key-{i}")] += 1
        for c in counts:
            assert 800 < c < 1200

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)

    @given(key=keys, n=st.integers(min_value=1, max_value=16))
    @settings(max_examples=100, deadline=None)
    def test_property_in_range_and_stable(self, key, n):
        part = HashPartitioner(n)
        p = part.partition(key)
        assert 0 <= p < n
        assert part.partition(key) == p
