"""Tests for job output persistence to HDFS."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.mapreduce import (
    JobClient,
    JobConf,
    JobFailedError,
    MeanReducer,
    ProjectionMapper,
    SumReducer,
)


@pytest.fixture
def cluster() -> Cluster:
    return Cluster(n_nodes=4, block_size=1 << 18, seed=70)


@pytest.fixture
def loaded(cluster):
    lines = [f"k{i % 3}\t{float(i)}" for i in range(300)]
    cluster.hdfs.write_lines("/in", lines)
    return lines


class TestOutputPath:
    def test_output_written_as_tab_lines(self, cluster, loaded):
        conf = JobConf(name="sum", input_path="/in",
                       mapper=ProjectionMapper(), reducer=SumReducer(),
                       output_path="/out/sums", seed=1)
        result = JobClient(cluster).run(conf)
        lines = cluster.hdfs.read_lines("/out/sums")
        assert len(lines) == 3
        parsed = dict(line.split("\t") for line in lines)
        for key, value in result.output:
            assert float(parsed[key]) == pytest.approx(value)

    def test_existing_output_rejected(self, cluster, loaded):
        cluster.hdfs.write_text("/out/existing", "old data")
        conf = JobConf(name="mean", input_path="/in",
                       mapper=ProjectionMapper(), reducer=MeanReducer(),
                       output_path="/out/existing", seed=1)
        with pytest.raises(JobFailedError):
            JobClient(cluster).run(conf)
        # the old data survives the refusal
        assert cluster.hdfs.read_text("/out/existing") == "old data"

    def test_output_write_charged(self, cluster, loaded):
        conf = JobConf(name="mean", input_path="/in",
                       mapper=ProjectionMapper(), reducer=MeanReducer(),
                       output_path="/out/charged", seed=1)
        result = JobClient(cluster).run(conf)
        assert result.driver_ledger.seconds("disk_write") > 0

    def test_no_output_path_writes_nothing(self, cluster, loaded):
        before = set(cluster.hdfs.list_files())
        conf = JobConf(name="mean", input_path="/in",
                       mapper=ProjectionMapper(), reducer=MeanReducer(),
                       seed=1)
        JobClient(cluster).run(conf)
        assert set(cluster.hdfs.list_files()) == before

    def test_chained_jobs_via_hdfs(self, cluster, loaded):
        """Classic MR workflow: job 2 consumes job 1's output."""
        first = JobConf(name="sum", input_path="/in",
                        mapper=ProjectionMapper(), reducer=SumReducer(),
                        output_path="/stage1", seed=1)
        JobClient(cluster).run(first)
        second = JobConf(name="mean-of-sums", input_path="/stage1",
                         mapper=ProjectionMapper(), reducer=MeanReducer(),
                         seed=2)
        result = JobClient(cluster).run(second)
        sums = [sum(float(i) for i in range(300) if i % 3 == k)
                for k in range(3)]
        # stage-1 lines are "k<i>\t<sum>"; ProjectionMapper groups by key,
        # so each group holds one value and the global check is via mean
        grouped = result.grouped()
        assert len(grouped) == 3
        np.testing.assert_allclose(sorted(v[0] for v in grouped.values()),
                                   sorted(sums))
