"""Tests for the reducer→mapper feedback channel."""

import pytest

from repro.hdfs import HDFS
from repro.mapreduce.pipeline import FeedbackChannel


@pytest.fixture
def fs() -> HDFS:
    return HDFS(n_datanodes=3, block_size=1024, replication=2, seed=6)


@pytest.fixture
def channel(fs) -> FeedbackChannel:
    return FeedbackChannel(fs, "job_000042")


class TestFeedbackChannel:
    def test_empty_channel_has_no_error(self, channel):
        assert channel.average_error() is None
        assert channel.read_errors() == []

    def test_publish_and_average(self, channel):
        channel.publish_error(0, 1.0, 0.10)
        channel.publish_error(1, 1.0, 0.20)
        assert channel.average_error() == pytest.approx(0.15)

    def test_overwrite_keeps_latest(self, channel):
        channel.publish_error(0, 1.0, 0.5)
        channel.publish_error(0, 2.0, 0.1)
        entries = channel.read_errors()
        assert entries == [(2.0, 0.1)]

    def test_since_filters_stale_entries(self, channel):
        channel.publish_error(0, 1.0, 0.5)
        channel.publish_error(1, 3.0, 0.1)
        assert channel.read_errors(since=2.0) == [(3.0, 0.1)]
        assert channel.average_error(since=2.0) == pytest.approx(0.1)
        assert channel.average_error(since=5.0) is None

    def test_negative_error_rejected(self, channel):
        with pytest.raises(ValueError):
            channel.publish_error(0, 1.0, -0.1)

    def test_stop_signal(self, channel):
        assert not channel.stop_requested()
        channel.signal_stop()
        assert channel.stop_requested()

    def test_channels_isolated_by_job(self, fs):
        a = FeedbackChannel(fs, "job_a")
        b = FeedbackChannel(fs, "job_b")
        a.publish_error(0, 1.0, 0.3)
        assert b.average_error() is None

    def test_cleanup_removes_files(self, fs, channel):
        channel.publish_error(0, 1.0, 0.3)
        channel.signal_stop()
        channel.cleanup()
        assert channel.average_error() is None
        assert not channel.stop_requested()

    def test_roundtrip_precision(self, channel):
        channel.publish_error(0, 1.23456789, 0.000123456789)
        (ts, err), = channel.read_errors()
        assert ts == pytest.approx(1.23456789, rel=1e-12)
        assert err == pytest.approx(0.000123456789, rel=1e-12)
