"""Tests for the FaultPolicy recovery layer of the MapReduce engine."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.mapreduce import (
    FaultPolicy,
    JobClient,
    JobConf,
    JobFailedError,
    Mapper,
    MeanReducer,
    ProjectionMapper,
    SumReducer,
    TaskFailedError,
)
from repro.mapreduce import counters as C
from repro.mapreduce.job import ON_UNAVAILABLE_SKIP


class FlakyMapper(Mapper):
    """Projection mapper that fails the first ``fail_attempts[i]``
    attempts of map task ``i`` (deterministic fault injection)."""

    parallel_safe = True

    def __init__(self, fail_attempts=None):
        self.fail_attempts = dict(fail_attempts or {})

    def map(self, key, value, ctx):
        index = int(ctx.task_id.split("-", 1)[1])
        if ctx.attempt < self.fail_attempts.get(index, 0):
            raise TaskFailedError(
                f"injected failure: {ctx.task_id} attempt {ctx.attempt}")
        yield None, float(value)


@pytest.fixture
def cluster() -> Cluster:
    return Cluster(n_nodes=5, block_size=2048, replication=2, seed=3)


@pytest.fixture
def loaded(cluster):
    values = np.random.default_rng(4).normal(50.0, 5.0, 3000)
    lines = [f"{v:.6f}" for v in values]
    cluster.hdfs.write_lines("/in", lines)
    return lines


def mean_conf(mapper, policy=None, seed=1, **kwargs):
    return JobConf(name="mean", input_path="/in", mapper=mapper,
                   reducer=MeanReducer(), seed=seed, fault_policy=policy,
                   **kwargs)


class TestRetries:
    def test_retry_recovers_flaky_tasks(self, cluster, loaded):
        clean = JobClient(cluster).run(mean_conf(FlakyMapper()))
        policy = FaultPolicy(max_task_retries=3)
        result = JobClient(cluster).run(
            mean_conf(FlakyMapper({0: 2, 2: 1}), policy))
        assert result.output == clean.output
        assert result.counters[C.TASK_RETRIES] == 3
        assert result.counters[C.FAILED_TASKS] == 3
        assert result.input_fraction == 1.0
        # wasted attempts and backoff waits are charged, not free
        assert result.breakdown["startup"] > clean.breakdown["startup"]

    def test_retries_exhausted_fails_job(self, cluster, loaded):
        policy = FaultPolicy(max_task_retries=2)
        with pytest.raises(JobFailedError, match="failed after 3 attempts"):
            JobClient(cluster).run(mean_conf(FlakyMapper({1: 99}), policy))

    def test_no_policy_propagates_first_failure(self, cluster, loaded):
        with pytest.raises(TaskFailedError):
            JobClient(cluster).run(mean_conf(FlakyMapper({1: 1})))

    def test_faulted_run_is_deterministic(self, cluster, loaded):
        policy = FaultPolicy(max_task_retries=3)

        def run():
            r = JobClient(cluster).run(
                mean_conf(FlakyMapper({0: 2, 2: 1}), policy))
            return r.output, r.simulated_seconds, r.breakdown

        assert run() == run()

    def test_backoff_schedule_is_capped(self):
        policy = FaultPolicy(max_task_retries=8, retry_backoff_seconds=2.0,
                             backoff_factor=3.0, max_backoff_seconds=10.0)
        assert policy.backoff(0) == 2.0
        assert policy.backoff(1) == 6.0
        assert policy.backoff(2) == 10.0
        assert policy.backoff(7) == 10.0


class TestByteIdentity:
    def test_disabled_policy_is_byte_identical(self, cluster, loaded):
        def run(policy):
            conf = JobConf(name="mean", input_path="/in",
                           mapper=ProjectionMapper(), reducer=MeanReducer(),
                           seed=9, fault_policy=policy)
            r = JobClient(cluster).run(conf)
            return r.output, r.simulated_seconds, r.breakdown, \
                r.counters.as_dict()

        baseline = run(None)
        assert run(FaultPolicy()) == baseline
        # enabled policy with zero faults firing is also identical
        assert run(FaultPolicy.resilient()) == baseline

    def test_enabled_policy_zero_faults_grouped(self, cluster):
        lines = [f"k{i % 7}\t{float(i)}" for i in range(700)]
        cluster.hdfs.write_lines("/keyed", lines)

        def run(policy):
            conf = JobConf(name="sum", input_path="/keyed",
                           mapper=ProjectionMapper(), reducer=SumReducer(),
                           n_reducers=3, seed=2, fault_policy=policy)
            r = JobClient(cluster).run(conf)
            return r.output, r.simulated_seconds

        assert run(FaultPolicy(max_task_retries=5, blacklist_after=1,
                               speculative=True)) == run(None)


class TestBlacklisting:
    def test_repeated_failures_blacklist_a_node(self, cluster, loaded):
        policy = FaultPolicy(max_task_retries=4, blacklist_after=3)
        client = JobClient(cluster)
        result = client.run(mean_conf(FlakyMapper({0: 3}), policy))
        assert result.counters[C.BLACKLISTED_NODES] == 1
        assert len(client.blacklisted_nodes) == 1
        # the blacklisted machine stops contributing slots
        blacklisted = next(iter(client.blacklisted_nodes))
        assert client._slots_excluding(client.blacklisted_nodes,
                                       reduce_side=False) \
            < cluster.total_map_slots
        assert blacklisted in {n.node_id for n in cluster.nodes}

    def test_blacklist_never_empties_the_cluster(self, cluster, loaded):
        policy = FaultPolicy(max_task_retries=4, blacklist_after=1)
        client = JobClient(cluster)
        client.blacklisted_nodes = {n.node_id for n in cluster.nodes}
        result = client.run(mean_conf(FlakyMapper(), policy))
        assert result.simulated_seconds > 0


class TestSpeculation:
    def test_speculative_execution_caps_stragglers(self, cluster, loaded):
        cluster.set_slow_node("node-1", 8.0)
        slow = JobClient(cluster).run(
            mean_conf(FlakyMapper(), FaultPolicy(max_task_retries=1)))
        spec = JobClient(cluster).run(
            mean_conf(FlakyMapper(),
                      FaultPolicy(max_task_retries=1, speculative=True)))
        assert spec.output == slow.output
        assert spec.counters[C.SPECULATIVE_TASKS] >= 1
        assert spec.simulated_seconds < slow.simulated_seconds
        # the duplicate attempts are charged to the breakdown
        assert spec.breakdown["startup"] > slow.breakdown["startup"]

    def test_recover_clears_slow_factor(self, cluster):
        cluster.set_slow_node("node-1", 4.0)
        cluster.recover_node("node-1")
        assert cluster.slow_factors == {}


class TestSalvage:
    def _lossy_env(self):
        cluster = Cluster(n_nodes=4, block_size=512, replication=1, seed=11)
        values = np.random.default_rng(12).normal(50.0, 5.0, 4000)
        cluster.hdfs.write_lines("/in", [f"{v:.6f}" for v in values])
        # replication=1: losing one machine loses ~1/4 of the blocks,
        # so some splits lose their over-read tail mid-task.
        cluster.fail_node("node-2")
        return cluster

    def test_salvage_keeps_partial_splits(self):
        cluster = self._lossy_env()
        skip = JobClient(cluster).run(mean_conf(
            FlakyMapper(), None, on_unavailable=ON_UNAVAILABLE_SKIP))
        cluster2 = self._lossy_env()
        salvage = JobClient(cluster2).run(mean_conf(
            FlakyMapper(), FaultPolicy(salvage_partial_splits=True),
            on_unavailable=ON_UNAVAILABLE_SKIP))
        assert salvage.counters[C.SALVAGED_SPLITS] >= 1
        # salvaged prefixes recover records the skip policy threw away
        assert salvage.counters[C.MAP_OUTPUT_RECORDS] \
            > skip.counters[C.MAP_OUTPUT_RECORDS]
        assert salvage.input_fraction > skip.input_fraction
        assert 0.0 < salvage.input_fraction < 1.0

    def test_salvage_disabled_matches_skip(self):
        cluster = self._lossy_env()
        skip = JobClient(cluster).run(mean_conf(
            FlakyMapper(), None, on_unavailable=ON_UNAVAILABLE_SKIP))
        cluster2 = self._lossy_env()
        off = JobClient(cluster2).run(mean_conf(
            FlakyMapper(), FaultPolicy(max_task_retries=2),
            on_unavailable=ON_UNAVAILABLE_SKIP))
        assert off.output == skip.output
        assert off.input_fraction == skip.input_fraction


class TestReplicaFailover:
    def test_failover_reads_are_counted(self):
        cluster = Cluster(n_nodes=4, block_size=512, replication=2, seed=11)
        values = np.random.default_rng(12).normal(50.0, 5.0, 2000)
        cluster.hdfs.write_lines("/in", [f"{v:.6f}" for v in values])
        cluster.fail_node("node-1")
        assert cluster.hdfs.available_fraction("/in") == 1.0
        result = JobClient(cluster).run(mean_conf(FlakyMapper()))
        assert result.input_fraction == 1.0
        assert cluster.hdfs.failover_reads >= 1
