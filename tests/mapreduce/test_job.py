"""Tests for JobConf / JobResult plumbing."""

import pytest

from repro.mapreduce.counters import Counters
from repro.mapreduce.errors import InvalidJobError
from repro.mapreduce.job import JobConf, JobResult
from repro.mapreduce.mapper import ProjectionMapper
from repro.mapreduce.reducer import MeanReducer


def make_conf(**kwargs) -> JobConf:
    base = dict(name="j", input_path="/in", mapper=ProjectionMapper(),
                reducer=MeanReducer())
    base.update(kwargs)
    return JobConf(**base)


class TestJobConf:
    def test_job_ids_unique(self):
        conf = make_conf()
        assert conf.new_job_id() != conf.new_job_id()

    def test_invalid_reducers(self):
        with pytest.raises(InvalidJobError):
            make_conf(n_reducers=0)

    def test_invalid_cpu_factor(self):
        with pytest.raises(InvalidJobError):
            make_conf(cpu_factor=0.0)

    def test_invalid_policy(self):
        with pytest.raises(InvalidJobError):
            make_conf(on_unavailable="retry-forever")

    def test_defaults(self):
        conf = make_conf()
        assert conf.combiner is None
        assert conf.output_path is None
        assert conf.local_mode is False


def make_result(output) -> JobResult:
    return JobResult(job_id="job_x", output=output, counters=Counters(),
                     simulated_seconds=1.0, map_tasks=1, reduce_tasks=1,
                     skipped_splits=0, input_fraction=1.0)


class TestJobResult:
    def test_grouped(self):
        result = make_result([("a", 1), ("b", 2), ("a", 3)])
        assert result.grouped() == {"a": [1, 3], "b": [2]}

    def test_single_value(self):
        assert make_result([("k", 42)]).single_value() == 42

    def test_single_value_rejects_multiple(self):
        with pytest.raises(ValueError):
            make_result([("a", 1), ("b", 2)]).single_value()

    def test_single_value_rejects_empty(self):
        with pytest.raises(ValueError):
            make_result([]).single_value()
