"""Tests for shared engine types."""

import numpy as np

from repro.mapreduce.types import estimate_pair_bytes


class TestEstimatePairBytes:
    def test_numeric_pair(self):
        assert estimate_pair_bytes(1, 2.0) == 8 + 8 + 2

    def test_string_scales_with_length(self):
        short = estimate_pair_bytes("k", "ab")
        long = estimate_pair_bytes("k", "ab" * 50)
        assert long > short

    def test_none_and_bool(self):
        assert estimate_pair_bytes(None, True) == 1 + 1 + 2

    def test_nested_containers(self):
        size = estimate_pair_bytes("k", [1.0, 2.0, 3.0])
        assert size >= 24

    def test_ndarray_uses_nbytes(self):
        arr = np.zeros(10)
        assert estimate_pair_bytes("k", arr) == 1 + 80 + 2

    def test_dict(self):
        assert estimate_pair_bytes("k", {"a": 1}) > 8

    def test_unknown_object_default(self):
        class Thing:
            pass
        assert estimate_pair_bytes("k", Thing()) == 1 + 16 + 2

    def test_always_positive(self):
        for obj in [0, "", [], {}, None, b""]:
            assert estimate_pair_bytes(obj, obj) > 0
