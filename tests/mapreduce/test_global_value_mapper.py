"""Tests for GlobalValueMapper (whole-dataset statistics)."""

import numpy as np
import pytest

from repro.cluster.costmodel import CostLedger
from repro.mapreduce import GlobalValueMapper
from repro.mapreduce.counters import Counters
from repro.mapreduce.types import TaskContext


def make_ctx() -> TaskContext:
    return TaskContext(ledger=CostLedger(), counters=Counters(),
                       rng=np.random.default_rng(0))


class TestGlobalValueMapper:
    def test_keyed_line_drops_key(self):
        out = list(GlobalValueMapper().map(0, "user9\t3.5", make_ctx()))
        assert out == [("all", 3.5)]

    def test_bare_value(self):
        out = list(GlobalValueMapper().map(0, "7.25", make_ctx()))
        assert out == [("all", 7.25)]

    def test_custom_constant_key(self):
        mapper = GlobalValueMapper(constant_key="global")
        out = list(mapper.map(0, "k\t1.0", make_ctx()))
        assert out == [("global", 1.0)]

    def test_custom_delimiter(self):
        mapper = GlobalValueMapper(delimiter="|")
        out = list(mapper.map(0, "grp|2.5", make_ctx()))
        assert out == [("all", 2.5)]

    def test_empty_line(self):
        assert list(GlobalValueMapper().map(0, "", make_ctx())) == []

    def test_all_values_reach_single_group(self):
        mapper = GlobalValueMapper()
        ctx = make_ctx()
        pairs = []
        for i, line in enumerate(["a\t1.0", "b\t2.0", "3.0"]):
            pairs.extend(mapper.map(i, line, ctx))
        assert [k for k, _ in pairs] == ["all"] * 3
        assert [v for _, v in pairs] == [1.0, 2.0, 3.0]
