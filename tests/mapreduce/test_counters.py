"""Tests for job counters."""

import pytest

from repro.mapreduce.counters import Counters


class TestCounters:
    def test_default_zero(self):
        assert Counters().get("ANYTHING") == 0

    def test_increment(self):
        c = Counters()
        c.increment("X")
        c.increment("X", 4)
        assert c["X"] == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counters().increment("X", -1)

    def test_merge(self):
        a, b = Counters(), Counters()
        a.increment("X", 2)
        b.increment("X", 3)
        b.increment("Y", 1)
        a.merge(b)
        assert a["X"] == 5
        assert a["Y"] == 1
        assert b["X"] == 3

    def test_as_dict_is_copy(self):
        c = Counters()
        c.increment("X")
        d = c.as_dict()
        d["X"] = 100
        assert c["X"] == 1
