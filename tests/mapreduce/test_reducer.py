"""Tests for the reducer APIs (classic + incremental protocol)."""

import numpy as np
import pytest

from repro.cluster.costmodel import CostLedger
from repro.mapreduce.counters import Counters
from repro.mapreduce.reducer import (
    IdentityReducer,
    IncrementalReducer,
    MeanReducer,
    SumReducer,
)
from repro.mapreduce.types import TaskContext


def make_ctx(**config) -> TaskContext:
    return TaskContext(ledger=CostLedger(), counters=Counters(),
                       rng=np.random.default_rng(0), config=config)


class TestSumReducer:
    def test_initialize_and_finalize(self):
        r = SumReducer()
        assert r.finalize(r.initialize([1.0, 2.0, 3.0])) == 6.0

    def test_update_with_value_and_state(self):
        r = SumReducer()
        state = r.initialize([1.0])
        state = r.update(state, 2.0)
        state = r.update(state, r.initialize([3.0, 4.0]))
        assert r.finalize(state) == 10.0

    def test_correct_scales_by_inverse_p(self):
        assert SumReducer().correct(50.0, 0.5) == 100.0

    def test_correct_validates_p(self):
        with pytest.raises(ValueError):
            SumReducer().correct(50.0, 0.0)
        with pytest.raises(ValueError):
            SumReducer().correct(50.0, 1.5)

    def test_reduce_applies_correction_from_context(self):
        ctx = make_ctx(sample_fraction=0.25)
        out = list(SumReducer().reduce("k", [1.0, 2.0], ctx))
        assert out == [("k", 12.0)]

    def test_reduce_no_correction_at_full_data(self):
        ctx = make_ctx(sample_fraction=1.0)
        out = list(SumReducer().reduce("k", [1.0, 2.0], ctx))
        assert out == [("k", 3.0)]


class TestMeanReducer:
    def test_mean(self):
        r = MeanReducer()
        assert r.finalize(r.initialize([2.0, 4.0, 6.0])) == 4.0

    def test_state_merge(self):
        r = MeanReducer()
        state = r.initialize([2.0, 4.0])
        state = r.update(state, r.initialize([6.0]))
        assert r.finalize(state) == 4.0

    def test_update_with_scalar(self):
        r = MeanReducer()
        state = r.initialize([2.0])
        state = r.update(state, 4.0)
        assert r.finalize(state) == 3.0

    def test_mean_needs_no_correction(self):
        assert MeanReducer().correct(5.0, 0.1) == 5.0

    def test_empty_group_rejected(self):
        r = MeanReducer()
        with pytest.raises(ValueError):
            r.finalize(r.initialize([]))


class TestIdentityReducer:
    def test_passthrough(self):
        ctx = make_ctx()
        out = list(IdentityReducer().reduce("k", [1, 2, 3], ctx))
        assert out == [("k", 1), ("k", 2), ("k", 3)]


class TestIncrementalProtocol:
    def test_reduce_derived_from_protocol(self):
        class MaxReducer(IncrementalReducer):
            def initialize(self, values):
                return max(values)

            def update(self, state, new_input):
                return max(state, new_input)

            def finalize(self, state):
                return state

        ctx = make_ctx()
        out = list(MaxReducer().reduce("k", [3.0, 9.0, 1.0], ctx))
        assert out == [("k", 9.0)]

    def test_abstract_methods_raise(self):
        r = IncrementalReducer()
        with pytest.raises(NotImplementedError):
            r.initialize([1])
        with pytest.raises(NotImplementedError):
            r.update(None, 1)
        with pytest.raises(NotImplementedError):
            r.finalize(None)

    def test_default_correct_is_identity(self):
        class Noop(IncrementalReducer):
            def initialize(self, values):
                return 0.0

            def update(self, state, new_input):
                return state

            def finalize(self, state):
                return state

        assert Noop().correct(7.0, 0.2) == 7.0
