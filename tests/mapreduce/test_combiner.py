"""Tests for map-side combining."""

import numpy as np
import pytest

from repro.cluster.costmodel import CostLedger
from repro.mapreduce.combiner import run_combiner
from repro.mapreduce.counters import Counters
from repro.mapreduce.reducer import Reducer, SumReducer
from repro.mapreduce.types import TaskContext


def make_ctx() -> TaskContext:
    return TaskContext(ledger=CostLedger(), counters=Counters(),
                       rng=np.random.default_rng(0))


class TestRunCombiner:
    def test_sums_per_key(self):
        pairs = [("a", 1.0), ("b", 2.0), ("a", 3.0), ("b", 4.0)]
        out = run_combiner(SumReducer(), pairs, make_ctx())
        assert out == [("a", 4.0), ("b", 6.0)]

    def test_preserves_first_seen_key_order(self):
        pairs = [("z", 1.0), ("a", 1.0), ("z", 1.0)]
        out = run_combiner(SumReducer(), pairs, make_ctx())
        assert [k for k, _ in out] == ["z", "a"]

    def test_empty_input(self):
        assert run_combiner(SumReducer(), [], make_ctx()) == []

    def test_key_changing_combiner_rejected(self):
        class Renamer(Reducer):
            def reduce(self, key, values, ctx):
                yield "other", sum(values)

        with pytest.raises(ValueError):
            run_combiner(Renamer(), [("a", 1.0)], make_ctx())

    def test_combiner_shrinks_pair_count(self):
        pairs = [("k", float(i)) for i in range(100)]
        out = run_combiner(SumReducer(), pairs, make_ctx())
        assert len(out) == 1
        assert out[0][1] == sum(range(100))
