"""Tests for the mapper APIs."""

import numpy as np
import pytest

from repro.cluster.costmodel import CostLedger
from repro.mapreduce.counters import Counters
from repro.mapreduce.mapper import IdentityMapper, Mapper, ProjectionMapper
from repro.mapreduce.types import TaskContext


def make_ctx() -> TaskContext:
    return TaskContext(ledger=CostLedger(), counters=Counters(),
                       rng=np.random.default_rng(0))


class TestIdentityMapper:
    def test_passthrough(self):
        out = list(IdentityMapper().map("k", "v", make_ctx()))
        assert out == [("k", "v")]


class TestProjectionMapper:
    def test_bare_number_uses_constant_key(self):
        out = list(ProjectionMapper().map(0, "42.5", make_ctx()))
        assert out == [("all", 42.5)]

    def test_keyed_line(self):
        out = list(ProjectionMapper().map(0, "user1\t3.25", make_ctx()))
        assert out == [("user1", 3.25)]

    def test_custom_delimiter(self):
        mapper = ProjectionMapper(delimiter="|")
        out = list(mapper.map(0, "g|7.0", make_ctx()))
        assert out == [("g", 7.0)]

    def test_custom_constant_key(self):
        mapper = ProjectionMapper(constant_key="total")
        out = list(mapper.map(0, "1.0", make_ctx()))
        assert out == [("total", 1.0)]

    def test_empty_line_emits_nothing(self):
        assert list(ProjectionMapper().map(0, "", make_ctx())) == []

    def test_non_numeric_payload_raises(self):
        with pytest.raises(ValueError):
            list(ProjectionMapper().map(0, "k\tnot-a-number", make_ctx()))


class TestMapperBase:
    def test_map_is_abstract(self):
        with pytest.raises(NotImplementedError):
            list(Mapper().map("k", "v", make_ctx()))

    def test_cleanup_default_empty(self):
        assert list(Mapper().cleanup(make_ctx())) == []
