"""Tests for the MapReduce execution engine."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.mapreduce import (
    JobClient,
    JobConf,
    JobFailedError,
    MeanReducer,
    ProjectionMapper,
    SumReducer,
)
from repro.mapreduce import counters as C
from repro.mapreduce.job import ON_UNAVAILABLE_SKIP


@pytest.fixture
def cluster() -> Cluster:
    return Cluster(n_nodes=5, block_size=2048, replication=2, seed=3)


@pytest.fixture
def values():
    return np.random.default_rng(4).normal(50.0, 5.0, 3000)


@pytest.fixture
def loaded(cluster, values):
    lines = [f"{v:.6f}" for v in values]
    cluster.hdfs.write_lines("/in", lines)
    return lines


class TestBasicExecution:
    def test_mean_job_exact(self, cluster, values, loaded):
        conf = JobConf(name="mean", input_path="/in",
                       mapper=ProjectionMapper(), reducer=MeanReducer(),
                       seed=1)
        result = JobClient(cluster).run(conf)
        parsed = [float(l) for l in loaded]
        assert result.single_value() == pytest.approx(np.mean(parsed))

    def test_counters(self, cluster, loaded):
        conf = JobConf(name="mean", input_path="/in",
                       mapper=ProjectionMapper(), reducer=MeanReducer(),
                       seed=1)
        result = JobClient(cluster).run(conf)
        assert result.counters[C.MAP_INPUT_RECORDS] == len(loaded)
        assert result.counters[C.MAP_OUTPUT_RECORDS] == len(loaded)
        assert result.counters[C.REDUCE_INPUT_GROUPS] == 1
        assert result.counters[C.REDUCE_OUTPUT_RECORDS] == 1

    def test_deterministic_across_runs(self, cluster, loaded):
        def run():
            conf = JobConf(name="mean", input_path="/in",
                           mapper=ProjectionMapper(), reducer=MeanReducer(),
                           seed=9)
            return JobClient(cluster).run(conf).output
        assert run() == run()

    def test_multiple_reducers_partition_keys(self, cluster):
        lines = [f"k{i % 7}\t{float(i)}" for i in range(700)]
        cluster.hdfs.write_lines("/keyed", lines)
        conf = JobConf(name="sum", input_path="/keyed",
                       mapper=ProjectionMapper(), reducer=SumReducer(),
                       n_reducers=3, seed=2)
        result = JobClient(cluster).run(conf)
        grouped = result.grouped()
        assert len(grouped) == 7
        for key, sums in grouped.items():
            i0 = int(key[1:])
            expected = sum(float(i) for i in range(700) if i % 7 == i0)
            assert sums[0] == pytest.approx(expected)

    def test_combiner_reduces_shuffle(self, cluster, loaded):
        no_comb = JobConf(name="sum", input_path="/in",
                          mapper=ProjectionMapper(), reducer=SumReducer(),
                          seed=1)
        with_comb = JobConf(name="sum", input_path="/in",
                            mapper=ProjectionMapper(), reducer=SumReducer(),
                            combiner=SumReducer(), seed=1)
        client = JobClient(cluster)
        r1 = client.run(no_comb)
        r2 = client.run(with_comb)
        assert r1.single_value() == pytest.approx(r2.single_value())
        assert r2.breakdown["network"] < r1.breakdown["network"]


class TestCostAccounting:
    def test_simulated_time_positive(self, cluster, loaded):
        conf = JobConf(name="mean", input_path="/in",
                       mapper=ProjectionMapper(), reducer=MeanReducer(),
                       seed=1)
        result = JobClient(cluster).run(conf)
        assert result.simulated_seconds > 0
        assert result.breakdown["startup"] > 0

    def test_local_mode_skips_startup(self, cluster, loaded):
        conf = JobConf(name="mean", input_path="/in",
                       mapper=ProjectionMapper(), reducer=MeanReducer(),
                       local_mode=True, seed=1)
        result = JobClient(cluster).run(conf)
        assert result.breakdown["startup"] == 0.0

    def test_warm_start_skips_startup(self, cluster, loaded):
        conf = JobConf(name="mean", input_path="/in",
                       mapper=ProjectionMapper(), reducer=MeanReducer(),
                       seed=1)
        client = JobClient(cluster)
        cold = client.run(conf)
        warm = client.run(conf, warm_start=True)
        assert warm.breakdown["startup"] == 0.0
        assert warm.simulated_seconds < cold.simulated_seconds

    def test_logical_scale_multiplies_costs(self, cluster, values):
        lines = [f"{v:.6f}" for v in values]
        cluster.hdfs.write_lines("/small", lines, logical_scale=1.0)
        cluster.hdfs.write_lines("/big", lines, logical_scale=100.0)
        client = JobClient(cluster)

        def run(path):
            conf = JobConf(name="mean", input_path=path,
                           mapper=ProjectionMapper(), reducer=MeanReducer(),
                           seed=1)
            return client.run(conf)

        small, big = run("/small"), run("/big")
        assert big.breakdown["disk_read"] > 50 * small.breakdown["disk_read"]
        assert big.single_value() == pytest.approx(small.single_value())

    def test_more_map_tasks_for_larger_logical_file(self, cluster, values):
        lines = [f"{v:.6f}" for v in values]
        cluster.hdfs.write_lines("/scaled", lines, logical_scale=50.0)
        conf = JobConf(name="mean", input_path="/scaled",
                       mapper=ProjectionMapper(), reducer=MeanReducer(),
                       split_logical_bytes=2048 * 50, seed=1)
        result = JobClient(cluster).run(conf)
        base_conf = JobConf(name="mean", input_path="/scaled",
                            mapper=ProjectionMapper(), reducer=MeanReducer(),
                            split_logical_bytes=2048 * 50 * 50, seed=1)
        base = JobClient(cluster).run(base_conf)
        assert result.map_tasks > base.map_tasks


class TestFailureHandling:
    def _kill_everything(self, cluster):
        for node in cluster.nodes:
            cluster.fail_node(node.node_id)
        # bring back compute (not storage) so the job has slots:
        for node in cluster.nodes:
            node.recover()

    def test_fail_policy_raises(self, cluster, loaded):
        self._kill_everything(cluster)
        conf = JobConf(name="mean", input_path="/in",
                       mapper=ProjectionMapper(), reducer=MeanReducer(),
                       seed=1)
        with pytest.raises(JobFailedError):
            JobClient(cluster).run(conf)

    def test_skip_policy_counts_lost_input(self, cluster, loaded):
        self._kill_everything(cluster)
        conf = JobConf(name="mean", input_path="/in",
                       mapper=ProjectionMapper(), reducer=MeanReducer(),
                       on_unavailable=ON_UNAVAILABLE_SKIP, seed=1)
        result = JobClient(cluster).run(conf)
        assert result.input_fraction == 0.0
        assert result.counters[C.SKIPPED_SPLITS] == result.map_tasks

    def test_partial_failure_partial_result(self, cluster, loaded):
        # fail two nodes; replication=2 over 5 nodes usually loses little
        cluster.fail_node("node-0")
        cluster.fail_node("node-1")
        conf = JobConf(name="mean", input_path="/in",
                       mapper=ProjectionMapper(), reducer=MeanReducer(),
                       on_unavailable=ON_UNAVAILABLE_SKIP, seed=1)
        result = JobClient(cluster).run(conf)
        assert 0.0 <= result.input_fraction <= 1.0


class TestJobValidation:
    def test_bad_reducer_count(self):
        with pytest.raises(Exception):
            JobConf(name="x", input_path="/in", mapper=ProjectionMapper(),
                    reducer=MeanReducer(), n_reducers=0)

    def test_bad_policy(self):
        with pytest.raises(Exception):
            JobConf(name="x", input_path="/in", mapper=ProjectionMapper(),
                    reducer=MeanReducer(), on_unavailable="explode")

    def test_single_value_requires_single_output(self, cluster):
        lines = [f"k{i % 3}\t1.0" for i in range(30)]
        cluster.hdfs.write_lines("/multi", lines)
        conf = JobConf(name="sum", input_path="/multi",
                       mapper=ProjectionMapper(), reducer=SumReducer(),
                       seed=1)
        result = JobClient(cluster).run(conf)
        with pytest.raises(ValueError):
            result.single_value()
