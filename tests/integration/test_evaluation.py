"""Tests for the programmatic evaluation runners and their CLI."""

import pytest

from repro.evaluation import (
    fault_point,
    fig5_point,
    fig6_point,
    fig7_point,
    fig9_point,
)
from repro.evaluation.__main__ import main as cli_main


class TestRunners:
    def test_fig5_point_fields(self):
        row = fig5_point(5.0, records=10_000, seed=1)
        assert row["gb"] == 5.0
        assert row["stock_s"] > 0
        assert row["earl_s"] > 0
        assert row["speedup"] == pytest.approx(
            row["stock_s"] / row["earl_s"])
        assert 0 <= row["rel_err"] < 0.2

    def test_fig6_point_ordering(self):
        row = fig6_point(20.0, records=20_000, seed=2)
        assert row["optimized_s"] <= row["naive_s"] * 1.1
        assert row["naive_err"] < 0.2 and row["opt_err"] < 0.2

    def test_fig7_point_accuracy(self):
        row = fig7_point(2.0, points=8_000, seed=3)
        assert row["earl_opt_err"] < 0.05
        assert row["speedup"] > 1.0

    def test_fig9_point_premap_wins(self):
        row = fig9_point(5.0, records=10_000, seed=4)
        assert row["premap_s"] < row["postmap_s"]

    def test_fault_point_healthy(self):
        row = fault_point(0, records=10_000, logical_gb=2.0, seed=5)
        assert row["stock"] == "ok"
        assert row["available"] == 1.0

    def test_fault_point_degraded(self):
        row = fault_point(2, records=10_000, logical_gb=2.0, seed=6)
        assert 0.0 < row["available"] <= 1.0
        assert row["earl_cv"] >= 0.0

    def test_points_are_deterministic(self):
        a = fig5_point(1.0, records=5_000, seed=7)
        b = fig5_point(1.0, records=5_000, seed=7)
        assert a == b


class TestCli:
    def test_cli_fig5(self, capsys):
        code = cli_main(["fig5", "--sizes", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "1" in out

    def test_cli_fault(self, capsys):
        code = cli_main(["fault", "--sizes", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "stock" in out

    def test_cli_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            cli_main(["fig99"])

    def test_cli_seed_forwarded(self, capsys):
        cli_main(["fig5", "--sizes", "1", "--seed", "42"])
        first = capsys.readouterr().out
        cli_main(["fig5", "--sizes", "1", "--seed", "42"])
        second = capsys.readouterr().out
        assert first == second
