"""Integration tests for §3.4: approximate answers despite node failures."""

import pytest

from repro.cluster import Cluster, FailureInjector
from repro.core import EarlConfig, EarlJob, run_stock_job
from repro.mapreduce import JobFailedError
from repro.workloads import load_numeric, numeric_dataset


@pytest.fixture
def env():
    cluster = Cluster(n_nodes=5, block_size=64 * 1024, replication=2,
                      seed=200)
    values = numeric_dataset(30_000, "lognormal", seed=201)
    ds = load_numeric(cluster, "/data", values, logical_scale=1000.0)
    return cluster, ds


class TestFailureScenarios:
    def test_earl_survives_two_node_loss(self, env):
        cluster, ds = env
        FailureInjector(cluster, seed=1).fail_random_nodes(2)
        earl = EarlJob(cluster, ds.path, statistic="mean",
                       config=EarlConfig(sigma=0.05, seed=2)).run()
        truth = ds.truth["mean"]
        assert abs(earl.estimate - truth) / truth < 0.2

    def test_earl_reports_input_fraction_under_heavy_loss(self, env):
        cluster, ds = env
        # lose storage on 4 of 5 nodes; replication=2 cannot cover that
        for node_id in ["node-0", "node-1", "node-2", "node-3"]:
            cluster.fail_node(node_id)
        earl = EarlJob(cluster, ds.path, statistic="mean",
                       config=EarlConfig(sigma=0.10, seed=3)).run()
        assert earl.input_fraction <= 1.0
        assert earl.error >= 0.0

    def test_stock_cannot_complete_after_total_storage_loss(self, env):
        cluster, ds = env
        for node in list(cluster.nodes):
            cluster.fail_node(node.node_id)
        for node in cluster.nodes:
            node.recover()  # compute returns; storage remains lost
        with pytest.raises(JobFailedError):
            run_stock_job(cluster, ds.path, "mean", seed=4)

    def test_replication_covers_single_failure_exactly(self, env):
        cluster, ds = env
        cluster.fail_node("node-2")
        assert cluster.hdfs.available_fraction(ds.path) == 1.0
        earl = EarlJob(cluster, ds.path, statistic="mean",
                       config=EarlConfig(sigma=0.05, seed=5)).run()
        assert earl.input_fraction == 1.0

    def test_failures_reduce_cluster_parallelism(self, env):
        """Losing a node also removes slots: the same job takes longer.

        One failure only — with replication 2 a single node loss never
        loses data, so the stock job still completes (just slower).
        """
        cluster, ds = env
        # Force more map tasks than slots so wave counts actually differ.
        split = ds.logical_bytes // 30
        _, before = run_stock_job(cluster, ds.path, "mean", seed=6,
                                  split_logical_bytes=split)
        cluster.fail_node("node-0")
        _, after = run_stock_job(cluster, ds.path, "mean", seed=7,
                                 split_logical_bytes=split)
        assert after.simulated_seconds > before.simulated_seconds
