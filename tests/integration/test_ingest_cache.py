"""Integration tests for the columnar ingest plane on the full driver.

Pins the PR's two system-level claims:

* an :class:`EarlJob` run is byte-identical — estimates, iteration
  records, simulated seconds — whether ingest goes through the
  columnar cache (the default) or the scalar reference; and
* expansion iteration >= 2 performs **zero re-parse** of already-cached
  splits (M3R-style reuse across the jobs of an iterative driver),
  asserted through the cache counters and the per-iteration ledger.
"""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core import EarlConfig, EarlJob, bootstrap_file
from repro.sampling.postmap import PostMapSampler
from repro.sampling.premap import PreMapSampler
from repro.streaming import SessionManager
from repro.workloads import load_stand_in


def multi_iteration_config(seed, **overrides):
    base = dict(sigma=0.05, seed=seed, B_override=25, n_override=64,
                expansion_factor=2.0, max_iterations=8)
    base.update(overrides)
    return EarlConfig(**base)


def make_env(seed=90):
    cluster = Cluster(n_nodes=5, block_size=1 << 20, seed=seed)
    ds = load_stand_in(cluster, "/data/p", logical_gb=20.0,
                       records=50_000, seed=seed + 1)
    return cluster, ds


class _ScalarSamplerJob(EarlJob):
    """EarlJob pinned to the scalar (uncached, unbatched) ingest path."""

    def _make_sampler(self):
        if self._config.sampler == "premap":
            return PreMapSampler(self._cluster.hdfs, self._path,
                                 split_logical_bytes=self._split_logical_bytes,
                                 batched=False)
        return PostMapSampler(self._cluster.hdfs, self._path,
                              split_logical_bytes=self._split_logical_bytes,
                              cached=False)


class TestCachedJobEquivalence:
    @pytest.mark.parametrize("sampler", ["premap", "postmap"])
    def test_earl_job_byte_identical_cache_on_or_off(self, sampler):
        results = []
        for job_cls in (EarlJob, _ScalarSamplerJob):
            cluster, ds = make_env()
            cfg = multi_iteration_config(3, sampler=sampler)
            results.append(job_cls(cluster, ds.path, statistic="mean",
                                   config=cfg).run())
        cached, scalar = results
        assert cached.estimate == scalar.estimate
        assert cached.error == scalar.error
        assert cached.n == scalar.n
        assert cached.simulated_seconds == scalar.simulated_seconds
        assert [(it.iteration, it.sample_size, it.simulated_seconds)
                for it in cached.iterations] \
            == [(it.iteration, it.sample_size, it.simulated_seconds)
                for it in scalar.iterations]


class TestZeroReparseAcrossIterations:
    def test_premap_expansion_reuses_cached_splits(self):
        cluster, ds = make_env()
        cache = cluster.hdfs.split_cache
        job = EarlJob(cluster, ds.path, statistic="mean",
                      config=multi_iteration_config(4))
        snapshots = list(job.stream())
        assert len(snapshots) >= 3  # several expansion iterations ran
        # Every split the sampler owns was indexed exactly once for the
        # whole run: the pilot materialized them, and no expansion
        # iteration re-parsed any split (pilot + loop share the fs cache).
        n_splits = len(job.last_sampler.splits)
        assert cache.stats.materializations == n_splits
        assert cache.stats.hits > 0

    def test_iteration_ledgers_show_no_rescan(self):
        """Ledger view of the same claim, per sampler, per iteration.

        A fresh ledger is handed to every expansion iteration of the
        driver loop; from iteration 2 on its ``disk_read`` charge must
        be probe-sized (pre-map) or exactly zero (post-map) — re-parsing
        even one already-cached split would show up as a split-sized
        sequential read.
        """
        cluster, ds = make_env(seed=77)
        fs = cluster.hdfs
        full_scan = (fs.logical_size(ds.path)
                     / cluster.cost_params.disk_bandwidth)

        pre = PreMapSampler(fs, ds.path)
        per_split_scan = full_scan / len(pre.splits)
        rng = np.random.default_rng(1)
        for iteration, target in enumerate((64, 128, 256, 512), start=1):
            pre.set_total_target(target)
            ledger = cluster.new_ledger()
            for split in pre.splits:
                for _ in pre.read(fs, split, ledger, rng):
                    pass
            # every iteration touches only its delta's lines: far less
            # sequential I/O than re-parsing a single split
            assert ledger.seconds("disk_read") < per_split_scan / 4

        post = PostMapSampler(fs, ds.path)
        rng = np.random.default_rng(2)
        for iteration, target in enumerate((64, 128, 256, 512), start=1):
            post.set_total_target(target)
            ledger = cluster.new_ledger()
            for split in post.splits:
                for _ in post.read(fs, split, ledger, rng):
                    pass
            if iteration == 1:
                # Algorithm 1 loads everything once: a full scan
                assert ledger.seconds("disk_read") \
                    == pytest.approx(full_scan, rel=0.05)
            else:
                # expansions release cached pairs: zero re-parse
                assert ledger.seconds("disk_read") == 0.0
                assert ledger.seconds("disk_seek") == 0.0

    def test_materializations_frozen_between_iterations(self):
        cluster, ds = make_env(seed=55)
        cache = cluster.hdfs.split_cache
        job = EarlJob(cluster, ds.path, statistic="mean",
                      config=multi_iteration_config(6))
        per_iteration = []
        for snapshot in job.stream():
            per_iteration.append(cache.stats.materializations)
        assert len(per_iteration) >= 3
        # iteration >= 2: zero new parses, strictly cache hits
        assert all(m == per_iteration[0] for m in per_iteration[1:])


class TestColumnarIngestEntryPoints:
    def test_bootstrap_file_matches_in_memory_bootstrap(self):
        from repro.core import bootstrap

        cluster = Cluster(n_nodes=3, block_size=4096, seed=10)
        values = np.random.default_rng(2).lognormal(0, 1, 2000)
        cluster.hdfs.write_lines("/b", [f"{float(v)}" for v in values])
        res_file = bootstrap_file(cluster.hdfs, "/b", "mean", B=25, seed=9)
        res_mem = bootstrap(values, "mean", B=25, seed=9)
        assert np.array_equal(res_file.estimates, res_mem.estimates)

    def test_repeated_bootstraps_parse_once(self):
        cluster = Cluster(n_nodes=3, block_size=4096, seed=10)
        cluster.hdfs.write_lines("/b", [f"{i}" for i in range(5000)])
        bootstrap_file(cluster.hdfs, "/b", "mean", B=10, seed=1)
        built = cluster.hdfs.split_cache.stats.materializations
        bootstrap_file(cluster.hdfs, "/b", "p95", B=10, seed=2)
        bootstrap_file(cluster.hdfs, "/b", "std", B=10, seed=3)
        assert cluster.hdfs.split_cache.stats.materializations == built

    def test_session_manager_from_hdfs(self):
        cluster = Cluster(n_nodes=3, block_size=8192, seed=11)
        data = np.random.default_rng(4).lognormal(0, 1, 30_000)
        cluster.hdfs.write_lines("/s", [f"{float(v)}" for v in data])
        mgr = SessionManager.from_hdfs(
            cluster.hdfs, "/s", config=EarlConfig(sigma=0.05, seed=1))
        mgr.submit("mean")
        mgr.submit("p90", sigma=0.1)
        results = mgr.run()
        assert set(results) == {"mean", "p90"}
        assert all(r is not None and r.achieved for r in results.values())
        # a second session over the same file re-parses nothing
        built = cluster.hdfs.split_cache.stats.materializations
        mgr2 = SessionManager.from_hdfs(
            cluster.hdfs, "/s", config=EarlConfig(sigma=0.05, seed=2))
        mgr2.submit("mean")
        mgr2.run()
        assert cluster.hdfs.split_cache.stats.materializations == built
