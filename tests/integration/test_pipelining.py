"""Integration tests for pipelined sample expansion (paper §2.1/§5).

EARL's Hadoop modifications exist to make multi-iteration runs cheap:
persistent mappers avoid per-iteration job restarts and the feedback
channel drives termination.  These tests measure that machinery end to
end on the simulated cluster.
"""

import pytest

from repro.cluster import Cluster
from repro.core import EarlConfig, EarlJob
from repro.workloads import load_stand_in


def multi_iteration_config(seed: int, **overrides) -> EarlConfig:
    """Force several expansion rounds from a tiny initial sample."""
    base = dict(sigma=0.05, seed=seed, B_override=25, n_override=64,
                expansion_factor=2.0, max_iterations=8)
    base.update(overrides)
    return EarlConfig(**base)


@pytest.fixture
def env():
    cluster = Cluster(n_nodes=5, block_size=1 << 20, seed=90)
    ds = load_stand_in(cluster, "/data/p", logical_gb=20.0,
                       records=50_000, seed=91)
    return cluster, ds


class TestPipelinedExpansion:
    def test_pipelining_saves_restart_costs(self, env):
        cluster, ds = env
        pipelined = EarlJob(cluster, ds.path, statistic="mean",
                            config=multi_iteration_config(1),
                            pipelined=True).run()
        restarted = EarlJob(cluster, ds.path, statistic="mean",
                            config=multi_iteration_config(1),
                            pipelined=False).run()
        # identical statistical work (same seeds) ...
        assert restarted.num_iterations == pipelined.num_iterations
        assert pipelined.num_iterations >= 2
        # ... but the restarting variant pays set-up + start-up per round
        assert restarted.simulated_seconds > pipelined.simulated_seconds

    def test_first_iteration_paid_startup_once(self, env):
        cluster, ds = env
        res = EarlJob(cluster, ds.path, statistic="mean",
                      config=multi_iteration_config(2)).run()
        assert res.num_iterations >= 2
        first = res.iterations[0].simulated_seconds
        # warm iterations process more data yet cost no start-up; the
        # first (cold) iteration's fixed costs dominate its tiny sample
        for later in res.iterations[1:-1]:
            assert later.simulated_seconds < first * 4

    def test_postmap_expansions_need_no_further_io(self, env):
        """Post-map: the full load happens once; expansions release
        cached pairs (Algorithm 1, lines 9-15)."""
        cluster, ds = env
        res = EarlJob(cluster, ds.path, statistic="mean",
                      config=multi_iteration_config(3, sampler="postmap")
                      ).run()
        assert res.num_iterations >= 2
        first = res.iterations[0].simulated_seconds
        for later in res.iterations[1:]:
            assert later.simulated_seconds < first / 2

    def test_sample_sizes_grow_geometrically(self, env):
        cluster, ds = env
        res = EarlJob(cluster, ds.path, statistic="mean",
                      config=multi_iteration_config(4)).run()
        sizes = [rec.sample_size for rec in res.iterations]
        assert sizes == sorted(sizes)
        for a, b in zip(sizes, sizes[1:]):
            assert b >= a * 1.5
