"""Cross-module property-based tests (hypothesis).

These exercise whole pipelines with randomized inputs and assert
invariants that must hold regardless of data, keys, split geometry or
seeds — the contracts the unit tests can only spot-check.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.core.bootstrap import bootstrap
from repro.core.delta import ResampleSet
from repro.mapreduce import (
    JobClient,
    JobConf,
    MeanReducer,
    ProjectionMapper,
    SumReducer,
)
from repro.sampling import PreMapSampler

values_strategy = st.lists(
    st.floats(min_value=0.1, max_value=1e4, allow_nan=False),
    min_size=5, max_size=120)


class TestEngineCorrectness:
    @given(values=values_strategy,
           n_keys=st.integers(min_value=1, max_value=5),
           n_reducers=st.integers(min_value=1, max_value=4),
           block_size=st.sampled_from([64, 256, 4096]))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_grouped_sum_matches_numpy(self, values, n_keys, n_reducers,
                                       block_size):
        """Any data × any key count × any reducer count × any block
        geometry: the engine's per-key sums equal a direct computation."""
        cluster = Cluster(n_nodes=3, block_size=block_size, seed=1)
        lines = [f"k{i % n_keys}\t{v!r}" for i, v in enumerate(values)]
        cluster.hdfs.write_lines("/p", lines)
        conf = JobConf(name="sum", input_path="/p",
                       mapper=ProjectionMapper(), reducer=SumReducer(),
                       n_reducers=n_reducers, seed=2)
        result = JobClient(cluster).run(conf)
        got = {k: v[0] for k, v in result.grouped().items()}
        for key_idx in range(min(n_keys, len(values))):
            expected = sum(v for i, v in enumerate(values)
                           if i % n_keys == key_idx)
            assert got[f"k{key_idx}"] == pytest.approx(expected, rel=1e-9)

    @given(values=values_strategy)
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_local_and_cluster_mode_agree(self, values):
        """Execution mode changes costs, never results."""
        cluster = Cluster(n_nodes=3, block_size=512, seed=3)
        cluster.hdfs.write_lines("/p", [f"{v!r}" for v in values])

        def run(local):
            conf = JobConf(name="mean", input_path="/p",
                           mapper=ProjectionMapper(),
                           reducer=MeanReducer(), local_mode=local, seed=4)
            return JobClient(cluster).run(conf).single_value()

        assert run(True) == pytest.approx(run(False), rel=1e-12)


class TestSamplingProperties:
    @given(n_lines=st.integers(min_value=20, max_value=300),
           target=st.integers(min_value=1, max_value=60),
           block_size=st.sampled_from([128, 1024]))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_premap_invariants(self, n_lines, target, block_size):
        """Sampled lines are real, unique, and within the target count."""
        target = min(target, n_lines)
        cluster = Cluster(n_nodes=3, block_size=block_size, seed=5)
        lines = [f"{i:08d}" for i in range(n_lines)]
        cluster.hdfs.write_lines("/f", lines)
        sampler = PreMapSampler(cluster.hdfs, "/f")
        sampler.set_total_target(target)
        rng = np.random.default_rng(6)
        got = []
        ledger = cluster.new_ledger()
        for split in sampler.splits:
            got.extend(sampler.read(cluster.hdfs, split, ledger, rng))
        line_set = set(lines)
        assert all(line in line_set for _, line in got)
        offsets = [o for o, _ in got]
        assert len(offsets) == len(set(offsets))
        assert len(got) <= target
        assert sampler.sampled_count == len(got)


class TestDeltaMaintenanceProperties:
    @given(n0=st.integers(min_value=20, max_value=150),
           delta=st.integers(min_value=1, max_value=150),
           mode=st.sampled_from(["naive", "optimized"]))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_sizes_and_membership(self, n0, delta, mode):
        """After any expansion: every resample has exactly n' items, all
        drawn from the accumulated sample."""
        rng = np.random.default_rng(7)
        data = rng.lognormal(1.0, 0.5, n0 + delta)
        rs = ResampleSet("mean", 10, maintenance=mode, seed=8)
        rs.initialize(data[:n0])
        rs.expand(data[n0:])
        assert set(rs.resample_sizes()) == {n0 + delta}
        sample_set = set(float(v) for v in data)
        for resample in rs._resamples:
            for segment in resample.segments:
                assert all(float(item) in sample_set for item in segment)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_estimates_are_finite_and_plausible(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.lognormal(2.0, 1.0, 600)
        rs = ResampleSet("mean", 15, maintenance="optimized", seed=seed)
        rs.initialize(data[:200])
        rs.expand(data[200:600])
        estimates = rs.estimates()
        assert np.isfinite(estimates).all()
        assert data.min() <= estimates.min()
        assert estimates.max() <= data.max()


class TestBootstrapProperties:
    @given(shift=st.floats(min_value=1.0, max_value=1e4, allow_nan=False))
    @settings(max_examples=20, deadline=None)
    def test_estimates_bounded_by_sample_range(self, shift):
        data = np.random.default_rng(9).uniform(shift, shift * 2, 200)
        res = bootstrap(data, "mean", B=20, seed=10)
        assert data.min() <= res.estimates.min()
        assert res.estimates.max() <= data.max()

    @given(B=st.integers(min_value=2, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_B_respected(self, B):
        data = np.random.default_rng(11).normal(size=50)
        res = bootstrap(data, "median", B=B, seed=12)
        assert res.estimates.shape == (B,)
