"""End-to-end integration tests: the full EARL pipeline on the full
simulated substrate, validated against exact answers."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core import EarlConfig, EarlJob, run_stock_job
from repro.workloads import (
    keyed_lines,
    load_numeric,
    load_stand_in,
    numeric_dataset,
)


class TestEarlVsStockAgreement:
    """EARL's estimate must track the stock job's exact answer, at a
    fraction of the simulated cost, across statistics and samplers."""

    @pytest.fixture(scope="class")
    def env(self):
        cluster = Cluster(n_nodes=5, block_size=1 << 20, seed=100)
        values = numeric_dataset(50_000, "lognormal", seed=101)
        ds = load_numeric(cluster, "/data", values, logical_scale=2000.0)
        return cluster, ds

    @pytest.mark.parametrize("statistic,rel_tol", [
        ("mean", 0.12),
        ("median", 0.12),
        ("sum", 0.15),
        ("p90", 0.15),
    ])
    def test_statistic_agreement(self, env, statistic, rel_tol):
        cluster, ds = env
        exact, stock_result = run_stock_job(cluster, ds.path, statistic,
                                            seed=1)
        earl = EarlJob(cluster, ds.path, statistic=statistic,
                       config=EarlConfig(sigma=0.05, seed=2)).run()
        assert abs(earl.estimate - exact) / abs(exact) < rel_tol
        assert earl.simulated_seconds < stock_result.simulated_seconds

    @pytest.mark.parametrize("sampler", ["premap", "postmap"])
    def test_both_samplers_converge(self, env, sampler):
        cluster, ds = env
        earl = EarlJob(cluster, ds.path, statistic="mean",
                       config=EarlConfig(sigma=0.05, seed=3,
                                         sampler=sampler)).run()
        truth = ds.truth["mean"]
        assert abs(earl.estimate - truth) / truth < 0.12

    @pytest.mark.parametrize("maintenance", ["optimized", "naive", "none"])
    def test_all_maintenance_modes_agree(self, env, maintenance):
        cluster, ds = env
        earl = EarlJob(cluster, ds.path, statistic="mean",
                       config=EarlConfig(sigma=0.05, seed=4,
                                         maintenance=maintenance)).run()
        truth = ds.truth["mean"]
        assert abs(earl.estimate - truth) / truth < 0.12


class TestMultiKeyPipeline:
    def test_grouped_statistics(self):
        cluster = Cluster(n_nodes=5, block_size=1 << 20, seed=110)
        values = numeric_dataset(30_000, "lognormal", seed=111)
        lines = keyed_lines(values, 4, seed=112)
        cluster.hdfs.write_lines("/keyed", lines, logical_scale=500.0)
        earl = EarlJob(cluster, "/keyed", statistic="mean", n_reducers=2,
                       config=EarlConfig(sigma=0.08, seed=113)).run()
        assert hasattr(earl, "key_estimates")
        assert len(earl.key_estimates) == 4
        overall = float(np.mean(values))
        for estimate in earl.key_estimates.values():
            assert abs(estimate - overall) / overall < 0.25


class TestStandInScaling:
    def test_speedup_grows_with_logical_size(self):
        """The Fig. 5 mechanism: EARL's advantage must widen as the
        (logical) dataset grows, because its cost is tied to the sample
        while stock cost is tied to the file."""
        speedups = []
        for gb in [1.0, 32.0]:
            cluster = Cluster(n_nodes=5, block_size=1 << 20, seed=120)
            ds = load_stand_in(cluster, "/sweep", logical_gb=gb,
                               records=40_000, seed=121)
            _, stock = run_stock_job(cluster, ds.path, "mean", seed=1)
            earl = EarlJob(cluster, ds.path, statistic="mean",
                           config=EarlConfig(sigma=0.05, seed=2)).run()
            speedups.append(stock.simulated_seconds / earl.simulated_seconds)
        assert speedups[1] > speedups[0]

    def test_small_data_falls_back_gracefully(self):
        """§6.1: below ~1 GB EARL "intelligently switches back to the
        original work flow ... without incurring a big overhead"."""
        cluster = Cluster(n_nodes=5, block_size=1 << 20, seed=130)
        values = numeric_dataset(800, "lognormal", seed=131)
        ds = load_numeric(cluster, "/small", values)
        _, stock = run_stock_job(cluster, ds.path, "mean", seed=1)
        earl = EarlJob(cluster, ds.path, statistic="mean",
                       config=EarlConfig(sigma=0.02, seed=2)).run()
        assert earl.used_fallback
        assert earl.estimate == pytest.approx(ds.truth["mean"], rel=1e-6)
        # overhead of the pilot phase stays small
        assert earl.simulated_seconds < stock.simulated_seconds * 3
