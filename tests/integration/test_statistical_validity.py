"""Statistical validity tests: the error bounds must mean something.

The paper's entire premise is that the bootstrap cv is a *reliable*
error estimate (§1: "reliable on-line estimates of the degree of
accuracy").  These tests verify the claim empirically: across many
independent runs, reported bounds must track realized errors, delta-
maintained result distributions must match fresh ones, and stricter
error metrics must buy stricter realized accuracy.
"""

import numpy as np
import pytest
from scipy import stats as sp_stats

from repro.core import EarlConfig, EarlSession

#: Many-seed statistical-stability suite: excluded from the default
#: tier-1 run (see pytest.ini); `make test-all` includes it.
pytestmark = pytest.mark.slow
from repro.core.bootstrap import bootstrap
from repro.core.delta import ResampleSet
from repro.workloads import numeric_dataset


class TestBoundCalibration:
    @pytest.mark.parametrize("distribution", ["lognormal", "exponential",
                                              "pareto"])
    def test_mean_error_tracks_sigma_across_distributions(self,
                                                          distribution):
        """cv ≤ σ is a ~1-standard-deviation bound: the *average*
        realized error across runs must sit at or below σ, for every
        data shape the workload generator produces."""
        population = numeric_dataset(150_000, distribution, seed=1)
        truth = float(np.mean(population))
        errors = []
        for seed in range(8):
            res = EarlSession(population, "mean",
                              config=EarlConfig(sigma=0.05,
                                                seed=seed)).run()
            errors.append(abs(res.estimate - truth) / abs(truth))
        assert float(np.mean(errors)) < 0.05

    def test_reported_cv_predicts_realized_spread(self):
        """The cv reported at termination should match the actual
        run-to-run dispersion of the estimates (that is its job)."""
        population = numeric_dataset(150_000, "lognormal", seed=2)
        estimates, cvs = [], []
        for seed in range(12):
            res = EarlSession(population, "mean",
                              config=EarlConfig(sigma=0.05, seed=seed,
                                                B_override=40,
                                                n_override=1500)).run()
            estimates.append(res.estimate)
            cvs.append(res.error)
        realized_cv = float(np.std(estimates, ddof=1)
                            / np.mean(estimates))
        reported_cv = float(np.mean(cvs))
        assert realized_cv == pytest.approx(reported_cv, rel=0.75)

    def test_stricter_metric_buys_stricter_accuracy(self):
        """relative_ci (z·cv) forces larger samples than plain cv at the
        same σ, and the realized errors shrink accordingly."""
        population = numeric_dataset(200_000, "lognormal", seed=3)
        truth = float(np.mean(population))

        def run(metric, seed):
            cfg = EarlConfig(sigma=0.05, seed=seed, error_metric=metric)
            return EarlSession(population, "mean", config=cfg).run()

        cv_runs = [run("cv", s) for s in range(6)]
        ci_runs = [run("relative_ci", s) for s in range(6)]
        assert np.mean([r.n for r in ci_runs]) > \
            np.mean([r.n for r in cv_runs])
        cv_err = np.mean([abs(r.estimate - truth) / truth for r in cv_runs])
        ci_err = np.mean([abs(r.estimate - truth) / truth for r in ci_runs])
        assert ci_err < cv_err


class TestMaintainedDistributionMatchesFresh:
    @pytest.mark.parametrize("mode", ["naive", "optimized"])
    def test_ks_distance_small(self, mode):
        """Kolmogorov-Smirnov check: the delta-maintained result
        distribution is statistically indistinguishable from a fresh
        bootstrap of the same sample."""
        population = numeric_dataset(20_000, "lognormal", seed=4)
        B = 150
        rs = ResampleSet("mean", B, maintenance=mode, seed=5)
        rs.initialize(population[:2000])
        rs.expand(population[2000:4000])
        rs.expand(population[4000:8000])
        maintained = rs.estimates()
        fresh = bootstrap(population[:8000], "mean", B=B, seed=6).estimates
        _, p_value = sp_stats.ks_2samp(maintained, fresh)
        # we only reject equality at overwhelming evidence; a tiny
        # p-value here would mean maintenance skews the distribution
        assert p_value > 0.01

    def test_percentile_cis_agree(self):
        population = numeric_dataset(20_000, "lognormal", seed=7)
        B = 200
        rs = ResampleSet("mean", B, maintenance="optimized", seed=8)
        rs.initialize(population[:3000])
        rs.expand(population[3000:6000])
        maintained = rs.estimates()
        fresh = bootstrap(population[:6000], "mean", B=B, seed=9)
        m_lo, m_hi = np.quantile(maintained, [0.025, 0.975])
        f_lo, f_hi = fresh.confidence_interval(0.95)
        width_m, width_f = m_hi - m_lo, f_hi - f_lo
        assert width_m == pytest.approx(width_f, rel=0.5)
        # the intervals overlap substantially
        assert m_lo < f_hi and f_lo < m_hi


class TestBootstrapCoverage:
    def test_percentile_interval_coverage(self):
        """95% percentile intervals over the sample mean should cover
        the population mean about 95% of the time."""
        rng = np.random.default_rng(10)
        population = rng.lognormal(3.0, 1.0, 500_000)
        truth = float(np.mean(population))
        hits = 0
        trials = 60
        for _ in range(trials):
            sample = rng.choice(population, size=800, replace=False)
            res = bootstrap(sample, "mean", B=200, seed=rng)
            lo, hi = res.confidence_interval(0.95)
            if lo <= truth <= hi:
                hits += 1
        assert hits / trials > 0.85
