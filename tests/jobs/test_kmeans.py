"""Tests for K-Means (stock MR + EARL-accelerated, §6.3)."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core import EarlConfig
from repro.jobs.kmeans import (
    EarlKMeans,
    centroid_relative_error,
    kmeans_inmemory,
    kmeans_mapreduce,
    kmeanspp_init,
    match_centroids,
)
from repro.workloads import gaussian_mixture_points, point_lines

CENTERS = [[0.0, 0.0], [20.0, 20.0], [40.0, 0.0]]


@pytest.fixture(scope="module")
def points():
    pts, _ = gaussian_mixture_points(8000, CENTERS, spread=2.0, seed=1)
    return pts


@pytest.fixture
def cluster(points) -> Cluster:
    cluster = Cluster(n_nodes=5, block_size=1 << 20, seed=2)
    # Stand-in for a multi-GB point file: full scans must actually hurt,
    # otherwise sampling cannot win (Fig. 7 regime).
    cluster.hdfs.write_lines("/points", point_lines(points),
                             logical_scale=5000.0)
    return cluster


class TestInMemoryKMeans:
    def test_recovers_true_centers(self, points):
        centroids, inertia, iters = kmeans_inmemory(points, 3, seed=3)
        matched = match_centroids(np.asarray(CENTERS), centroids)
        for truth, found in zip(CENTERS, matched):
            assert np.linalg.norm(np.asarray(truth) - found) < 1.0
        assert inertia > 0
        assert iters >= 1

    def test_respects_init_centroids(self, points):
        init = np.asarray(CENTERS, dtype=float)
        centroids, _, iters = kmeans_inmemory(points, 3, init_centroids=init,
                                              seed=4)
        assert iters <= 5  # already near the optimum

    def test_k_larger_than_n_rejected(self):
        with pytest.raises(ValueError):
            kmeans_inmemory(np.zeros((2, 2)), 3)

    def test_bad_init_shape_rejected(self, points):
        with pytest.raises(ValueError):
            kmeans_inmemory(points, 3, init_centroids=np.zeros((2, 2)))

    def test_deterministic(self, points):
        a, _, _ = kmeans_inmemory(points, 3, seed=5)
        b, _, _ = kmeans_inmemory(points, 3, seed=5)
        np.testing.assert_array_equal(a, b)


class TestKMeansPlusPlus:
    def test_selects_k_points(self, points):
        rng = np.random.default_rng(6)
        init = kmeanspp_init(points, 4, rng)
        assert init.shape == (4, 2)

    def test_spreads_across_clusters(self, points):
        """D² weighting should pick one seed near each true center."""
        rng = np.random.default_rng(7)
        init = kmeanspp_init(points, 3, rng)
        matched = match_centroids(np.asarray(CENTERS), init)
        for truth, found in zip(CENTERS, matched):
            assert np.linalg.norm(np.asarray(truth) - found) < 10.0


class TestCentroidMatching:
    def test_match_reorders(self):
        ref = np.array([[0.0, 0.0], [10.0, 10.0]])
        cand = np.array([[10.1, 9.9], [0.1, -0.1]])
        matched = match_centroids(ref, cand)
        assert np.linalg.norm(matched[0] - ref[0]) < 0.5
        assert np.linalg.norm(matched[1] - ref[1]) < 0.5

    def test_relative_error_zero_for_identical(self):
        ref = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert centroid_relative_error(ref, ref) == 0.0

    def test_relative_error_scale_free(self):
        ref = np.array([[10.0, 0.0], [0.0, 10.0]])
        cand = ref + 0.5
        err1 = centroid_relative_error(ref, cand)
        err2 = centroid_relative_error(ref * 100, cand * 100)
        assert err1 == pytest.approx(err2)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            match_centroids(np.zeros((2, 2)), np.zeros((3, 2)))


class TestMapReduceKMeans:
    def test_converges_to_true_centers(self, cluster, points):
        result = kmeans_mapreduce(cluster, "/points", 3, seed=8)
        assert result.converged
        ref, _, _ = kmeans_inmemory(points, 3, seed=9)
        assert centroid_relative_error(ref, result.centroids) < 0.05

    def test_simulated_time_positive(self, cluster):
        result = kmeans_mapreduce(cluster, "/points", 3, seed=10)
        assert result.simulated_seconds > 0
        assert result.iterations >= 1


class TestEarlKMeans:
    def test_centroids_within_5_percent_of_optimal(self, cluster, points):
        """§6.3: "EARL finds centroids that are within 5% of the
        optimal"."""
        ref, _, _ = kmeans_inmemory(points, 3, seed=11)
        job = EarlKMeans(cluster, "/points", 3,
                         config=EarlConfig(sigma=0.05, seed=12),
                         initial_sample_size=400)
        result = job.run()
        assert centroid_relative_error(ref, result.centroids) < 0.05
        assert result.error is not None and result.error <= 0.05

    def test_faster_than_stock(self, cluster):
        stock = kmeans_mapreduce(cluster, "/points", 3, seed=13)
        earl = EarlKMeans(cluster, "/points", 3,
                          config=EarlConfig(sigma=0.05, seed=14),
                          initial_sample_size=400).run()
        assert earl.simulated_seconds < stock.simulated_seconds

    def test_sample_size_recorded(self, cluster):
        result = EarlKMeans(cluster, "/points", 3,
                            config=EarlConfig(sigma=0.05, seed=15),
                            initial_sample_size=300).run()
        assert result.sample_size >= 300

    def test_validation(self, cluster):
        with pytest.raises(ValueError):
            EarlKMeans(cluster, "/points", 0)
        with pytest.raises(ValueError):
            EarlKMeans(cluster, "/points", 3, initial_sample_size=0)
