"""Tests for aggregate jobs."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.jobs.aggregates import run_aggregate, run_count
from repro.workloads import keyed_lines, numeric_dataset


@pytest.fixture
def cluster() -> Cluster:
    return Cluster(n_nodes=4, block_size=1 << 18, seed=40)


@pytest.fixture
def values():
    return numeric_dataset(5000, "normal", seed=41)


class TestRunAggregate:
    def test_global_mean(self, cluster, values):
        cluster.hdfs.write_lines("/v", [f"{v:.6f}" for v in values])
        result, _ = run_aggregate(cluster, "/v", "mean", seed=1)
        assert result["all"] == pytest.approx(np.mean(values))

    def test_per_key_statistics(self, cluster, values):
        cluster.hdfs.write_lines("/kv", keyed_lines(values, 3, seed=42))
        result, _ = run_aggregate(cluster, "/kv", "max", n_reducers=2, seed=2)
        assert len(result) == 3
        assert max(result.values()) == pytest.approx(np.max(values),
                                                     rel=1e-6)

    def test_median(self, cluster, values):
        cluster.hdfs.write_lines("/v", [f"{v:.6f}" for v in values])
        result, _ = run_aggregate(cluster, "/v", "median", seed=3)
        assert result["all"] == pytest.approx(np.median(values), rel=1e-6)

    def test_count(self, cluster, values):
        cluster.hdfs.write_lines("/kv", keyed_lines(values, 4, seed=43))
        counts, _ = run_count(cluster, "/kv", seed=4)
        assert sum(counts.values()) == len(values)

    def test_sum_correction_param(self, cluster, values):
        cluster.hdfs.write_lines("/v", [f"{v:.6f}" for v in values])
        result, _ = run_aggregate(cluster, "/v", "sum",
                                  params={"sample_fraction": 0.5}, seed=5)
        assert result["all"] == pytest.approx(2 * np.sum(values), rel=1e-9)
