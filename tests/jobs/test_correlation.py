"""Tests for the correlation job and its bootstrap."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.jobs.correlation import bootstrap_correlation, run_correlation


@pytest.fixture
def xy():
    rng = np.random.default_rng(50)
    x = rng.normal(0, 1, 4000)
    y = 0.6 * x + rng.normal(0, 0.8, 4000)
    return x, y


@pytest.fixture
def cluster(xy) -> Cluster:
    x, y = xy
    cluster = Cluster(n_nodes=4, block_size=1 << 18, seed=51)
    lines = [f"{a:.6f},{b:.6f}" for a, b in zip(x, y)]
    cluster.hdfs.write_lines("/pairs", lines)
    return cluster


class TestRunCorrelation:
    def test_matches_numpy(self, cluster, xy):
        x, y = xy
        r, _ = run_correlation(cluster, "/pairs", seed=1)
        assert r == pytest.approx(np.corrcoef(x, y)[0, 1], rel=1e-6)


class TestBootstrapCorrelation:
    def test_sample_estimate_near_population(self, xy):
        x, y = xy
        pairs = list(zip(x[:500], y[:500]))
        res = bootstrap_correlation(pairs, B=50, seed=2)
        assert res.mean == pytest.approx(np.corrcoef(x, y)[0, 1], abs=0.15)
        assert res.cv < 0.3

    def test_cv_shrinks_with_sample_size(self, xy):
        x, y = xy
        small = bootstrap_correlation(list(zip(x[:100], y[:100])), B=100,
                                      seed=3)
        large = bootstrap_correlation(list(zip(x[:2000], y[:2000])), B=100,
                                      seed=3)
        assert large.std < small.std

    def test_perfectly_correlated_has_tiny_error(self):
        x = np.arange(200.0)
        res = bootstrap_correlation(list(zip(x, 3 * x)), B=30, seed=4)
        assert res.mean == pytest.approx(1.0, abs=1e-9)
        assert res.std == pytest.approx(0.0, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_correlation([(1.0, 2.0)], B=10)
        with pytest.raises(ValueError):
            bootstrap_correlation([(1.0, 2.0), (2.0, 3.0)], B=0)
