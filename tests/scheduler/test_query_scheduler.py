"""Cross-query scheduler: the equivalence matrix (scheduled ≡ solo,
byte for byte), the budget-allocation policy, cancellation accounting,
and executor-pool release."""

import gc

import numpy as np
import pytest

from repro.core import EarlConfig, EarlSession
from repro.exec import live_pool_executors
from repro.query import Query, agg
from repro.scheduler import QueryScheduler, allocate_budget, rows_to_bound
from repro.streaming import SessionManager

BACKENDS = ["serial", "threads", "processes"]


@pytest.fixture
def population():
    return np.random.default_rng(8).lognormal(0.5, 1.0, 250_000)


def skewed_table(seed=5, heavy=24_000, light=900):
    """Two groups with very different sizes and spreads — the regime
    where per-group budget reallocation pays."""
    rng = np.random.default_rng(seed)
    key = np.concatenate([np.repeat("heavy", heavy),
                          np.repeat("light", light)])
    value = np.concatenate([rng.lognormal(2.0, 1.0, heavy),
                            rng.exponential(3.0, light)])
    perm = rng.permutation(key.size)
    return {"key": key[perm], "value": value[perm]}


def grouped_query(table, cfg):
    return Query([agg("mean", "value")], group_by="key").on(table,
                                                            config=cfg)


class TestBudgetPolicy:
    """Unit tests for the expected-error-reduction allocation."""

    def test_rows_to_bound_met_arm_needs_nothing(self):
        assert rows_to_bound(0.01, 0.05, 1000, 500, 9000) == 0

    def test_rows_to_bound_error_inverse_sqrt_n(self):
        # error = 2σ at n=100: needs n·((e/σ)² − 1) = 300 more rows.
        assert rows_to_bound(0.10, 0.05, 100, 500, 9000) == 300

    def test_rows_to_bound_clamped_to_remaining(self):
        assert rows_to_bound(0.10, 0.05, 100, 500, 120) == 120
        assert rows_to_bound(0.10, 0.05, 100, 500, 0) == 0

    def test_rows_to_bound_pilot_round_asks_its_schedule(self):
        # No live estimate yet: the SSABE-sized draw is the only ask.
        assert rows_to_bound(float("nan"), 0.05, 0, 400, 9000) == 400

    def test_grants_capped_at_need_and_redistributed(self):
        met = {"key": "a", "error": 0.01, "sigma": 0.05, "consumed": 1000,
               "size": 10_000, "scheduled": 500, "remaining": 9000,
               "scale": 0.01 * np.sqrt(1000), "shared": False}
        lagging = {"key": "b", "error": 0.25, "sigma": 0.05,
                   "consumed": 1000, "size": 10_000, "scheduled": 500,
                   "remaining": 9000, "scale": 0.25 * np.sqrt(1000),
                   "shared": False}
        grants = allocate_budget([met, lagging])
        assert sum(grants) == 1000          # global throughput preserved
        assert grants[0] == 0               # met arm donates everything
        assert grants[1] == 1000

    def test_one_row_floor_keeps_starving_arms_live(self):
        tiny = {"key": "t", "error": 0.06, "sigma": 0.05, "consumed": 100,
                "size": 10, "scheduled": 1, "remaining": 1000,
                "scale": 0.001, "shared": False}
        huge = {"key": "h", "error": 1.0, "sigma": 0.05, "consumed": 100,
                "size": 1_000_000, "scheduled": 999, "remaining": 10**6,
                "scale": 50.0, "shared": False}
        grants = allocate_budget([tiny, huge], total=1000)
        assert grants[0] >= 1               # never starved to zero
        assert sum(grants) == 1000

    def test_no_live_scale_falls_back_to_size_weights(self):
        arms = [{"key": k, "error": float("nan"), "sigma": 0.05,
                 "consumed": 0, "size": size, "scheduled": 300,
                 "remaining": 10_000, "scale": float("nan"),
                 "shared": False}
                for k, size in (("a", 3000), ("b", 1000))]
        grants = allocate_budget(arms, total=400)
        assert grants == [300, 100]         # 3:1 sizes, cap at schedule


class TestSoloEquivalence:
    """A scheduled single query IS the solo session, byte for byte —
    the scheduler adds nothing (and no budget) when nothing is shared."""

    @pytest.mark.parametrize("executor", BACKENDS)
    def test_scheduled_single_matches_solo_session(self, population,
                                                   executor):
        cfg = EarlConfig(sigma=0.04, seed=33, executor=executor,
                         max_workers=2)
        solo = list(EarlSession(population, "mean", config=cfg).stream())
        sched = QueryScheduler()
        query = sched.submit_statistic(population, "mean", config=cfg,
                                       table="pop")
        results = sched.run()
        assert query.snapshots == solo
        assert results["mean"] == solo[-1].result

    def test_scheduled_group_matches_session_manager(self, population):
        cfg = EarlConfig(sigma=0.04, seed=33)
        manager = SessionManager(population, config=cfg)
        manager.submit("mean")
        manager.submit("median")
        manager.submit("p90", sigma=0.08)
        reference = manager.run()

        sched = QueryScheduler()
        for stat, sigma in (("mean", None), ("median", None),
                            ("p90", 0.08)):
            sched.submit_statistic(population, stat, config=cfg,
                                   table="pop", sigma=sigma)
        assert sched.run() == reference

    def test_scheduled_grouped_matches_direct_query(self):
        table = skewed_table()
        cfg = EarlConfig(sigma=0.05, seed=17)
        reference = grouped_query(table, cfg).run()
        sched = QueryScheduler()
        query = sched.submit_grouped(grouped_query(table, cfg).plan(),
                                     name="g")
        results = sched.run()
        assert results["g"] == reference
        assert query.snapshots[-1].final


class TestDeterminism:
    @staticmethod
    def _mixed_run(population, order="forward", executor="serial"):
        cfg = EarlConfig(sigma=0.05, seed=21, executor=executor,
                         max_workers=2)
        table = skewed_table()
        sched = QueryScheduler()
        submissions = [
            lambda: sched.submit_statistic(population, "mean", config=cfg,
                                           table="pop", name="mean"),
            lambda: sched.submit_statistic(population, "p90", config=cfg,
                                           table="pop", sigma=0.08,
                                           name="p90"),
            lambda: sched.submit_grouped(
                grouped_query(table, EarlConfig(sigma=0.06, seed=9,
                                                executor=executor,
                                                max_workers=2)).plan(),
                name="by-key"),
        ]
        if order == "reversed":
            submissions = submissions[::-1]
        for submit in submissions:
            submit()
        results = sched.run()
        snapshots = {q.name: q.snapshots for q in sched.queries}
        return results, snapshots

    def test_submission_interleaving_is_irrelevant(self, population):
        forward = self._mixed_run(population, "forward")
        backward = self._mixed_run(population, "reversed")
        assert forward == backward

    @pytest.mark.parametrize("executor", BACKENDS[1:])
    def test_byte_identical_across_backends(self, population, executor):
        assert (self._mixed_run(population, executor=executor)
                == self._mixed_run(population, executor="serial"))

    def test_rerun_is_byte_identical(self, population):
        assert self._mixed_run(population) == self._mixed_run(population)


class TestBudgetedRuns:
    def test_skewed_grouped_queries_meet_bounds_with_fewer_rows(self):
        """Two grouped queries over the same skewed table: scheduled
        together (one global budget, finished groups donate rows to
        laggards across queries) they reach every per-group target with
        fewer total rows than two independent runs."""
        table = skewed_table()
        cfgs = [EarlConfig(sigma=0.05, seed=17),
                EarlConfig(sigma=0.08, seed=23)]

        independent = [grouped_query(table, cfg).run() for cfg in cfgs]
        rows_independent = sum(r.rows_processed for r in independent)
        assert all(r.achieved for r in independent)

        sched = QueryScheduler()
        for i, cfg in enumerate(cfgs):
            sched.submit_grouped(grouped_query(table, cfg).plan(),
                                 name=f"q{i}")
        results = sched.run()
        assert all(res is not None and res.achieved
                   for res in results.values())
        assert sched.rows_processed < rows_independent

    def test_explicit_round_budget_engages_for_single_engine(self,
                                                             population):
        # With round_budget set, even a lone manager is budget-stepped;
        # it must still terminate and meet its bounds.
        cfg = EarlConfig(sigma=0.05, seed=3)
        sched = QueryScheduler(round_budget=2000)
        sched.submit_statistic(population, "mean", config=cfg, table="pop")
        sched.submit_statistic(population, "std", config=cfg, table="pop")
        results = sched.run()
        assert results["mean"].achieved and results["std"].achieved

    def test_round_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            QueryScheduler(round_budget=0)


class TestCancellation:
    def test_cancel_before_stream_leaves_siblings_byte_identical(
            self, population):
        """A query withdrawn before the run starts is never admitted:
        the surviving queries' snapshots are byte-identical to a
        scheduler that never saw it (satellite regression: a withdrawn
        query must not count toward shared expansion decisions)."""
        cfg = EarlConfig(sigma=0.04, seed=33)

        def run(include_withdrawn):
            sched = QueryScheduler()
            sched.submit_statistic(population, "mean", config=cfg,
                                   table="pop")
            sched.submit_statistic(population, "median", config=cfg,
                                   table="pop")
            if include_withdrawn:
                doomed = sched.submit_statistic(
                    population, "p99", config=cfg, table="pop",
                    sigma=0.0001, n_override=50_000, B_override=100)
                doomed.cancel()
            results = sched.run()
            if include_withdrawn:
                assert results.pop("p99") is None   # withdrawn: no result
            return results, {q.name: q.snapshots for q in sched.queries
                             if not q.cancelled}

        with_cancel = run(include_withdrawn=True)
        without = run(include_withdrawn=False)
        assert with_cancel == without

    def test_cancel_mid_run_stops_driving_expansion(self, population):
        """A tight-σ query cancelled mid-run stops pulling the shared
        sample: the run consumes fewer rows than letting it finish."""
        cfg = EarlConfig(sigma=0.05, seed=11, B_override=20,
                         n_override=400, expansion_factor=1.5,
                         max_iterations=8)

        def run(cancel_tight):
            sched = QueryScheduler()
            sched.submit_statistic(population, "mean", config=cfg,
                                   table="pop")
            tight = sched.submit_statistic(population, "median",
                                           config=cfg, table="pop",
                                           sigma=0.0001, name="tight")
            for query, _snap in sched.stream():
                if cancel_tight and query is tight:
                    tight.cancel()
            return sched

        cancelled = run(cancel_tight=True)
        full = run(cancel_tight=False)
        tight = next(q for q in cancelled.queries if q.name == "tight")
        assert tight.cancelled and tight.result is None
        mean = next(q for q in cancelled.queries if q.name == "mean")
        assert mean.result is not None and mean.result.achieved
        assert cancelled.rows_processed < full.rows_processed

    def test_scheduler_cancel_withdraws_everything(self, population):
        cfg = EarlConfig(sigma=0.0001, seed=7, B_override=10,
                         n_override=100, max_iterations=10)
        sched = QueryScheduler()
        sched.submit_statistic(population, "mean", config=cfg, table="pop")
        gen = sched.stream()
        next(gen)
        sched.cancel()
        assert list(gen) == []
        assert all(q.result is None for q in sched.queries)

    def test_streams_only_once_and_rejects_empty(self, population):
        sched = QueryScheduler()
        with pytest.raises(RuntimeError):
            sched.run()
        sched.submit_statistic(population, "mean",
                               config=EarlConfig(sigma=0.2, seed=1),
                               table="pop")
        sched.run()
        with pytest.raises(RuntimeError):
            sched.run()
        with pytest.raises(RuntimeError):
            sched.submit_statistic(population, "std",
                                   config=EarlConfig(sigma=0.2, seed=1),
                                   table="pop")

    def test_duplicate_names_rejected(self, population):
        sched = QueryScheduler()
        sched.submit_statistic(population, "mean",
                               config=EarlConfig(seed=1), name="q")
        with pytest.raises(ValueError):
            sched.submit_statistic(population, "std",
                                   config=EarlConfig(seed=1), name="q")


class TestPoolRelease:
    """Walking away from a scheduled run must release every engine's
    worker pool — the same invariant the engines pin solo, extended to
    scheduler-driven (and service-scheduled) sessions."""

    @pytest.fixture(autouse=True)
    def baseline(self):
        gc.collect()
        before = set(id(ex) for ex in live_pool_executors())
        yield
        gc.collect()
        leaked = [ex for ex in live_pool_executors()
                  if id(ex) not in before]
        assert leaked == []

    def test_closing_scheduled_manager_stream_releases_pool(self,
                                                            population):
        cfg = EarlConfig(sigma=0.0001, seed=5, B_override=10,
                         n_override=100, expansion_factor=1.5,
                         max_iterations=10, executor="threads",
                         max_workers=2)
        sched = QueryScheduler()
        sched.submit_statistic(population, "mean", config=cfg, table="pop")
        sched.submit_statistic(population, "median", config=cfg,
                               table="pop")
        gen = sched.stream()
        next(gen)
        assert len(live_pool_executors()) >= 1   # pool live mid-stream
        gen.close()                              # teardown closes engines
        assert live_pool_executors() == []

    def test_closing_scheduled_grouped_stream_releases_pool(self):
        table = skewed_table()
        cfg = EarlConfig(sigma=0.0001, seed=31, B_override=10,
                         n_override=60, expansion_factor=1.5,
                         max_iterations=8, executor="threads",
                         max_workers=2)
        sched = QueryScheduler()
        sched.submit_grouped(grouped_query(table, cfg).plan(), name="g")
        gen = sched.stream()
        next(gen)
        assert len(live_pool_executors()) >= 1
        gen.close()
        assert live_pool_executors() == []

    def test_abandoned_scheduler_stream_released_by_gc(self, population):
        cfg = EarlConfig(sigma=0.0001, seed=5, B_override=10,
                         n_override=100, max_iterations=10,
                         executor="threads", max_workers=2)
        sched = QueryScheduler()
        sched.submit_statistic(population, "mean", config=cfg, table="pop")
        sched.submit_statistic(population, "median", config=cfg,
                               table="pop")
        gen = sched.stream()
        next(gen)
        assert len(live_pool_executors()) >= 1
        del gen       # no explicit close: the finalizer must tear down
        gc.collect()
        assert live_pool_executors() == []
