"""Wire protocol: canonical encoding, event envelopes, spec parsing."""

import json

import pytest

from repro.service import (
    ERR_BAD_SPEC,
    Event,
    JobSpec,
    QuerySpec,
    ServiceError,
    StatisticSpec,
    canonical_json,
    parse_spec,
)


class TestCanonicalJson:
    def test_sorted_keys_no_whitespace(self):
        assert canonical_json({"b": 1, "a": [2, 3]}) == '{"a":[2,3],"b":1}'

    def test_key_order_of_input_is_irrelevant(self):
        assert canonical_json({"x": 1, "y": 2}) == canonical_json(
            {"y": 2, "x": 1})


class TestEvent:
    def test_build_then_from_raw_roundtrips_bytes(self):
        event = Event.build(7, "snapshot", {"estimate": 1.5, "final": False})
        again = Event.from_raw(event.raw)
        assert again.raw == event.raw
        assert again.seq == 7
        assert again.type == "snapshot"
        assert again.payload == {"estimate": 1.5, "final": False}

    def test_raw_is_canonical(self):
        event = Event.build(1, "state", {"state": "running"})
        assert event.raw == canonical_json(
            {"payload": {"state": "running"}, "seq": 1, "type": "state"})
        # Canonical bytes survive a JSON-string round trip (the wire).
        assert json.loads(json.dumps(event.raw)) == event.raw


class TestParseStatisticSpec:
    def test_happy_path(self):
        spec = parse_spec({"kind": "statistic", "dataset": "d",
                           "statistic": "mean", "sigma": 0.05,
                           "B": 50, "n": 200})
        assert isinstance(spec, StatisticSpec)
        assert spec.dataset == "d"
        assert spec.statistic == "mean"
        assert spec.sigma == 0.05
        assert (spec.B, spec.n) == (50, 200)

    def test_unknown_statistic_is_bad_spec(self):
        with pytest.raises(ServiceError) as err:
            parse_spec({"kind": "statistic", "dataset": "d",
                        "statistic": "p50"})
        assert err.value.code == ERR_BAD_SPEC
        assert "p50" in str(err.value)

    def test_missing_dataset_is_bad_spec(self):
        with pytest.raises(ServiceError) as err:
            parse_spec({"kind": "statistic", "statistic": "mean"})
        assert err.value.code == ERR_BAD_SPEC

    @pytest.mark.parametrize("sigma", [0.0, -0.1, 1.5])
    def test_sigma_out_of_range(self, sigma):
        with pytest.raises(ServiceError) as err:
            parse_spec({"kind": "statistic", "dataset": "d",
                        "statistic": "mean", "sigma": sigma})
        assert err.value.code == ERR_BAD_SPEC


class TestParseQuerySpec:
    def test_happy_path(self):
        spec = parse_spec({
            "kind": "query", "table": "t", "group_by": "g",
            "select": [{"statistic": "mean", "column": "v"},
                       {"statistic": "sum", "column": "v", "name": "total"}],
            "where": ["v", ">", 10]})
        assert isinstance(spec, QuerySpec)
        assert spec.table == "t"
        assert spec.group_by == "g"
        assert len(spec.select) == 2
        assert spec.select[1].name == "total"
        assert spec.where == ("v", ">", 10)

    def test_empty_select_is_bad_spec(self):
        with pytest.raises(ServiceError) as err:
            parse_spec({"kind": "query", "table": "t", "select": []})
        assert err.value.code == ERR_BAD_SPEC

    def test_unknown_statistic_in_select(self):
        with pytest.raises(ServiceError) as err:
            parse_spec({"kind": "query", "table": "t",
                        "select": [{"statistic": "bogus", "column": "v"}]})
        assert err.value.code == ERR_BAD_SPEC

    def test_bad_where_shape(self):
        with pytest.raises(ServiceError) as err:
            parse_spec({"kind": "query", "table": "t",
                        "select": [{"statistic": "mean", "column": "v"}],
                        "where": ["v", ">"]})
        assert err.value.code == ERR_BAD_SPEC

    def test_unknown_where_operator(self):
        with pytest.raises(ServiceError) as err:
            parse_spec({"kind": "query", "table": "t",
                        "select": [{"statistic": "mean", "column": "v"}],
                        "where": ["v", "~=", 3]})
        assert err.value.code == ERR_BAD_SPEC
        assert "~=" in str(err.value)

    def test_group_by_must_be_string(self):
        with pytest.raises(ServiceError):
            parse_spec({"kind": "query", "table": "t", "group_by": 7,
                        "select": [{"statistic": "mean", "column": "v"}]})


class TestParseJobSpec:
    def test_happy_path_with_defaults(self):
        spec = parse_spec({"kind": "job", "cluster": "c",
                           "path": "/data/x"})
        assert isinstance(spec, JobSpec)
        assert spec.statistic == "mean"
        assert spec.on_unavailable is None

    def test_explicit_fields(self):
        spec = parse_spec({"kind": "job", "cluster": "c", "path": "/p",
                           "statistic": "median", "sigma": 0.1,
                           "on_unavailable": "skip"})
        assert spec.statistic == "median"
        assert spec.sigma == 0.1
        assert spec.on_unavailable == "skip"

    def test_missing_path_is_bad_spec(self):
        with pytest.raises(ServiceError) as err:
            parse_spec({"kind": "job", "cluster": "c"})
        assert err.value.code == ERR_BAD_SPEC


class TestParseSpecDispatch:
    def test_unknown_kind(self):
        with pytest.raises(ServiceError) as err:
            parse_spec({"kind": "mystery"})
        assert err.value.code == ERR_BAD_SPEC
        assert "mystery" in str(err.value)

    def test_non_object_spec(self):
        with pytest.raises(ServiceError) as err:
            parse_spec("statistic")
        assert err.value.code == ERR_BAD_SPEC
