"""Resume equivalence: a client that detaches and replays from its last
acked event id collects a byte-identical stream to one that never
disconnected.  Hypothesis drives the crash schedule — which poll pages
get "lost" before being committed — against a deterministic service run
(fixed master seed), so every divergence is a protocol bug, not noise."""

import asyncio

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EarlConfig
from repro.service import ApproxQueryService, LocalClient

CFG = dict(sigma=0.02, B_override=10, n_override=50,
           expansion_factor=1.5, max_iterations=6)


def make_service(event_capacity=4):
    service = ApproxQueryService(
        config=EarlConfig(**CFG), seed=99, batch_window=5.0,
        event_capacity=event_capacity)
    service.register_dataset(
        "pop", np.random.default_rng(7).exponential(2.0, 8000))
    return service


async def reference_stream():
    """The uninterrupted run: every event's canonical bytes, in order."""
    service = make_service()
    await service.start()
    try:
        client = LocalClient(service)
        sid = await client.submit({"kind": "statistic", "dataset": "pop",
                                   "statistic": "mean"})
        await service.flush()
        return [e.raw for e in await client.drain(sid)]
    finally:
        await service.stop()


async def interrupted_stream(crash_plan):
    """Re-run the identical session, crashing per ``crash_plan``.

    Each entry decides the fate of one non-empty poll page: ``True``
    means the client "crashes" before committing it — the page is
    dropped and the next poll resumes from the last committed id, so
    the service must replay those bytes verbatim.  The plan is a finite
    prefix; afterwards every page commits (so the run terminates).
    """
    service = make_service()
    await service.start()
    try:
        client = LocalClient(service)
        sid = await client.submit({"kind": "statistic", "dataset": "pop",
                                   "statistic": "mean"})
        await service.flush()
        committed_raws = []
        committed = 0
        fates = iter(crash_plan)
        while True:
            page = await client.poll(sid, after=committed, wait=True,
                                     timeout=5.0)
            if not page.events:
                if page.terminal:
                    return committed_raws
                continue
            if next(fates, False):
                # Crash before committing: replay must reproduce the
                # lost page bytes as a prefix (new events may follow).
                replay = await client.poll(sid, after=committed, wait=True,
                                           timeout=5.0)
                replayed = [e.raw for e in replay.events]
                lost = [e.raw for e in page.events]
                assert replayed[:len(lost)] == lost
                page = replay
            committed_raws.extend(e.raw for e in page.events)
            committed = page.events[-1].seq
    finally:
        await service.stop()


class TestResumeEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(crash_plan=st.lists(st.booleans(), max_size=12))
    def test_replay_from_last_acked_id_is_byte_identical(self, crash_plan):
        async def body():
            return await reference_stream(), \
                await interrupted_stream(crash_plan)

        reference, interrupted = asyncio.run(body())
        assert interrupted == reference

    def test_every_page_crashes_once_still_converges(self):
        async def body():
            return await reference_stream(), \
                await interrupted_stream([True] * 64)

        reference, interrupted = asyncio.run(body())
        assert interrupted == reference
