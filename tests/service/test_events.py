"""EventLog: monotonic ids, ack/prune, backpressure, sealing, resume
validation.  These are the invariants the service's loss/duplication
and resume guarantees rest on."""

import asyncio

import pytest

from repro.service import ERR_BAD_REQUEST, EventLog, ResumeGapError, ServiceError


def run(coro):
    return asyncio.run(coro)


class TestAppendRead:
    def test_seqs_start_at_one_and_are_contiguous(self):
        async def go():
            log = EventLog()
            seqs = [await log.append("snapshot", {"i": i}) for i in range(5)]
            events = await log.read()
            return seqs, events

        seqs, events = run(go())
        assert seqs == [1, 2, 3, 4, 5]
        assert [e.seq for e in events] == [1, 2, 3, 4, 5]
        assert [e.payload["i"] for e in events] == [0, 1, 2, 3, 4]

    def test_read_after_skips_acked_prefix(self):
        async def go():
            log = EventLog()
            for i in range(4):
                await log.append("snapshot", {"i": i})
            head = await log.read(after=0)
            tail = await log.read(after=2)
            return head, tail, log.acked, log.retained

        head, tail, acked, retained = run(go())
        assert [e.seq for e in head] == [1, 2, 3, 4]
        assert [e.seq for e in tail] == [3, 4]
        assert acked == 2
        assert retained == 2   # 1 and 2 pruned

    def test_rereading_unacked_events_is_a_replay(self):
        async def go():
            log = EventLog()
            for i in range(3):
                await log.append("snapshot", {"i": i})
            first = await log.read(after=0)
            again = await log.read(after=0)
            return first, again

        first, again = run(go())
        assert [e.raw for e in first] == [e.raw for e in again]

    def test_resume_below_ack_floor_raises_gap(self):
        async def go():
            log = EventLog()
            for i in range(4):
                await log.append("snapshot", {"i": i})
            await log.read(after=3)   # acks/prunes 1..3
            with pytest.raises(ResumeGapError) as err:
                await log.read(after=1)
            return err.value

        err = run(go())
        assert err.after == 1
        assert err.acked == 3

    def test_read_past_end_is_rejected(self):
        async def go():
            log = EventLog()
            await log.append("snapshot", {})
            with pytest.raises(ServiceError) as ahead:
                await log.read(after=7)
            with pytest.raises(ServiceError) as negative:
                await log.read(after=-1)
            assert ahead.value.code == ERR_BAD_REQUEST
            assert negative.value.code == ERR_BAD_REQUEST

        run(go())


class TestBackpressure:
    def test_append_blocks_when_full_until_reader_acks(self):
        async def go():
            log = EventLog(capacity=2)
            await log.append("snapshot", {"i": 0})
            await log.append("snapshot", {"i": 1})
            blocked = asyncio.ensure_future(log.append("snapshot", {"i": 2}))
            await asyncio.sleep(0.02)
            assert not blocked.done()    # producer is parked on capacity
            events = await log.read(after=0)
            await log.read(after=events[-1].seq)   # ack frees a slot
            seq = await asyncio.wait_for(blocked, timeout=2)
            return seq, log.max_retained

        seq, max_retained = run(go())
        assert seq == 3
        assert max_retained <= 2

    def test_force_append_bypasses_capacity(self):
        async def go():
            log = EventLog(capacity=1)
            await log.append("snapshot", {"i": 0})
            seq = await log.append("state", {"state": "failed"}, force=True)
            return seq, log.retained

        seq, retained = run(go())
        assert seq == 2
        assert retained == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)


class TestSealing:
    def test_seal_stops_appends_and_wakes_waiters(self):
        async def go():
            log = EventLog(capacity=1)
            await log.append("snapshot", {"i": 0})
            blocked = asyncio.ensure_future(log.append("snapshot", {"i": 1}))
            await asyncio.sleep(0.02)
            await log.seal()
            dropped = await asyncio.wait_for(blocked, timeout=2)
            late = await log.append("snapshot", {"i": 2})
            return dropped, late, log.sealed, log.last_seq

        dropped, late, sealed, last_seq = run(go())
        assert dropped is None and late is None
        assert sealed
        assert last_seq == 1   # nothing slipped in after the seal

    def test_long_poll_returns_on_seal(self):
        async def go():
            log = EventLog()
            waiter = asyncio.ensure_future(
                log.read(after=0, wait=True, timeout=30))
            await asyncio.sleep(0.02)
            await log.seal()
            return await asyncio.wait_for(waiter, timeout=2)

        assert run(go()) == []


class TestLongPoll:
    def test_wait_returns_when_event_arrives(self):
        async def go():
            log = EventLog()
            waiter = asyncio.ensure_future(
                log.read(after=0, wait=True, timeout=30))
            await asyncio.sleep(0.02)
            await log.append("snapshot", {"i": 0})
            return await asyncio.wait_for(waiter, timeout=2)

        events = run(go())
        assert [e.seq for e in events] == [1]

    def test_wait_times_out_empty(self):
        async def go():
            log = EventLog()
            return await log.read(after=0, wait=True, timeout=0.05)

        assert run(go()) == []

    def test_no_wait_returns_immediately_empty(self):
        async def go():
            log = EventLog()
            return await log.read(after=0)

        assert run(go()) == []


class TestAccounting:
    def test_counters_track_appends_and_high_water(self):
        async def go():
            log = EventLog(capacity=8)
            for i in range(5):
                await log.append("snapshot", {"i": i})
            await log.read(after=5)
            for i in range(2):
                await log.append("snapshot", {"i": i})
            return log.appended, log.max_retained, log.retained

        appended, high_water, retained = run(go())
        assert appended == 7
        assert high_water == 5
        assert retained == 2
