"""Concurrency load harness (slow tier): 1,000+ concurrent sessions
over ONE shared pilot, each drained by its own client task.

Asserts the service's hard guarantees at scale:

* zero lost or duplicated events — every session's ids are the exact
  contiguous sequence 1..k;
* exactly one final snapshot and a clean DONE per session;
* per-session buffers stay bounded (capacity + the forced terminal
  event) even with clients acking at wildly different speeds;
* detach/resume mid-stream replays byte-identical events;
* the whole fleet shares a single engine run (one batch runner thread).

Writes poll-latency percentiles as JSON to ``$SERVICE_LOAD_REPORT``
(CI uploads it as an artifact) and prints them to the test log.

Run with ``make bench-service`` or
``pytest -m slow tests/service/test_load.py``.
"""

import asyncio
import json
import os
import time

import numpy as np
import pytest

from repro.core import EarlConfig
from repro.service import (
    EVENT_FINAL,
    STATE_DONE,
    ApproxQueryService,
    LocalClient,
)

pytestmark = pytest.mark.slow

N_SESSIONS = 1_000
EVENT_CAPACITY = 8
STATISTICS = ["mean", "sum", "std", "min", "max", "count", "median", "p90"]
CFG = dict(sigma=0.05, B_override=10, n_override=100,
           expansion_factor=2.0, max_iterations=4)


async def drain_session(client, sid, latencies, *, resume_once=False):
    """Ack-as-you-go consumer; optionally crashes once and resumes."""
    raws, committed, crashed = [], 0, not resume_once
    while True:
        t0 = time.perf_counter()
        page = await client.poll(sid, after=committed, wait=True,
                                 timeout=10.0)
        latencies.append(time.perf_counter() - t0)
        if not page.events:
            if page.terminal:
                return raws
            continue
        if not crashed:
            crashed = True
            # Detach before committing: the page is lost; the replay
            # from the committed floor must reproduce it byte for byte.
            lost = [e.raw for e in page.events]
            replay = await client.poll(sid, after=committed, wait=True,
                                       timeout=10.0)
            replayed = [e.raw for e in replay.events]
            assert replayed[:len(lost)] == lost
            page = replay
        raws.extend(e.raw for e in page.events)
        committed = page.events[-1].seq


def percentile_report(latencies, elapsed, n_sessions):
    lat = np.sort(np.asarray(latencies))

    def pct(q):
        return float(lat[min(len(lat) - 1, int(q / 100 * len(lat)))])

    return {
        "sessions": n_sessions,
        "polls": len(latencies),
        "elapsed_seconds": round(elapsed, 3),
        "poll_latency_seconds": {
            "p50": pct(50), "p90": pct(90), "p99": pct(99),
            "max": float(lat[-1]),
        },
    }


class TestThousandConcurrentSessions:
    def test_load_harness(self):
        async def body():
            service = ApproxQueryService(
                config=EarlConfig(**CFG), seed=2024,
                batch_window=5.0, event_capacity=EVENT_CAPACITY,
                max_batch=N_SESSIONS, default_poll_timeout=10.0)
            service.register_dataset(
                "pop", np.random.default_rng(1).lognormal(1.0, 0.6, 50_000))
            await service.start()
            try:
                client = LocalClient(service)
                t0 = time.perf_counter()
                sids = [await client.submit(
                    {"kind": "statistic", "dataset": "pop",
                     "statistic": STATISTICS[i % len(STATISTICS)]})
                    for i in range(N_SESSIONS)]
                await service.flush()   # ONE dispatch: one shared pilot

                latencies = []
                streams = await asyncio.gather(*[
                    drain_session(client, sid, latencies,
                                  resume_once=(i % 25 == 0))
                    for i, sid in enumerate(sids)])
                elapsed = time.perf_counter() - t0

                batch_threads = [t.name for t in service._threads
                                 if t.name.startswith("svc-batch-")]
                stats = await client.stats()
                return streams, batch_threads, stats, latencies, elapsed
            finally:
                await service.stop()

        streams, batch_threads, stats, latencies, elapsed = \
            asyncio.run(body())

        # One engine run for the whole fleet: the shared-pilot batch.
        assert batch_threads == ["svc-batch-pop"]

        assert len(streams) == N_SESSIONS
        for raws in streams:
            events = [json.loads(raw) for raw in raws]
            seqs = [e["seq"] for e in events]
            # Zero lost, zero duplicated: ids are exactly 1..k.
            assert seqs == list(range(1, len(seqs) + 1))
            assert sum(e["type"] == EVENT_FINAL for e in events) == 1
            assert events[-1]["payload"] == {"state": STATE_DONE}

        # Bounded buffers: never more than capacity plus the forced
        # terminal event, for any session, at any point.
        assert stats["max_retained_events"] <= EVENT_CAPACITY + 1
        assert stats["states"] == {STATE_DONE: N_SESSIONS}

        report = percentile_report(latencies, elapsed, N_SESSIONS)
        print("\nservice load report:", json.dumps(report, indent=2))
        out = os.environ.get("SERVICE_LOAD_REPORT")
        if out:
            with open(out, "w") as fh:
                json.dump(report, fh, indent=2)
