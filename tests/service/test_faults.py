"""Fault injection through the service: node failures surface as
events (never hangs), on_unavailable="fail" turns into a FAILED
session, and cancelling a cluster-backed run charges only the
completed iterations — verified against a direct EarlJob run with the
session's derived seed."""

import asyncio
from dataclasses import replace

import pytest

from repro.cluster import Cluster, FailureInjector
from repro.core import EarlConfig, EarlJob
from repro.service import (
    EVENT_ERROR,
    EVENT_FINAL,
    EVENT_SNAPSHOT,
    STATE_CANCELLED,
    STATE_DONE,
    STATE_FAILED,
    ApproxQueryService,
    LocalClient,
)
from repro.util.rng import ensure_rng
from repro.workloads import load_stand_in

MASTER_SEED = 42
#: Never-met bound: the job iterates until cancelled (cancel test).
LOOP_CFG = dict(sigma=0.001, B_override=20, n_override=200,
                expansion_factor=1.6, max_iterations=10)
#: Achievable bound: the job completes despite data loss (skip test).
DONE_CFG = dict(sigma=0.1, B_override=20, n_override=400,
                max_iterations=8)


#: With this layout the file spans 12 blocks; losing these three nodes
#: leaves replication 2 covering only ~91% of them — partial data loss,
#: not a total outage.
LOST_NODES = ["node-0", "node-1", "node-2"]


def make_cluster(seed=9):
    cluster = Cluster(n_nodes=5, block_size=16 * 1024, replication=2,
                      seed=seed)
    ds = load_stand_in(cluster, "/data/faults", logical_gb=5.0,
                       records=12_000, seed=seed + 1)
    return cluster, ds


def first_session_seed(master=MASTER_SEED):
    """The seed the service derives for its first submission."""
    return int(ensure_rng(master).integers(0, 2 ** 63 - 1))


async def run_job_session(spec_extra, config, *, event_capacity=64,
                          break_nodes=(), cancel_after_snapshots=None):
    """Submit one job spec against a (possibly degraded) cluster.

    Returns ``(events, status)`` — every committed event plus the final
    status document.  With ``cancel_after_snapshots`` the client cancels
    once it has acked that many snapshot events (the small event
    capacity keeps the engine at most a couple events ahead)."""
    cluster, ds = make_cluster()
    if break_nodes:
        FailureInjector(cluster, seed=1).fail_nodes(break_nodes)
    service = ApproxQueryService(config=EarlConfig(**config),
                                 seed=MASTER_SEED,
                                 event_capacity=event_capacity)
    service.register_cluster("sim", cluster)
    await service.start()
    try:
        client = LocalClient(service)
        spec = {"kind": "job", "cluster": "sim", "path": ds.path,
                "statistic": "mean", **spec_extra}
        sid = await client.submit(spec)
        events, after, snapshots = [], 0, 0
        while True:
            page = await client.poll(sid, after=after, wait=True,
                                     timeout=5.0)
            events.extend(page.events)
            if page.events:
                after = page.events[-1].seq
                snapshots += sum(e.type == EVENT_SNAPSHOT
                                 for e in page.events)
                if (cancel_after_snapshots is not None
                        and snapshots >= cancel_after_snapshots):
                    await client.cancel(sid)
                    cancel_after_snapshots = None   # only once
                continue
            if page.terminal:
                break
        return events, await client.status(sid)
    finally:
        await service.stop()


def run(coro, timeout=60.0):
    # A fault that hangs the session would hang the drain loop; the
    # hard timeout turns "hang" into a test failure.
    return asyncio.run(asyncio.wait_for(coro, timeout))


class TestSkipSemantics:
    def test_data_loss_with_skip_still_completes(self):
        events, status = run(run_job_session(
            {"on_unavailable": "skip"}, DONE_CFG, break_nodes=LOST_NODES))
        assert status["state"] == STATE_DONE
        assert not any(e.type == EVENT_ERROR for e in events)
        final = [e for e in events if e.type == EVENT_FINAL][0].payload
        assert final["final"] is True
        assert final["estimate"] > 0
        assert status["cost_seconds"] == pytest.approx(
            final["cost_total_seconds"])


class TestFailSemantics:
    def test_data_loss_with_fail_surfaces_as_error_event(self):
        events, status = run(run_job_session(
            {"on_unavailable": "fail"}, DONE_CFG, break_nodes=LOST_NODES))
        assert status["state"] == STATE_FAILED
        errors = [e for e in events if e.type == EVENT_ERROR]
        assert len(errors) == 1
        assert "lost its input" in errors[0].payload["message"]
        assert status["error_detail"] == errors[0].payload["message"]
        assert not any(e.type == EVENT_FINAL for e in events)
        # The terminal state event carries the failure too.
        assert events[-1].payload["state"] == STATE_FAILED


class TestCancelLedger:
    def test_cancel_charges_only_completed_iterations(self):
        events, status = run(run_job_session(
            {}, LOOP_CFG, event_capacity=2, cancel_after_snapshots=2))
        assert status["state"] == STATE_CANCELLED
        snapshots = [e.payload for e in events
                     if e.type in (EVENT_SNAPSHOT, EVENT_FINAL)]
        assert len(snapshots) >= 2
        assert not any(e.type == EVENT_FINAL for e in events)

        # Reference: the identical job driven directly, using the seed
        # the service derived for its first submission.
        cluster, ds = make_cluster()
        cfg = replace(EarlConfig(**LOOP_CFG), seed=first_session_seed())
        full = list(EarlJob(cluster, ds.path, statistic="mean",
                            config=cfg).stream())
        assert len(full) > len(snapshots)

        # Byte-level prefix equality: the service session is the same
        # run, stopped early.
        assert snapshots == [s.to_dict() for s in full[:len(snapshots)]]
        # The ledger stops at the last completed iteration: the charge
        # equals that snapshot's running total, strictly below the
        # uncancelled run's cost.
        assert status["cost_seconds"] == pytest.approx(
            snapshots[-1]["cost_total_seconds"])
        assert status["cost_seconds"] < full[-1].cost_total_seconds
