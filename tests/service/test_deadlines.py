"""Service-stratum fault tolerance: per-query deadlines finalize with
the best-so-far bounds, transient engine failures retry with backoff
(``retry`` events), and the one-shot ``degraded`` event marks sessions
that lost sample rows mid-run — degrade, don't die (§3.4)."""

import asyncio

import numpy as np
import pytest

from repro.cluster import Cluster, FailureInjector
from repro.core import EarlConfig
from repro.service import (
    ERR_BAD_SPEC,
    EVENT_DEGRADED,
    EVENT_ERROR,
    EVENT_FINAL,
    EVENT_RETRY,
    EVENT_SNAPSHOT,
    STATE_DONE,
    STATE_FAILED,
    ApproxQueryService,
    LocalClient,
    ServiceError,
    parse_spec,
)
from repro.workloads import load_stand_in

#: Never-met bound: the job keeps iterating until stopped.
LOOP_CFG = dict(sigma=0.001, B_override=20, n_override=200,
                expansion_factor=1.6, max_iterations=10)
#: Achievable bound (used by the retry tests).
DONE_CFG = dict(sigma=0.1, B_override=20, n_override=400,
                max_iterations=8)
#: Partial data loss, not a total outage (mirrors test_faults.py).
LOST_NODES = ["node-0", "node-1", "node-2"]


class FakeClock:
    """Manually-advanced monotonic clock (thread-safe: attribute read)."""

    def __init__(self) -> None:
        self.value = 0.0

    def __call__(self) -> float:
        return self.value

    def advance(self, seconds: float) -> None:
        self.value += seconds


def make_cluster(seed=9):
    cluster = Cluster(n_nodes=5, block_size=16 * 1024, replication=2,
                      seed=seed)
    ds = load_stand_in(cluster, "/data/deadline", logical_gb=5.0,
                       records=12_000, seed=seed + 1)
    return cluster, ds


def run(coro, timeout=60.0):
    # A fault-tolerance bug that hangs a session must fail, not hang.
    return asyncio.run(asyncio.wait_for(coro, timeout))


class TestDeadlineSpec:
    def test_deadline_round_trips_on_every_kind(self):
        spec = parse_spec({"kind": "statistic", "dataset": "d",
                           "statistic": "mean", "deadline_seconds": 2.5})
        assert spec.deadline_seconds == 2.5
        spec = parse_spec({"kind": "job", "cluster": "c", "path": "/p",
                           "deadline_seconds": 1})
        assert spec.deadline_seconds == 1.0
        spec = parse_spec({
            "kind": "query", "table": "t", "deadline_seconds": 0.75,
            "select": [{"statistic": "mean", "column": "v"}]})
        assert spec.deadline_seconds == 0.75

    def test_omitted_deadline_is_none(self):
        spec = parse_spec({"kind": "statistic", "dataset": "d",
                           "statistic": "mean"})
        assert spec.deadline_seconds is None

    @pytest.mark.parametrize("bad", [0, -1.0, "soon", float("inf"),
                                     float("nan")])
    def test_invalid_deadline_rejected(self, bad):
        with pytest.raises(ServiceError) as err:
            parse_spec({"kind": "statistic", "dataset": "d",
                        "statistic": "mean", "deadline_seconds": bad})
        assert err.value.code == ERR_BAD_SPEC


class TestDeadlineFinalization:
    async def _deadline_run(self):
        cluster, ds = make_cluster()
        clock = FakeClock()
        service = ApproxQueryService(config=EarlConfig(**LOOP_CFG),
                                     seed=42, event_capacity=2,
                                     sweep_interval=3600.0, clock=clock)
        service.register_cluster("sim", cluster)
        await service.start()
        try:
            client = LocalClient(service)
            sid = await client.submit({"kind": "job", "cluster": "sim",
                                       "path": ds.path,
                                       "deadline_seconds": 50.0})
            events, after, advanced = [], 0, False
            while True:
                page = await client.poll(sid, after=after, wait=True,
                                         timeout=5.0)
                events.extend(page.events)
                if page.events:
                    after = page.events[-1].seq
                    if not advanced and any(e.type == EVENT_SNAPSHOT
                                            for e in events):
                        clock.advance(100.0)   # blow through the deadline
                        advanced = True
                    continue
                if page.terminal:
                    return events, await client.status(sid)
        finally:
            await service.stop()

    def test_breach_finalizes_with_best_so_far_bounds(self):
        events, status = run(self._deadline_run())
        assert status["state"] == STATE_DONE
        assert not any(e.type == EVENT_ERROR for e in events)
        finals = [e for e in events if e.type == EVENT_FINAL]
        assert len(finals) == 1
        payload = finals[0].payload
        # Best-so-far: a real (partial) answer with valid bounds,
        # explicitly marked as deadline-clipped.
        assert payload["deadline_exceeded"] is True
        assert payload["final"] is True
        assert payload["ci_low"] <= payload["estimate"] <= payload["ci_high"]
        # The never-met bound would have run all 10 iterations.
        assert payload["iteration"] < LOOP_CFG["max_iterations"]

    def test_breach_before_first_snapshot_fails_honestly(self):
        async def scenario():
            clock = FakeClock()
            service = ApproxQueryService(seed=0, sweep_interval=3600.0,
                                         clock=clock)
            await service.start()
            try:
                spec = parse_spec({"kind": "statistic", "dataset": "d",
                                   "statistic": "mean",
                                   "deadline_seconds": 5.0})
                rec = service._new_record(spec, clock())
                await service._mark_running(rec)
                clock.advance(10.0)
                await service.sweep()
                return rec
            finally:
                await service.stop()

        rec = run(scenario())
        assert rec.state == STATE_FAILED
        assert "deadline" in rec.error


class TestEngineRetries:
    async def _broken_run(self, *, retries, recover_on_retry=False):
        cluster, ds = make_cluster()
        FailureInjector(cluster, seed=1).fail_nodes(LOST_NODES)
        service = ApproxQueryService(config=EarlConfig(**DONE_CFG),
                                     seed=42, engine_retries=retries,
                                     retry_backoff=0.01)
        service.register_cluster("sim", cluster)
        await service.start()
        try:
            client = LocalClient(service)
            sid = await client.submit({"kind": "job", "cluster": "sim",
                                       "path": ds.path,
                                       "on_unavailable": "fail"})
            events, after, recovered = [], 0, False
            while True:
                page = await client.poll(sid, after=after, wait=True,
                                         timeout=5.0)
                events.extend(page.events)
                if page.events:
                    after = page.events[-1].seq
                    if (recover_on_retry and not recovered
                            and any(e.type == EVENT_RETRY
                                    for e in events)):
                        for node in LOST_NODES:
                            cluster.recover_node(node)
                        recovered = True
                    continue
                if page.terminal:
                    return events, await client.status(sid)
        finally:
            await service.stop()

    def test_persistent_failure_exhausts_retries_then_fails(self):
        events, status = run(self._broken_run(retries=2))
        assert status["state"] == STATE_FAILED
        retry_events = [e for e in events if e.type == EVENT_RETRY]
        assert [e.payload["attempt"] for e in retry_events] == [1, 2]
        assert all(e.payload["max_attempts"] == 2 for e in retry_events)
        assert all("lost its input" in e.payload["error"]
                   for e in retry_events)
        errors = [e for e in events if e.type == EVENT_ERROR]
        assert len(errors) == 1
        # The terminal error comes after every retry attempt.
        assert errors[0].seq > retry_events[-1].seq

    def test_transient_failure_recovers_and_completes(self):
        events, status = run(
            self._broken_run(retries=8, recover_on_retry=True))
        assert status["state"] == STATE_DONE
        assert any(e.type == EVENT_RETRY for e in events)
        assert not any(e.type == EVENT_ERROR for e in events)
        finals = [e for e in events if e.type == EVENT_FINAL]
        assert len(finals) == 1 and finals[0].payload["estimate"] > 0

    def test_zero_retries_preserves_fail_fast(self):
        events, status = run(self._broken_run(retries=0))
        assert status["state"] == STATE_FAILED
        assert not any(e.type == EVENT_RETRY for e in events)


class TestDegradedEvent:
    async def _lossy_query(self):
        rng = np.random.default_rng(3)
        table = {"k": rng.choice(["a", "b"], size=200_000),
                 "v": rng.lognormal(3.0, 1.0, 200_000)}
        # Small initial sample + slow growth: ~15 expansion rounds for
        # any session seed, so the loss reported after round 1 lands at
        # a round boundary well before the run finishes.
        service = ApproxQueryService(
            config=EarlConfig(sigma=0.01, n_override=500, B_override=30,
                              expansion_factor=1.3, max_iterations=30),
            seed=42, event_capacity=2)
        service.register_table("t", table)
        await service.start()
        try:
            client = LocalClient(service)
            sid = await client.submit({
                "kind": "query", "table": "t", "group_by": "k",
                "select": [{"statistic": "mean", "column": "v"}]})
            events, after, lost = [], 0, False
            while True:
                page = await client.poll(sid, after=after, wait=True,
                                         timeout=5.0)
                events.extend(page.events)
                if page.events:
                    after = page.events[-1].seq
                    if not lost and any(e.type == EVENT_SNAPSHOT
                                        for e in events):
                        # The planned engine rides the record; losing
                        # rows mid-run is reported straight to it.
                        service.store.get(sid).engine.report_loss(0.4)
                        lost = True
                    continue
                if page.terminal:
                    return events, await client.status(sid)
        finally:
            await service.stop()

    def test_loss_emits_one_degraded_event_and_completes(self):
        events, status = run(self._lossy_query())
        assert status["state"] == STATE_DONE
        degraded = [e for e in events if e.type == EVENT_DEGRADED]
        assert len(degraded) == 1
        assert 0.0 < degraded[0].payload["lost_fraction"] < 1.0
        finals = [e for e in events if e.type == EVENT_FINAL]
        assert len(finals) == 1
        assert finals[0].payload["degraded"] is True
        # The degraded marker precedes the first degraded payload.
        first_degraded_payload = next(
            e for e in events
            if e.type in (EVENT_SNAPSHOT, EVENT_FINAL)
            and e.payload.get("degraded"))
        assert degraded[0].seq < first_degraded_payload.seq
