"""Crash recovery: the durable service restarts without losing a byte.

The tentpole guarantee under test: kill the service mid-query, restart
it on the same store directory, and a client resuming from its last
event id sees the exact byte stream an uninterrupted run would have
produced — across statistic batches, shared-window grouped queries,
pending sessions and already-terminal tails.  When replay is
impossible (the source data changed under the store), the session
finalizes honestly as ``degraded`` instead of silently vanishing.

Two layers: in-process tests use :meth:`ApproxQueryService.crash` (the
simulated SIGKILL — nothing is flushed or finalized beyond what the
WAL already holds); one test SIGKILLs a real server subprocess and
resumes over TCP through the reconnecting :class:`ServiceClient`.
"""

import asyncio
import os
import signal
import subprocess
import sys

import numpy as np
import pytest

from repro.core import EarlConfig
from repro.service import (
    EVENT_FINAL,
    EVENT_STATE,
    STATE_DONE,
    STATE_PENDING,
    ApproxQueryService,
    DurableSessionStore,
    LocalClient,
    ResumeGapError,
    ServiceClient,
    ServiceError,
    ServiceServer,
)

#: Forces genuinely multi-round streams (a bare tiny sigma would take
#: the exact-computation fallback and finish in a single snapshot).
CFG = dict(sigma=0.01, B_override=15, n_override=100,
           expansion_factor=1.6, max_iterations=12)

SPECS = [
    {"kind": "statistic", "dataset": "pop", "statistic": "mean"},
    {"kind": "statistic", "dataset": "pop", "statistic": "std"},
    {"kind": "query", "table": "orders", "group_by": "region",
     "select": [{"statistic": "mean", "column": "amount"}]},
]


def population(seed=0, size=20_000):
    return np.random.default_rng(seed).lognormal(1.0, 0.5, size)


def orders_table():
    rng = np.random.default_rng(3)
    return {"region": np.repeat(["east", "west"], 3000),
            "amount": rng.exponential(40.0, 6000)}


def build_service(store, *, event_capacity=4, pop=None):
    """The deterministic service both generations (and the reference
    run) are built from.  The tiny event capacity keeps engines at
    most a few events ahead of the client, so a crash after partial
    consumption reliably lands mid-query."""
    service = ApproxQueryService(
        config=EarlConfig(**CFG), seed=1234, batch_window=5.0,
        event_capacity=event_capacity, store=store)
    service.register_dataset("pop", population() if pop is None else pop)
    service.register_table("orders", orders_table())
    return service


def run(coro, timeout=120.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


async def drain_all(client, sids, cursors, collected):
    """Round-robin drain every session to its sealed end.

    Sessions sharing one dispatch window share one runner thread, and
    the tiny event capacity means a full log blocks it — so draining
    one session at a time can deadlock.  Interleaving the polls keeps
    every log moving, like one client following all its sessions.
    """
    done = set()
    while len(done) < len(sids):
        for sid in sids:
            if sid in done:
                continue
            page = await client.poll(sid, after=cursors[sid],
                                     wait=True, timeout=1.0)
            for event in page.events:
                collected[sid].append(event.raw)
                cursors[sid] = event.seq
            if not page.events and page.terminal:
                done.add(sid)


async def reference_streams(tmp_path, specs):
    """Per-session raw bytes of one uninterrupted run."""
    store = DurableSessionStore(str(tmp_path / "ref"), fsync=False)
    service = build_service(store)
    await service.start()
    try:
        client = LocalClient(service)
        sids = [await client.submit(spec) for spec in specs]
        await service.flush()
        cursors = {sid: 0 for sid in sids}
        collected = {sid: [] for sid in sids}
        await drain_all(client, sids, cursors, collected)
        return collected
    finally:
        await service.stop()


async def consume_until(client, cursors, collected, *, minimum):
    """Poll every session (acking as it goes, like a real client)
    until each has yielded at least ``minimum`` events.  Every session
    is polled each sweep — see :func:`drain_all` for why."""
    while any(len(collected[sid]) < minimum for sid in cursors):
        for sid in cursors:
            page = await client.poll(sid, after=cursors[sid],
                                     wait=True, timeout=0.2)
            for event in page.events:
                collected[sid].append(event.raw)
                cursors[sid] = event.seq


class TestCrashRecovery:
    def test_streams_byte_identical_across_crash(self, tmp_path):
        async def scenario():
            reference = await reference_streams(tmp_path, SPECS)

            service = build_service(
                DurableSessionStore(str(tmp_path / "live"), fsync=False))
            await service.start()
            client = LocalClient(service)
            sids = [await client.submit(spec) for spec in SPECS]
            await service.flush()
            cursors = {sid: 0 for sid in sids}
            collected = {sid: [] for sid in sids}
            await consume_until(client, cursors, collected, minimum=5)
            traces_before = {sid: service.store.get(sid).trace_id
                             for sid in sids}
            await service.crash()

            restarted = build_service(
                DurableSessionStore(str(tmp_path / "live"), fsync=False))
            await restarted.start()
            client = LocalClient(restarted)
            try:
                traces_after = {sid: restarted.store.get(sid).trace_id
                                for sid in sids}
                await drain_all(client, sids, cursors, collected)
                # Fresh ids never collide with recovered sessions.
                new_sid = await client.submit(SPECS[0])
            finally:
                await restarted.stop()
            return (reference, sids, collected, new_sid,
                    traces_before, traces_after)

        (reference, sids, collected, new_sid,
         traces_before, traces_after) = run(scenario())
        assert set(sids) == set(reference)
        for sid in sids:
            assert collected[sid] == reference[sid]
        assert new_sid == "s000004"
        # The WAL carries each session's telemetry trace id, so a
        # replay-resumed session continues the *same* trace.
        for sid in sids:
            assert traces_before[sid] is not None
            assert traces_after[sid] == traces_before[sid]

    def test_pending_session_readmits_and_completes(self, tmp_path):
        async def scenario():
            reference = await reference_streams(tmp_path, SPECS[:1])

            service = build_service(
                DurableSessionStore(str(tmp_path / "live"), fsync=False))
            await service.start()
            client = LocalClient(service)
            sid = await client.submit(SPECS[0])
            # No flush: the crash lands while the session is PENDING.
            assert (await client.status(sid))["state"] == STATE_PENDING
            await service.crash()

            restarted = build_service(
                DurableSessionStore(str(tmp_path / "live"), fsync=False))
            await restarted.start()
            client = LocalClient(restarted)
            try:
                assert (await client.status(sid))["state"] == STATE_PENDING
                await restarted.flush()
                events = await client.drain(sid)
            finally:
                await restarted.stop()
            return reference[sid], sid, events

        reference, sid, events = run(scenario())
        assert [e.raw for e in events] == reference
        pendings = [e for e in events if e.type == EVENT_STATE
                    and e.payload == {"state": STATE_PENDING}]
        assert len(pendings) == 1   # re-admission does not re-announce

    def test_terminal_tail_served_after_restart(self, tmp_path):
        async def scenario():
            store = DurableSessionStore(str(tmp_path / "live"),
                                        fsync=False)
            service = build_service(store, event_capacity=64)
            await service.start()
            client = LocalClient(service)
            sid = await client.submit(SPECS[0])
            await service.flush()
            # Let the session run to completion, acking only the first
            # two events — everything after stays retained as the tail.
            while (await client.status(sid))["state"] != STATE_DONE:
                await asyncio.sleep(0.05)
            page = await client.poll(sid, after=2)
            tail = [e.raw for e in page.events]
            assert tail
            await service.crash()

            restarted = build_service(
                DurableSessionStore(str(tmp_path / "live"), fsync=False),
                event_capacity=64)
            await restarted.start()
            client = LocalClient(restarted)
            try:
                status = await client.status(sid)
                with pytest.raises(ResumeGapError) as gap:
                    await client.poll(sid, after=1)
                events = await client.drain(sid, after=2)
            finally:
                await restarted.stop()
            return tail, status, events, gap.value

        tail, status, events, gap = run(scenario())
        assert status["state"] == STATE_DONE
        assert [e.raw for e in events] == tail
        # The persisted ack floor still guards resume: polling below it
        # after a full restart raises the typed gap error.
        assert gap.after == 1
        assert gap.acked == 2

    def test_changed_source_degrades_honestly(self, tmp_path):
        async def scenario():
            service = build_service(
                DurableSessionStore(str(tmp_path / "live"), fsync=False))
            await service.start()
            client = LocalClient(service)
            sid = await client.submit(SPECS[0])
            await service.flush()
            cursors, collected = {sid: 0}, {sid: []}
            await consume_until(client, cursors, collected, minimum=4)
            await service.crash()

            # The dataset is different after the restart: replay would
            # silently produce different bytes, so it must not happen.
            restarted = build_service(
                DurableSessionStore(str(tmp_path / "live"), fsync=False),
                pop=population(seed=1))
            await restarted.start()
            client = LocalClient(restarted)
            try:
                events = await client.drain(sid, after=cursors[sid])
                status = await client.status(sid)
            finally:
                await restarted.stop()
            return events, status

        events, status = run(scenario())
        # Never vanishes: the session finalizes with the best persisted
        # answer, honestly marked degraded, with the reason attached.
        assert status["state"] == STATE_DONE
        final = [e for e in events if e.type == EVENT_FINAL]
        assert len(final) == 1
        payload = final[0].payload
        assert payload["final"] is True
        assert payload["degraded"] is True
        assert "changed since the original run" in payload["recovery"]
        assert events[-1].payload == {"state": STATE_DONE}


class TestSigkillSubprocess:
    """The real thing: SIGKILL a server process mid-query, restart it
    on the same store, resume over TCP with one reconnecting client."""

    HELPER = os.path.join(os.path.dirname(__file__), "_restart_server.py")

    def _spawn(self, store_dir, port, portfile):
        if os.path.exists(portfile):
            os.remove(portfile)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(self.HELPER), os.pardir,
                           os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        return subprocess.Popen(
            [sys.executable, self.HELPER, store_dir, str(port), portfile],
            env=env)

    async def _wait_for_port(self, portfile, proc, timeout=30.0):
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while not os.path.exists(portfile):
            if proc.poll() is not None:
                raise RuntimeError(
                    f"server exited early (rc={proc.returncode})")
            if loop.time() > deadline:
                raise RuntimeError("server never published its port")
            await asyncio.sleep(0.05)
        with open(portfile, encoding="utf-8") as fh:
            host, port = fh.read().split()
        return host, int(port)

    def test_sigkill_restart_resumes_byte_identical(self, tmp_path):
        spec = {"kind": "statistic", "dataset": "pop",
                "statistic": "mean"}
        portfile = str(tmp_path / "port")

        async def run_server(store_dir, body, *, port=0):
            proc = self._spawn(store_dir, port, portfile)
            try:
                host, bound = await self._wait_for_port(portfile, proc)
                return await body(proc, host, bound)
            finally:
                if proc.poll() is None:
                    proc.send_signal(signal.SIGTERM)
                    proc.wait(timeout=10)

        async def reference(proc, host, port):
            client = await ServiceClient.connect(host, port)
            sid = await client.submit(spec)
            events = [e.raw for e in await client.drain(sid)]
            await client.close()
            return events

        async def scenario():
            ref = await run_server(str(tmp_path / "ref"), reference)
            store_dir = str(tmp_path / "live")

            async def interrupted(proc, host, port):
                client = await ServiceClient.connect(
                    host, port, connect_timeout=5.0, max_reconnects=8)
                sid = await client.submit(spec)
                got, cursor = [], 0
                while len(got) < 3:
                    page = await client.poll(sid, after=cursor,
                                             wait=True, timeout=5.0)
                    for event in page.events:
                        got.append(event.raw)
                        cursor = event.seq
                proc.kill()                      # the actual SIGKILL
                proc.wait(timeout=10)

                # Same store, same port: the client's own bounded
                # reconnect carries the poll across the restart.
                async def resume(proc2, host2, port2):
                    tail = await client.drain(sid, after=cursor)
                    got.extend(e.raw for e in tail)
                    await client.close()
                    return got

                return await run_server(store_dir, resume, port=port)

            got = await run_server(store_dir, interrupted)
            return ref, got

        ref, got = run(scenario(), timeout=180.0)
        assert len(got) >= 4
        assert got == ref

    def test_submit_is_not_silently_retried(self, tmp_path):
        """Guard the reconnect contract the resume above relies on:
        only idempotent ops are resent, so a dead server surfaces as an
        error for ``submit`` rather than a double-submission."""
        async def scenario():
            store_dir = str(tmp_path / "live")
            portfile = str(tmp_path / "port")
            proc = self._spawn(store_dir, 0, portfile)
            try:
                host, port = await self._wait_for_port(portfile, proc)
                client = await ServiceClient.connect(
                    host, port, connect_timeout=2.0, read_timeout=5.0,
                    max_reconnects=2)
                proc.kill()
                proc.wait(timeout=10)
                with pytest.raises(ServiceError) as err:
                    await client.submit({"kind": "statistic",
                                         "dataset": "pop",
                                         "statistic": "mean"})
                await client.close()
                return err.value
            finally:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=10)

        err = run(scenario())
        assert err.code in ("connection-closed", "timeout")


class TestResumeGapOverTheWire:
    def test_typed_resume_gap_survives_tcp(self, tmp_path):
        """Satellite regression: a reconnect-after-prune poll raises
        :class:`ResumeGapError` with the server's current ack floor as
        structured details, identically over both transports."""
        async def scenario():
            store = DurableSessionStore(str(tmp_path / "live"),
                                        fsync=False)
            service = build_service(store, event_capacity=64)
            server = ServiceServer(service)
            await service.start()
            await server.start()
            try:
                host, port = server.address
                tcp = await ServiceClient.connect(host, port)
                local = LocalClient(service)
                sid = await tcp.submit(SPECS[0])
                await service.flush()
                events = await tcp.drain(sid)   # acks everything
                floor = events[-1].seq
                with pytest.raises(ResumeGapError) as over_tcp:
                    await tcp.poll(sid, after=0)
                with pytest.raises(ResumeGapError) as in_proc:
                    await local.poll(sid, after=0)
                await tcp.close()
                return floor, over_tcp.value, in_proc.value
            finally:
                await server.stop()
                await service.stop()

        floor, over_tcp, in_proc = run(scenario())
        for exc in (over_tcp, in_proc):
            assert exc.after == 0
            assert exc.acked == floor
            assert exc.details == {"after": 0, "acked": floor}
        assert over_tcp.code == in_proc.code
