"""Shared contract tests for every :class:`SessionStore` implementation.

One parametrized suite runs the full storage contract — admission,
lookup, removal, stable ordering, duplicate rejection, the durability
hook no-ops — against both shipped stores, so a future backend only
has to join the fixture list to inherit the service's expectations.
Durable-only behaviour (journal reload, write-ahead ordering, ack
pruning, compaction, torn-line tolerance, tombstones) gets its own
class below.
"""

import asyncio
import json
import os

import pytest

from repro.service.durable import WAL_NAME, DurableSessionStore
from repro.service.events import EventLog
from repro.service.protocol import (
    EVENT_FINAL,
    EVENT_SNAPSHOT,
    EVENT_STATE,
    STATE_CANCELLED,
    STATE_DONE,
    STATE_RUNNING,
    parse_spec,
)
from repro.service.store import (
    InMemorySessionStore,
    SessionRecord,
    SessionStore,
)


def make_record(sid, *, capacity=8, state=None):
    record = SessionRecord(
        session_id=sid,
        kind="statistic",
        spec=parse_spec({"kind": "statistic", "dataset": "d",
                         "statistic": "mean"}),
        seed=7,
        log=EventLog(capacity),
        created_at=1.5,
    )
    if state is not None:
        record.state = state
    return record


@pytest.fixture(params=["inmem", "durable"])
def store(request, tmp_path):
    if request.param == "inmem":
        yield InMemorySessionStore()
    else:
        durable = DurableSessionStore(str(tmp_path / "state"), fsync=False)
        yield durable
        durable.close()


class TestSessionStoreContract:
    def test_add_get_len(self, store):
        assert len(store) == 0
        record = make_record("s000001")
        store.add(record)
        assert store.get("s000001") is record
        assert len(store) == 1

    def test_get_missing_is_none(self, store):
        assert store.get("nope") is None

    def test_duplicate_add_rejected(self, store):
        store.add(make_record("s000001"))
        with pytest.raises(ValueError):
            store.add(make_record("s000001"))

    def test_remove_and_missing_remove(self, store):
        store.add(make_record("s000001"))
        store.remove("s000001")
        assert store.get("s000001") is None
        assert len(store) == 0
        store.remove("s000001")            # idempotent
        store.remove("never-existed")      # no-op

    def test_records_keep_submission_order(self, store):
        sids = [f"s{i:06d}" for i in range(1, 6)]
        for sid in sids:
            store.add(make_record(sid))
        assert [r.session_id for r in store.records()] == sids

    def test_records_is_a_snapshot(self, store):
        """The TTL sweeper iterates ``records()`` while removing — the
        listing must be a copy, not a live view."""
        for i in range(1, 4):
            store.add(make_record(f"s{i:06d}"))
        for record in store.records():
            store.remove(record.session_id)
        assert len(store) == 0

    def test_terminal_record_stays_until_removed(self, store):
        record = make_record("s000001", state=STATE_DONE)
        store.add(record)
        assert store.get("s000001").terminal
        assert len(store) == 1

    def test_durability_hooks_are_callable(self, store):
        """update / record_window / close are unconditional on the
        service's hot paths, so every store must accept them."""
        record = make_record("s000001")
        store.add(record)
        record.state = STATE_RUNNING
        store.update(record)
        store.record_window("w000001", {"members": [], "seeds": {}})
        store.close()

    def test_durable_flag(self, store):
        assert isinstance(store.durable, bool)
        assert store.durable == isinstance(store, DurableSessionStore)

    def test_base_class_hooks_are_noops(self):
        base = SessionStore()
        base.update(make_record("s000001"))
        base.record_window("w000001", {})
        base.close()
        assert base.durable is False


class TestDurableStore:
    def _store(self, tmp_path, **kw):
        kw.setdefault("fsync", False)
        return DurableSessionStore(str(tmp_path / "state"), **kw)

    def _seed_events(self, record, n, *, final_at=None, read_after=0):
        """Append ``n`` snapshot events (the ``final_at``-th as final)
        and optionally ack through ``read_after``."""
        async def go():
            for i in range(1, n + 1):
                etype = EVENT_FINAL if i == final_at else EVENT_SNAPSHOT
                await record.log.append(etype, {"round": i})
            if read_after:
                await record.log.read(read_after)
        asyncio.run(go())

    def test_reload_restores_sessions_and_logs(self, tmp_path):
        store = self._store(tmp_path)
        record = make_record("s000001")
        store.add(record)
        record.state = STATE_RUNNING
        store.update(record)
        self._seed_events(record, 3, read_after=2)
        store.close()

        reopened = self._store(tmp_path)
        assert reopened.persisted_ids() == ["s000001"]
        restored = reopened.materialize("s000001", now=9.0)
        assert restored.state == STATE_RUNNING
        assert restored.seed == 7
        assert restored.spec == record.spec
        assert restored.log.acked == 2
        assert restored.log.last_seq == 3
        assert restored.log.retained == 1          # only the unacked tail
        assert not restored.log.sealed
        assert restored.last_activity == 9.0
        reopened.close()

    def test_materialize_is_idempotent_and_registers_live(self, tmp_path):
        store = self._store(tmp_path)
        store.add(make_record("s000001"))
        store.close()
        reopened = self._store(tmp_path)
        first = reopened.materialize("s000001")
        assert reopened.get("s000001") is first
        assert reopened.materialize("s000001") is first
        with pytest.raises(KeyError):
            reopened.materialize("s000099")
        reopened.close()

    def test_resumed_log_keeps_journaling(self, tmp_path):
        store = self._store(tmp_path)
        store.add(make_record("s000001"))
        store.close()
        mid = self._store(tmp_path)
        record = mid.materialize("s000001")
        self._seed_events(record, 2)
        mid.close()
        final = self._store(tmp_path)
        assert final.stream_pos("s000001") == 2
        final.close()

    def test_terminal_state_seals_restored_log(self, tmp_path):
        store = self._store(tmp_path)
        record = make_record("s000001")
        store.add(record)
        self._seed_events(record, 2, final_at=2)
        record.state = STATE_DONE
        store.update(record)
        store.close()

        reopened = self._store(tmp_path)
        restored = reopened.materialize("s000001")
        assert restored.log.sealed

        async def go():
            assert await restored.log.append(EVENT_STATE, {}) is None
            return [e.seq for e in await restored.log.read(0)]
        assert asyncio.run(go()) == [1, 2]          # tail still drains
        reopened.close()

    def test_stream_pos_counts_snapshots_only(self, tmp_path):
        store = self._store(tmp_path)
        record = make_record("s000001")
        store.add(record)

        async def go():
            await record.log.append(EVENT_STATE, {"state": "running"})
            await record.log.append(EVENT_SNAPSHOT, {"round": 1})
            await record.log.append(EVENT_FINAL, {"round": 2})
        asyncio.run(go())
        assert store.stream_pos("s000001") == 2
        assert store.stream_pos("missing") == 0
        persisted = store.persisted("s000001")
        assert persisted["record"]["last_snapshot"] == {"round": 2}
        store.close()

    def test_ack_floor_survives_reload_and_prunes(self, tmp_path):
        store = self._store(tmp_path)
        record = make_record("s000001")
        store.add(record)
        self._seed_events(record, 5, read_after=4)
        assert store.persisted("s000001")["acked"] == 4
        store.close()

        reopened = self._store(tmp_path)
        persisted = reopened.persisted("s000001")
        assert persisted["acked"] == 4
        assert [e["seq"] for e in persisted["events"]] == [5]
        assert persisted["next_seq"] == 6
        reopened.close()

    def test_write_ahead_admission(self, tmp_path):
        """A session is on disk the moment ``add`` returns — a reader
        of the raw journal sees it with no close/flush ceremony."""
        store = self._store(tmp_path)
        store.add(make_record("s000001"))
        wal = os.path.join(str(tmp_path / "state"), WAL_NAME)
        with open(wal, encoding="utf-8") as fh:
            entries = [json.loads(line) for line in fh if line.strip()]
        assert entries[-1]["op"] == "add"
        assert entries[-1]["session"]["session_id"] == "s000001"
        store.close()

    def test_torn_final_line_is_tolerated(self, tmp_path):
        store = self._store(tmp_path)
        store.add(make_record("s000001"))
        store.add(make_record("s000002"))
        store.close()
        wal = os.path.join(str(tmp_path / "state"), WAL_NAME)
        with open(wal, "a", encoding="utf-8") as fh:
            fh.write('{"op": "add", "session": {"session_id": "s0')
        reopened = self._store(tmp_path)
        assert reopened.persisted_ids() == ["s000001", "s000002"]
        # The compaction-on-load rewrote a clean journal.
        with open(wal, encoding="utf-8") as fh:
            for line in fh:
                json.loads(line)
        reopened.close()

    def test_compaction_round_trips_state(self, tmp_path):
        store = self._store(tmp_path)
        record = make_record("s000001")
        store.add(record)
        self._seed_events(record, 3, read_after=1)
        store.record_window("w000001", {
            "members": [{"session": "s000001", "kind": "statistic"}],
            "seeds": {"d": 42}})
        other = make_record("s000002")
        store.add(other)
        store.remove("s000002")
        before = store.persisted("s000001")
        store.compact()
        assert store.persisted("s000001") == before
        store.close()

        reopened = self._store(tmp_path)
        assert reopened.persisted("s000001") == before
        assert reopened.windows()["w000001"]["seeds"] == {"d": 42}
        assert reopened.tombstone("s000002") is not None
        reopened.close()

    def test_disturbed_via_cancel_and_tombstone(self, tmp_path):
        store = self._store(tmp_path)
        record = make_record("s000001")
        store.add(record)
        record.state = STATE_RUNNING
        store.update(record)
        assert not store.disturbed("s000001")
        record.state = STATE_CANCELLED
        store.update(record)
        assert store.disturbed("s000001")
        store.remove("s000001")
        # The sweep keeps the disturbance in a tombstone: the member
        # still poisons replay of its shared window.
        assert store.disturbed("s000001")
        assert store.tombstone("s000001")["disturbed"] is True
        assert not store.disturbed("never-existed")
        store.close()

    def test_id_counters_survive_restart(self, tmp_path):
        store = self._store(tmp_path)
        store.add(make_record("s000003"))
        store.add(make_record("s000007"))
        store.remove("s000007")
        store.record_window("w000002", {"members": [], "seeds": {}})
        store.close()
        reopened = self._store(tmp_path)
        assert reopened.last_session_ord == 7    # tombstones count too
        assert reopened.last_window_ord == 2
        reopened.close()

    def test_close_is_idempotent(self, tmp_path):
        store = self._store(tmp_path)
        store.close()
        store.close()
