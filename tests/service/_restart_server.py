"""Deterministic service server run as a subprocess by the SIGKILL
restart test (``test_restart.py``).

Usage: ``python _restart_server.py <store_dir> <port> <portfile>``

Builds the exact same service every invocation (same config, seed and
registrations), serves it over TCP on ``port`` (0 picks a free one),
writes ``host port`` to ``portfile`` once bound, and runs until
killed.  Restarting it against the same store directory exercises the
real crash-recovery path: the parent SIGKILLs this process mid-query.
"""

import asyncio
import os
import sys

import numpy as np

from repro.core import EarlConfig
from repro.service import (
    ApproxQueryService,
    DurableSessionStore,
    ServiceServer,
)

#: Forces a genuinely multi-round stream (a bare tiny sigma would hit
#: the exact-computation fallback and finish in one snapshot).
CFG = dict(sigma=0.01, B_override=15, n_override=100,
           expansion_factor=1.6, max_iterations=12)


def build(store):
    service = ApproxQueryService(
        config=EarlConfig(**CFG), seed=1234, batch_window=0.05,
        event_capacity=4, store=store)
    service.register_dataset(
        "pop", np.random.default_rng(0).lognormal(1.0, 0.5, 20_000))
    return service


async def main(store_dir, port, portfile):
    service = build(DurableSessionStore(store_dir, fsync=False))
    server = ServiceServer(service, port=port)
    await service.start()
    await server.start()
    host, bound = server.address
    tmp = portfile + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(f"{host} {bound}\n")
    os.replace(tmp, portfile)   # atomic: the parent never reads a torn file
    await asyncio.Event().wait()


if __name__ == "__main__":
    asyncio.run(main(sys.argv[1], int(sys.argv[2]), sys.argv[3]))
