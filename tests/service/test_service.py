"""End-to-end service behaviour over the in-process client: lifecycle,
shared-pilot batching, determinism, cancellation, TTL expiry,
backpressure bounds, the TCP transport, and error responses.

The tests are synchronous pytest functions that own an event loop via
``asyncio.run`` — no async test plugin is needed (or available)."""

import asyncio

import numpy as np
import pytest

from repro.core import EarlConfig
from repro.service import (
    ERR_BAD_REQUEST,
    ERR_BAD_SPEC,
    ERR_RESUME_GAP,
    ERR_UNKNOWN_OP,
    ERR_UNKNOWN_SESSION,
    EVENT_FINAL,
    EVENT_SNAPSHOT,
    EVENT_STATE,
    STATE_CANCELLED,
    STATE_DONE,
    STATE_EXPIRED,
    STATE_PENDING,
    STATE_RUNNING,
    ApproxQueryService,
    LocalClient,
    ServiceClient,
    ServiceError,
    ServiceServer,
)

FAST_CFG = dict(sigma=0.2, B_override=10, n_override=100, max_iterations=5)
#: Never-met bound: the session keeps iterating until cancelled/expired.
ENDLESS_CFG = dict(sigma=0.0001, B_override=10, n_override=50,
                   expansion_factor=1.5, max_iterations=50)


def population(seed=0, size=20_000):
    return np.random.default_rng(seed).lognormal(1.0, 0.5, size)


def make_service(config=None, **kwargs):
    # A long batch window makes batching flush()-driven: every test
    # controls exactly which submissions share a dispatch (and thus a
    # pilot), independent of transport timing.
    service = ApproxQueryService(
        config=config or EarlConfig(**FAST_CFG), seed=1234,
        batch_window=5.0, **kwargs)
    service.register_dataset("pop", population())
    return service


def run(coro):
    return asyncio.run(coro)


async def with_service(body, config=None, **kwargs):
    service = make_service(config, **kwargs)
    await service.start()
    try:
        return await body(service, LocalClient(service))
    finally:
        await service.stop()


def assert_contiguous(events):
    assert [e.seq for e in events] == list(range(1, len(events) + 1))


class TestStatisticLifecycle:
    def test_full_lifecycle_event_shape(self):
        async def body(service, client):
            sid = await client.submit({"kind": "statistic", "dataset": "pop",
                                       "statistic": "mean"})
            await service.flush()
            return sid, await client.drain(sid), await client.status(sid)

        sid, events, status = run(with_service(body))
        assert sid == "s000001"
        assert_contiguous(events)
        types = [e.type for e in events]
        assert types[0] == EVENT_STATE
        assert events[0].payload == {"state": STATE_PENDING}
        assert types[1] == EVENT_STATE
        assert events[1].payload == {"state": STATE_RUNNING}
        assert types[-1] == EVENT_STATE
        assert events[-1].payload == {"state": STATE_DONE}
        assert types[-2] == EVENT_FINAL
        assert all(t == EVENT_SNAPSHOT for t in types[2:-2])
        final = events[-2].payload
        assert final["final"] is True
        assert final["statistic"] == "mean"
        assert final["estimate"] == pytest.approx(population().mean(),
                                                  rel=0.1)
        assert status["state"] == STATE_DONE

    def test_shared_pilot_batch_runs_one_engine(self):
        async def body(service, client):
            sids = [await client.submit(
                {"kind": "statistic", "dataset": "pop", "statistic": stat})
                for stat in ("mean", "sum", "std", "median")]
            await service.flush()
            streams = [await client.drain(sid) for sid in sids]
            batch_threads = [t.name for t in service._threads
                             if t.name.startswith("svc-batch-")]
            return streams, batch_threads

        streams, batch_threads = run(with_service(body))
        # One dispatch window over one dataset => one runner thread
        # (one SessionManager: one pilot shared by all four sessions).
        assert batch_threads == ["svc-batch-pop"]
        for events in streams:
            assert_contiguous(events)
            assert events[-1].payload == {"state": STATE_DONE}
            assert sum(e.type == EVENT_FINAL for e in events) == 1

    def test_estimates_land_near_truth(self):
        async def body(service, client):
            sids = {stat: await client.submit(
                {"kind": "statistic", "dataset": "pop", "statistic": stat})
                for stat in ("mean", "sum")}
            await service.flush()
            out = {}
            for stat, sid in sids.items():
                events = await client.drain(sid)
                out[stat] = [e for e in events
                             if e.type == EVENT_FINAL][0].payload["estimate"]
            return out

        estimates = run(with_service(body))
        pop = population()
        assert estimates["mean"] == pytest.approx(pop.mean(), rel=0.1)
        assert estimates["sum"] == pytest.approx(pop.sum(), rel=0.1)


class TestGroupedQueryLifecycle:
    def test_grouped_session_events(self):
        async def body(service, client):
            rng = np.random.default_rng(3)
            service.register_table("orders", {
                "region": np.repeat(["east", "west"], 3000),
                "amount": rng.exponential(40.0, 6000)})
            sid = await client.submit({
                "kind": "query", "table": "orders", "group_by": "region",
                "select": [{"statistic": "mean", "column": "amount"}]})
            return await client.drain(sid)

        events = run(with_service(body))
        assert_contiguous(events)
        assert events[-1].payload == {"state": STATE_DONE}
        final = [e for e in events if e.type == EVENT_FINAL][0].payload
        assert final["final"] is True
        assert set(final["groups"]) == {"east", "west"}
        for group in final["groups"].values():
            (entry,) = group.values()
            assert entry["statistic"] == "mean"
            assert entry["estimate"] > 0

    def test_unknown_column_rejected_at_submit(self):
        async def body(service, client):
            service.register_table("t", {"v": np.arange(100.0)})
            with pytest.raises(ServiceError) as err:
                await client.submit({
                    "kind": "query", "table": "t",
                    "select": [{"statistic": "mean", "column": "missing"}]})
            return err.value

        err = run(with_service(body))
        assert err.code == ERR_BAD_SPEC


class TestDeterminism:
    @staticmethod
    async def _run_once(executor="serial"):
        cfg = EarlConfig(executor=executor, **FAST_CFG)
        service = make_service(cfg)
        await service.start()
        try:
            client = LocalClient(service)
            sids = [await client.submit(
                {"kind": "statistic", "dataset": "pop", "statistic": stat})
                for stat in ("mean", "std")]
            await service.flush()
            return [[e.raw for e in await client.drain(sid)]
                    for sid in sids]
        finally:
            await service.stop()

    def test_same_seed_same_submissions_same_bytes(self):
        async def body():
            return await self._run_once(), await self._run_once()

        first, second = run(body())
        assert first == second

    def test_bytes_identical_across_executors(self):
        async def body():
            return (await self._run_once("serial"),
                    await self._run_once("threads"))

        serial, threads = run(body())
        assert serial == threads


class TestCancellation:
    def test_cancel_stops_the_stream(self):
        async def body(service, client):
            sid = await client.submit({"kind": "statistic", "dataset": "pop",
                                       "statistic": "mean"})
            await service.flush()
            # Read (and ack) until the run has produced a snapshot; the
            # tiny event capacity keeps the engine at most a couple of
            # events ahead of us, so the cancel lands mid-run.
            after, saw_snapshot = 0, False
            while not saw_snapshot:
                page = await client.poll(sid, after=after, wait=True,
                                         timeout=5)
                if page.events:
                    after = page.events[-1].seq
                    saw_snapshot = any(e.type == EVENT_SNAPSHOT
                                       for e in page.events)
            response = await client.cancel(sid)
            events = await client.drain(sid, after=after)
            status = await client.status(sid)
            return response, events, status

        response, events, status = run(with_service(
            body, EarlConfig(**ENDLESS_CFG), event_capacity=2))
        assert response["state"] == STATE_CANCELLED
        assert not response["already_terminal"]
        assert status["state"] == STATE_CANCELLED
        # The sealed log ends with the terminal state event.
        assert events[-1].type == EVENT_STATE
        assert events[-1].payload["state"] == STATE_CANCELLED

    def test_cancel_twice_reports_already_terminal(self):
        async def body(service, client):
            sid = await client.submit({"kind": "statistic", "dataset": "pop",
                                       "statistic": "mean"})
            await service.flush()
            await client.cancel(sid)
            return await client.cancel(sid)

        response = run(with_service(body, EarlConfig(**ENDLESS_CFG),
                                    event_capacity=2))
        assert response["already_terminal"]
        assert response["state"] == STATE_CANCELLED

    def test_cancel_before_dispatch_never_runs(self):
        async def body(service, client):
            sid = await client.submit({"kind": "statistic", "dataset": "pop",
                                       "statistic": "mean"})
            await client.cancel(sid)         # still PENDING
            await service.flush()
            events = await client.drain(sid)
            return events

        events = run(with_service(body))
        types = [e.type for e in events]
        assert EVENT_SNAPSHOT not in types and EVENT_FINAL not in types
        assert events[-1].payload["state"] == STATE_CANCELLED


class TestTtlSweeper:
    def test_idle_session_expires_and_then_lingers_out(self):
        clock = {"now": 1000.0}

        async def body(service, client):
            sid = await client.submit({"kind": "statistic", "dataset": "pop",
                                       "statistic": "mean"})
            await service.flush()
            await client.poll(sid, after=0)          # touch at t=1000
            clock["now"] += 20.0                     # ttl=10 exceeded
            await service.sweep()
            status = await client.status(sid)
            events = await client.drain(sid)
            clock["now"] += 200.0                    # linger=60 exceeded
            await service.sweep()
            with pytest.raises(ServiceError) as gone:
                await client.status(sid)
            return status, events, gone.value

        status, events, gone = run(with_service(
            body, EarlConfig(**ENDLESS_CFG), event_capacity=2,
            ttl_seconds=10.0, linger_seconds=60.0, sweep_interval=3600.0,
            clock=lambda: clock["now"]))
        assert status["state"] == STATE_EXPIRED
        assert "idle" in status["error_detail"]
        assert events[-1].payload["state"] == STATE_EXPIRED
        assert gone.code == ERR_UNKNOWN_SESSION

    def test_expired_mid_round_releases_executor_pool(self):
        """EXPIRED with an engine round in flight: the sweeper seals
        the logs and cancels the engines; the window's runner thread
        must unwind and close its worker pools (regression: a sealed
        log blocking the runner used to strand the scheduler's
        executors until interpreter exit)."""
        import gc

        from repro.exec import live_pool_executors

        clock = {"now": 0.0}

        async def body(service, client):
            gc.collect()
            before = set(id(ex) for ex in live_pool_executors())
            sids = [await client.submit({"kind": "statistic",
                                         "dataset": "pop",
                                         "statistic": stat})
                    for stat in ("mean", "median")]
            await service.flush()
            for sid in sids:     # each session mid-run, pool live
                after, saw_snapshot = 0, False
                while not saw_snapshot:
                    page = await client.poll(sid, after=after, wait=True,
                                             timeout=5)
                    if page.events:
                        after = page.events[-1].seq
                        saw_snapshot = any(e.type == EVENT_SNAPSHOT
                                           for e in page.events)
            clock["now"] += 100.0            # ttl=10 exceeded
            await service.sweep()
            loop = asyncio.get_running_loop()
            deadline = loop.time() + 30.0
            while any(t.is_alive() for t in service._threads
                      if t.name.startswith("svc-batch-")):
                assert loop.time() < deadline, "runner thread stuck"
                await asyncio.sleep(0.02)
            gc.collect()
            leaked = [ex for ex in live_pool_executors()
                      if id(ex) not in before]
            return leaked, [await client.status(sid) for sid in sids]

        leaked, statuses = run(with_service(
            body,
            EarlConfig(executor="threads", max_workers=2, **ENDLESS_CFG),
            event_capacity=2, ttl_seconds=10.0, linger_seconds=3600.0,
            sweep_interval=3600.0, clock=lambda: clock["now"]))
        assert leaked == []
        assert all(s["state"] == STATE_EXPIRED for s in statuses)

    def test_polling_keeps_a_session_alive(self):
        clock = {"now": 0.0}

        async def body(service, client):
            sid = await client.submit({"kind": "statistic", "dataset": "pop",
                                       "statistic": "mean"})
            await service.flush()
            for _ in range(5):
                clock["now"] += 8.0                  # always under ttl=10
                await client.poll(sid, after=0)
                await service.sweep()
            status = await client.status(sid)
            await client.cancel(sid)
            return status

        status = run(with_service(
            body, EarlConfig(**ENDLESS_CFG),
            ttl_seconds=10.0, sweep_interval=3600.0,
            clock=lambda: clock["now"]))
        assert status["state"] not in (STATE_EXPIRED,)


class TestBackpressure:
    def test_retained_events_stay_bounded_with_slow_reader(self):
        async def body(service, client):
            sid = await client.submit({"kind": "statistic", "dataset": "pop",
                                       "statistic": "mean"})
            await service.flush()
            events, after = [], 0
            while True:
                await asyncio.sleep(0.005)    # a deliberately lazy reader
                page = await client.poll(sid, after=after, wait=True,
                                         timeout=2.0)
                events.extend(page.events)
                if page.events:
                    after = page.events[-1].seq
                elif page.terminal:
                    break
            return events, (await client.stats())["max_retained_events"]

        events, high_water = run(with_service(body, event_capacity=3))
        assert_contiguous(events)
        assert events[-1].payload == {"state": STATE_DONE}
        # capacity + at most the forced terminal state event.
        assert high_water <= 3 + 1


class TestTcpTransport:
    def test_end_to_end_bytes_match_local_client(self):
        async def body():
            local_raw = await TestDeterminism._run_once()

            service = make_service()
            server = ServiceServer(service)
            await service.start()
            await server.start()
            try:
                host, port = server.address
                client = await ServiceClient.connect(host, port)
                assert await client.ping()
                sids = [await client.submit({"kind": "statistic",
                                             "dataset": "pop",
                                             "statistic": stat})
                        for stat in ("mean", "std")]
                await service.flush()
                tcp_raw = [[e.raw for e in await client.drain(sid)]
                           for sid in sids]
                stats = await client.stats()
                await client.close()
                return local_raw, tcp_raw, stats
            finally:
                await server.stop()
                await service.stop()

        local_raw, tcp_raw, stats = run(body())
        assert tcp_raw == local_raw    # canonical bytes survive the wire
        assert stats["sessions"] == 2
        assert stats["datasets"] == ["pop"]

    def test_invalid_json_line_gets_bad_request(self):
        async def body():
            service = make_service()
            server = ServiceServer(service)
            await service.start()
            await server.start()
            try:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"this is not json\n")
                await writer.drain()
                import json
                response = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                return response
            finally:
                await server.stop()
                await service.stop()

        response = run(body())
        assert response["ok"] is False
        assert response["error"] == ERR_BAD_REQUEST


class TestErrorResponses:
    def test_error_codes(self):
        async def body(service, client):
            codes = {}

            async def code_of(request):
                response = await service.handle(request)
                assert response["ok"] is False
                return response["error"]

            codes["unknown-op"] = await code_of({"op": "teleport"})
            codes["not-object"] = await code_of("poll")
            codes["unknown-session"] = await code_of(
                {"op": "poll", "session": "s999999"})
            codes["bad-session-type"] = await code_of(
                {"op": "poll", "session": 7})
            codes["unknown-dataset"] = await code_of(
                {"op": "submit", "spec": {"kind": "statistic",
                                          "dataset": "nope",
                                          "statistic": "mean"}})
            codes["unknown-table"] = await code_of(
                {"op": "submit", "spec": {
                    "kind": "query", "table": "nope",
                    "select": [{"statistic": "mean", "column": "v"}]}})
            codes["unknown-cluster"] = await code_of(
                {"op": "submit", "spec": {"kind": "job", "cluster": "nope",
                                          "path": "/x"}})
            sid = await client.submit({"kind": "statistic", "dataset": "pop",
                                       "statistic": "mean"})
            await service.flush()
            await client.drain(sid)
            codes["poll-ahead"] = await code_of(
                {"op": "poll", "session": sid, "after": 10_000})
            codes["bool-after"] = await code_of(
                {"op": "poll", "session": sid, "after": True})
            return codes

        codes = run(with_service(body))
        assert codes["unknown-op"] == ERR_UNKNOWN_OP
        assert codes["not-object"] == ERR_BAD_REQUEST
        assert codes["unknown-session"] == ERR_UNKNOWN_SESSION
        assert codes["bad-session-type"] == ERR_BAD_REQUEST
        assert codes["unknown-dataset"] == ERR_BAD_SPEC
        assert codes["unknown-table"] == ERR_BAD_SPEC
        assert codes["unknown-cluster"] == ERR_BAD_SPEC
        assert codes["poll-ahead"] == ERR_BAD_REQUEST
        assert codes["bool-after"] == ERR_BAD_REQUEST

    def test_resume_gap_error_code(self):
        async def body(service, client):
            sid = await client.submit({"kind": "statistic", "dataset": "pop",
                                       "statistic": "mean"})
            await service.flush()
            events = await client.drain(sid)      # acks everything read
            response = await service.handle(
                {"op": "poll", "session": sid, "after": 1})
            return events, response

        events, response = run(with_service(body))
        assert len(events) >= 4
        assert response["ok"] is False
        assert response["error"] == ERR_RESUME_GAP

    def test_requests_rejected_when_not_running(self):
        async def body():
            service = make_service()
            return await service.handle({"op": "ping"})

        response = run(body())
        assert response["ok"] is False
        assert response["error"] == ERR_BAD_REQUEST
