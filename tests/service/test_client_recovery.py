"""ServiceClient socket fault tolerance: connect/read timeouts and the
bounded reconnect-and-resend loop (idempotent ops only — a ``submit``
whose response was lost is never resent)."""

import asyncio
import json

import numpy as np
import pytest

from repro.core import EarlConfig
from repro.service import (
    ApproxQueryService,
    ServiceClient,
    ServiceError,
)
from repro.service.protocol import canonical_json


class FlakyFrontend:
    """TCP front end over ``service.handle`` that can drop connections.

    ``drop_first`` connections are closed as soon as a request line
    arrives (the response is lost — the worst case for a client,
    because the server may have acted on the request); ``silent_first``
    connections read requests and never answer (read-timeout case).
    Connections after the faulty ones serve normally.
    """

    def __init__(self, service, *, drop_first=0, silent_first=0):
        self._service = service
        self.drop_first = drop_first
        self.silent_first = silent_first
        self.connections = 0
        self.requests_seen = []
        self._server = None

    async def __aenter__(self):
        self._server = await asyncio.start_server(
            self._serve, "127.0.0.1", 0)
        host, port = self._server.sockets[0].getsockname()[:2]
        self.address = (host, port)
        return self

    async def __aexit__(self, *exc):
        self._server.close()
        await self._server.wait_closed()

    async def _serve(self, reader, writer):
        self.connections += 1
        conn = self.connections
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                request = json.loads(line)
                self.requests_seen.append((conn, request.get("op")))
                if conn <= self.drop_first:
                    return   # drop mid-request: response lost
                if conn <= self.drop_first + self.silent_first:
                    await asyncio.sleep(3600)   # read-timeout case
                response = await self._service.handle(request)
                writer.write(canonical_json(response).encode() + b"\n")
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass


async def make_service():
    service = ApproxQueryService(config=EarlConfig(sigma=0.1), seed=0)
    service.register_dataset(
        "d", np.random.default_rng(0).lognormal(3.0, 1.0, 50_000))
    await service.start()
    return service


def run(coro, timeout=30.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


class TestReadTimeout:
    def test_silent_server_times_out_instead_of_hanging(self):
        async def scenario():
            service = await make_service()
            try:
                async with FlakyFrontend(service, silent_first=1) as fe:
                    client = await ServiceClient.connect(
                        *fe.address, read_timeout=0.2)
                    with pytest.raises(ServiceError) as err:
                        await client.ping()
                    await client.close()
                    return err.value.code, fe.connections
            finally:
                await service.stop()

        code, connections = run(scenario())
        assert code == "timeout"
        assert connections == 1   # no reconnect budget, no retry

    def test_reconnect_budget_is_bounded(self):
        async def scenario():
            service = await make_service()
            try:
                async with FlakyFrontend(service, silent_first=10) as fe:
                    client = await ServiceClient.connect(
                        *fe.address, read_timeout=0.2, max_reconnects=2)
                    with pytest.raises(ServiceError) as err:
                        await client.ping()
                    await client.close()
                    return err.value.code, fe.connections
            finally:
                await service.stop()

        code, connections = run(scenario())
        assert code == "timeout"
        assert connections == 3   # the original attempt + 2 reconnects

    def test_long_poll_budget_added_to_read_timeout(self):
        async def scenario():
            service = await make_service()
            try:
                async with FlakyFrontend(service) as fe:
                    client = await ServiceClient.connect(
                        *fe.address, read_timeout=0.5)
                    sid = await client.submit(
                        {"kind": "statistic", "dataset": "d",
                         "statistic": "mean"})
                    events = await client.drain(sid, poll_timeout=1.0)
                    await client.close()
                    return events
            finally:
                await service.stop()

        events = run(scenario())
        # Long polls park for their own wait budget without tripping
        # the per-roundtrip read timeout; the session still completes.
        assert any(e.type == "final" for e in events)


class TestReconnect:
    def test_idempotent_op_resent_after_connection_drop(self):
        async def scenario():
            service = await make_service()
            try:
                async with FlakyFrontend(service, drop_first=1) as fe:
                    client = await ServiceClient.connect(
                        *fe.address, max_reconnects=2)
                    pong = await client.ping()
                    await client.close()
                    return pong, fe.requests_seen
            finally:
                await service.stop()

        pong, seen = run(scenario())
        assert pong is True
        # The ping was resent on a fresh connection after the drop.
        assert seen == [(1, "ping"), (2, "ping")]

    def test_submit_is_never_resent(self):
        async def scenario():
            service = await make_service()
            try:
                async with FlakyFrontend(service, drop_first=1) as fe:
                    client = await ServiceClient.connect(
                        *fe.address, max_reconnects=3)
                    with pytest.raises(ServiceError) as err:
                        await client.submit(
                            {"kind": "statistic", "dataset": "d",
                             "statistic": "mean"})
                    await client.close()
                    return err.value.code, fe.requests_seen
            finally:
                await service.stop()

        code, seen = run(scenario())
        # The lost response surfaces; the spec was sent exactly once
        # (a resend could double-submit a session the server created).
        assert code == "connection-closed"
        assert seen == [(1, "submit")]

    def test_reconnected_client_keeps_working(self):
        async def scenario():
            service = await make_service()
            try:
                async with FlakyFrontend(service, drop_first=1) as fe:
                    client = await ServiceClient.connect(
                        *fe.address, max_reconnects=1)
                    assert await client.ping()   # reconnects
                    sid = await client.submit(
                        {"kind": "statistic", "dataset": "d",
                         "statistic": "mean"})
                    events = await client.drain(sid, poll_timeout=1.0)
                    await client.close()
                    return events
            finally:
                await service.stop()

        events = run(scenario())
        assert any(e.type == "final" for e in events)
