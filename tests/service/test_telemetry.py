"""End-to-end telemetry across the service stratum.

With telemetry enabled, a full service run must produce: a connected
per-session span tree covering ≥95 % of the session's wall time, a
convergence trajectory with one point per snapshot, discrete events for
losses/restarts/terminals, registry counters that reconcile with the
event streams, and the read-only ``metrics``/``trace`` ops over both
transports.  The suite also drives the two fault paths the acceptance
gate names: one injected sample loss and one crash/restart.
"""

import asyncio

import numpy as np
import pytest

from repro.core import EarlConfig
from repro.obs import (
    REGISTRY,
    TRACER,
    disable_telemetry,
    enable_telemetry,
    reset_telemetry,
)
from repro.service import (
    EVENT_DEGRADED,
    EVENT_FINAL,
    EVENT_SNAPSHOT,
    STATE_DONE,
    ApproxQueryService,
    DurableSessionStore,
    LocalClient,
    ServiceClient,
    ServiceServer,
)

#: Multi-round streams (mirrors test_restart.py).
CFG = dict(sigma=0.01, B_override=15, n_override=100,
           expansion_factor=1.6, max_iterations=12)

SPECS = [
    {"kind": "statistic", "dataset": "pop", "statistic": "mean"},
    {"kind": "statistic", "dataset": "pop", "statistic": "std"},
    {"kind": "query", "table": "orders", "group_by": "region",
     "select": [{"statistic": "mean", "column": "amount"}]},
]


@pytest.fixture(autouse=True)
def telemetry():
    enable_telemetry()
    reset_telemetry()
    yield
    disable_telemetry()
    reset_telemetry()


def population(seed=0, size=20_000):
    return np.random.default_rng(seed).lognormal(1.0, 0.5, size)


def orders_table():
    rng = np.random.default_rng(3)
    return {"region": np.repeat(["east", "west"], 3000),
            "amount": rng.exponential(40.0, 6000)}


def build_service(store=None, *, event_capacity=4):
    service = ApproxQueryService(
        config=EarlConfig(**CFG), seed=1234, batch_window=5.0,
        event_capacity=event_capacity, store=store)
    service.register_dataset("pop", population())
    service.register_table("orders", orders_table())
    return service


def run(coro, timeout=120.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


async def drain_all(client, sids, cursors, collected):
    done = set()
    while len(done) < len(sids):
        for sid in sids:
            if sid in done:
                continue
            page = await client.poll(sid, after=cursors[sid],
                                     wait=True, timeout=1.0)
            for event in page.events:
                collected[sid].append(event)
                cursors[sid] = event.seq
            if not page.events and page.terminal:
                done.add(sid)


class TestEndToEndTrace:
    """A clean mixed workload: every session's trace is one connected
    tree whose children cover ≥95 % of its wall time, and the
    convergence trajectory has a point per snapshot."""

    def _run_workload(self):
        async def scenario():
            service = build_service()
            await service.start()
            client = LocalClient(service)
            sids = [await client.submit(spec) for spec in SPECS]
            await service.flush()
            cursors = {sid: 0 for sid in sids}
            events = {sid: [] for sid in sids}
            await drain_all(client, sids, cursors, events)
            trace_ids = {sid: service.store.get(sid).trace_id
                         for sid in sids}
            await service.stop()
            return service, sids, trace_ids, events

        return run(scenario())

    def test_traces_connected_with_high_coverage(self):
        _, sids, trace_ids, _ = self._run_workload()
        for sid in sids:
            tid = trace_ids[sid]
            assert tid is not None
            assert TRACER.is_connected(tid), sid
            assert TRACER.coverage(tid) >= 0.95, sid
            names = {s.name for s in TRACER.spans(tid)}
            assert "service.session" in names
            assert "service.run" in names

    def test_chrome_export_is_one_tree_per_session(self):
        _, sids, trace_ids, _ = self._run_workload()
        for sid in sids:
            doc = TRACER.export_chrome(trace_ids[sid])
            events = doc["traceEvents"]
            assert events
            roots = [e for e in events
                     if "parent_id" not in e["args"]]
            assert len(roots) == 1
            assert roots[0]["name"] == "service.session"
            assert roots[0]["args"]["session"] == sid

    def test_convergence_points_match_snapshots(self):
        service, sids, _, events = self._run_workload()
        for sid in sids:
            # one point per snapshot, including the final one
            snapshots = [e for e in events[sid]
                         if e.type in (EVENT_SNAPSHOT, EVENT_FINAL)]
            points = [p for p in service.telemetry.points
                      if p.key == sid]
            assert len(points) == len(snapshots)
            assert [p.round for p in points] == \
                list(range(1, len(points) + 1))
            rows = [p.rows for p in points]
            assert rows == sorted(rows)
            assert all(p.wall_seconds is not None for p in points)

    def test_registry_counters_reconcile_with_streams(self):
        service, sids, _, events = self._run_workload()
        n_snapshots = sum(
            1 for sid in sids for e in events[sid]
            if e.type in (EVENT_SNAPSHOT, EVENT_FINAL))
        assert REGISTRY.value("repro_service_sessions_total",
                              {"kind": "statistic"}) == 2.0
        assert REGISTRY.value("repro_service_sessions_total",
                              {"kind": "query"}) == 1.0
        snap_total = sum(
            inst.value for inst in
            REGISTRY.series("repro_service_snapshots_total"))
        assert snap_total == float(n_snapshots)
        assert REGISTRY.value("repro_service_terminal_total",
                              {"state": STATE_DONE}) == 3.0
        terminal = [e for e in service.telemetry.events
                    if e.kind == "terminal"]
        assert len(terminal) == 3


class TestInjectedLoss:
    """§3.4 degrade-don't-die, observed: an injected mid-run loss shows
    up as a ``degraded`` convergence event and counter, and the trace
    stays connected."""

    def _lossy_query(self):
        async def scenario():
            rng = np.random.default_rng(7)
            table = {"k": rng.choice(["a", "b"], size=200_000),
                     "v": rng.lognormal(3.0, 1.0, 200_000)}
            service = ApproxQueryService(
                config=EarlConfig(sigma=0.01, n_override=500,
                                  B_override=30, expansion_factor=1.3,
                                  max_iterations=30),
                seed=42, event_capacity=2)
            service.register_table("t", table)
            await service.start()
            try:
                client = LocalClient(service)
                sid = await client.submit({
                    "kind": "query", "table": "t", "group_by": "k",
                    "select": [{"statistic": "mean", "column": "v"}]})
                events, after, lost = [], 0, False
                while True:
                    page = await client.poll(sid, after=after, wait=True,
                                             timeout=5.0)
                    events.extend(page.events)
                    if page.events:
                        after = page.events[-1].seq
                        if not lost and any(e.type == EVENT_SNAPSHOT
                                            for e in events):
                            service.store.get(sid).engine \
                                .report_loss(0.4)
                            lost = True
                        continue
                    if page.terminal:
                        break
                trace_id = service.store.get(sid).trace_id
                return service, sid, trace_id, events
            finally:
                await service.stop()

        return run(scenario())

    def test_loss_recorded_as_degraded_telemetry(self):
        service, sid, trace_id, events = self._lossy_query()
        assert any(e.type == EVENT_DEGRADED for e in events)
        degraded = [e for e in service.telemetry.events
                    if e.kind == "degraded" and e.key == sid]
        assert len(degraded) == 1
        assert 0.0 < degraded[0].detail["lost_fraction"] < 1.0
        assert REGISTRY.value("repro_service_degraded_total") == 1.0
        assert TRACER.is_connected(trace_id)
        assert TRACER.coverage(trace_id) >= 0.95


class TestRestartContinuity:
    """A replay-resumed session continues the *same* trace: the WAL
    carries the trace id, the restarted service opens a new root on it
    and adopts the pre-crash spans, and a ``restart`` event lands on the
    convergence trace."""

    def _crash_scenario(self, tmp_path):
        async def scenario():
            service = build_service(
                DurableSessionStore(str(tmp_path / "live"), fsync=False))
            await service.start()
            client = LocalClient(service)
            sid = await client.submit(SPECS[0])
            await service.flush()
            cursor, got = 0, []
            while len(got) < 5:
                page = await client.poll(sid, after=cursor,
                                         wait=True, timeout=1.0)
                for event in page.events:
                    got.append(event)
                    cursor = event.seq
            before = service.store.get(sid).trace_id
            await service.crash()

            restarted = build_service(
                DurableSessionStore(str(tmp_path / "live"), fsync=False))
            await restarted.start()
            client = LocalClient(restarted)
            try:
                after_id = restarted.store.get(sid).trace_id
                tail = await client.drain(sid, after=cursor)
                got.extend(tail)
            finally:
                await restarted.stop()
            return restarted, sid, before, after_id, got

        return run(scenario())

    def test_trace_id_survives_wal_and_trace_reconnects(self, tmp_path):
        restarted, sid, before, after_id, got = \
            self._crash_scenario(tmp_path)
        assert before is not None
        assert after_id == before
        # one connected tree despite the dead pre-crash root
        assert TRACER.is_connected(before)
        roots = [s for s in TRACER.spans(before)
                 if s.parent_id is None]
        assert len(roots) == 1
        assert roots[0].attrs.get("restart") is True
        restart_events = [e for e in restarted.telemetry.events
                          if e.kind == "restart" and e.key == sid]
        assert len(restart_events) == 1
        assert REGISTRY.value("repro_service_restarts_total") >= 1.0
        assert got[-1].payload == {"state": STATE_DONE}


class TestTelemetryOps:
    """The read-only ``metrics`` and ``trace`` ops, over both
    transports."""

    def test_ops_over_tcp(self, tmp_path):
        async def scenario():
            service = build_service()
            server = ServiceServer(service)
            await service.start()
            await server.start()
            try:
                host, port = server.address
                client = await ServiceClient.connect(host, port)
                sid = await client.submit(SPECS[0])
                await service.flush()
                await client.drain(sid)

                both = await client.metrics()
                prom_only = await client.metrics(format="prometheus")
                trace = await client.trace(sid)
                await client.close()
                return sid, both, prom_only, trace
            finally:
                await server.stop()
                await service.stop()

        sid, both, prom_only, trace = run(scenario())
        assert both["metrics_enabled"] is True
        assert both["tracing_enabled"] is True
        snapshot = both["snapshot"]
        assert snapshot["enabled"] is True
        assert "repro_service_sessions_total" in snapshot["metrics"]
        assert "repro_service_sessions_total" in both["prometheus"]
        assert "snapshot" not in prom_only
        assert "repro_service_sessions_total" in prom_only["prometheus"]

        assert trace["session"] == sid
        assert trace["trace_id"].startswith("t")
        assert trace["chrome"]["traceEvents"]
        assert trace["convergence"]["points"]
        assert all(p["key"] == sid
                   for p in trace["convergence"]["points"])

    def test_metrics_op_reports_disabled_state(self):
        async def scenario():
            disable_telemetry()
            service = build_service()
            await service.start()
            try:
                client = LocalClient(service)
                return await client.metrics(format="json")
            finally:
                await service.stop()

        response = run(scenario())
        assert response["metrics_enabled"] is False
        assert response["tracing_enabled"] is False
        assert response["snapshot"]["enabled"] is False

    def test_metrics_op_rejects_unknown_format(self):
        async def scenario():
            service = build_service()
            await service.start()
            try:
                client = LocalClient(service)
                with pytest.raises(Exception) as err:
                    await client.metrics(format="xml")
                return err.value
            finally:
                await service.stop()

        assert "format" in str(run(scenario()))


class _DroppingFrontend:
    """TCP front end over ``service.handle`` that drops the first N
    connections as soon as a request arrives (the response is lost),
    then serves normally — mirrors test_client_recovery.FlakyFrontend.
    """

    def __init__(self, service, *, drop_first):
        self._service = service
        self.drop_first = drop_first
        self.connections = 0
        self._server = None

    async def __aenter__(self):
        self._server = await asyncio.start_server(
            self._serve, "127.0.0.1", 0)
        host, port = self._server.sockets[0].getsockname()[:2]
        self.address = (host, port)
        return self

    async def __aexit__(self, *exc):
        self._server.close()
        await self._server.wait_closed()

    async def _serve(self, reader, writer):
        from repro.service.protocol import canonical_json
        import json
        self.connections += 1
        conn = self.connections
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                if conn <= self.drop_first:
                    return   # drop mid-request: response lost
                response = await self._service.handle(json.loads(line))
                writer.write(canonical_json(response).encode() + b"\n")
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass


class TestClientReconnectAccounting:
    """Satellite: the TCP client's silent reconnects are visible —
    counted in ``client_stats()`` by cause, with backoff sleep time,
    and mirrored into the registry."""

    def test_stats_count_reconnects_by_cause(self):
        async def scenario():
            service = build_service()
            await service.start()
            try:
                async with _DroppingFrontend(service,
                                             drop_first=2) as fe:
                    client = await ServiceClient.connect(
                        *fe.address, connect_timeout=5.0,
                        max_reconnects=8, reconnect_backoff=0.01)
                    assert await client.ping()
                    stats = client.client_stats()
                    await client.close()
                    return stats, fe.connections
            finally:
                await service.stop()

        stats, connections = run(scenario())
        # conn 1 and 2 dropped the request; conn 3 answered it
        assert connections == 3
        assert stats["requests"] == 1
        assert stats["reconnects"] == 2
        assert stats["causes"] == {"connection-closed": 2}
        # exponential backoff: 0.01 + 0.02
        assert stats["backoff_slept"] == pytest.approx(0.03)
        assert REGISTRY.value(
            "repro_client_reconnects_total",
            {"cause": "connection-closed"}) == 2.0

    def test_stats_start_clean_and_count_requests(self):
        async def scenario():
            service = build_service()
            server = ServiceServer(service)
            await service.start()
            await server.start()
            try:
                client = await ServiceClient.connect(*server.address)
                assert await client.ping()
                assert await client.ping()
                stats = client.client_stats()
                await client.close()
                return stats
            finally:
                await server.stop()
                await service.stop()

        stats = run(scenario())
        assert stats == {"requests": 2, "reconnects": 0,
                         "backoff_slept": 0.0, "causes": {}}
