"""Tests for the DataNode block store."""

import pytest

from repro.hdfs.datanode import DataNode


class TestDataNode:
    def test_store_and_read(self):
        dn = DataNode("dn-1")
        dn.store(1, b"abc")
        assert dn.read(1) == b"abc"
        assert dn.has_block(1)

    def test_missing_block(self):
        dn = DataNode("dn-1")
        assert not dn.has_block(9)

    def test_fail_makes_blocks_unreadable(self):
        dn = DataNode("dn-1")
        dn.store(1, b"abc")
        dn.fail()
        assert not dn.alive
        assert not dn.has_block(1)
        with pytest.raises(RuntimeError):
            dn.read(1)

    def test_store_on_failed_node_rejected(self):
        dn = DataNode("dn-1")
        dn.fail()
        with pytest.raises(RuntimeError):
            dn.store(1, b"x")

    def test_recover_restores_data(self):
        dn = DataNode("dn-1")
        dn.store(1, b"abc")
        dn.fail()
        dn.recover()
        assert dn.read(1) == b"abc"

    def test_drop(self):
        dn = DataNode("dn-1")
        dn.store(1, b"abc")
        dn.drop(1)
        assert not dn.has_block(1)
        dn.drop(1)  # idempotent

    def test_used_bytes(self):
        dn = DataNode("dn-1")
        dn.store(1, b"abc")
        dn.store(2, b"defgh")
        assert dn.used_bytes == 8

    def test_block_ids(self):
        dn = DataNode("dn-1")
        dn.store(5, b"a")
        dn.store(7, b"b")
        assert set(dn.block_ids()) == {5, 7}
