"""Tests for LineRecordReader — the exactly-once and backtracking
behaviours that EARL's pre-map sampling builds on."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.costmodel import CostLedger
from repro.hdfs import HDFS, LineRecordReader, compute_splits


def make_fs(lines, block_size=64):
    fs = HDFS(n_datanodes=3, block_size=block_size, replication=2, seed=1)
    fs.write_lines("/f", lines)
    return fs


class TestReadRecords:
    def test_single_split_reads_all(self):
        lines = [f"row-{i:03d}" for i in range(20)]
        fs = make_fs(lines)
        (split,) = fs.get_splits("/f", 10_000)
        got = [line for _, line in
               LineRecordReader(fs, split).read_records()]
        assert got == lines

    def test_offsets_are_line_starts(self):
        lines = ["aa", "bbb", "c"]
        fs = make_fs(lines)
        (split,) = fs.get_splits("/f", 10_000)
        got = list(LineRecordReader(fs, split).read_records())
        assert got == [(0, "aa"), (3, "bbb"), (7, "c")]

    @pytest.mark.parametrize("split_size", [1, 2, 3, 5, 7, 16, 64, 1000])
    def test_exactly_once_across_split_sizes(self, split_size):
        lines = [f"value-{i}" for i in range(57)]
        fs = make_fs(lines)
        meta = fs.namenode.get("/f")
        splits = compute_splits("/f", meta.size, meta.size, split_size)
        got = []
        for split in splits:
            got.extend(line for _, line in
                       LineRecordReader(fs, split).read_records())
        assert got == lines

    def test_boundary_line_belongs_to_earlier_split(self):
        # File "ab\ncd\n": a split boundary exactly at a line start.
        fs = HDFS(n_datanodes=2, block_size=64, replication=1, seed=2)
        fs.write_text("/f", "ab\ncd\n")
        from repro.hdfs.splits import InputSplit
        first = InputSplit(path="/f", index=0, start=0, length=3,
                           logical_length=3)
        second = InputSplit(path="/f", index=1, start=3, length=3,
                            logical_length=3)
        got_first = [l for _, l in LineRecordReader(fs, first).read_records()]
        got_second = [l for _, l in LineRecordReader(fs, second).read_records()]
        # Hadoop convention: inclusive end => "cd" read by the first split.
        assert got_first == ["ab", "cd"]
        assert got_second == []

    def test_file_without_trailing_newline(self):
        fs = HDFS(n_datanodes=2, block_size=64, replication=1, seed=3)
        fs.write_text("/f", "one\ntwo\nthree")
        (split,) = fs.get_splits("/f", 10_000)
        got = [l for _, l in LineRecordReader(fs, split).read_records()]
        assert got == ["one", "two", "three"]

    def test_charges_disk_costs(self):
        lines = [f"{i}" for i in range(100)]
        fs = make_fs(lines)
        (split,) = fs.get_splits("/f", 10_000)
        ledger = CostLedger()
        list(LineRecordReader(fs, split, ledger=ledger).read_records())
        assert ledger.seconds("disk_read") > 0

    @given(
        lengths=st.lists(st.integers(min_value=0, max_value=12),
                         min_size=1, max_size=30),
        split_size=st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_exactly_once(self, lengths, split_size):
        """Arbitrary line lengths × arbitrary split sizes: every line is
        delivered exactly once, in order."""
        lines = ["x" * ln for ln in lengths]
        fs = HDFS(n_datanodes=2, block_size=32, replication=1, seed=4)
        fs.write_lines("/f", lines)
        meta = fs.namenode.get("/f")
        splits = compute_splits("/f", meta.size, meta.size, split_size)
        got = []
        for split in splits:
            got.extend(l for _, l in
                       LineRecordReader(fs, split).read_records())
        assert got == lines


class TestLineAt:
    def test_backtracks_to_line_start(self):
        lines = ["alpha", "beta", "gamma"]
        fs = make_fs(lines)
        (split,) = fs.get_splits("/f", 10_000)
        reader = LineRecordReader(fs, split)
        # positions inside "beta" (bytes 6..9) must all resolve to it
        for pos in range(6, 10):
            start, line = reader.line_at(pos)
            assert (start, line) == (6, "beta")

    def test_first_line(self):
        fs = make_fs(["first", "second"])
        (split,) = fs.get_splits("/f", 10_000)
        start, line = LineRecordReader(fs, split).line_at(2)
        assert (start, line) == (0, "first")

    def test_position_on_newline_resolves_to_its_line(self):
        fs = make_fs(["ab", "cd"])
        (split,) = fs.get_splits("/f", 10_000)
        start, line = LineRecordReader(fs, split).line_at(2)  # the "\n"
        assert (start, line) == (0, "ab")

    def test_every_position_maps_to_correct_line(self):
        lines = ["aa", "b", "cccc", "dd"]
        fs = make_fs(lines)
        (split,) = fs.get_splits("/f", 10_000)
        reader = LineRecordReader(fs, split)
        text = "\n".join(lines) + "\n"
        expected_starts = []
        pos = 0
        for ln in lines:
            expected_starts.append(pos)
            pos += len(ln) + 1
        for position in range(len(text)):
            # which line contains this byte?
            idx = max(i for i, s in enumerate(expected_starts)
                      if s <= position)
            start, line = reader.line_at(position)
            assert start == expected_starts[idx]
            assert line == lines[idx]

    def test_out_of_range_rejected(self):
        fs = make_fs(["x"])
        (split,) = fs.get_splits("/f", 10_000)
        reader = LineRecordReader(fs, split)
        with pytest.raises(ValueError):
            reader.line_at(-1)
        with pytest.raises(ValueError):
            reader.line_at(10_000)

    def test_charges_random_probe(self):
        fs = make_fs([f"{i}" for i in range(50)])
        (split,) = fs.get_splits("/f", 10_000)
        ledger = CostLedger()
        LineRecordReader(fs, split, ledger=ledger).line_at(40)
        assert ledger.seconds("disk_seek") > 0


def both_readers(fs, split):
    """(records, ledger breakdown) for the scalar and the cached path."""
    out = []
    for cached in (False, True):
        ledger = CostLedger()
        reader = LineRecordReader(fs, split, ledger=ledger, cached=cached)
        out.append((list(reader.read_records()), ledger.breakdown()))
    return out


class TestCachedEdgeCases:
    """The satellite edge cases, each asserted identical between the
    cached and the scalar (uncached) implementation."""

    def test_no_trailing_newline(self):
        fs = HDFS(n_datanodes=2, block_size=64, replication=1, seed=11)
        fs.write_text("/f", "one\ntwo\nthree")
        (split,) = fs.get_splits("/f", 10_000)
        (scalar, l1), (cached, l2) = both_readers(fs, split)
        assert scalar == cached == [(0, "one"), (4, "two"), (8, "three")]
        assert l1 == l2

    def test_line_starting_exactly_at_split_boundary(self):
        # File "ab\ncd\n" cut at byte 3 (the start of "cd"): the first
        # split over-reads "cd", the second skips it — on both paths.
        fs = HDFS(n_datanodes=2, block_size=64, replication=1, seed=12)
        fs.write_text("/f", "ab\ncd\n")
        from repro.hdfs.splits import InputSplit
        first = InputSplit(path="/f", index=0, start=0, length=3,
                           logical_length=3)
        second = InputSplit(path="/f", index=1, start=3, length=3,
                            logical_length=3)
        (s1, a1), (c1, b1) = both_readers(fs, first)
        (s2, a2), (c2, b2) = both_readers(fs, second)
        assert s1 == c1 == [(0, "ab"), (3, "cd")]
        assert s2 == c2 == []
        assert a1 == b1
        assert a2 == b2
        # probing the boundary line still resolves identically
        for pos in (3, 4, 5):
            assert LineRecordReader(fs, second, cached=True).line_at(pos) \
                == LineRecordReader(fs, second, cached=False).line_at(pos) \
                == (3, "cd")

    def test_empty_split(self):
        fs = HDFS(n_datanodes=2, block_size=64, replication=1, seed=13)
        fs.write_text("/f", "a\nb\n")
        from repro.hdfs.splits import InputSplit
        empty = InputSplit(path="/f", index=0, start=2, length=0,
                           logical_length=0)
        (scalar, l1), (cached, l2) = both_readers(fs, empty)
        assert scalar == cached == []
        assert l1 == l2
        assert sum(l1.values()) == 0.0  # nothing read, nothing charged

    def test_split_past_eof(self):
        fs = HDFS(n_datanodes=2, block_size=64, replication=1, seed=14)
        fs.write_text("/f", "a\nb\n")
        from repro.hdfs.splits import InputSplit
        past = InputSplit(path="/f", index=3, start=100, length=50,
                          logical_length=50)
        (scalar, l1), (cached, l2) = both_readers(fs, past)
        assert scalar == cached == []
        assert l1 == l2
        assert sum(l1.values()) == 0.0

    def test_empty_lines_preserved(self):
        fs = HDFS(n_datanodes=2, block_size=64, replication=1, seed=15)
        fs.write_text("/f", "a\n\n\nb\n")
        (split,) = fs.get_splits("/f", 10_000)
        (scalar, l1), (cached, l2) = both_readers(fs, split)
        assert scalar == cached == [(0, "a"), (2, ""), (3, ""), (4, "b")]
        assert l1 == l2
