"""Tests for the HDFS rebalancer."""

import pytest

from repro.cluster.costmodel import CostLedger
from repro.hdfs import HDFS, imbalance, rebalance, replica_counts


def skewed_fs() -> HDFS:
    """All replicas forced onto one node (replication=1, single healthy)."""
    fs = HDFS(n_datanodes=4, block_size=16, replication=1, seed=9)
    # Fail all but node 0 during writes so everything lands there.
    for node_id in ["datanode-1", "datanode-2", "datanode-3"]:
        fs.fail_datanode(node_id)
    fs.write_bytes("/skew", b"a" * 160)  # 10 blocks on datanode-0
    for node_id in ["datanode-1", "datanode-2", "datanode-3"]:
        fs.recover_datanode(node_id)
    return fs


class TestRebalance:
    def test_detects_imbalance(self):
        fs = skewed_fs()
        assert imbalance(fs) == 10

    def test_rebalance_flattens_counts(self):
        fs = skewed_fs()
        moves = rebalance(fs)
        assert moves, "expected at least one move"
        counts = replica_counts(fs)
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_data_survives_rebalance(self):
        fs = skewed_fs()
        before = fs.read_bytes("/skew")
        rebalance(fs)
        assert fs.read_bytes("/skew") == before

    def test_rebalance_charges_network(self):
        fs = skewed_fs()
        ledger = CostLedger()
        rebalance(fs, ledger=ledger)
        assert ledger.seconds("network") > 0

    def test_balanced_fs_is_noop(self):
        fs = HDFS(n_datanodes=3, block_size=16, replication=1, seed=2)
        fs.write_bytes("/even", b"b" * 48)  # 3 blocks over 3 nodes
        rebalance(fs)  # idempotent regardless of placement
        assert rebalance(fs) == []

    def test_never_duplicates_replica_on_same_node(self):
        fs = skewed_fs()
        rebalance(fs)
        for path in fs.list_files():
            for block in fs.namenode.get(path).blocks:
                assert len(block.replicas) == len(set(block.replicas))

    def test_replica_counts_only_healthy(self):
        fs = skewed_fs()
        fs.fail_datanode("datanode-3")
        assert "datanode-3" not in replica_counts(fs)
