"""Tests for NameNode metadata management."""

import pytest

from repro.hdfs.errors import FileAlreadyExists, FileNotFoundInHdfs
from repro.hdfs.namenode import FileMeta, NameNode


@pytest.fixture
def nn() -> NameNode:
    return NameNode()


class TestNamespace:
    def test_create_and_get(self, nn):
        meta = nn.create_file("/x")
        assert nn.get("/x") is meta

    def test_normalize_collapses_slashes(self, nn):
        nn.create_file("/a//b/")
        assert nn.exists("/a/b")

    def test_relative_rejected(self, nn):
        with pytest.raises(ValueError):
            nn.create_file("x")

    def test_duplicate_rejected(self, nn):
        nn.create_file("/d")
        with pytest.raises(FileAlreadyExists):
            nn.create_file("/d")

    def test_overwrite_replaces(self, nn):
        first = nn.create_file("/o")
        second = nn.create_file("/o", overwrite=True)
        assert nn.get("/o") is second
        assert first is not second

    def test_get_missing_raises(self, nn):
        with pytest.raises(FileNotFoundInHdfs):
            nn.get("/missing")

    def test_delete(self, nn):
        nn.create_file("/del")
        nn.delete("/del")
        assert not nn.exists("/del")
        with pytest.raises(FileNotFoundInHdfs):
            nn.delete("/del")

    def test_list_files_sorted_prefix(self, nn):
        for path in ["/b/2", "/a/1", "/a/3", "/c"]:
            nn.create_file(path)
        assert nn.list_files("/a") == ["/a/1", "/a/3"]
        assert nn.list_files() == ["/a/1", "/a/3", "/b/2", "/c"]

    def test_len_and_iter(self, nn):
        nn.create_file("/p")
        nn.create_file("/q")
        assert len(nn) == 2
        assert list(nn) == ["/p", "/q"]

    def test_logical_scale_validation(self, nn):
        with pytest.raises(ValueError):
            nn.create_file("/bad", logical_scale=0.5)


class TestBlockAllocation:
    def test_allocation_advances_offsets(self, nn):
        meta = nn.create_file("/blk")
        b1 = nn.allocate_block(meta, 100)
        b2 = nn.allocate_block(meta, 50)
        assert (b1.offset, b1.length) == (0, 100)
        assert (b2.offset, b2.length) == (100, 50)
        assert meta.size == 150
        assert b1.block_id != b2.block_id

    def test_block_ids_globally_unique(self, nn):
        m1 = nn.create_file("/f1")
        m2 = nn.create_file("/f2")
        ids = {nn.allocate_block(m1, 10).block_id,
               nn.allocate_block(m2, 10).block_id,
               nn.allocate_block(m1, 10).block_id}
        assert len(ids) == 3

    def test_blocks_for_range(self, nn):
        meta = nn.create_file("/r")
        for _ in range(4):
            nn.allocate_block(meta, 10)
        hits = nn.blocks_for_range(meta, 5, 25)
        assert [b.offset for b in hits] == [0, 10, 20]

    def test_blocks_for_range_bounds_checked(self, nn):
        meta = nn.create_file("/rb")
        nn.allocate_block(meta, 10)
        with pytest.raises(ValueError):
            nn.blocks_for_range(meta, 0, 11)


class TestFileMeta:
    def test_logical_size(self):
        meta = FileMeta(path="/m", size=100, logical_scale=2.5)
        assert meta.logical_size == 250

    def test_default_scale_identity(self):
        meta = FileMeta(path="/m", size=77)
        assert meta.logical_size == 77
