"""Tests for Block metadata."""

from repro.hdfs.blocks import DEFAULT_BLOCK_SIZE, Block


class TestBlock:
    def test_default_block_size_is_hadoop_default(self):
        assert DEFAULT_BLOCK_SIZE == 64 * 1024 * 1024

    def test_end(self):
        block = Block(block_id=1, path="/f", offset=100, length=50)
        assert block.end == 150

    def test_covers(self):
        block = Block(block_id=1, path="/f", offset=100, length=50)
        assert block.covers(100)
        assert block.covers(149)
        assert not block.covers(150)
        assert not block.covers(99)

    def test_replicas_default_empty(self):
        block = Block(block_id=1, path="/f", offset=0, length=10)
        assert block.replicas == []
