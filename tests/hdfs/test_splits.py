"""Tests for logical input-split computation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdfs.splits import InputSplit, compute_splits


class TestComputeSplits:
    def test_empty_file_no_splits(self):
        assert compute_splits("/f", 0, 0, 64) == []

    def test_single_split_when_small(self):
        splits = compute_splits("/f", 100, 100, 1000)
        assert len(splits) == 1
        assert splits[0].start == 0
        assert splits[0].length == 100

    def test_split_count_follows_logical_size(self):
        # 1000 actual bytes standing in for 10000 logical, split=1000
        splits = compute_splits("/f", 1000, 10_000, 1000)
        assert len(splits) == 10

    def test_splits_partition_file_exactly(self):
        splits = compute_splits("/f", 997, 997, 100)
        assert splits[0].start == 0
        assert splits[-1].end == 997
        for prev, cur in zip(splits, splits[1:]):
            assert prev.end == cur.start

    def test_logical_lengths_sum(self):
        splits = compute_splits("/f", 1000, 123_456, 10_000)
        assert sum(s.logical_length for s in splits) == 123_456

    def test_at_least_one_byte_per_split(self):
        splits = compute_splits("/f", 3, 1_000_000, 10)
        assert len(splits) == 3  # capped at actual size

    def test_invalid_split_size(self):
        with pytest.raises(ValueError):
            compute_splits("/f", 10, 10, 0)

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            compute_splits("/f", -1, 10, 10)

    @given(actual=st.integers(min_value=1, max_value=10_000),
           scale=st.integers(min_value=1, max_value=1000),
           split=st.integers(min_value=1, max_value=100_000))
    @settings(max_examples=100, deadline=None)
    def test_property_partition_invariants(self, actual, scale, split):
        logical = actual * scale
        splits = compute_splits("/f", actual, logical, split)
        assert splits[0].start == 0
        assert splits[-1].end == actual
        assert sum(s.length for s in splits) == actual
        assert sum(s.logical_length for s in splits) == logical
        for prev, cur in zip(splits, splits[1:]):
            assert prev.end == cur.start
        assert [s.index for s in splits] == list(range(len(splits)))


class TestInputSplit:
    def test_end_property(self):
        s = InputSplit(path="/f", index=0, start=10, length=5,
                       logical_length=5)
        assert s.end == 15

    def test_negative_coordinates_rejected(self):
        with pytest.raises(ValueError):
            InputSplit(path="/f", index=0, start=-1, length=5,
                       logical_length=5)
