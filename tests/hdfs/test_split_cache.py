"""Tests for the columnar split cache (newline index + line column)."""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.costmodel import CostLedger
from repro.hdfs import (
    HDFS,
    LineRecordReader,
    SplitIndexCache,
    build_split_index,
    compute_splits,
    read_numeric_column,
)


def make_fs(lines, block_size=64, trailing=True):
    fs = HDFS(n_datanodes=3, block_size=block_size, replication=2, seed=1)
    body = "\n".join(lines) + ("\n" if trailing and lines else "")
    fs.write_text("/f", body)
    return fs


class TestSplitIndex:
    def test_index_columns_match_scan(self):
        lines = [f"row-{i:03d}" for i in range(50)]
        fs = make_fs(lines)
        (split,) = fs.get_splits("/f", 10_000)
        index = build_split_index(fs, split)
        assert index.lines == lines
        text = "\n".join(lines) + "\n"
        starts = [0] + [i + 1 for i, c in enumerate(text[:-1]) if c == "\n"]
        assert index.starts.tolist() == starts

    def test_partial_first_entry_undecoded(self):
        lines = ["alpha", "beta", "gamma"]
        fs = make_fs(lines)
        meta = fs.namenode.get("/f")
        # split starting mid-"beta": entry 0 is the partial tail of it
        splits = compute_splits("/f", meta.size, meta.size, 8)
        split = splits[1]
        assert split.start not in (0, 6, 11)  # genuinely mid-line
        index = build_split_index(fs, split)
        assert index.lines[0] is None
        assert index.prefix_start < split.start
        assert not index.acceptable[0]

    def test_probe_charges_precomputed(self):
        lines = [f"{i:07d}" for i in range(200)]
        fs = make_fs(lines, block_size=128)
        (split,) = fs.get_splits("/f", 10**6)
        index = build_split_index(fs, split)
        # every entry's charge equals what the scalar line_at charges
        for entry in range(len(index.starts)):
            scalar = CostLedger()
            LineRecordReader(fs, split, ledger=scalar, cached=False) \
                .line_at(int(index.starts[entry]))
            cached = CostLedger()
            index.charge_probe(cached, entry)
            assert cached.breakdown() == scalar.breakdown()


class TestSplitIndexCache:
    def test_materialize_once_then_hit(self):
        fs = make_fs([f"{i}" for i in range(100)])
        (split,) = fs.get_splits("/f", 10_000)
        cache = fs.split_cache
        assert cache.acquire(fs, split) is not None
        assert cache.stats.materializations == 1
        assert cache.acquire(fs, split) is not None
        assert cache.stats.materializations == 1
        assert cache.stats.hits == 1

    def test_write_invalidates(self):
        fs = make_fs(["a", "b"])
        (split,) = fs.get_splits("/f", 10_000)
        fs.split_cache.acquire(fs, split)
        assert len(fs.split_cache) == 1
        fs.write_lines("/f", ["x", "y", "z"], overwrite=True)
        assert len(fs.split_cache) == 0
        assert fs.split_cache.stats.invalidations == 1

    def test_delete_invalidates(self):
        fs = make_fs(["a", "b"])
        (split,) = fs.get_splits("/f", 10_000)
        fs.split_cache.acquire(fs, split)
        fs.delete("/f")
        assert len(fs.split_cache) == 0

    def test_lost_block_falls_back_to_scalar(self):
        fs = make_fs([f"{i:05d}" for i in range(100)], block_size=64)
        (split,) = fs.get_splits("/f", 10**6)
        cache = fs.split_cache
        assert cache.acquire(fs, split) is not None
        for node in list(fs.datanodes):
            fs.fail_datanode(node)
        # cached bytes exist, but the simulated blocks are gone: the
        # cache must refuse so failure semantics stay the scalar path's
        assert cache.acquire(fs, split) is None
        assert cache.stats.fallbacks >= 1

    def test_cache_not_pickled(self):
        fs = make_fs([f"{i}" for i in range(30)])
        (split,) = fs.get_splits("/f", 10_000)
        fs.split_cache.acquire(fs, split)
        clone = pickle.loads(pickle.dumps(fs))
        assert isinstance(clone.split_cache, SplitIndexCache)
        assert len(clone.split_cache) == 0
        # the clone still reads correctly and can build its own index
        got = [l for _, l in LineRecordReader(clone, split).read_records()]
        assert got == [f"{i}" for i in range(30)]
        assert len(clone.split_cache) == 1


class TestReadNumericColumn:
    def test_column_matches_file(self):
        values = [float(i) * 0.5 for i in range(500)]
        fs = make_fs([f"{v}" for v in values], block_size=256)
        col = read_numeric_column(fs, "/f", split_logical_bytes=512)
        assert np.array_equal(col, np.asarray(values))

    def test_cached_and_scalar_identical(self):
        values = [f"{i * 3}" for i in range(300)]
        fs = make_fs(values, block_size=128)
        l1, l2 = CostLedger(), CostLedger()
        a = read_numeric_column(fs, "/f", ledger=l1, cached=True,
                                split_logical_bytes=256)
        b = read_numeric_column(fs, "/f", ledger=l2, cached=False,
                                split_logical_bytes=256)
        assert np.array_equal(a, b)
        assert l1.breakdown() == l2.breakdown()

    def test_second_ingest_hits_cache(self):
        fs = make_fs([f"{i}" for i in range(200)], block_size=128)
        read_numeric_column(fs, "/f", split_logical_bytes=256)
        built = fs.split_cache.stats.materializations
        assert built >= 1
        read_numeric_column(fs, "/f", split_logical_bytes=256)
        assert fs.split_cache.stats.materializations == built

    def test_column_cache_replays_charges_and_is_read_only(self):
        fs = make_fs([f"{i}" for i in range(200)], block_size=128)
        l1, l2 = CostLedger(), CostLedger()
        first = read_numeric_column(fs, "/f", ledger=l1,
                                    split_logical_bytes=256)
        second = read_numeric_column(fs, "/f", ledger=l2,
                                     split_logical_bytes=256)
        assert np.array_equal(first, second)
        # a column-cache hit still charges the full simulated scan
        assert l1.breakdown() == l2.breakdown()
        assert l2.seconds("disk_read") > 0
        # the replayed array is shared, so it must be immutable
        with pytest.raises(ValueError):
            second[0] = 99.0

    def test_column_cache_invalidated_on_write(self):
        fs = make_fs([f"{i}" for i in range(50)])
        read_numeric_column(fs, "/f")
        fs.write_lines("/f", ["7", "8"], overwrite=True)
        col = read_numeric_column(fs, "/f")
        assert col.tolist() == [7.0, 8.0]

    def test_custom_parser(self):
        fs = make_fs([f"k\t{i}" for i in range(20)])
        col = read_numeric_column(
            fs, "/f", parser=lambda line: float(line.rsplit("\t", 1)[-1]))
        assert col.tolist() == [float(i) for i in range(20)]

    def test_empty_file(self):
        fs = HDFS(n_datanodes=2, block_size=64, replication=1, seed=3)
        fs.write_text("/e", "")
        assert read_numeric_column(fs, "/e").size == 0


class TestCachedReaderEquivalence:
    """The cached reader is byte-identical to the scalar reference —
    records, probe results, and every ledger category."""

    @given(
        lengths=st.lists(st.integers(min_value=0, max_value=12),
                         min_size=1, max_size=30),
        split_size=st.integers(min_value=1, max_value=100),
        trailing=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_scan_and_probe_equivalence(self, lengths, split_size,
                                                 trailing):
        lines = ["x" * ln for ln in lengths]
        fs = HDFS(n_datanodes=2, block_size=32, replication=1, seed=4)
        body = "\n".join(lines) + ("\n" if trailing else "")
        if not body:
            return
        fs.write_text("/f", body)
        meta = fs.namenode.get("/f")
        splits = compute_splits("/f", meta.size, meta.size, split_size)
        for split in splits:
            l1, l2 = CostLedger(), CostLedger()
            scalar = list(LineRecordReader(fs, split, ledger=l1,
                                           cached=False).read_records())
            cached = list(LineRecordReader(fs, split, ledger=l2,
                                           cached=True).read_records())
            assert scalar == cached
            assert l1.breakdown() == l2.breakdown()
            for pos in range(split.start, min(split.end, meta.size)):
                p1, p2 = CostLedger(), CostLedger()
                r1 = LineRecordReader(fs, split, ledger=p1,
                                      cached=False).line_at(pos)
                r2 = LineRecordReader(fs, split, ledger=p2,
                                      cached=True).line_at(pos)
                assert r1 == r2
                assert p1.breakdown() == p2.breakdown()

    def test_multibyte_utf8_lines(self):
        lines = ["héllo", "wörld", "日本語テキスト", "plain"]
        fs = make_fs(lines, block_size=16)
        meta = fs.namenode.get("/f")
        for split_size in (3, 7, 10_000):
            splits = compute_splits("/f", meta.size, meta.size, split_size)
            got = []
            for split in splits:
                got.extend(l for _, l in
                           LineRecordReader(fs, split).read_records())
            assert got == lines
