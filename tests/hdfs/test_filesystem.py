"""Tests for the simulated HDFS facade."""

import pytest

from repro.cluster.costmodel import CostLedger
from repro.hdfs import (
    HDFS,
    BlockUnavailableError,
    FileAlreadyExists,
    FileNotFoundInHdfs,
)


@pytest.fixture
def fs() -> HDFS:
    return HDFS(n_datanodes=4, block_size=64, replication=2, seed=5)


class TestWriteRead:
    def test_roundtrip_bytes(self, fs):
        data = bytes(range(256)) * 3
        fs.write_bytes("/f", data)
        assert fs.read_bytes("/f") == data

    def test_roundtrip_text(self, fs):
        fs.write_text("/t", "hello\nworld\n")
        assert fs.read_text("/t") == "hello\nworld\n"

    def test_roundtrip_lines(self, fs):
        lines = [f"line-{i}" for i in range(50)]
        fs.write_lines("/lines", lines)
        assert fs.read_lines("/lines") == lines

    def test_empty_lines_file(self, fs):
        fs.write_lines("/empty", [])
        assert fs.read_lines("/empty") == []

    def test_multi_block_chunking(self, fs):
        data = b"x" * 300  # block_size=64 -> 5 blocks
        meta = fs.write_bytes("/blocks", data)
        assert len(meta.blocks) == 5
        assert [b.length for b in meta.blocks] == [64, 64, 64, 64, 44]
        assert fs.read_bytes("/blocks") == data

    def test_blocks_are_replicated(self, fs):
        meta = fs.write_bytes("/r", b"y" * 100)
        for block in meta.blocks:
            assert len(block.replicas) == 2
            assert len(set(block.replicas)) == 2

    def test_overwrite_requires_flag(self, fs):
        fs.write_text("/dup", "a")
        with pytest.raises(FileAlreadyExists):
            fs.write_text("/dup", "b")
        fs.write_text("/dup", "b", overwrite=True)
        assert fs.read_text("/dup") == "b"

    def test_missing_file_raises(self, fs):
        with pytest.raises(FileNotFoundInHdfs):
            fs.read_bytes("/nope")

    def test_delete_frees_datanode_space(self, fs):
        fs.write_bytes("/gone", b"z" * 500)
        assert fs.total_used_bytes() > 0
        fs.delete("/gone")
        assert fs.total_used_bytes() == 0
        assert not fs.exists("/gone")


class TestReadRange:
    def test_range_matches_slice(self, fs):
        data = bytes(i % 251 for i in range(1000))
        fs.write_bytes("/rr", data)
        for start, end in [(0, 10), (60, 70), (63, 65), (0, 1000), (999, 1000)]:
            assert fs.read_range("/rr", start, end) == data[start:end]

    def test_out_of_bounds_rejected(self, fs):
        fs.write_bytes("/rb", b"abc")
        with pytest.raises(ValueError):
            fs.read_range("/rb", 0, 4)
        with pytest.raises(ValueError):
            fs.read_range("/rb", -1, 2)
        with pytest.raises(ValueError):
            fs.read_range("/rb", 2, 1)


class TestCostCharging:
    def test_full_read_charges_logical_bytes(self, fs):
        ledger = CostLedger()
        fs.write_bytes("/cost", b"a" * 1000, logical_scale=10.0)
        fs.read_bytes("/cost", ledger=ledger)
        expected = 10_000 / ledger.params.disk_bandwidth
        assert ledger.seconds("disk_read") == pytest.approx(expected)

    def test_range_read_scales(self, fs):
        ledger = CostLedger()
        fs.write_bytes("/cost2", b"a" * 1000, logical_scale=4.0)
        fs.read_range("/cost2", 0, 100, ledger=ledger)
        expected = 400 / ledger.params.disk_bandwidth
        assert ledger.seconds("disk_read") == pytest.approx(expected)

    def test_write_charges_replication_network(self, fs):
        ledger = CostLedger()
        fs.write_bytes("/w", b"a" * 1000, ledger=ledger)
        assert ledger.seconds("disk_write") > 0
        assert ledger.seconds("network") > 0


class TestFailuresAndAvailability:
    def test_replica_survives_single_failure(self, fs):
        data = b"q" * 500
        fs.write_bytes("/ha", data)
        fs.fail_datanode("datanode-0")
        # replication=2 so one failure can never lose data
        assert fs.read_bytes("/ha") == data

    def test_all_replicas_lost_raises(self, fs):
        fs.write_bytes("/lost", b"v" * 100)
        for node_id in list(fs.datanodes):
            fs.fail_datanode(node_id)
        with pytest.raises(BlockUnavailableError):
            fs.read_bytes("/lost")

    def test_available_fraction_degrades(self, fs):
        fs.write_bytes("/frac", b"m" * 640)  # 10 blocks
        assert fs.available_fraction("/frac") == 1.0
        for node_id in list(fs.datanodes):
            fs.fail_datanode(node_id)
        assert fs.available_fraction("/frac") == 0.0

    def test_recovery_restores_reads(self, fs):
        fs.write_bytes("/rec", b"r" * 100)
        for node_id in list(fs.datanodes):
            fs.fail_datanode(node_id)
        for node_id in list(fs.datanodes):
            fs.recover_datanode(node_id)
        assert fs.read_bytes("/rec") == b"r" * 100

    def test_split_available_tracks_blocks(self, fs):
        fs.write_bytes("/sa", b"s" * 640)
        splits = fs.get_splits("/sa", 64)
        assert all(fs.split_available(s) for s in splits)
        for node_id in list(fs.datanodes):
            fs.fail_datanode(node_id)
        assert not any(fs.split_available(s) for s in splits)


class TestNamespace:
    def test_list_files_prefix(self, fs):
        fs.write_text("/a/one", "1")
        fs.write_text("/a/two", "2")
        fs.write_text("/b/three", "3")
        assert fs.list_files("/a") == ["/a/one", "/a/two"]
        assert len(fs.list_files("/")) == 3

    def test_relative_path_rejected(self, fs):
        with pytest.raises(ValueError):
            fs.write_text("relative", "x")

    def test_logical_size(self, fs):
        fs.write_bytes("/ls", b"a" * 100, logical_scale=7.0)
        assert fs.logical_size("/ls") == 700
        assert fs.file_size("/ls") == 100
