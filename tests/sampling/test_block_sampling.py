"""Tests for block sampling and its clustered-layout bias (§7)."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.sampling.block_sampling import block_sampling_bias, sample_blocks
from repro.workloads import clustered_lines, numeric_dataset, numeric_lines


@pytest.fixture
def cluster() -> Cluster:
    return Cluster(n_nodes=4, block_size=512, replication=2, seed=10)


class TestSampleBlocks:
    def test_returns_requested_volume(self, cluster):
        lines = [f"{i:08d}" for i in range(500)]
        cluster.hdfs.write_lines("/b", lines)
        got = sample_blocks(cluster.hdfs, "/b", 50, seed=1)
        assert len(got) >= 50

    def test_lines_come_from_file(self, cluster):
        lines = [f"{i:08d}" for i in range(500)]
        cluster.hdfs.write_lines("/b", lines)
        got = sample_blocks(cluster.hdfs, "/b", 30, seed=2)
        assert set(got) <= set(lines)

    def test_empty_file(self, cluster):
        cluster.hdfs.write_lines("/empty", [])
        assert sample_blocks(cluster.hdfs, "/empty", 10, seed=3) == []

    def test_blocks_are_contiguous_runs(self, cluster):
        lines = [f"{i:08d}" for i in range(500)]
        cluster.hdfs.write_lines("/b", lines)
        got = sample_blocks(cluster.hdfs, "/b", 20, seed=4)
        values = [int(x) for x in got]
        # at least the first block's values are consecutive
        first_run = values[:10]
        assert all(b - a == 1 for a, b in zip(first_run, first_run[1:]))


class TestClusteredBias:
    def test_block_sampling_biased_on_clustered_layout(self, cluster):
        """The §7 story: clustered layout → block samples mislead; the
        same volume drawn uniformly does not."""
        values = numeric_dataset(4000, "lognormal", seed=5)
        cluster.hdfs.write_lines("/clustered", clustered_lines(values))
        cluster.hdfs.write_lines("/shuffled", numeric_lines(
            values[np.random.default_rng(6).permutation(4000)]))
        true_mean = float(np.mean(values))
        biased_err, _ = block_sampling_bias(
            cluster.hdfs, "/clustered", 200, true_mean=true_mean,
            trials=15, seed=7)
        uniform_err, _ = block_sampling_bias(
            cluster.hdfs, "/shuffled", 200, true_mean=true_mean,
            trials=15, seed=7)
        assert biased_err > 2 * uniform_err

    def test_bias_requires_data(self, cluster):
        cluster.hdfs.write_lines("/none", [])
        with pytest.raises(ValueError):
            block_sampling_bias(cluster.hdfs, "/none", 10, true_mean=1.0,
                                trials=2, seed=8)
