"""Tests for the reservoir-sampling baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling.reservoir import reservoir_sample, reservoir_sample_indices


class TestReservoirSample:
    def test_exact_size(self):
        sample = reservoir_sample(range(1000), 50, seed=1)
        assert len(sample) == 50

    def test_subset_of_population(self):
        sample = reservoir_sample(range(100), 20, seed=2)
        assert set(sample) <= set(range(100))

    def test_short_stream_returns_all(self):
        assert sorted(reservoir_sample(range(5), 10, seed=3)) == list(range(5))

    def test_no_duplicates(self):
        sample = reservoir_sample(range(1000), 100, seed=4)
        assert len(set(sample)) == 100

    def test_deterministic(self):
        a = reservoir_sample(range(500), 30, seed=5)
        b = reservoir_sample(range(500), 30, seed=5)
        assert a == b

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            reservoir_sample(range(10), 0)

    def test_uniformity_chi_square_like(self):
        """Every item should appear with probability k/n over many runs."""
        counts = np.zeros(20)
        runs = 2000
        rng = np.random.default_rng(6)
        for _ in range(runs):
            for item in reservoir_sample(range(20), 5, seed=rng):
                counts[item] += 1
        expected = runs * 5 / 20
        assert np.all(np.abs(counts - expected) < 5 * np.sqrt(expected))

    @given(n=st.integers(min_value=1, max_value=300),
           k=st.integers(min_value=1, max_value=50))
    @settings(max_examples=60, deadline=None)
    def test_property_size_and_membership(self, n, k):
        sample = reservoir_sample_indices(n, k, seed=7)
        assert len(sample) == min(n, k)
        assert all(0 <= x < n for x in sample)
        assert len(set(sample)) == len(sample)
