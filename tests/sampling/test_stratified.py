"""StratifiedSampler: strata, quota allocation policies, drawing."""

import numpy as np
import pytest

from repro.sampling import (
    ALLOCATION_NEYMAN,
    ALLOCATION_PROPORTIONAL,
    ALLOCATION_UNIFORM,
    StratifiedSampler,
    allocate_with_caps,
)


class TestAllocateWithCaps:
    def test_sums_to_total_and_respects_caps(self):
        counts = allocate_with_caps([3.0, 1.0, 1.0], 10, [100, 100, 100])
        assert sum(counts) == 10
        assert counts == [6, 2, 2]

    def test_caps_redistribute_excess(self):
        counts = allocate_with_caps([10.0, 1.0, 1.0], 12, [2, 100, 100])
        assert counts[0] == 2          # capped
        assert sum(counts) == 12       # excess went to the open slots

    def test_total_beyond_capacity_fills_everything(self):
        counts = allocate_with_caps([1.0, 1.0], 99, [3, 4])
        assert counts == [3, 4]

    def test_zero_weights_spread_evenly(self):
        counts = allocate_with_caps([0.0, 0.0, 0.0], 6, [10, 10, 10])
        assert sum(counts) == 6
        assert max(counts) - min(counts) <= 1

    def test_small_total_goes_to_heaviest(self):
        counts = allocate_with_caps([1.0, 5.0, 2.0], 1, [10, 10, 10])
        assert counts == [0, 1, 0]

    def test_deterministic(self):
        a = allocate_with_caps([2.0, 3.0, 5.0], 7, [4, 4, 4])
        b = allocate_with_caps([2.0, 3.0, 5.0], 7, [4, 4, 4])
        assert a == b

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            allocate_with_caps([1.0], -1, [5])
        with pytest.raises(ValueError):
            allocate_with_caps([-1.0], 5, [5])


class TestStrata:
    def test_appearance_order_and_populations(self):
        sampler = StratifiedSampler(["b", "a", "b", "c", "b"], seed=0)
        assert sampler.keys == ["b", "a", "c"]
        assert sampler.populations == {"b": 3, "a": 1, "c": 1}
        assert list(sampler.rows("b")) == [0, 2, 4]

    def test_empty_keys_rejected(self):
        with pytest.raises(ValueError):
            StratifiedSampler([])

    def test_unknown_allocation_rejected(self):
        with pytest.raises(ValueError):
            StratifiedSampler(["a"], allocation="nope")


class TestDrawing:
    def test_take_is_without_replacement_and_uniform_design(self):
        keys = ["a"] * 10 + ["b"] * 5
        sampler = StratifiedSampler(keys, seed=3)
        first = sampler.take("a", 4)
        second = sampler.take("a", 6)
        drawn = np.concatenate([first, second])
        assert sorted(drawn) == list(range(10))      # exactly stratum a
        assert sampler.remaining("a") == 0
        assert sampler.remaining("b") == 5
        assert sampler.sampled_count == 10

    def test_take_matches_attached_rng_permutation(self):
        keys = ["a"] * 8
        sampler = StratifiedSampler(keys)
        rng = np.random.default_rng(17)
        sampler.attach_rng("a", rng)
        expected = np.random.default_rng(17).permutation(8)
        assert list(sampler.take("a", 8)) == list(expected)

    def test_attach_after_draw_rejected(self):
        sampler = StratifiedSampler(["a", "a"], seed=1)
        sampler.take("a", 1)
        with pytest.raises(RuntimeError):
            sampler.attach_rng("a", np.random.default_rng(0))

    def test_peek_does_not_consume(self):
        sampler = StratifiedSampler(["a"] * 6, seed=5)
        pilot = sampler.peek("a", 3)
        assert sampler.consumed("a") == 0
        # the pilot is the prefix of the same sample take() walks
        assert list(sampler.take("a", 3)) == list(pilot)

    def test_overdraw_rejected(self):
        sampler = StratifiedSampler(["a"] * 3, seed=2)
        with pytest.raises(ValueError):
            sampler.take("a", 4)
        with pytest.raises(ValueError):
            sampler.peek("a", 4)

    def test_seeded_runs_identical(self):
        keys = list("aabbccab")
        a = StratifiedSampler(keys, seed=11)
        b = StratifiedSampler(keys, seed=11)
        for key in a.keys:
            assert list(a.take(key, a.population(key))) \
                == list(b.take(key, b.population(key)))


class TestAllocationPolicies:
    KEYS = ["big"] * 80 + ["mid"] * 15 + ["rare"] * 5

    def test_uniform_is_senate(self):
        sampler = StratifiedSampler(self.KEYS,
                                    allocation=ALLOCATION_UNIFORM, seed=0)
        quotas = sampler.allocate(9)
        assert quotas == {"big": 3, "mid": 3, "rare": 3}

    def test_proportional_follows_populations(self):
        sampler = StratifiedSampler(
            self.KEYS, allocation=ALLOCATION_PROPORTIONAL, seed=0)
        quotas = sampler.allocate(20)
        assert quotas == {"big": 16, "mid": 3, "rare": 1}

    def test_neyman_weights_population_times_scale(self):
        sampler = StratifiedSampler(self.KEYS,
                                    allocation=ALLOCATION_NEYMAN, seed=0)
        # Without scales: proportional fallback.
        assert sampler.allocate(20) == {"big": 16, "mid": 3, "rare": 1}
        sampler.set_scale("big", 1.0)
        sampler.set_scale("mid", 1.0)
        sampler.set_scale("rare", 40.0)   # wildly dispersed rare group
        quotas = sampler.allocate(20)
        # N_h * S_h: 80, 15, 200 -> the rare-but-noisy group dominates;
        # its quota caps at the stratum's 5 rows and the rest spills
        # back to the other strata by weight.
        assert quotas["rare"] == 5
        assert quotas["big"] > quotas["mid"]
        assert sum(quotas.values()) == 20

    def test_allocation_caps_at_remaining(self):
        sampler = StratifiedSampler(
            self.KEYS, allocation=ALLOCATION_PROPORTIONAL, seed=0)
        sampler.take("rare", 5)           # exhaust the rare stratum
        quotas = sampler.allocate(30)
        assert quotas["rare"] == 0
        assert sum(quotas.values()) == 30

    def test_active_restriction(self):
        sampler = StratifiedSampler(
            self.KEYS, allocation=ALLOCATION_PROPORTIONAL, seed=0)
        quotas = sampler.allocate(10, active=["mid", "rare"])
        assert set(quotas) == {"mid", "rare"}
        assert sum(quotas.values()) == 10

    def test_bad_scale_rejected(self):
        sampler = StratifiedSampler(self.KEYS,
                                    allocation=ALLOCATION_NEYMAN, seed=0)
        with pytest.raises(ValueError):
            sampler.set_scale("big", float("nan"))
        with pytest.raises(ValueError):
            sampler.set_scale("big", -1.0)
