"""Tests for the 2-file/ARHASH sampler (§7 related work)."""

import numpy as np
import pytest

from repro.cluster.costmodel import CostLedger
from repro.sampling.twofile import TwoFileSampler


class TestTwoFileSampler:
    def test_draws_come_from_population(self):
        values = list(range(100))
        sampler = TwoFileSampler(values, 0.5, seed=1)
        sample = sampler.sample(200)
        assert all(v in values for v in sample)

    def test_memory_probability(self):
        sampler = TwoFileSampler(list(range(100)), 0.3, seed=2)
        assert sampler.memory_probability == pytest.approx(0.3)

    def test_disk_draw_fraction_matches_expectation(self):
        sampler = TwoFileSampler(list(range(1000)), 0.8, seed=3)
        k = 5000
        sampler.sample(k)
        observed = sampler.disk_draws / k
        assert observed == pytest.approx(0.2, abs=0.03)
        assert sampler.expected_seeks(k) == pytest.approx(1000.0)

    def test_all_memory_never_seeks(self):
        sampler = TwoFileSampler(list(range(50)), 1.0, seed=4)
        ledger = CostLedger()
        sampler.sample(500, ledger=ledger)
        assert sampler.disk_draws == 0
        assert ledger.seconds("disk_seek") == 0.0

    def test_disk_draws_charge_ledger(self):
        sampler = TwoFileSampler(list(range(50)), 0.0, seed=5,
                                 item_bytes=100)
        ledger = CostLedger()
        sampler.sample(10, ledger=ledger)
        assert sampler.disk_draws == 10
        assert ledger.seconds("disk_seek") > 0
        assert ledger.seconds("disk_read") > 0

    def test_uniformity_over_whole_population(self):
        """Two-stage draw must remain uniform over the union."""
        values = list(range(20))
        sampler = TwoFileSampler(values, 0.5, seed=6)
        counts = np.zeros(20)
        k = 20_000
        for v in sampler.sample(k):
            counts[v] += 1
        expected = k / 20
        assert np.all(np.abs(counts - expected) < 5 * np.sqrt(expected))

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            TwoFileSampler([], 0.5)

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            TwoFileSampler([1], 0.5).sample(-1)


class TestBaseHelpers:
    def test_draw_sample_without_replacement(self):
        from repro.sampling.base import draw_sample
        sample = draw_sample(list(range(50)), 10, seed=1)
        assert len(sample) == 10
        assert len(set(sample)) == 10

    def test_draw_sample_with_replacement_allows_oversampling(self):
        from repro.sampling.base import draw_sample
        sample = draw_sample([1, 2, 3], 10, replace=True, seed=2)
        assert len(sample) == 10

    def test_draw_sample_validation(self):
        from repro.sampling.base import draw_sample
        with pytest.raises(ValueError):
            draw_sample([1, 2], 3)
        with pytest.raises(ValueError):
            draw_sample([1, 2], -1)

    def test_allocate_per_split_sums_to_total(self):
        from repro.hdfs.splits import InputSplit
        from repro.sampling.base import allocate_per_split
        splits = [InputSplit("/f", i, i * 100, 100, logical_length=ln)
                  for i, ln in enumerate([100, 300, 600])]
        counts = allocate_per_split(splits, 100)
        assert sum(counts) == 100
        assert counts[2] > counts[0]

    def test_allocate_empty(self):
        from repro.sampling.base import allocate_per_split
        assert allocate_per_split([], 10) == []
