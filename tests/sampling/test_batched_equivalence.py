"""Batched/cached vs scalar sampler equivalence (the PR's contract).

Every sampler in this package has a scalar reference implementation and
a batched (or cache-served) fast path.  For any seed the two must agree
*byte for byte*: the same sampled records in the same order, the same
internal counters, and the same :class:`CostLedger` charges — category
by category, to float equality — because the batched paths replay the
exact sequence of simulated charges, not an aggregate of them.
"""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.cluster.costmodel import CostLedger
from repro.sampling.block_sampling import sample_blocks
from repro.sampling.postmap import PostMapSampler
from repro.sampling.premap import PreMapSampler
from repro.sampling.reservoir import reservoir_sample
from repro.sampling.twofile import TwoFileSampler


def make_cluster(lines, block_size=512, seed=8):
    cluster = Cluster(n_nodes=4, block_size=block_size, replication=2,
                      seed=seed)
    cluster.hdfs.write_lines("/f", lines)
    return cluster


def variable_lines(seed, n=1200):
    rng = np.random.default_rng(seed)
    return ["" if rng.integers(0, 12) == 0
            else "v" * int(rng.integers(1, 30)) + f"-{i}"
            for i in range(n)]


def drive_record_source(cluster, sampler, seed, targets):
    """Run a stateful record source through several expansion rounds."""
    rng = np.random.default_rng(seed)
    rounds, ledgers = [], []
    for target in targets:
        sampler.set_total_target(target)
        ledger = cluster.new_ledger()
        got = []
        for split in sampler.splits:
            got.extend(sampler.read(cluster.hdfs, split, ledger, rng))
        rounds.append(got)
        ledgers.append(ledger.breakdown())
    return rounds, ledgers, sampler.sampled_count, rng.bit_generator.state


class TestPreMapEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_batched_equals_scalar(self, seed):
        lines = variable_lines(seed)
        targets = (30, 90, 400, 1000)
        c1 = make_cluster(lines)
        ref = drive_record_source(
            c1, PreMapSampler(c1.hdfs, "/f", batched=False), seed, targets)
        c2 = make_cluster(lines)
        fast = drive_record_source(
            c2, PreMapSampler(c2.hdfs, "/f", batched=True), seed, targets)
        assert ref[0] == fast[0]       # records, per round, in order
        assert ref[1] == fast[1]       # ledger charges, per round
        assert ref[2] == fast[2]       # incremental sampled_count
        assert ref[3] == fast[3]       # RNG end state: same variates drawn

    @pytest.mark.parametrize("seed", range(4))
    def test_exhaustion_equivalence(self, seed):
        """A nearly-fully-sampled split exhausts at the identical point."""
        lines = [f"{i:04d}" for i in range(15)]
        c1 = make_cluster(lines)
        ref = drive_record_source(
            c1, PreMapSampler(c1.hdfs, "/f", batched=False), seed,
            (10, 50, 200))
        c2 = make_cluster(lines)
        fast = drive_record_source(
            c2, PreMapSampler(c2.hdfs, "/f", batched=True), seed,
            (10, 50, 200))
        assert ref == fast

    @pytest.mark.parametrize("seed", range(3))
    def test_warm_cache_then_node_failure_equivalence(self, seed):
        """A failure after the cache is warm must not let the cached
        path serve where the scalar path raises: both fall back (or
        fail) identically, including the boundary-scan overrun windows."""
        from repro.hdfs import HDFS
        from repro.hdfs.errors import BlockUnavailableError

        def run(batched):
            fs = HDFS(n_datanodes=3, block_size=64, replication=1,
                      seed=9)
            fs.write_lines("/f", [f"{i:06d}" for i in range(300)])
            s = PreMapSampler(fs, "/f", batched=batched,
                              split_logical_bytes=400)
            rng = np.random.default_rng(seed)
            s.set_total_target(40)
            warm = []
            for sp in s.splits:
                warm.extend(s.read(fs, sp, CostLedger(), rng))
            fs.fail_datanode("datanode-0")
            s.set_total_target(120)
            ledger = CostLedger()
            out, err = [], None
            for sp in s.splits:
                try:
                    out.extend(s.read(fs, sp, ledger, rng))
                except BlockUnavailableError:
                    err = True
                    break
            return warm, out, err, ledger.breakdown(), \
                rng.bit_generator.state

        assert run(False) == run(True)

    def test_incremental_sampled_count_matches_sets(self):
        c = make_cluster(variable_lines(7))
        sampler = PreMapSampler(c.hdfs, "/f")
        sampler.set_total_target(300)
        rng = np.random.default_rng(1)
        got = []
        for split in sampler.splits:
            got.extend(sampler.read(c.hdfs, split, c.new_ledger(), rng))
        assert sampler.sampled_count == len(got) \
            == sum(len(v) for v in sampler._included.values())


class TestPostMapEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_cached_equals_scalar(self, seed):
        lines = variable_lines(100 + seed, n=800)
        c1 = make_cluster(lines)
        ref = drive_record_source(
            c1, PostMapSampler(c1.hdfs, "/f", cached=False), seed,
            (20, 120, 600))
        c2 = make_cluster(lines)
        fast = drive_record_source(
            c2, PostMapSampler(c2.hdfs, "/f", cached=True), seed,
            (20, 120, 600))
        assert ref == fast


class TestBlockSamplingEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_cached_equals_scalar(self, seed):
        lines = [f"{i:06d}\t{i % 13}" for i in range(2000)]
        c1 = make_cluster(lines, block_size=1024)
        l1 = c1.new_ledger()
        ref = sample_blocks(c1.hdfs, "/f", 300, seed=seed, ledger=l1,
                            cached=False)
        c2 = make_cluster(lines, block_size=1024)
        l2 = c2.new_ledger()
        fast = sample_blocks(c2.hdfs, "/f", 300, seed=seed, ledger=l2,
                             cached=True)
        assert ref == fast
        assert l1.breakdown() == l2.breakdown()

    def test_repeat_samples_hit_cache(self):
        c = make_cluster([f"{i}" for i in range(3000)], block_size=1024)
        # quota large enough to touch most blocks every trial
        sample_blocks(c.hdfs, "/f", 2500, seed=0)
        built = c.hdfs.split_cache.stats.block_materializations
        assert built >= 2
        sample_blocks(c.hdfs, "/f", 2500, seed=0)
        assert c.hdfs.split_cache.stats.block_materializations == built
        assert c.hdfs.split_cache.stats.block_hits >= built


class TestReservoirEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("n,k", [(10, 5), (1000, 32), (5000, 100),
                                     (3, 10)])
    def test_batched_equals_scalar(self, seed, n, k):
        items = [f"item-{i}" for i in range(n)]
        ref = reservoir_sample(items, k, seed=seed, batched=False)
        fast = reservoir_sample(items, k, seed=seed, batched=True)
        assert ref == fast


class TestTwoFileEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("fraction", [0.0, 0.3, 0.8, 1.0])
    def test_batched_equals_scalar(self, seed, fraction):
        values = list(range(500))
        ref_s = TwoFileSampler(values, fraction, seed=seed)
        l1 = CostLedger()
        ref = ref_s.sample(700, ledger=l1, batched=False)
        fast_s = TwoFileSampler(values, fraction, seed=seed)
        l2 = CostLedger()
        fast = fast_s.sample(700, ledger=l2, batched=True)
        assert ref == fast
        assert (ref_s.memory_draws, ref_s.disk_draws) \
            == (fast_s.memory_draws, fast_s.disk_draws)
        assert l1.breakdown() == l2.breakdown()
