"""Tests for post-map sampling (Algorithm 1)."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.sampling.postmap import PostMapSampler


@pytest.fixture
def cluster() -> Cluster:
    return Cluster(n_nodes=4, block_size=1024, replication=2, seed=9)


@pytest.fixture
def lines():
    return [f"{i:010d}" for i in range(1500)]


@pytest.fixture
def loaded(cluster, lines):
    cluster.hdfs.write_lines("/f", lines)
    return lines


def collect(cluster, sampler, rng=None):
    rng = rng or np.random.default_rng(6)
    out = []
    ledger = cluster.new_ledger()
    for split in sampler.splits:
        out.extend(sampler.read(cluster.hdfs, split, ledger, rng))
    return out, ledger


class TestPostMapSampler:
    def test_reaches_target_without_replacement(self, cluster, loaded):
        sampler = PostMapSampler(cluster.hdfs, "/f")
        sampler.set_total_target(200)
        sample, _ = collect(cluster, sampler)
        assert len(sample) == 200
        offsets = [o for o, _ in sample]
        assert len(set(offsets)) == 200

    def test_first_read_pays_full_scan(self, cluster, loaded):
        sampler = PostMapSampler(cluster.hdfs, "/f")
        sampler.set_total_target(10)
        _, ledger = collect(cluster, sampler)
        full_bytes = cluster.hdfs.file_size("/f")
        assert ledger.seconds("disk_read") >= \
            full_bytes / ledger.params.disk_bandwidth * 0.9

    def test_expansion_is_free_after_load(self, cluster, loaded):
        sampler = PostMapSampler(cluster.hdfs, "/f")
        sampler.set_total_target(10)
        collect(cluster, sampler)
        sampler.set_total_target(500)
        more, ledger = collect(cluster, sampler)
        assert len(more) == 490
        # cached in mapper memory: no further disk reads
        assert ledger.seconds("disk_read") == 0.0

    def test_exact_pair_count_after_full_load(self, cluster, loaded):
        sampler = PostMapSampler(cluster.hdfs, "/f")
        assert sampler.total_pairs() is None
        sampler.set_total_target(10)
        collect(cluster, sampler)
        assert sampler.total_pairs() == len(loaded)

    def test_expansion_preserves_released_prefix(self, cluster, loaded):
        sampler = PostMapSampler(cluster.hdfs, "/f")
        sampler.set_total_target(100)
        first, _ = collect(cluster, sampler)
        sampler.set_total_target(300)
        second, _ = collect(cluster, sampler)
        assert not {o for o, _ in first} & {o for o, _ in second}
        assert sampler.sampled_count == 300

    def test_target_capped_at_population(self, cluster, loaded):
        sampler = PostMapSampler(cluster.hdfs, "/f")
        sampler.set_total_target(10_000)
        sample, _ = collect(cluster, sampler)
        assert len(sample) == len(loaded)

    def test_target_cannot_shrink(self, cluster, loaded):
        sampler = PostMapSampler(cluster.hdfs, "/f")
        sampler.set_total_target(100)
        with pytest.raises(ValueError):
            sampler.set_total_target(99)

    def test_uniformity(self, cluster, loaded):
        sampler = PostMapSampler(cluster.hdfs, "/f")
        sampler.set_total_target(750)
        sample, _ = collect(cluster, sampler, np.random.default_rng(17))
        values = [int(line) for _, line in sample]
        counts = np.histogram(values, bins=10, range=(0, 1500))[0]
        assert counts.min() > 40

    def test_scales_with_file_for_stand_ins(self, cluster, loaded):
        # sampled stand-in records carry the file's logical scale
        assert PostMapSampler(cluster.hdfs, "/f").scales_with_file is True
