"""Tests for pre-map sampling (Algorithm 2)."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.sampling.premap import PreMapSampler


@pytest.fixture
def cluster() -> Cluster:
    return Cluster(n_nodes=4, block_size=1024, replication=2, seed=8)


@pytest.fixture
def lines():
    return [f"{i:010d}" for i in range(2000)]


@pytest.fixture
def loaded(cluster, lines):
    cluster.hdfs.write_lines("/f", lines)
    return lines


def collect(cluster, sampler, rng=None):
    rng = rng or np.random.default_rng(5)
    out = []
    ledger = cluster.new_ledger()
    for split in sampler.splits:
        out.extend(sampler.read(cluster.hdfs, split, ledger, rng))
    return out, ledger


class TestPreMapSampler:
    def test_reaches_target(self, cluster, loaded):
        sampler = PreMapSampler(cluster.hdfs, "/f")
        sampler.set_total_target(100)
        sample, _ = collect(cluster, sampler)
        assert len(sample) == 100
        assert sampler.sampled_count == 100

    def test_samples_are_real_lines(self, cluster, loaded):
        sampler = PreMapSampler(cluster.hdfs, "/f")
        sampler.set_total_target(50)
        sample, _ = collect(cluster, sampler)
        line_set = set(loaded)
        for _, line in sample:
            assert line in line_set

    def test_no_duplicates(self, cluster, loaded):
        sampler = PreMapSampler(cluster.hdfs, "/f")
        sampler.set_total_target(300)
        sample, _ = collect(cluster, sampler)
        offsets = [off for off, _ in sample]
        assert len(offsets) == len(set(offsets))

    def test_expansion_delivers_only_new_lines(self, cluster, loaded):
        sampler = PreMapSampler(cluster.hdfs, "/f")
        sampler.set_total_target(50)
        first, _ = collect(cluster, sampler)
        sampler.set_total_target(150)
        second, _ = collect(cluster, sampler)
        assert len(first) == 50
        assert len(second) == 100
        assert not {o for o, _ in first} & {o for o, _ in second}

    def test_target_cannot_shrink(self, cluster, loaded):
        sampler = PreMapSampler(cluster.hdfs, "/f")
        sampler.set_total_target(100)
        with pytest.raises(ValueError):
            sampler.set_total_target(50)

    def test_charges_seeks_not_full_scan(self, cluster, loaded):
        sampler = PreMapSampler(cluster.hdfs, "/f")
        sampler.set_total_target(20)
        _, ledger = collect(cluster, sampler)
        assert ledger.seconds("disk_seek") > 0
        # far less than a full scan of the file
        full_scan = cluster.hdfs.file_size("/f") / \
            ledger.params.disk_bandwidth
        assert ledger.seconds("disk_read") < full_scan

    def test_approximately_uniform(self, cluster, loaded):
        """Fixed-width lines: inclusion should not favour any file region."""
        sampler = PreMapSampler(cluster.hdfs, "/f")
        sampler.set_total_target(1000)
        sample, _ = collect(cluster, sampler, np.random.default_rng(11))
        values = sorted(int(line) for _, line in sample)
        # split into deciles of the keyspace; each should get ~100
        counts = np.histogram(values, bins=10, range=(0, 2000))[0]
        assert counts.min() > 50
        assert counts.max() < 180

    def test_exhaustion_handled(self, cluster):
        few = [f"{i:04d}" for i in range(10)]
        cluster.hdfs.write_lines("/few", few)
        sampler = PreMapSampler(cluster.hdfs, "/few")
        sampler.set_total_target(10)
        sample, _ = collect(cluster, sampler)
        assert len(sample) == 10
        # asking for more than exists terminates without hanging
        sampler.set_total_target(50)
        more, _ = collect(cluster, sampler)
        assert len(more) == 0

    def test_scales_with_file_for_stand_ins(self, cluster, loaded):
        # sampled stand-in records carry the file's logical scale
        assert PreMapSampler(cluster.hdfs, "/f").scales_with_file is True


class TestLengthBias:
    """Documented caveat: offset-then-backtrack sampling includes a line
    with probability proportional to its byte length (see the module
    docstring).  On fixed-width records — the evaluation datasets — the
    sampler is exactly uniform; this test pins the *variable*-width
    behaviour so the bias stays documented rather than silent."""

    def test_long_lines_oversampled_on_variable_width_data(self, cluster):
        short, long = "s" * 5, "L" * 95
        lines = [short if i % 2 == 0 else long for i in range(2000)]
        cluster.hdfs.write_lines("/var", lines)
        sampler = PreMapSampler(cluster.hdfs, "/var")
        sampler.set_total_target(400)
        rng = np.random.default_rng(99)
        got = []
        ledger = cluster.new_ledger()
        for split in sampler.splits:
            got.extend(line for _, line in
                       sampler.read(cluster.hdfs, split, ledger, rng))
        long_share = sum(1 for line in got if line == long) / len(got)
        # byte share of long lines is 96/(96+6) ~ 0.94; their count share
        # is 0.5 — the sample should land near the byte share
        assert long_share > 0.75
