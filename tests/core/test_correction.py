"""Tests for result correction policies (§2.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.correction import (
    get_correction,
    inverse_fraction,
    no_correction,
)


class TestPolicies:
    def test_no_correction_identity(self):
        assert no_correction(42.0, 0.5) == 42.0

    def test_inverse_fraction_scales(self):
        assert inverse_fraction(50.0, 0.25) == 200.0

    def test_p_validated(self):
        with pytest.raises(ValueError):
            inverse_fraction(1.0, 0.0)
        with pytest.raises(ValueError):
            no_correction(1.0, 1.5)

    @given(result=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
           p=st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_property_roundtrip(self, result, p):
        """Scaling up by 1/p then back down by p recovers the input."""
        assert inverse_fraction(result, p) * p == pytest.approx(
            result, rel=1e-9, abs=1e-9)


class TestResolution:
    def test_by_name(self):
        assert get_correction("none") is no_correction
        assert get_correction("inverse_fraction") is inverse_fraction

    def test_auto_extensive(self):
        assert get_correction("auto", "sum") is inverse_fraction
        assert get_correction("auto", "count") is inverse_fraction

    def test_auto_intensive(self):
        for stat in ["mean", "median", "p90", "variance", "proportion"]:
            assert get_correction("auto", stat) is no_correction

    def test_callable_passthrough(self):
        fn = lambda r, p: r + p
        assert get_correction(fn) is fn

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_correction("double")
