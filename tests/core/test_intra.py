"""Tests for intra-iteration optimization (§4.2, Eq. 4, Fig. 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bootstrap import bootstrap
from repro.core.intra import (
    average_optimal_saving,
    optimal_sharing,
    prob_identical_fraction,
    shared_prefix_bootstrap,
    work_saved,
    work_saved_curve,
)


class TestEquation4:
    def test_paper_example_n29_y03(self):
        """§4.2: "if n = 29 and y = 0.3 ... 35% of the time"."""
        assert prob_identical_fraction(29, 0.3) == pytest.approx(0.35, abs=0.02)

    def test_y_zero_is_certain(self):
        assert prob_identical_fraction(50, 0.0) == 1.0

    def test_decreasing_in_y(self):
        probs = [prob_identical_fraction(30, y)
                 for y in [0.1, 0.3, 0.5, 0.7, 0.9]]
        assert probs == sorted(probs, reverse=True)

    def test_large_n_stays_finite(self):
        p = prob_identical_fraction(10_000, 0.5)
        assert 0.0 <= p <= 1.0

    @given(n=st.integers(min_value=1, max_value=500),
           y=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_property_valid_probability(self, n, y):
        assert 0.0 <= prob_identical_fraction(n, y) <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            prob_identical_fraction(0, 0.5)
        with pytest.raises(ValueError):
            prob_identical_fraction(10, 1.5)


class TestWorkSaved:
    def test_work_saved_formula(self):
        n, y = 29, 0.3
        assert work_saved(n, y) == pytest.approx(
            prob_identical_fraction(n, y) * y)

    def test_optimal_sharing_maximizes(self):
        n = 25
        y_star, saved_star = optimal_sharing(n)
        for k in range(1, n + 1):
            assert work_saved(n, k / n) <= saved_star + 1e-12
        assert saved_star == pytest.approx(work_saved(n, y_star))

    def test_paper_average_saving_over_small_samples(self):
        """§4.2: "on average we save over 20% of work" — holds over the
        small-sample range where the optimization is intended."""
        assert average_optimal_saving(range(2, 31)) > 0.20

    def test_saving_declines_with_n(self):
        """"Our optimization techniques are best suited for small sample
        sizes" (§4.2)."""
        small = optimal_sharing(10)[1]
        large = optimal_sharing(500)[1]
        assert small > large

    def test_curve_covers_grid(self):
        rows = work_saved_curve([10, 20], [0.1, 0.2, 0.3])
        assert len(rows) == 6
        assert rows[0][:2] == (10, 0.1)

    def test_average_requires_sizes(self):
        with pytest.raises(ValueError):
            average_optimal_saving([])


class TestSharedPrefixBootstrap:
    @pytest.fixture
    def data(self):
        return np.random.default_rng(1).lognormal(3.0, 1.0, 400)

    @pytest.fixture
    def small_data(self):
        # §4.2: the optimization targets *small* samples — Eq. 4's
        # sharing probability is negligible for large n.
        return np.random.default_rng(1).lognormal(3.0, 1.0, 25)

    def test_saves_work_on_small_samples(self, small_data):
        res = shared_prefix_bootstrap(small_data, "mean", B=400, y=0.3,
                                      seed=2)
        assert res.ops_performed < res.ops_baseline
        assert 0.0 < res.ops_saved_fraction < 1.0

    def test_measured_saving_tracks_equation4(self, small_data):
        n = len(small_data)
        y = 0.4
        res = shared_prefix_bootstrap(small_data, "mean", B=2000, y=y,
                                      seed=2)
        expected = prob_identical_fraction(n, y) * (int(y * n) / n)
        assert res.ops_saved_fraction == pytest.approx(expected, abs=0.05)

    def test_estimates_match_plain_bootstrap(self, data):
        shared = shared_prefix_bootstrap(data, "mean", B=300, seed=3)
        plain = bootstrap(data, "mean", B=300, seed=4)
        assert shared.estimates.mean() == pytest.approx(plain.mean, rel=0.02)
        assert shared.estimates.std(ddof=1) == pytest.approx(plain.std,
                                                             rel=0.5)

    def test_optimal_y_picked_when_omitted(self, data):
        res = shared_prefix_bootstrap(data, "mean", B=50, seed=5)
        y_star, _ = optimal_sharing(len(data))
        assert res.shared_fraction == pytest.approx(y_star)

    def test_y_zero_degenerates_to_plain(self, data):
        res = shared_prefix_bootstrap(data, "mean", B=40, y=0.0, seed=6)
        assert res.ops_performed == res.ops_baseline

    def test_median_supported(self, data):
        res = shared_prefix_bootstrap(data, "median", B=60, seed=7)
        assert res.estimates.mean() == pytest.approx(np.median(data),
                                                     rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            shared_prefix_bootstrap([], "mean", B=10)
        with pytest.raises(ValueError):
            shared_prefix_bootstrap([1.0], "mean", B=0)


class TestOptimalSharingSearch:
    """§4.2: "The optimal y for given n can be found using a simple
    binary search" — the log-time search must agree with the scan."""

    @pytest.mark.parametrize("n", [2, 3, 5, 10, 17, 29, 64, 100, 257, 1000])
    def test_search_matches_exhaustive_scan(self, n):
        from repro.core.intra import optimal_sharing_search

        y_scan, saved_scan = optimal_sharing(n)
        y_search, saved_search = optimal_sharing_search(n)
        assert saved_search == pytest.approx(saved_scan, rel=1e-12)
        assert y_search == pytest.approx(y_scan)

    def test_search_is_logarithmic_evaluations(self):
        """The search touches O(log n) candidates, not all n."""
        import repro.core.intra as intra

        calls = []
        original = intra.work_saved

        def counting(n, y):
            calls.append(y)
            return original(n, y)

        intra.work_saved = counting
        try:
            intra.optimal_sharing_search(10_000)
        finally:
            intra.work_saved = original
        assert len(calls) < 100
