"""Tests for EarlConfig validation."""

import pytest

from repro.core.config import EarlConfig


class TestEarlConfig:
    def test_defaults_follow_paper(self):
        cfg = EarlConfig()
        assert cfg.sigma == 0.05          # §6 normalized error
        assert cfg.pilot_fraction == 0.01  # §3.2 p = 0.01
        assert cfg.subsample_levels == 5   # §3.2 l = 5
        assert cfg.maintenance == "optimized"
        assert cfg.sampler == "premap"

    @pytest.mark.parametrize("field,value", [
        ("sigma", 0.0),
        ("sigma", 1.5),
        ("tau", 0.0),
        ("pilot_fraction", 0.0),
        ("min_pilot_size", 0),
        ("subsample_levels", 0),
        ("expansion_factor", 1.0),
        ("expansion_factor", 0.5),
        ("max_iterations", 0),
        ("error_metric", "vibes"),
        ("maintenance", "warp"),
        ("sketch_c", 0.0),
        ("sampler", "telepathy"),
        ("confidence", 1.0),
        ("B_override", 0),
        ("n_override", -1),
        ("B_min", 1),
        ("stability_window", 0),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises((ValueError, TypeError)):
            EarlConfig(**{field: value})

    def test_overrides_accepted(self):
        cfg = EarlConfig(B_override=30, n_override=1000)
        assert cfg.B_override == 30
        assert cfg.n_override == 1000

    def test_alternative_metrics_accepted(self):
        for metric in ["cv", "relative_ci", "variance", "bias"]:
            assert EarlConfig(error_metric=metric).error_metric == metric
