"""Round-boundary checkpoints: replay resumes byte-identically.

The engines never serialize bootstrap state — a checkpoint is just
``{"rounds_completed", "loss_events"}`` and recovery re-runs a fresh,
identically-constructed engine, re-fires recorded losses at their
boundaries, and discards already-emitted snapshots.  These tests pin
the contract the durable service's recovery path is built on: for
every engine, *interrupt + restore* produces the same snapshot
dictionaries as one uninterrupted run, loss events included.
"""

import numpy as np
import pytest

from repro.core import EarlConfig, EarlSession
from repro.core.checkpoint import (
    CheckpointReplayError,
    checkpoint_doc,
    loss_event,
    replay_stream,
)
from repro.core.grouped import GroupedEarlSession, Measure
from repro.streaming import SessionManager

DATA = np.random.default_rng(0).lognormal(0, 1, 200_000)
KEYS = np.array([i % 3 for i in range(200_000)])


def snaps_of(stream):
    return [s.to_dict() for s in stream]


class TestCheckpointDoc:
    def test_loss_event_shape(self):
        event = loss_event(3, 0.25, 99)
        assert event == {"at": 3, "fraction": 0.25, "seed": 99}
        with_keys = loss_event(0, 0.5, 1, keys=[2, 0])
        assert with_keys["keys"] == [0, 2]   # sorted, JSON-stable

    def test_checkpoint_doc_copies_events(self):
        events = [loss_event(1, 0.3, 7)]
        doc = checkpoint_doc(4, events)
        assert doc == {"rounds_completed": 4, "loss_events": events}
        assert doc["loss_events"][0] is not events[0]

    def test_negative_rounds_rejected(self):
        class Stub:
            def stream(self):
                return iter(())

        with pytest.raises(ValueError):
            list(replay_stream(Stub(), {"rounds_completed": -1}))


class TestEarlSessionCheckpoint:
    CFG = EarlConfig(sigma=0.02, seed=7)

    def _reference(self):
        session = EarlSession(DATA, "mean", config=self.CFG)
        snaps = []
        for i, snap in enumerate(session.stream()):
            snaps.append(snap.to_dict())
            if i == 0:
                session.report_loss(0.3, seed=99)
        return snaps

    def test_resume_is_byte_identical_with_losses(self):
        reference = self._reference()
        assert len(reference) >= 3   # the loss path must be exercised

        live = EarlSession(DATA, "mean", config=self.CFG)
        pre = []
        stream = live.stream()
        for i, snap in enumerate(stream):
            pre.append(snap.to_dict())
            if i == 0:
                live.report_loss(0.3, seed=99)
            if i == 1:
                break
        stream.close()

        ckpt = live.checkpoint()
        assert ckpt["rounds_completed"] == 2
        assert ckpt["loss_events"] == [
            {"at": 1, "fraction": 0.3, "seed": 99}]

        resumed = EarlSession(DATA, "mean", config=self.CFG)
        post = snaps_of(resumed.restore(ckpt))
        assert pre + post == reference

    def test_checkpoint_of_fresh_session_is_empty(self):
        session = EarlSession(DATA, "mean", config=self.CFG)
        assert session.checkpoint() == {"rounds_completed": 0,
                                        "loss_events": []}

    def test_restore_refuses_streamed_session(self):
        session = EarlSession(DATA, "mean", config=self.CFG)
        next(session.stream())
        with pytest.raises(RuntimeError):
            session.restore({"rounds_completed": 0, "loss_events": []})

    def test_replay_divergence_raises(self):
        live = EarlSession(DATA, "mean", config=self.CFG)
        for _ in live.stream():
            pass
        ckpt = live.checkpoint()
        # A much smaller dataset converges in fewer rounds: the fresh
        # engine's stream dries up before the checkpointed round.
        shrunk = EarlSession(DATA[:500], "mean",
                             config=EarlConfig(sigma=0.5, seed=7))
        with pytest.raises(CheckpointReplayError):
            list(shrunk.restore({"rounds_completed":
                                 ckpt["rounds_completed"] + 50,
                                 "loss_events": []}))


class TestSessionManagerCheckpoint:
    # A tiny sigma alone triggers the exact-computation fallback (one
    # snapshot, nothing to interrupt); the override knobs force a
    # genuinely multi-round interleaved stream instead.
    CFG = EarlConfig(sigma=0.01, seed=3, B_override=15, n_override=100,
                     expansion_factor=1.6, max_iterations=12)

    def _build(self):
        mgr = SessionManager(DATA, config=self.CFG)
        mgr.submit("mean")
        mgr.submit("p90")
        return mgr

    def _events(self, mgr, *, interrupt_after=None, loss_at=1):
        out = []
        stream = mgr.stream()
        for i, (handle, snap) in enumerate(stream):
            out.append((handle.name, snap.to_dict()))
            if i == loss_at:
                mgr.report_loss(0.25, seed=11)
            if interrupt_after is not None and i == interrupt_after:
                break
        if interrupt_after is not None:
            stream.close()
        return out

    def test_resume_is_byte_identical_with_losses(self):
        reference = self._events(self._build())
        assert len(reference) >= 5

        live = self._build()
        pre = self._events(live, interrupt_after=3)
        ckpt = live.checkpoint()
        assert ckpt["rounds_completed"] == len(pre)

        resumed = self._build()
        post = [(h.name, s.to_dict())
                for h, s in resumed.restore(ckpt)]
        assert pre + post == reference

    def test_restore_refuses_started_manager(self):
        mgr = self._build()
        next(mgr.stream())
        with pytest.raises(RuntimeError):
            mgr.restore({"rounds_completed": 0, "loss_events": []})


class TestGroupedSessionCheckpoint:
    CFG = EarlConfig(sigma=0.02, seed=3)

    def _build(self):
        return GroupedEarlSession(
            KEYS, [Measure("m", "mean", DATA)], config=self.CFG)

    def test_resume_is_byte_identical_with_stratified_loss(self):
        reference = []
        ref = self._build()
        for i, snap in enumerate(ref.stream()):
            reference.append(snap.to_dict())
            if i == 0:
                ref.report_loss(0.25, keys=[0, 2], seed=11)
        assert len(reference) >= 3

        live = self._build()
        pre = []
        stream = live.stream()
        for i, snap in enumerate(stream):
            pre.append(snap.to_dict())
            if i == 0:
                live.report_loss(0.25, keys=[0, 2], seed=11)
            if i == 1:
                break
        stream.close()

        ckpt = live.checkpoint()
        assert ckpt["loss_events"][0]["keys"] == [0, 2]

        resumed = self._build()
        post = snaps_of(resumed.restore(ckpt))
        assert pre + post == reference

    def test_checkpoint_is_json_safe(self):
        import json

        def build():
            return GroupedEarlSession(
                KEYS, [Measure("m", "mean", DATA)],
                config=EarlConfig(sigma=0.01, seed=3))

        live = build()
        stream = live.stream()
        next(stream)
        live.report_loss(0.5, keys=[1], seed=5)
        next(stream)
        stream.close()
        doc = json.loads(json.dumps(live.checkpoint()))
        resumed = build()
        assert snaps_of(resumed.restore(doc))   # replays from JSON
