"""Tests for the in-memory EARL driver."""

import numpy as np
import pytest

from repro.core import EarlConfig, EarlSession


@pytest.fixture(scope="module")
def population():
    return np.random.default_rng(1).lognormal(3.0, 1.0, 200_000)


class TestEarlSessionBasics:
    def test_mean_within_error_bound_statistically(self, population):
        """Across seeds the relative error stays near the σ=5% bound
        (a 1-sigma style guarantee, as in the paper)."""
        true_mean = population.mean()
        errors = []
        for seed in range(10):
            res = EarlSession(population, "mean",
                              config=EarlConfig(sigma=0.05, seed=seed)).run()
            errors.append(abs(res.estimate - true_mean) / true_mean)
        assert np.mean(errors) < 0.05
        assert np.quantile(errors, 0.8) < 0.10

    def test_uses_tiny_fraction_of_data(self, population):
        res = EarlSession(population, "mean",
                          config=EarlConfig(sigma=0.05, seed=1)).run()
        assert res.sample_fraction < 0.05
        assert not res.used_fallback

    def test_iterations_recorded(self, population):
        res = EarlSession(population, "mean",
                          config=EarlConfig(sigma=0.05, seed=2)).run()
        assert res.num_iterations >= 1
        assert res.iterations[-1].expanded is False
        assert res.iterations[-1].sample_size == res.n
        for record in res.iterations[:-1]:
            assert record.expanded

    def test_achieved_flag_consistent(self, population):
        res = EarlSession(population, "mean",
                          config=EarlConfig(sigma=0.05, seed=3)).run()
        assert res.achieved == (res.error <= res.sigma)

    def test_tighter_sigma_needs_larger_sample(self, population):
        loose = EarlSession(population, "mean",
                            config=EarlConfig(sigma=0.10, seed=4)).run()
        tight = EarlSession(population, "mean",
                            config=EarlConfig(sigma=0.02, seed=4)).run()
        assert tight.n > loose.n

    def test_median_supported(self, population):
        res = EarlSession(population, "median",
                          config=EarlConfig(sigma=0.05, seed=5)).run()
        true_median = np.median(population)
        assert abs(res.estimate - true_median) / true_median < 0.15

    def test_ssabe_diagnostics_attached(self, population):
        res = EarlSession(population, "mean",
                          config=EarlConfig(sigma=0.05, seed=6)).run()
        assert res.ssabe is not None
        assert res.B == res.ssabe.B or res.B > 0

    def test_ci_available(self, population):
        res = EarlSession(population, "mean",
                          config=EarlConfig(sigma=0.05, seed=7)).run()
        lo, hi = res.ci
        assert lo < res.uncorrected_estimate < hi


class TestCorrections:
    def test_sum_corrected_by_inverse_fraction(self, population):
        res = EarlSession(population, "sum",
                          config=EarlConfig(sigma=0.05, seed=8)).run()
        true_sum = population.sum()
        assert abs(res.estimate - true_sum) / true_sum < 0.15
        # the uncorrected estimate is the sample sum — far smaller
        assert res.uncorrected_estimate < res.estimate

    def test_explicit_correction_override(self, population):
        res = EarlSession(population, "mean", correction="inverse_fraction",
                          config=EarlConfig(sigma=0.05, seed=9)).run()
        assert res.estimate == pytest.approx(
            res.uncorrected_estimate / res.sample_fraction)


class TestFallback:
    def test_small_population_falls_back_to_exact(self):
        small = np.random.default_rng(10).lognormal(3.0, 1.0, 300)
        res = EarlSession(small, "mean",
                          config=EarlConfig(sigma=0.01, seed=11)).run()
        assert res.used_fallback
        assert res.achieved
        assert res.error == 0.0
        assert res.estimate == pytest.approx(small.mean())
        assert res.sample_fraction == 1.0

    def test_override_forcing_fallback(self, population):
        cfg = EarlConfig(sigma=0.05, seed=12, B_override=1000,
                         n_override=len(population))
        res = EarlSession(population, "mean", config=cfg).run()
        assert res.used_fallback
        assert res.estimate == pytest.approx(population.mean())


class TestOverrides:
    def test_explicit_B_and_n(self, population):
        cfg = EarlConfig(sigma=0.05, seed=13, B_override=25, n_override=2000)
        res = EarlSession(population, "mean", config=cfg).run()
        assert res.B == 25
        assert res.iterations[0].sample_size == 2000

    def test_max_iterations_bounds_loop(self, population):
        cfg = EarlConfig(sigma=0.0001, seed=14, max_iterations=3,
                         B_override=20, n_override=100)
        res = EarlSession(population, "mean", config=cfg).run()
        assert res.num_iterations <= 3


class TestValidation:
    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            EarlSession([], "mean")

    def test_3d_data_rejected(self):
        with pytest.raises(ValueError):
            EarlSession(np.zeros((3, 3, 3)), "mean")

    def test_2d_data_rejected_for_scalar_statistics(self):
        """Scalar-item statistics cannot ingest rows; the rejection must
        be a clear ValueError at construction, not a deep TypeError."""
        with pytest.raises(ValueError, match="scalar items"):
            EarlSession(np.zeros((5000, 2)), "mean")

    def test_2d_rows_are_items(self):
        """2-D data is accepted: each row is one item (pair statistics
        such as "correlation" resample rows jointly)."""
        rng = np.random.default_rng(21)
        x = rng.normal(size=4000)
        pairs = np.column_stack([x, 0.9 * x + 0.4 * rng.normal(size=4000)])
        cfg = EarlConfig(sigma=0.1, seed=22, B_override=20, n_override=300)
        res = EarlSession(pairs, "correlation", config=cfg).run()
        truth = float(np.corrcoef(pairs[:, 0], pairs[:, 1])[0, 1])
        assert res.population_size == 4000
        assert abs(res.estimate - truth) < 0.2

    def test_deterministic_given_seed(self, population):
        a = EarlSession(population, "mean",
                        config=EarlConfig(sigma=0.05, seed=15)).run()
        b = EarlSession(population, "mean",
                        config=EarlConfig(sigma=0.05, seed=15)).run()
        assert a.estimate == b.estimate
        assert a.n == b.n
