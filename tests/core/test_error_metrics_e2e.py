"""End-to-end behaviour of the pluggable error metrics (§3).

"Our approach is independent of the error measure and is applicable to
other errors (e.g., bias, variance)" — these tests drive the full
session loop under each metric and check the semantics.
"""

import numpy as np
import pytest

from repro.core import EarlConfig, EarlSession
from repro.workloads import numeric_dataset


@pytest.fixture(scope="module")
def population():
    return numeric_dataset(150_000, "lognormal", seed=1)


class TestMetricSemantics:
    def test_cv_and_relative_ci_relationship(self, population):
        """relative_ci = 1.96·cv, so at equal σ it demands ~4x the
        sample (cv halves per 4x n)."""
        cv_run = EarlSession(population, "mean",
                             config=EarlConfig(sigma=0.05, seed=2,
                                               error_metric="cv")).run()
        ci_run = EarlSession(population, "mean",
                             config=EarlConfig(sigma=0.05, seed=2,
                                               error_metric="relative_ci")
                             ).run()
        assert ci_run.n > cv_run.n

    def test_variance_metric_terminates(self, population):
        # variance of the mean at n=1000 for this data is tiny; a loose
        # absolute bound terminates immediately
        res = EarlSession(population, "mean",
                          config=EarlConfig(sigma=0.9, seed=3,
                                            error_metric="variance",
                                            B_override=25,
                                            n_override=1000)).run()
        assert res.achieved
        assert res.error == pytest.approx(
            res.accuracy.variance, rel=1e-12)

    def test_bias_metric_terminates(self, population):
        res = EarlSession(population, "mean",
                          config=EarlConfig(sigma=0.9, seed=4,
                                            error_metric="bias",
                                            B_override=25,
                                            n_override=1000)).run()
        assert res.achieved
        # bias of the mean is ~zero; the metric observed that
        assert res.error < 0.9

    def test_error_field_follows_selected_metric(self, population):
        for metric in ["cv", "relative_ci", "variance", "bias"]:
            res = EarlSession(population, "mean",
                              config=EarlConfig(sigma=0.99, seed=5,
                                                error_metric=metric,
                                                B_override=20,
                                                n_override=500)).run()
            assert res.error >= 0.0
            if metric == "cv":
                assert res.error == pytest.approx(res.accuracy.cv)

    def test_unachievable_bound_reports_honestly(self, population):
        """A bound the data cannot meet within the iteration budget must
        yield achieved=False, never a fake success."""
        res = EarlSession(population, "mean",
                          config=EarlConfig(sigma=1e-7, seed=6,
                                            max_iterations=3,
                                            B_override=20,
                                            n_override=200)).run()
        assert not res.achieved
        assert res.error > 1e-7
        assert res.num_iterations == 3
