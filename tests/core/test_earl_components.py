"""Unit tests for the EARL driver building blocks."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.cluster.costmodel import CostLedger
from repro.core import EarlConfig
from repro.core.earl import (
    BootstrapReducer,
    StatisticReducer,
    make_estimation_stage,
    sampler_exhausted,
)
from repro.core.accuracy import AccuracyEstimate, AccuracyEstimationStage
from repro.core.estimators import get_statistic
from repro.core.jackknife_stage import JackknifeEstimationStage
from repro.mapreduce import FeedbackChannel
from repro.mapreduce.counters import Counters
from repro.mapreduce.types import TaskContext


def make_ctx(task_id="reduce-0", record_scale=1.0, **config) -> TaskContext:
    return TaskContext(ledger=CostLedger(), counters=Counters(),
                       rng=np.random.default_rng(0),
                       record_scale=record_scale,
                       config=config, task_id=task_id)


class TestStatisticReducer:
    def test_mean_roundtrip(self):
        reducer = StatisticReducer("mean")
        state = reducer.initialize([1.0, 2.0, 3.0])
        assert reducer.finalize(state) == pytest.approx(2.0)

    def test_update_with_scalar(self):
        reducer = StatisticReducer("mean")
        state = reducer.initialize([1.0])
        state = reducer.update(state, 3.0)
        assert reducer.finalize(state) == pytest.approx(2.0)

    def test_update_with_state_merges(self):
        reducer = StatisticReducer("mean")
        a = reducer.initialize([1.0, 2.0])
        b = reducer.initialize([3.0, 4.0])
        merged = reducer.update(a, b)
        assert reducer.finalize(merged) == pytest.approx(2.5)

    def test_update_with_unmergeable_state_raises(self):
        reducer = StatisticReducer("median")
        a = reducer.initialize([1.0, 2.0])
        b = reducer.initialize([3.0])
        with pytest.raises(TypeError):
            reducer.update(a, b)

    def test_auto_correction_for_sum(self):
        reducer = StatisticReducer("sum")
        assert reducer.correct(10.0, 0.1) == pytest.approx(100.0)

    def test_auto_correction_for_mean_is_identity(self):
        reducer = StatisticReducer("mean")
        assert reducer.correct(10.0, 0.1) == 10.0

    def test_classic_reduce_with_context_fraction(self):
        reducer = StatisticReducer("sum")
        ctx = make_ctx(sample_fraction=0.25)
        out = list(reducer.reduce("k", [1.0, 2.0], ctx))
        assert out == [("k", 12.0)]


class TestBootstrapReducer:
    @pytest.fixture
    def values(self):
        return list(np.random.default_rng(1).lognormal(3.0, 1.0, 400))

    def test_emits_accuracy_estimate(self, values):
        reducer = BootstrapReducer("mean", B=20, seed=2)
        reducer.setup(make_ctx())
        (key, est), = reducer.reduce("k", values, make_ctx())
        assert key == "k"
        assert isinstance(est, AccuracyEstimate)
        assert est.n == len(values)

    def test_per_key_stages_are_independent(self, values):
        reducer = BootstrapReducer("mean", B=10, seed=3)
        ctx = make_ctx()
        reducer.setup(ctx)
        list(reducer.reduce("a", values[:100], ctx))
        list(reducer.reduce("b", values[100:150], ctx))
        sizes = reducer.sample_sizes()
        assert sizes == {"a": 100, "b": 50}

    def test_second_offer_expands_same_key(self, values):
        reducer = BootstrapReducer("mean", B=10, seed=4)
        ctx = make_ctx()
        reducer.setup(ctx)
        list(reducer.reduce("k", values[:100], ctx))
        list(reducer.reduce("k", values[100:300], ctx))
        assert reducer.sample_sizes() == {"k": 300}
        assert len(reducer.key_estimates()) == 1

    def test_charges_resampling_cpu(self, values):
        reducer = BootstrapReducer("mean", B=25, seed=5)
        ctx = make_ctx()
        reducer.setup(ctx)
        list(reducer.reduce("k", values, ctx))
        assert ctx.ledger.seconds("cpu") > 0

    def test_cpu_charge_scales_with_record_scale(self, values):
        def charge(scale):
            reducer = BootstrapReducer("mean", B=25, seed=6)
            ctx = make_ctx(record_scale=scale)
            reducer.setup(ctx)
            list(reducer.reduce("k", values, ctx))
            return ctx.ledger.seconds("cpu")

        assert charge(100.0) > 50 * charge(1.0)

    def test_publishes_error_to_channel(self, values):
        cluster = Cluster(n_nodes=2, seed=7)
        channel = FeedbackChannel(cluster.hdfs, "test-job")
        reducer = BootstrapReducer("mean", B=20, seed=8, channel=channel)
        ctx = make_ctx(task_id="reduce-3", iteration=2)
        reducer.setup(ctx)
        list(reducer.reduce("k", values, ctx))
        list(reducer.cleanup(ctx))
        entries = channel.read_errors()
        assert len(entries) == 1
        ts, err = entries[0]
        assert ts == 2.0
        assert err > 0

    def test_no_channel_cleanup_is_silent(self, values):
        reducer = BootstrapReducer("mean", B=10, seed=9)
        ctx = make_ctx()
        reducer.setup(ctx)
        list(reducer.reduce("k", values, ctx))
        assert list(reducer.cleanup(ctx)) == []

    def test_jackknife_estimation_variant(self, values):
        reducer = BootstrapReducer("mean", B=10, seed=10,
                                   estimation="jackknife")
        ctx = make_ctx()
        reducer.setup(ctx)
        (key, est), = reducer.reduce("k", values, ctx)
        assert est.B == len(values)  # n leave-one-out replicates

    def test_invalid_B(self):
        with pytest.raises(ValueError):
            BootstrapReducer("mean", B=0)


class TestStageFactory:
    def test_bootstrap_default(self):
        stage = make_estimation_stage(get_statistic("mean"), 10,
                                      EarlConfig(seed=1))
        assert isinstance(stage, AccuracyEstimationStage)

    def test_jackknife_selected(self):
        cfg = EarlConfig(seed=1, estimation="jackknife")
        stage = make_estimation_stage(get_statistic("mean"), 10, cfg)
        assert isinstance(stage, JackknifeEstimationStage)


class TestSamplerExhausted:
    class _FakeSampler:
        def __init__(self, count):
            self.sampled_count = count

    def test_behind_target(self):
        assert sampler_exhausted(self._FakeSampler(5), 10)

    def test_at_target(self):
        assert not sampler_exhausted(self._FakeSampler(10), 10)
