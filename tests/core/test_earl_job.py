"""Tests for the MapReduce-backed EARL driver."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core import EarlConfig, EarlJob, run_stock_job
from repro.core.earl import estimate_record_count
from repro.workloads import load_numeric, numeric_dataset


@pytest.fixture
def cluster() -> Cluster:
    return Cluster(n_nodes=5, block_size=1 << 20, replication=3, seed=20)


@pytest.fixture
def values():
    return numeric_dataset(40_000, "lognormal", seed=21)


@pytest.fixture
def dataset(cluster, values):
    return load_numeric(cluster, "/data/values", values,
                        logical_scale=1000.0)


class TestEstimateRecordCount:
    def test_accurate_for_fixed_width(self, cluster, dataset):
        n, seconds = estimate_record_count(cluster, dataset.path)
        assert n == pytest.approx(dataset.records, rel=0.01)
        assert seconds > 0

    def test_empty_file(self, cluster):
        cluster.hdfs.write_lines("/empty", [])
        n, _ = estimate_record_count(cluster, "/empty")
        assert n == 0


class TestEarlJobEndToEnd:
    def test_mean_close_to_truth(self, cluster, dataset):
        job = EarlJob(cluster, dataset.path, statistic="mean",
                      config=EarlConfig(sigma=0.05, seed=22))
        res = job.run()
        truth = dataset.truth["mean"]
        assert abs(res.estimate - truth) / truth < 0.12
        assert not res.used_fallback
        assert res.n < dataset.records / 5

    def test_faster_than_stock(self, cluster, dataset):
        job = EarlJob(cluster, dataset.path, statistic="mean",
                      config=EarlConfig(sigma=0.05, seed=23))
        res = job.run()
        _, stock = run_stock_job(cluster, dataset.path, "mean", seed=24)
        assert res.simulated_seconds < stock.simulated_seconds

    def test_iteration_records(self, cluster, dataset):
        job = EarlJob(cluster, dataset.path, statistic="mean",
                      config=EarlConfig(sigma=0.05, seed=25))
        res = job.run()
        assert res.num_iterations >= 1
        assert all(r.simulated_seconds > 0 for r in res.iterations)

    def test_postmap_sampler_variant(self, cluster, dataset):
        job = EarlJob(cluster, dataset.path, statistic="mean",
                      config=EarlConfig(sigma=0.05, seed=26,
                                        sampler="postmap"))
        res = job.run()
        truth = dataset.truth["mean"]
        assert abs(res.estimate - truth) / truth < 0.12

    def test_median_job(self, cluster, dataset):
        job = EarlJob(cluster, dataset.path, statistic="median",
                      config=EarlConfig(sigma=0.05, seed=27))
        res = job.run()
        truth = dataset.truth["median"]
        assert abs(res.estimate - truth) / truth < 0.15

    def test_sum_with_correction(self, cluster, dataset):
        job = EarlJob(cluster, dataset.path, statistic="sum",
                      config=EarlConfig(sigma=0.05, seed=28))
        res = job.run()
        truth = dataset.truth["sum"]
        assert abs(res.estimate - truth) / truth < 0.15

    def test_overrides_respected(self, cluster, dataset):
        cfg = EarlConfig(sigma=0.05, seed=29, B_override=20, n_override=800)
        res = EarlJob(cluster, dataset.path, statistic="mean",
                      config=cfg).run()
        assert res.B == 20

    def test_deterministic(self, cluster, values):
        def run(seed_cluster):
            ds = load_numeric(seed_cluster, "/d", values)
            job = EarlJob(seed_cluster, "/d", statistic="mean",
                          config=EarlConfig(sigma=0.05, seed=30))
            return job.run().estimate

        a = run(Cluster(n_nodes=5, block_size=1 << 20, seed=31))
        b = run(Cluster(n_nodes=5, block_size=1 << 20, seed=31))
        assert a == b


class TestEarlJobFallback:
    def test_tiny_input_runs_exact(self, cluster):
        small = numeric_dataset(400, "lognormal", seed=32)
        ds = load_numeric(cluster, "/small", small)
        job = EarlJob(cluster, ds.path, statistic="mean",
                      config=EarlConfig(sigma=0.01, seed=33))
        res = job.run()
        assert res.used_fallback
        assert res.estimate == pytest.approx(float(np.mean(small)), rel=1e-6)

    def test_empty_input_rejected(self, cluster):
        cluster.hdfs.write_lines("/void", [])
        job = EarlJob(cluster, "/void", statistic="mean",
                      config=EarlConfig(seed=34))
        with pytest.raises(ValueError):
            job.run()


class TestFaultTolerance:
    def test_survives_node_failures(self, cluster, dataset):
        """§3.4: approximate result + error bound despite lost nodes."""
        cluster.fail_node("node-0")
        cluster.fail_node("node-1")
        job = EarlJob(cluster, dataset.path, statistic="mean",
                      config=EarlConfig(sigma=0.05, seed=35))
        res = job.run()
        truth = dataset.truth["mean"]
        assert abs(res.estimate - truth) / truth < 0.2
        assert res.error < 1.0

    def test_stock_job_fails_when_data_lost(self, cluster, dataset):
        from repro.mapreduce import JobFailedError
        for node in list(cluster.nodes):
            cluster.fail_node(node.node_id)
        for node in cluster.nodes:
            node.recover()  # compute back, storage still gone
        with pytest.raises(JobFailedError):
            run_stock_job(cluster, dataset.path, "mean", seed=36)
