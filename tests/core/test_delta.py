"""Tests for inter-iteration delta maintenance (§4.1)."""

import numpy as np
import pytest
from scipy import stats as sp_stats

from repro.cluster.costmodel import CostLedger
from repro.core.bootstrap import bootstrap
from repro.core.delta import (
    MAINTENANCE_NAIVE,
    MAINTENANCE_NONE,
    MAINTENANCE_OPTIMIZED,
    Resample,
    ResampleSet,
)
from repro.core.estimators import get_statistic


@pytest.fixture
def population():
    return np.random.default_rng(1).lognormal(3.0, 1.0, 12_000)


class TestResample:
    def test_add_and_size(self):
        r = Resample(get_statistic("mean").make_state())
        r.new_segment()
        for v in [1.0, 2.0, 3.0]:
            r.add(v, 0)
        assert r.size == 3
        assert r.estimate() == pytest.approx(2.0)

    def test_remove_random_keeps_state_consistent(self):
        rng = np.random.default_rng(2)
        r = Resample(get_statistic("mean").make_state())
        r.new_segment()
        values = [float(i) for i in range(20)]
        for v in values:
            r.add(v, 0)
        removed = r.remove_random(rng)
        assert removed in values
        remaining = sum(values) - removed
        assert r.estimate() == pytest.approx(remaining / 19)

    def test_remove_from_empty_raises(self):
        r = Resample(get_statistic("mean").make_state())
        r.new_segment()
        with pytest.raises(ValueError):
            r.remove_random(np.random.default_rng(3))

    def test_multi_segment_removal_spans_segments(self):
        rng = np.random.default_rng(4)
        r = Resample(get_statistic("sum").make_state())
        r.new_segment()
        r.add(1.0, 0)
        r.new_segment()
        r.add(2.0, 1)
        seen = set()
        for _ in range(50):
            clone = Resample(get_statistic("sum").make_state())
            clone.new_segment()
            clone.add(1.0, 0)
            clone.new_segment()
            clone.add(2.0, 1)
            seen.add(clone.remove_random(rng))
        assert seen == {1.0, 2.0}


class TestResampleSetLifecycle:
    @pytest.mark.parametrize("mode", [MAINTENANCE_NAIVE,
                                      MAINTENANCE_OPTIMIZED,
                                      MAINTENANCE_NONE])
    def test_sizes_always_match_sample(self, population, mode):
        rs = ResampleSet("mean", 20, maintenance=mode, seed=5)
        rs.initialize(population[:500])
        assert set(rs.resample_sizes()) == {500}
        rs.expand(population[500:1500])
        assert set(rs.resample_sizes()) == {1500}
        rs.expand(population[1500:2000])
        assert set(rs.resample_sizes()) == {2000}
        assert rs.sample_size == 2000

    def test_double_initialize_rejected(self, population):
        rs = ResampleSet("mean", 5, seed=6)
        rs.initialize(population[:100])
        with pytest.raises(RuntimeError):
            rs.initialize(population[:100])

    def test_expand_before_initialize_rejected(self, population):
        rs = ResampleSet("mean", 5, seed=7)
        with pytest.raises(RuntimeError):
            rs.expand(population[:100])

    def test_empty_initialize_rejected(self):
        rs = ResampleSet("mean", 5, seed=8)
        with pytest.raises(ValueError):
            rs.initialize([])

    def test_empty_expand_is_noop(self, population):
        rs = ResampleSet("mean", 5, seed=9)
        rs.initialize(population[:100])
        before = rs.estimates()
        rs.expand([])
        np.testing.assert_array_equal(before, rs.estimates())

    def test_estimates_before_initialize_rejected(self):
        with pytest.raises(RuntimeError):
            ResampleSet("mean", 5, seed=10).estimates()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            ResampleSet("mean", 5, maintenance="turbo")

    def test_invalid_B(self):
        with pytest.raises(ValueError):
            ResampleSet("mean", 0)


class TestStatisticalValidity:
    """Maintained resamples must be distributed like fresh bootstraps."""

    @pytest.mark.parametrize("mode", [MAINTENANCE_NAIVE,
                                      MAINTENANCE_OPTIMIZED])
    def test_mean_and_spread_match_fresh_bootstrap(self, population, mode):
        B = 120
        rs = ResampleSet("mean", B, maintenance=mode, seed=11)
        rs.initialize(population[:1000])
        rs.expand(population[1000:2000])
        rs.expand(population[2000:4000])
        maintained = rs.estimates()

        fresh = bootstrap(population[:4000], "mean", B=B, seed=12)
        # Same centre...
        assert maintained.mean() == pytest.approx(fresh.mean, rel=0.02)
        # ...and same dispersion (within Monte-Carlo noise).
        assert maintained.std(ddof=1) == pytest.approx(fresh.std, rel=0.5)

    @pytest.mark.parametrize("mode", [MAINTENANCE_NAIVE,
                                      MAINTENANCE_OPTIMIZED])
    def test_median_statistic_maintained(self, population, mode):
        rs = ResampleSet("median", 60, maintenance=mode, seed=13)
        rs.initialize(population[:800])
        rs.expand(population[800:1600])
        maintained = rs.estimates()
        true_median = np.median(population[:1600])
        assert maintained.mean() == pytest.approx(true_median, rel=0.1)

    @pytest.mark.parametrize("mode", [MAINTENANCE_NAIVE,
                                      MAINTENANCE_OPTIMIZED])
    def test_ks_delta_updates_distributed_like_fresh_bootstrap(
            self, population, mode):
        """§4.1 regression (KS): delta-updated resample estimates are
        distributed like *fresh* bootstrap estimates of the enlarged
        sample — the multinomial-thinning equivalence the maintenance
        algorithms rest on.  Seeded and tolerance-bounded: with both
        sides drawing B estimates of the same target distribution, a
        two-sample KS p-value below 1e-3 would flag a real divergence,
        not Monte-Carlo noise."""
        B = 200
        rs = ResampleSet("mean", B, maintenance=mode, seed=104)
        rs.initialize(population[:400])
        rs.expand(population[400:800])        # two delta rounds: the
        rs.expand(population[800:1600])       # general multi-segment case
        maintained = np.asarray(rs.estimates())

        enlarged = population[:1600]
        rng = np.random.default_rng(105)
        fresh = np.array([
            enlarged[rng.integers(0, enlarged.size,
                                  size=enlarged.size)].mean()
            for _ in range(B)])
        _, p_value = sp_stats.ks_2samp(maintained, fresh)
        assert p_value > 1e-3

    def test_old_sample_share_is_binomial_like(self, population):
        """After one expansion n→2n, each resample should keep ≈ n/2 of
        its items from the old sample on average (Eq. 2)."""
        B = 200
        rs = ResampleSet("mean", B, maintenance=MAINTENANCE_NAIVE, seed=14)
        rs.initialize(population[:500])
        rs.expand(population[500:1000])
        old_shares = [sum(len(seg) for seg in r.segments[:-1])
                      for r in rs._resamples]
        mean_share = np.mean(old_shares)
        # E[k] = n' * (n/n') = 500; std ~ sqrt(500*0.5) ≈ 16
        assert mean_share == pytest.approx(500, abs=10)


class TestVectorizedKernelEquivalence:
    """The vectorized kernel must be a pure speed-up: same random
    stream, same drawn items, same counters as the scalar reference."""

    @pytest.mark.parametrize("mode", [MAINTENANCE_NAIVE,
                                      MAINTENANCE_OPTIMIZED,
                                      MAINTENANCE_NONE])
    @pytest.mark.parametrize("statistic", ["mean", "median"])
    def test_scalar_and_vectorized_draw_identical_items(
            self, population, mode, statistic):
        """Byte-identical stream: resample contents and counters match
        exactly; estimates agree up to floating-point reassociation of
        the state arithmetic."""
        sets = {}
        for vectorized in (False, True):
            rs = ResampleSet(statistic, 12, maintenance=mode, seed=33,
                             vectorized=vectorized)
            rs.initialize(population[:600])
            rs.expand(population[600:1400])
            rs.expand(population[1400:2600])
            sets[vectorized] = rs
        scalar, vector = sets[False], sets[True]
        assert scalar.counters == vector.counters
        for r_scalar, r_vector in zip(scalar._resamples, vector._resamples):
            assert len(r_scalar.segments) == len(r_vector.segments)
            for seg_scalar, seg_vector in zip(r_scalar.segments,
                                              r_vector.segments):
                np.testing.assert_array_equal(
                    np.asarray(seg_scalar, dtype=float),
                    np.asarray(seg_vector, dtype=float))
        np.testing.assert_allclose(scalar.estimates(), vector.estimates(),
                                   rtol=1e-9)

    def test_row_item_statistic_vectorized(self):
        """2-D row items (correlation pairs) go through the same batch
        kernel: identical drawn pairs, equivalent estimates."""
        rng = np.random.default_rng(5)
        x = rng.normal(size=3000)
        pairs = np.column_stack([x, 0.6 * x + rng.normal(size=3000)])
        sets = {}
        for vectorized in (False, True):
            rs = ResampleSet("correlation", 10, maintenance="optimized",
                             seed=21, vectorized=vectorized)
            rs.initialize(pairs[:500])
            rs.expand(pairs[500:1200])
            rs.expand(pairs[1200:2600])
            sets[vectorized] = rs
        assert sets[False].counters == sets[True].counters
        np.testing.assert_allclose(sets[False].estimates(),
                                   sets[True].estimates(), rtol=1e-9)

    def test_fig10_scenario_counters_pinned(self):
        """The seeded Fig. 10 benchmark scenario must keep reporting
        exactly these counters — they were captured from the scalar
        item-at-a-time implementation, and the vectorized kernel's
        stream-preserving design reproduces them bit for bit.  A change
        here means the maintenance accounting (and therefore the
        Fig. 6/Fig. 10 work comparisons) silently shifted."""
        from repro.workloads import numeric_dataset

        expected = {
            MAINTENANCE_NONE: (7_200_000, 0, 0, 120),
            MAINTENANCE_NAIVE: (1_928_176, 964_088, 0, 0),
            MAINTENANCE_OPTIMIZED: (1_928_284, 2_683, 961_459, 0),
        }
        data = numeric_dataset(64_000, "lognormal", seed=1050)
        for mode, want in expected.items():
            rs = ResampleSet("mean", 30, maintenance=mode, seed=1051,
                             io_scale=1000.0)
            rs.initialize(data[:32000])
            for lo, hi in [(32000, 40000), (40000, 48000),
                           (48000, 56000), (56000, 64000)]:
                rs.expand(data[lo:hi])
            got = (rs.counters.state_ops, rs.counters.disk_accesses,
                   rs.counters.sketch_draws, rs.counters.full_rebuilds)
            assert got == want, f"{mode}: {got} != pinned {want}"


class TestWorkAccounting:
    def test_maintenance_does_less_work_than_rebuild(self, population):
        n0, n1 = 2000, 4000
        B = 30
        maintained = ResampleSet("mean", B,
                                 maintenance=MAINTENANCE_OPTIMIZED, seed=15)
        maintained.initialize(population[:n0])
        ops_before = maintained.counters.state_ops
        maintained.expand(population[n0:n1])
        maintained_ops = maintained.counters.state_ops - ops_before

        rebuilt = ResampleSet("mean", B, maintenance=MAINTENANCE_NONE,
                              seed=16)
        rebuilt.initialize(population[:n0])
        ops_before = rebuilt.counters.state_ops
        rebuilt.expand(population[n0:n1])
        rebuild_ops = rebuilt.counters.state_ops - ops_before

        assert maintained_ops < rebuild_ops * 0.75

    def test_optimized_touches_disk_less_than_naive(self, population):
        def run(mode):
            ledger = CostLedger()
            rs = ResampleSet("mean", 20, maintenance=mode, seed=17,
                             ledger=ledger)
            rs.initialize(population[:1000])
            rs.expand(population[1000:2000])
            rs.expand(population[2000:3000])
            return rs.counters, ledger

        naive_counters, naive_ledger = run(MAINTENANCE_NAIVE)
        opt_counters, opt_ledger = run(MAINTENANCE_OPTIMIZED)
        assert opt_counters.disk_accesses < naive_counters.disk_accesses
        assert opt_ledger.seconds("disk_seek") < \
            naive_ledger.seconds("disk_seek")
        assert opt_counters.sketch_draws > 0

    def test_rebuild_mode_counts_full_rebuilds(self, population):
        rs = ResampleSet("mean", 10, maintenance=MAINTENANCE_NONE, seed=18)
        rs.initialize(population[:100])
        rs.expand(population[100:200])
        assert rs.counters.full_rebuilds == 10

    def test_set_ledger_rebinds(self, population):
        rs = ResampleSet("mean", 10, maintenance=MAINTENANCE_NAIVE, seed=19)
        rs.initialize(population[:200])
        fresh_ledger = CostLedger()
        rs.set_ledger(fresh_ledger)
        rs.expand(population[200:400])
        assert fresh_ledger.seconds("disk_seek") > 0
