"""Tests for the block bootstrap on dependent data (Appendix A)."""

import numpy as np
import pytest

from repro.core.bootstrap import bootstrap
from repro.core.dependent import (
    auto_block_length,
    block_bootstrap,
    lag1_autocorrelation,
)
from repro.workloads import ar1_series


@pytest.fixture
def dependent_series():
    return ar1_series(4000, phi=0.85, scale=1.0, loc=100.0, seed=1)


class TestLag1Autocorrelation:
    def test_ar1_series_is_correlated(self, dependent_series):
        rho = lag1_autocorrelation(dependent_series)
        assert rho > 0.7

    def test_iid_series_is_uncorrelated(self):
        iid = np.random.default_rng(2).normal(size=4000)
        assert abs(lag1_autocorrelation(iid)) < 0.1

    def test_constant_series(self):
        assert lag1_autocorrelation(np.full(100, 3.0)) == 0.0

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            lag1_autocorrelation([1.0])


class TestAutoBlockLength:
    def test_longer_for_more_dependent_series(self):
        weak = ar1_series(3000, phi=0.2, seed=3)
        strong = ar1_series(3000, phi=0.95, seed=3)
        assert auto_block_length(strong) > auto_block_length(weak)

    def test_iid_gets_small_blocks(self):
        iid = np.random.default_rng(4).normal(size=3000)
        assert auto_block_length(iid) <= 3

    def test_tiny_series(self):
        assert auto_block_length([1.0, 2.0]) == 1

    def test_constant_series(self):
        assert auto_block_length(np.full(500, 2.0)) == 1


class TestBlockBootstrap:
    def test_estimates_shape(self, dependent_series):
        res = block_bootstrap(dependent_series, "mean", B=40, seed=5)
        assert res.estimates.shape == (40,)
        assert res.n == 4000

    def test_point_estimate_matches(self, dependent_series):
        res = block_bootstrap(dependent_series, "mean", B=20, seed=6)
        assert res.point_estimate == pytest.approx(
            np.mean(dependent_series))

    def test_plain_bootstrap_underestimates_dependent_variance(
            self, dependent_series):
        """The whole point of blocks (App. A): i.i.d. resampling breaks
        the dependence and understates the error of the mean."""
        blocked = block_bootstrap(dependent_series, "mean", B=200,
                                  block_length=50, seed=7)
        plain = bootstrap(dependent_series, "mean", B=200, seed=8)
        assert blocked.std > 1.5 * plain.std

    def test_blocks_preserve_autocorrelation(self, dependent_series):
        """Resampled series keep most of the original lag-1 correlation."""
        rng = np.random.default_rng(9)
        n = len(dependent_series)
        b = 100
        starts = rng.integers(0, n - b + 1, size=n // b)
        resample = np.concatenate(
            [dependent_series[s:s + b] for s in starts])
        rho_original = lag1_autocorrelation(dependent_series)
        rho_resampled = lag1_autocorrelation(resample)
        assert rho_resampled > 0.6 * rho_original

    def test_iid_blocked_matches_plain(self):
        """On i.i.d. data the block bootstrap agrees with the plain one."""
        iid = np.random.default_rng(10).normal(50, 10, 3000)
        blocked = block_bootstrap(iid, "mean", B=200, block_length=10,
                                  seed=11)
        plain = bootstrap(iid, "mean", B=200, seed=12)
        assert blocked.std == pytest.approx(plain.std, rel=0.5)

    def test_non_circular_variant(self, dependent_series):
        res = block_bootstrap(dependent_series, "mean", B=30,
                              block_length=25, circular=False, seed=13)
        assert res.estimates.shape == (30,)

    def test_block_length_longer_than_series_capped(self):
        short = np.arange(10.0)
        res = block_bootstrap(short, "mean", B=10, block_length=100, seed=14)
        assert res.estimates.shape == (10,)

    def test_median_statistic(self, dependent_series):
        res = block_bootstrap(dependent_series, "median", B=30, seed=15)
        assert res.point_estimate == pytest.approx(
            np.median(dependent_series))

    def test_validation(self):
        with pytest.raises(ValueError):
            block_bootstrap([], "mean")
        with pytest.raises(ValueError):
            block_bootstrap([1.0, 2.0], "mean", B=0)
        with pytest.raises(ValueError):
            block_bootstrap([1.0, 2.0], "mean", block_length=0)
