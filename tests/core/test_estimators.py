"""Tests for statistic registry and incremental states."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimators import (
    CorrelationState,
    FunctionalState,
    MeanState,
    MedianState,
    ProportionState,
    QuantileState,
    Statistic,
    SumState,
    available_statistics,
    get_statistic,
    register_statistic,
)

values_strategy = st.lists(
    st.floats(min_value=-1e5, max_value=1e5, allow_nan=False), min_size=1,
    max_size=50)


class TestRegistry:
    def test_known_names_resolve(self):
        for name in ["mean", "sum", "median", "variance", "std", "min",
                     "max", "proportion", "p25", "p75", "p90", "p95", "p99"]:
            stat = get_statistic(name)
            assert stat.name == name

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_statistic("mode")

    def test_quantile_form(self):
        stat = get_statistic("quantile:0.37")
        data = np.arange(101.0)
        assert stat(data) == pytest.approx(np.quantile(data, 0.37))

    def test_callable_wrapped(self):
        stat = get_statistic(lambda a: float(np.ptp(a)))
        assert stat(np.array([1.0, 5.0, 3.0])) == 4.0

    def test_statistic_passthrough(self):
        stat = get_statistic("mean")
        assert get_statistic(stat) is stat

    def test_invalid_spec_type(self):
        with pytest.raises(TypeError):
            get_statistic(123)

    def test_register_custom(self):
        stat = register_statistic(Statistic(
            "range", pointwise=lambda a: float(np.ptp(a))))
        assert get_statistic("range") is stat
        assert "range" in available_statistics()

    def test_batch_matches_pointwise(self):
        rng = np.random.default_rng(1)
        matrix = rng.normal(size=(10, 40))
        for name in ["mean", "sum", "median", "variance", "std", "min",
                     "max", "p90"]:
            stat = get_statistic(name)
            batch = stat.batch(matrix)
            rowwise = [stat(row) for row in matrix]
            np.testing.assert_allclose(batch, rowwise, rtol=1e-10)


class TestMeanSumStates:
    @given(values_strategy)
    @settings(max_examples=50, deadline=None)
    def test_mean_state_matches_numpy(self, values):
        state = MeanState()
        for v in values:
            state.add(v)
        assert state.result() == pytest.approx(np.mean(values),
                                               rel=1e-8, abs=1e-6)

    def test_sum_add_remove(self):
        state = SumState()
        for v in [1.0, 2.0, 3.0]:
            state.add(v)
        state.remove(2.0)
        assert state.result() == 4.0
        assert len(state) == 2

    def test_sum_remove_empty_raises(self):
        with pytest.raises(ValueError):
            SumState().remove(1.0)

    def test_mean_copy_independent(self):
        a = MeanState()
        a.add(1.0)
        b = a.copy()
        b.add(3.0)
        assert a.result() == 1.0
        assert b.result() == 2.0

    def test_merge(self):
        a, b = MeanState(), MeanState()
        for v in [1.0, 2.0]:
            a.add(v)
        for v in [3.0, 4.0]:
            b.add(v)
        a.merge(b)
        assert a.result() == pytest.approx(2.5)


class TestQuantileStates:
    def test_median_matches_numpy(self):
        data = [5.0, 1.0, 9.0, 3.0, 7.0]
        state = MedianState()
        for v in data:
            state.add(v)
        assert state.result() == np.median(data)

    def test_even_count_interpolates(self):
        state = MedianState()
        for v in [1.0, 2.0, 3.0, 4.0]:
            state.add(v)
        assert state.result() == 2.5

    @given(values_strategy, st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_quantile_matches_numpy(self, values, q):
        state = QuantileState(q)
        for v in values:
            state.add(v)
        assert state.result() == pytest.approx(np.quantile(values, q),
                                               rel=1e-9, abs=1e-9)

    def test_remove_then_result(self):
        state = MedianState()
        for v in [1.0, 2.0, 3.0, 100.0]:
            state.add(v)
        state.remove(100.0)
        assert state.result() == 2.0

    def test_remove_missing_raises(self):
        state = MedianState()
        state.add(1.0)
        with pytest.raises(KeyError):
            state.remove(2.0)

    def test_empty_result_raises(self):
        with pytest.raises(ValueError):
            MedianState().result()

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            QuantileState(1.5)

    def test_copy_independent(self):
        a = MedianState()
        for v in [1.0, 2.0, 3.0]:
            a.add(v)
        b = a.copy()
        b.remove(3.0)
        assert a.result() == 2.0
        assert b.result() == 1.5


class TestProportionState:
    def test_share_of_truthy(self):
        state = ProportionState()
        for v in [1, 0, 1, 1]:
            state.add(v)
        assert state.result() == 0.75

    def test_remove(self):
        state = ProportionState()
        for v in [1, 0]:
            state.add(v)
        state.remove(1)
        assert state.result() == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ProportionState().result()


class TestCorrelationState:
    def test_perfect_correlation(self):
        state = CorrelationState()
        for x in range(10):
            state.add((x, 2 * x + 1))
        assert state.result() == pytest.approx(1.0)

    def test_matches_numpy(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=100)
        y = 0.5 * x + rng.normal(size=100)
        state = CorrelationState()
        for pair in zip(x, y):
            state.add(pair)
        assert state.result() == pytest.approx(np.corrcoef(x, y)[0, 1],
                                               rel=1e-9)

    def test_add_remove_roundtrip(self):
        state = CorrelationState()
        pairs = [(1.0, 2.0), (2.0, 1.0), (3.0, 5.0), (4.0, 4.0)]
        for pair in pairs:
            state.add(pair)
        state.add((100.0, -100.0))
        state.remove((100.0, -100.0))
        x = [p[0] for p in pairs]
        y = [p[1] for p in pairs]
        assert state.result() == pytest.approx(np.corrcoef(x, y)[0, 1],
                                               rel=1e-9)

    def test_degenerate_variance_returns_zero(self):
        state = CorrelationState()
        for x in range(5):
            state.add((1.0, float(x)))
        assert state.result() == 0.0

    def test_too_few_pairs_raises(self):
        state = CorrelationState()
        state.add((1.0, 2.0))
        with pytest.raises(ValueError):
            state.result()


class TestFunctionalState:
    def test_arbitrary_function(self):
        state = FunctionalState(lambda a: float(np.ptp(a)))
        for v in [3.0, 9.0, 1.0]:
            state.add(v)
        assert state.result() == 8.0

    def test_remove_single_occurrence(self):
        state = FunctionalState(lambda a: float(np.sum(a)))
        for v in [1.0, 2.0, 2.0]:
            state.add(v)
        state.remove(2.0)
        assert state.result() == 3.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            FunctionalState(np.mean).result()


class TestStateRemovalEquivalence:
    """Delta maintenance's core invariant: state after add+remove equals
    state built from the surviving values."""

    @given(values_strategy, st.integers(min_value=0, max_value=49))
    @settings(max_examples=40, deadline=None)
    def test_mean_state(self, values, pick):
        pick = pick % len(values)
        state = MeanState()
        for v in values:
            state.add(v)
        state.remove(values[pick])
        survivors = values[:pick] + values[pick + 1:]
        if survivors:
            assert state.result() == pytest.approx(np.mean(survivors),
                                                   rel=1e-6, abs=1e-5)

    @given(values_strategy, st.integers(min_value=0, max_value=49))
    @settings(max_examples=40, deadline=None)
    def test_median_state(self, values, pick):
        pick = pick % len(values)
        state = MedianState()
        for v in values:
            state.add(v)
        state.remove(values[pick])
        survivors = values[:pick] + values[pick + 1:]
        if survivors:
            assert state.result() == pytest.approx(np.median(survivors),
                                                   rel=1e-9, abs=1e-9)
