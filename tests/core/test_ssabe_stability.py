"""Focused tests for SSABE's hardened stability rule (see EXPERIMENTS.md:
the paper's single-step criterion fires too early on noisy cv curves)."""

import numpy as np
import pytest

from repro.core.ssabe import estimate_num_bootstraps

#: Statistical-stability suite: excluded from the default tier-1 run
#: (see pytest.ini); `make test-all` includes it.
pytestmark = pytest.mark.slow


@pytest.fixture
def pilot():
    return np.random.default_rng(1).lognormal(3.0, 1.0, 800)


class TestStabilityWindow:
    def test_wider_window_never_decreases_B(self, pilot):
        results = []
        for window in [1, 3, 6]:
            B, _ = estimate_num_bootstraps(pilot, "mean", tau=0.01,
                                           B_min=2, stability_window=window,
                                           seed=2)
            results.append(B)
        assert results == sorted(results)

    def test_single_step_rule_fires_early(self, pilot):
        """With window=1 and B_min=2 (the paper's literal rule) the
        estimate collapses to a handful of resamples — the failure mode
        the hardening exists for."""
        B, _ = estimate_num_bootstraps(pilot, "mean", tau=0.02, B_min=2,
                                       stability_window=1, seed=3)
        assert B < 10

    def test_hardened_rule_yields_usable_B(self, pilot):
        B, _ = estimate_num_bootstraps(pilot, "mean", tau=0.01, B_min=15,
                                       stability_window=3, seed=4)
        assert 15 <= B <= 100

    def test_streak_resets_on_large_step(self):
        """A cv curve that keeps jumping must not be declared stable:
        high-variance data pushes B toward the candidate cap."""
        wild = np.random.default_rng(5).pareto(1.1, 500) * 10
        B_wild, curve = estimate_num_bootstraps(wild, "mean", tau=0.001,
                                                B_min=5,
                                                stability_window=3,
                                                B_cap=60, seed=6)
        steps = [abs(b_cv - a_cv)
                 for (_, a_cv), (_, b_cv) in zip(curve, curve[1:])]
        # the data is wild enough that some steps exceed tau late on
        assert any(s > 0.001 for s in steps[5:])
        assert B_wild >= 5

    def test_candidate_range_honours_tau(self, pilot):
        """The candidate set is {2..1/τ} (§3.2): a coarse τ caps B low."""
        B, curve = estimate_num_bootstraps(pilot, "mean", tau=0.2,
                                           B_min=2, stability_window=1,
                                           seed=7)
        assert curve[-1][0] <= max(5, int(1 / 0.2))
