"""Tests for the Figure 4 porcelain API."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core.figure4 import Figure4Sampler
from repro.workloads import load_numeric, numeric_dataset


@pytest.fixture
def env():
    cluster = Cluster(n_nodes=4, block_size=1 << 18, seed=80)
    values = numeric_dataset(20_000, "lognormal", seed=81)
    ds = load_numeric(cluster, "/data", values, logical_scale=100.0)
    return cluster, ds


class TestFigure4Steps:
    def test_init_estimates_population(self, env):
        cluster, ds = env
        s = Figure4Sampler(cluster, seed=1)
        s.init(ds.path)
        assert s._population == pytest.approx(ds.records, rel=0.02)

    def test_generate_samples_draws_lines(self, env):
        cluster, ds = env
        s = Figure4Sampler(cluster, seed=2)
        s.init(ds.path)
        s.generate_samples(200, 15)
        assert len(s._sample_values) == 200
        assert s.simulated_seconds > 0

    def test_generate_is_incremental(self, env):
        cluster, ds = env
        s = Figure4Sampler(cluster, seed=3)
        s.init(ds.path)
        s.generate_samples(100, 10)
        s.generate_samples(300, 10)
        assert len(s._sample_values) == 300

    def test_user_job_produces_B_estimates(self, env):
        cluster, ds = env
        s = Figure4Sampler(cluster, seed=4)
        s.init(ds.path)
        s.generate_samples(200, 25)
        estimates = s.run_user_job()
        assert estimates.shape == (25,)

    def test_aes_job_sets_error(self, env):
        cluster, ds = env
        s = Figure4Sampler(cluster, seed=5)
        s.init(ds.path)
        s.generate_samples(200, 25)
        s.run_user_job()
        accuracy = s.run_aes_job()
        assert s.error == accuracy.error
        assert accuracy.n == 200

    def test_step_order_enforced(self, env):
        cluster, ds = env
        s = Figure4Sampler(cluster, seed=6)
        with pytest.raises(RuntimeError):
            s.generate_samples(10, 5)
        s.init(ds.path)
        with pytest.raises(RuntimeError):
            s.run_user_job()
        with pytest.raises(RuntimeError):
            s.run_aes_job()
        with pytest.raises(RuntimeError):
            s.result()


class TestFigure4Loop:
    def test_loop_reaches_sigma(self, env):
        cluster, ds = env
        s = Figure4Sampler(cluster, seed=7)
        s.init(ds.path)
        accuracy = s.run_loop(sigma=0.05)
        assert s.error <= 0.05
        truth = ds.truth["mean"]
        assert abs(accuracy.estimate - truth) / truth < 0.15

    def test_loop_fallback_on_tiny_data(self):
        cluster = Cluster(n_nodes=3, block_size=1 << 18, seed=82)
        values = numeric_dataset(300, "lognormal", seed=83)
        ds = load_numeric(cluster, "/tiny", values)
        s = Figure4Sampler(cluster, seed=8)
        s.init(ds.path)
        s.run_loop(sigma=0.005)
        # "sample_size and num_resamples will be set to N and 1"
        assert s.full_data_mode
        assert s.num_resamples == 1
        assert s.sample_size == s._population

    def test_loop_deterministic(self, env):
        cluster, ds = env

        def run():
            s = Figure4Sampler(cluster, seed=9)
            s.init(ds.path)
            return s.run_loop(sigma=0.05).estimate

        assert run() == run()
