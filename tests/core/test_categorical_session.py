"""Tests for the categorical EARL loop (Appendix A end to end)."""

import numpy as np
import pytest

from repro.core import EarlConfig
from repro.core.categorical_session import CategoricalEarlSession
from repro.workloads import categorical_dataset


@pytest.fixture(scope="module")
def population():
    return categorical_dataset(400_000, 0.3, seed=1)


class TestCategoricalEarlSession:
    def test_estimates_true_proportion(self, population):
        res = CategoricalEarlSession(
            population, config=EarlConfig(sigma=0.05, seed=2)).run()
        assert res.estimate == pytest.approx(0.3, abs=0.03)
        assert res.achieved

    def test_closed_form_needs_one_shot_usually(self, population):
        """The binomial closed form sizes the sample correctly up front,
        so the verification loop should not need to expand."""
        res = CategoricalEarlSession(
            population, config=EarlConfig(sigma=0.05, seed=3)).run()
        assert res.num_iterations == 1
        assert res.B == 1  # no resampling at all

    def test_sample_size_tracks_closed_form(self, population):
        from repro.core.categorical import required_sample_size_proportion

        res = CategoricalEarlSession(
            population, config=EarlConfig(sigma=0.05, seed=4)).run()
        ideal = required_sample_size_proportion(0.3, 0.05)
        # same order as the closed form; a boundary-sized first sample
        # may need one verification doubling (n up to ~2× ideal)
        assert 0.5 * ideal <= res.n <= 2.5 * ideal

    def test_tighter_sigma_needs_more(self, population):
        loose = CategoricalEarlSession(
            population, config=EarlConfig(sigma=0.10, seed=5)).run()
        tight = CategoricalEarlSession(
            population, config=EarlConfig(sigma=0.02, seed=5)).run()
        assert tight.n > loose.n

    def test_rare_events_expand(self):
        rare = categorical_dataset(300_000, 0.01, seed=6)
        res = CategoricalEarlSession(
            rare, config=EarlConfig(sigma=0.1, seed=7)).run()
        assert res.estimate == pytest.approx(0.01, abs=0.005)
        # rare events need large samples: cv = sqrt((1-p)/(np))
        assert res.n > 5000

    def test_custom_predicate(self):
        values = np.arange(10_000)
        res = CategoricalEarlSession(
            values, predicate=lambda v: v % 10 == 0,
            config=EarlConfig(sigma=0.05, seed=8)).run()
        assert res.estimate == pytest.approx(0.1, abs=0.03)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CategoricalEarlSession([])

    def test_ci_brackets_truth_usually(self, population):
        hits = 0
        for seed in range(10):
            res = CategoricalEarlSession(
                population, config=EarlConfig(sigma=0.05, seed=seed)).run()
            lo, hi = res.ci
            if lo <= 0.3 <= hi:
                hits += 1
        assert hits >= 8
