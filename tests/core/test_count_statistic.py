"""Tests for the COUNT statistic and its 1/p correction (§2.1)."""

import numpy as np
import pytest

from repro.core import EarlConfig, EarlSession
from repro.core.correction import get_correction, inverse_fraction
from repro.core.estimators import CountState, get_statistic


class TestCountState:
    def test_counts_additions(self):
        state = CountState()
        for v in [1.0, 2.0, 3.0]:
            state.add(v)
        assert state.result() == 3.0

    def test_remove(self):
        state = CountState()
        state.add(1.0)
        state.add(2.0)
        state.remove(1.0)
        assert state.result() == 1.0

    def test_remove_empty_raises(self):
        with pytest.raises(ValueError):
            CountState().remove(1.0)

    def test_merge_and_copy(self):
        a, b = CountState(), CountState()
        a.add(1)
        b.add(2)
        b.add(3)
        a.merge(b)
        assert a.result() == 3.0
        c = a.copy()
        c.add(4)
        assert a.result() == 3.0
        assert c.result() == 4.0


class TestCountStatistic:
    def test_pointwise_and_batch(self):
        stat = get_statistic("count")
        assert stat(np.arange(7.0)) == 7.0
        matrix = np.zeros((3, 11))
        np.testing.assert_array_equal(stat.batch(matrix), [11.0] * 3)

    def test_auto_correction_is_inverse_fraction(self):
        assert get_correction("auto", "count") is inverse_fraction

    def test_earl_session_estimates_population_size(self):
        """COUNT over a sample, corrected by 1/p, estimates N itself."""
        data = np.random.default_rng(1).lognormal(3.0, 1.0, 100_000)
        cfg = EarlConfig(sigma=0.05, seed=2, B_override=20, n_override=1000)
        res = EarlSession(data, "count", config=cfg).run()
        # count(sample)/p == n/(n/N) == N exactly
        assert res.estimate == pytest.approx(len(data), rel=1e-9)
