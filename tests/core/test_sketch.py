"""Tests for the two-layer memory/disk sketch (§4.1)."""

import math

import numpy as np
import pytest

from repro.cluster.costmodel import CostLedger
from repro.core.sketch import Sketch


class TestSketchStructure:
    def test_size_is_c_sqrt_n(self):
        backing = list(range(10_000))
        sketch = Sketch(backing, c=4.0, rng=np.random.default_rng(1))
        assert sketch.sketch_size == math.ceil(4.0 * 100)

    def test_size_capped_at_backing(self):
        sketch = Sketch(list(range(5)), c=10.0,
                        rng=np.random.default_rng(2))
        assert sketch.sketch_size == 5

    def test_invalid_c(self):
        with pytest.raises(ValueError):
            Sketch([1, 2, 3], c=0.0)

    def test_empty_backing(self):
        sketch = Sketch([], c=2.0)
        assert sketch.sketch_size == 0
        with pytest.raises(ValueError):
            sketch.draw()


class TestDrawing:
    def test_draws_come_from_backing(self):
        backing = list(range(100))
        sketch = Sketch(backing, c=2.0, rng=np.random.default_rng(3))
        for _ in range(15):
            assert sketch.draw() in backing

    def test_exhaustion_triggers_disk_reload(self):
        backing = list(range(100))
        ledger = CostLedger()
        sketch = Sketch(backing, c=1.0, rng=np.random.default_rng(4),
                        ledger=ledger)
        size = sketch.sketch_size
        for _ in range(size):
            sketch.draw()
        assert sketch.exhausted
        sketch.draw()  # forces reload
        assert sketch.disk_reloads == 1
        assert ledger.seconds("disk_seek") > 0
        assert ledger.seconds("disk_read") > 0

    def test_memory_draws_are_free(self):
        ledger = CostLedger()
        sketch = Sketch(list(range(1000)), c=4.0,
                        rng=np.random.default_rng(5), ledger=ledger)
        for _ in range(sketch.sketch_size):
            sketch.draw()
        assert ledger.total_seconds == 0.0

    def test_draw_counter(self):
        sketch = Sketch(list(range(50)), c=2.0,
                        rng=np.random.default_rng(6))
        for _ in range(7):
            sketch.draw()
        assert sketch.draws == 7


class TestRefresh:
    def test_refresh_resets_pointer(self):
        sketch = Sketch(list(range(200)), c=2.0,
                        rng=np.random.default_rng(7))
        for _ in range(5):
            sketch.draw()
        used_before = 5
        sketch.refresh()
        assert sketch.remaining == sketch.sketch_size
        assert not sketch.exhausted
        assert used_before <= sketch.draws

    def test_refresh_keeps_items_from_backing(self):
        backing = list(range(300))
        sketch = Sketch(backing, c=3.0, rng=np.random.default_rng(8))
        for _ in range(10):
            sketch.draw()
        sketch.refresh()
        seen = [sketch.draw() for _ in range(sketch.sketch_size)]
        assert all(item in backing for item in seen)

    def test_refresh_costs_no_disk(self):
        ledger = CostLedger()
        sketch = Sketch(list(range(400)), c=2.0,
                        rng=np.random.default_rng(9), ledger=ledger)
        for _ in range(10):
            sketch.draw()
        sketch.refresh()
        assert ledger.total_seconds == 0.0


class TestBackingGrowth:
    def test_notify_backing_grew_rescales(self):
        backing = list(range(100))
        sketch = Sketch(backing, c=2.0, rng=np.random.default_rng(10))
        old_size = sketch.sketch_size
        backing.extend(range(100, 10_000))
        sketch.notify_backing_grew()
        assert sketch.sketch_size > old_size
        assert sketch.remaining == sketch.sketch_size

    def test_uniformity_of_draws(self):
        """Sequential draws from the sketch are uniform over the backing
        (in aggregate across refreshes)."""
        backing = list(range(20))
        rng = np.random.default_rng(11)
        sketch = Sketch(backing, c=2.0, rng=rng)
        counts = np.zeros(20)
        for _ in range(4000):
            counts[sketch.draw()] += 1
            if sketch.exhausted:
                sketch.refresh()
        expected = 4000 / 20
        assert np.all(np.abs(counts - expected) < 6 * np.sqrt(expected))
