"""Tests for SSABE — sample size and bootstrap count estimation (§3.2)."""

import numpy as np
import pytest

from repro.core.ssabe import (
    estimate_num_bootstraps,
    estimate_parameters,
    estimate_sample_size,
    theoretical_sample_size_mean,
)


@pytest.fixture
def pilot():
    return np.random.default_rng(1).lognormal(3.0, 1.0, 1000)


class TestEstimateNumBootstraps:
    def test_returns_stable_B(self, pilot):
        B, curve = estimate_num_bootstraps(pilot, "mean", tau=0.01, seed=2)
        assert B >= 15
        assert curve[0][0] == 2
        assert curve[-1][0] == B or B == curve[-1][0]

    def test_respects_B_min(self, pilot):
        B, _ = estimate_num_bootstraps(pilot, "mean", tau=0.5, B_min=25,
                                       seed=3)
        assert B >= 25

    def test_tiny_tau_hits_cap(self, pilot):
        B, _ = estimate_num_bootstraps(pilot, "mean", tau=1e-9, B_cap=40,
                                       seed=4)
        assert B == 40

    def test_curve_is_monotone_in_candidate(self, pilot):
        _, curve = estimate_num_bootstraps(pilot, "mean", seed=5)
        candidates = [b for b, _ in curve]
        assert candidates == sorted(candidates)

    def test_empty_pilot_rejected(self):
        with pytest.raises(ValueError):
            estimate_num_bootstraps([], "mean")

    def test_b_min_validation(self, pilot):
        with pytest.raises(ValueError):
            estimate_num_bootstraps(pilot, "mean", B_min=1)

    def test_deterministic(self, pilot):
        a = estimate_num_bootstraps(pilot, "mean", seed=6)
        b = estimate_num_bootstraps(pilot, "mean", seed=6)
        assert a == b


class TestEstimateSampleSize:
    def test_extrapolates_beyond_pilot_for_tight_sigma(self, pilot):
        n, points, a, b = estimate_sample_size(pilot, "mean", sigma=0.01,
                                               B=30, seed=7)
        assert n > len(pilot)
        assert len(points) == 5

    def test_small_n_for_loose_sigma(self, pilot):
        n, _, _, _ = estimate_sample_size(pilot, "mean", sigma=0.5, B=30,
                                          seed=8)
        assert n <= len(pilot)

    def test_cv_points_decrease(self, pilot):
        _, points, _, _ = estimate_sample_size(pilot, "mean", sigma=0.01,
                                               B=40, seed=9)
        first_cv = points[0][1]
        last_cv = points[-1][1]
        assert last_cv < first_cv

    def test_fitted_exponent_near_half(self, pilot):
        """cv ∝ n^(-1/2) for the mean, so the fit should find b ≈ 0.5."""
        _, _, a, b = estimate_sample_size(pilot, "mean", sigma=0.001, B=60,
                                          seed=10)
        assert b is not None
        assert 0.2 < b < 0.9

    def test_pilot_too_small_rejected(self):
        with pytest.raises(ValueError):
            estimate_sample_size(np.arange(10.0), "mean", levels=5)

    def test_constant_data_needs_minimum(self):
        n, _, _, _ = estimate_sample_size(np.full(200, 5.0), "mean",
                                          sigma=0.05, B=10, seed=11)
        assert n >= 10


class TestEstimateParameters:
    def test_full_pipeline(self, pilot):
        res = estimate_parameters(pilot, 1_000_000, "mean", sigma=0.05,
                                  seed=12)
        assert res.B >= 15
        assert res.n >= 10
        assert not res.fallback_to_exact
        assert res.work_bound == res.B * res.n
        assert res.pilot_size == 1000

    def test_fallback_when_population_small(self, pilot):
        res = estimate_parameters(pilot, 50, "mean", sigma=0.001, seed=13)
        assert res.fallback_to_exact
        assert res.n <= 50

    def test_n_capped_at_population(self, pilot):
        res = estimate_parameters(pilot, 600, "mean", sigma=0.0001, seed=14)
        assert res.n <= 600

    def test_diagnostics_recorded(self, pilot):
        res = estimate_parameters(pilot, 10_000, "mean", seed=15)
        assert len(res.cv_by_B) >= 1
        assert len(res.cv_by_n) == 5


class TestTheoreticalSampleSize:
    def test_formula(self):
        # cv_pop = 1.3, sigma = 0.05 -> n = (1.3/0.05)^2 = 676
        assert theoretical_sample_size_mean(1.3, 0.05) == 676

    def test_tighter_sigma_needs_more(self):
        assert theoretical_sample_size_mean(1.0, 0.01) > \
            theoretical_sample_size_mean(1.0, 0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            theoretical_sample_size_mean(0.0, 0.05)
        with pytest.raises(ValueError):
            theoretical_sample_size_mean(1.0, 0.0)

    def test_empirical_vs_theoretical_same_order(self):
        """Fig. 8's sanity check: for the mean, SSABE's estimate should
        land within an order of magnitude of the CLT prescription."""
        rng = np.random.default_rng(16)
        population = rng.lognormal(3.0, 1.0, 200_000)
        pilot = population[:2000]
        res = estimate_parameters(pilot, len(population), "mean",
                                  sigma=0.05, seed=17)
        pop_cv = float(np.std(population, ddof=1) / np.mean(population))
        theory_n = theoretical_sample_size_mean(pop_cv, 0.05)
        assert theory_n / 10 < res.n < theory_n * 10
