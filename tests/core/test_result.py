"""Tests for EarlResult / IterationRecord plumbing."""

import pytest

from repro.core.accuracy import AccuracyEstimate
from repro.core.result import EarlResult, IterationRecord


def make_accuracy(error=0.04) -> AccuracyEstimate:
    return AccuracyEstimate(estimate=10.0, point_estimate=10.1, error=error,
                            cv=error, std=0.4, variance=0.16, bias=-0.1,
                            ci_low=9.2, ci_high=10.8, n=100, B=30)


def make_result(**kwargs) -> EarlResult:
    base = dict(estimate=10.0, uncorrected_estimate=10.0, error=0.04,
                achieved=True, sigma=0.05, statistic="mean", n=100, B=30,
                population_size=10_000, sample_fraction=0.01,
                used_fallback=False, simulated_seconds=12.5)
    base.update(kwargs)
    return EarlResult(**base)


class TestEarlResult:
    def test_num_iterations(self):
        records = [IterationRecord(iteration=i, sample_size=i * 100,
                                   accuracy=make_accuracy(),
                                   simulated_seconds=1.0, expanded=i < 2)
                   for i in (1, 2)]
        assert make_result(iterations=records).num_iterations == 2

    def test_ci_from_accuracy(self):
        res = make_result(accuracy=make_accuracy())
        assert res.ci == (9.2, 10.8)

    def test_ci_none_without_accuracy(self):
        assert make_result().ci is None

    def test_optional_fields_default_none(self):
        res = make_result()
        assert res.key_estimates is None
        assert res.block_length is None

    def test_repr_mentions_status(self):
        assert "met" in repr(make_result(achieved=True))
        assert "NOT met" in repr(make_result(achieved=False))
        assert "exact-fallback" in repr(make_result(used_fallback=True))


class TestAccuracyEstimate:
    def test_meets_boundary(self):
        acc = make_accuracy(error=0.05)
        assert acc.meets(0.05)
        assert not acc.meets(0.049)

    def test_frozen(self):
        acc = make_accuracy()
        with pytest.raises(Exception):
            acc.error = 0.1
