"""Tests for the dependent-data EARL driver (Appendix A end to end)."""

import numpy as np
import pytest

from repro.core import EarlConfig, EarlSession
from repro.core.dependent_session import DependentEarlSession
from repro.workloads import ar1_series


@pytest.fixture(scope="module")
def series():
    return ar1_series(120_000, phi=0.85, scale=1.0, loc=100.0, seed=1)


class TestDependentEarlSession:
    def test_mean_within_bound(self, series):
        res = DependentEarlSession(
            series, "mean", config=EarlConfig(sigma=0.01, seed=2)).run()
        truth = series.mean()
        assert abs(res.estimate - truth) / truth < 0.02
        assert res.achieved == (res.error <= 0.01)

    def test_uses_fraction_of_series(self, series):
        res = DependentEarlSession(
            series, "mean", config=EarlConfig(sigma=0.01, seed=3)).run()
        assert res.sample_fraction < 0.5

    def test_block_length_auto_selected(self, series):
        res = DependentEarlSession(
            series, "mean", config=EarlConfig(sigma=0.01, seed=4)).run()
        assert res.block_length > 1  # AR(0.85) is clearly dependent

    def test_explicit_block_length_respected(self, series):
        res = DependentEarlSession(
            series, "mean", config=EarlConfig(sigma=0.01, seed=5),
            block_length=40).run()
        assert res.block_length == 40

    def test_honest_error_vs_iid_loop(self, series):
        """The reason this driver exists: on dependent data the i.i.d.
        loop's error estimate is over-confident — it claims σ is met at
        a sample far smaller than the dependence actually allows."""
        sigma = 0.005
        dep = DependentEarlSession(
            series, "mean", config=EarlConfig(sigma=sigma, seed=6)).run()
        iid = EarlSession(
            series, "mean", config=EarlConfig(sigma=sigma, seed=6)).run()
        # both "meet" their bound, but the dependent driver needs a
        # substantially larger sample to honestly do so
        assert dep.n > 2 * iid.n

    def test_iteration_records(self, series):
        res = DependentEarlSession(
            series, "mean", config=EarlConfig(sigma=0.002, seed=7)).run()
        assert res.num_iterations >= 1
        assert res.iterations[-1].expanded is False

    def test_expansion_reduces_error(self, series):
        res = DependentEarlSession(
            series, "mean",
            config=EarlConfig(sigma=1e-6, seed=8, max_iterations=4,
                              n_override=256)).run()
        cvs = [rec.accuracy.cv for rec in res.iterations]
        assert len(cvs) == 4
        assert cvs[-1] < cvs[0]

    def test_median_supported(self, series):
        res = DependentEarlSession(
            series, "median", config=EarlConfig(sigma=0.01, seed=9)).run()
        truth = float(np.median(series))
        assert abs(res.estimate - truth) / truth < 0.02

    def test_deterministic(self, series):
        def run():
            return DependentEarlSession(
                series, "mean", config=EarlConfig(sigma=0.01,
                                                  seed=10)).run()
        assert run().estimate == run().estimate

    def test_validation(self):
        with pytest.raises(ValueError):
            DependentEarlSession([1.0, 2.0], "mean")
        with pytest.raises(ValueError):
            DependentEarlSession(np.zeros((3, 3)), "mean")
        with pytest.raises(ValueError):
            DependentEarlSession(np.arange(100.0), "mean", block_length=0)
