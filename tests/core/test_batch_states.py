"""Batch-state equivalence: ``add_many``/``remove_many`` ≡ the scalar loop.

The vectorized delta-maintenance kernel folds whole item batches into
estimator states.  These property-style tests pin the contract that
makes that safe: for every registered statistic, a batch operation
leaves the state with the same item count and (up to floating-point
reassociation) the same finalized value as the equivalent sequence of
scalar ``add``/``remove`` calls — including the 2-D row-item case
(``"correlation"``, whose items are (x, y) pairs).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimators import (
    EstimatorState,
    available_statistics,
    get_statistic,
)

#: Statistics whose states need >= 2 items for a defined result.
MIN_ITEMS = {"variance": 2, "std": 2, "correlation": 2}


def _make_values(name: str, rng: np.random.Generator, size: int) -> np.ndarray:
    """Random items for the statistic (rows for row-item statistics)."""
    if get_statistic(name).row_items:
        return rng.normal(size=(size, 2))
    if name == "proportion":
        return rng.integers(0, 2, size=size).astype(float)
    return rng.lognormal(1.0, 0.7, size=size)


def _filled(name: str, values: np.ndarray, *, batch: bool) -> EstimatorState:
    state = get_statistic(name).make_state()
    if batch:
        state.add_many(values)
    else:
        for value in values:
            state.add(value)
    return state


def _assert_same(name: str, a: EstimatorState, b: EstimatorState) -> None:
    assert len(a) == len(b)
    if len(a) >= MIN_ITEMS.get(name, 1):
        assert a.result() == pytest.approx(b.result(), rel=1e-9, abs=1e-9)


@pytest.mark.parametrize("name", available_statistics())
@given(seed=st.integers(0, 2**16), size=st.integers(1, 60))
@settings(max_examples=25, deadline=None)
def test_add_many_matches_scalar_loop(name, seed, size):
    values = _make_values(name, np.random.default_rng(seed), size)
    _assert_same(name, _filled(name, values, batch=True),
                 _filled(name, values, batch=False))


@pytest.mark.parametrize("name", available_statistics())
@given(seed=st.integers(0, 2**16), size=st.integers(2, 60),
       frac=st.floats(0.1, 0.9))
@settings(max_examples=25, deadline=None)
def test_remove_many_matches_scalar_loop(name, seed, size, frac):
    rng = np.random.default_rng(seed)
    values = _make_values(name, rng, size)
    drop = max(1, min(size - MIN_ITEMS.get(name, 1), int(frac * size)))
    victims = values[rng.choice(size, size=drop, replace=False)]

    batch = _filled(name, values, batch=True)
    batch.remove_many(victims)
    scalar = _filled(name, values, batch=False)
    for victim in victims:
        scalar.remove(victim)
    _assert_same(name, batch, scalar)


@pytest.mark.parametrize("name", available_statistics())
def test_interleaved_chunks_match_scalar_loop(name):
    """Chunked adds with a removal batch in between — the shape of a
    delta-maintenance iteration."""
    rng = np.random.default_rng(7)
    first = _make_values(name, rng, 40)
    second = _make_values(name, rng, 25)
    victims = first[rng.choice(40, size=10, replace=False)]

    batch = get_statistic(name).make_state()
    batch.add_many(first)
    batch.remove_many(victims)
    batch.add_many(second)

    scalar = get_statistic(name).make_state()
    for value in first:
        scalar.add(value)
    for victim in victims:
        scalar.remove(victim)
    for value in second:
        scalar.add(value)
    _assert_same(name, batch, scalar)


@pytest.mark.parametrize("name", available_statistics())
def test_empty_batches_are_noops(name):
    values = _make_values(name, np.random.default_rng(3), 8)
    state = _filled(name, values, batch=True)
    before = (len(state), state.result())
    empty = values[:0]
    state.add_many(empty)
    state.remove_many(empty)
    assert (len(state), state.result()) == before


def test_quantile_remove_many_missing_value_raises():
    state = get_statistic("median").make_state()
    state.add_many(np.array([1.0, 2.0, 2.0, 3.0]))
    with pytest.raises(KeyError):
        state.remove_many(np.array([2.0, 2.0, 2.0]))  # only two copies


def test_moment_remove_many_underflow_raises():
    state = get_statistic("mean").make_state()
    state.add_many(np.array([1.0, 2.0]))
    with pytest.raises(ValueError):
        state.remove_many(np.array([1.0, 2.0, 3.0]))


def test_correlation_add_many_requires_pairs():
    state = get_statistic("correlation").make_state()
    with pytest.raises(ValueError):
        state.add_many(np.array([1.0, 2.0, 3.0]))


def test_default_fallback_used_by_custom_states():
    """Arbitrary (functional) states get the scalar-loop default."""
    stat = get_statistic(lambda a: float(np.ptp(a)))
    state = stat.make_state()
    state.add_many(np.array([1.0, 5.0, 3.0]))
    assert len(state) == 3
    assert state.result() == pytest.approx(4.0)
    state.remove_many(np.array([5.0]))
    assert state.result() == pytest.approx(2.0)
