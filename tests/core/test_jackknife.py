"""Tests for the delete-1 jackknife baseline."""

import numpy as np
import pytest

from repro.core.bootstrap import bootstrap
from repro.core.jackknife import jackknife


class TestJackknife:
    @pytest.fixture
    def data(self):
        return np.random.default_rng(1).normal(50.0, 10.0, 400)

    def test_replicate_count(self, data):
        res = jackknife(data, "mean")
        assert res.replicates.shape == (400,)
        assert res.n == 400

    def test_mean_fast_path_correct(self, data):
        res = jackknife(data, "mean")
        # leave-one-out means computed explicitly for a few indices
        for i in [0, 100, 399]:
            loo = np.delete(data, i)
            assert res.replicates[i] == pytest.approx(np.mean(loo))

    def test_sum_fast_path(self):
        data = np.array([1.0, 2.0, 3.0])
        res = jackknife(data, "sum")
        np.testing.assert_allclose(res.replicates, [5.0, 4.0, 3.0])

    def test_variance_for_mean_matches_clt(self, data):
        """Jackknife variance of the mean is exactly s²/n."""
        res = jackknife(data, "mean")
        assert res.variance == pytest.approx(np.var(data, ddof=1) / 400,
                                             rel=1e-9)

    def test_agrees_with_bootstrap_for_mean(self, data):
        jk = jackknife(data, "mean")
        bs = bootstrap(data, "mean", B=400, seed=2)
        assert jk.std == pytest.approx(bs.std, rel=0.3)

    def test_generic_path_for_other_statistics(self):
        data = np.random.default_rng(3).normal(size=60)
        res = jackknife(data, "std")
        assert res.replicates.shape == (60,)
        assert res.variance > 0

    def test_bias_estimate_zero_for_mean(self, data):
        assert jackknife(data, "mean").bias == pytest.approx(0.0, abs=1e-9)

    def test_median_failure_mode(self):
        """§3: "jackknife does not work for many functions such as the
        median" — leave-one-out medians take at most two values, so the
        variance estimate is degenerate compared to the bootstrap's."""
        data = np.sort(np.random.default_rng(4).normal(size=201))
        res = jackknife(data, "median")
        # removing item i shifts the median to one of only 3 values
        assert len(np.unique(res.replicates)) <= 3
        bs = bootstrap(data, "median", B=200, seed=5)
        # the two disagree wildly (jackknife is inconsistent here)
        assert not np.isclose(res.std, bs.std, rtol=0.5)

    def test_too_small_sample_rejected(self):
        with pytest.raises(ValueError):
            jackknife([1.0], "mean")
