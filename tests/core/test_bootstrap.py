"""Tests for Monte-Carlo bootstrapping."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bootstrap import (
    bootstrap,
    bootstrap_cv_curve,
    bootstrap_cv_vs_n,
    exact_bootstrap_count,
    theoretical_num_bootstraps,
)


class TestExactCount:
    def test_paper_value_n15(self):
        # §3: "for n = 15 is already equal to 77 × 10^6"
        assert exact_bootstrap_count(15) == 77_558_760

    def test_small_values(self):
        assert exact_bootstrap_count(1) == 1
        assert exact_bootstrap_count(2) == 3
        assert exact_bootstrap_count(3) == 10

    def test_invalid(self):
        with pytest.raises(ValueError):
            exact_bootstrap_count(0)


class TestTheoreticalB:
    def test_formula(self):
        assert theoretical_num_bootstraps(0.05) == math.ceil(0.5 / 0.0025)

    def test_decreasing_in_epsilon(self):
        assert theoretical_num_bootstraps(0.01) > theoretical_num_bootstraps(0.1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            theoretical_num_bootstraps(0.0)


class TestBootstrap:
    @pytest.fixture
    def data(self):
        return np.random.default_rng(1).lognormal(3.0, 1.0, 2000)

    def test_estimate_near_truth(self, data):
        res = bootstrap(data, "mean", B=50, seed=2)
        assert res.mean == pytest.approx(np.mean(data), rel=0.05)
        assert res.point_estimate == pytest.approx(np.mean(data))

    def test_shape_and_metadata(self, data):
        res = bootstrap(data, "median", B=25, seed=3)
        assert res.estimates.shape == (25,)
        assert res.B == 25
        assert res.n == 2000

    def test_cv_positive_for_dispersed_data(self, data):
        res = bootstrap(data, "mean", B=40, seed=4)
        assert 0 < res.cv < 1

    def test_cv_zero_for_constant_data(self):
        res = bootstrap(np.full(100, 7.0), "mean", B=20, seed=5)
        assert res.cv == 0.0
        assert res.std == 0.0

    def test_std_tracks_clt_rate(self):
        """Bootstrap std of the mean ≈ sample std / sqrt(n)."""
        rng = np.random.default_rng(6)
        data = rng.normal(100, 20, 5000)
        res = bootstrap(data, "mean", B=300, seed=7)
        clt = np.std(data, ddof=1) / np.sqrt(len(data))
        assert res.std == pytest.approx(clt, rel=0.25)

    def test_confidence_interval_contains_estimate(self, data):
        res = bootstrap(data, "mean", B=100, seed=8)
        lo, hi = res.confidence_interval(0.95)
        assert lo < res.mean < hi

    def test_confidence_validation(self, data):
        res = bootstrap(data, "mean", B=10, seed=9)
        with pytest.raises(ValueError):
            res.confidence_interval(1.5)

    def test_deterministic_with_seed(self, data):
        a = bootstrap(data, "mean", B=30, seed=10)
        b = bootstrap(data, "mean", B=30, seed=10)
        np.testing.assert_array_equal(a.estimates, b.estimates)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            bootstrap([], "mean", B=10)

    def test_invalid_B(self):
        with pytest.raises(ValueError):
            bootstrap([1.0, 2.0], "mean", B=0)

    def test_works_for_arbitrary_callable(self, data):
        res = bootstrap(data, lambda a: float(np.ptp(a)), B=15, seed=11)
        assert res.estimates.shape == (15,)

    @given(scale=st.floats(min_value=0.1, max_value=100.0, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_property_cv_scale_invariant(self, scale):
        """cv(c·X) == cv(X) for c > 0 — the reason cv is a usable
        *relative* error measure."""
        data = np.random.default_rng(12).lognormal(1.0, 0.5, 300)
        a = bootstrap(data, "mean", B=25, seed=13)
        b = bootstrap(data * scale, "mean", B=25, seed=13)
        assert a.cv == pytest.approx(b.cv, rel=1e-9)


class TestCvCurves:
    def test_fig2a_curve_shape(self):
        """cv stabilizes as B grows (Fig. 2a)."""
        data = np.random.default_rng(14).lognormal(3.0, 1.0, 1000)
        curve = bootstrap_cv_curve(data, "mean", B_max=60, seed=15)
        assert curve[0][0] == 2
        assert curve[-1][0] == 60
        tail = [cv for b, cv in curve if b >= 30]
        spread = max(tail) - min(tail)
        head = [cv for b, cv in curve if b <= 10]
        assert spread < max(head) - min(head) + 0.05

    def test_fig2b_curve_decreases_with_n(self):
        """Larger n → lower cv (Fig. 2b)."""
        population = np.random.default_rng(16).lognormal(3.0, 1.0, 50_000)
        curve = bootstrap_cv_vs_n(population, [100, 400, 1600, 6400],
                                  "mean", B=60, seed=17)
        cvs = [cv for _, cv in curve]
        assert cvs[0] > cvs[-1]
        # roughly 1/sqrt(n): quadrupling n should halve the cv (loosely)
        assert cvs[2] < cvs[0]

    def test_curve_validations(self):
        data = np.arange(100.0)
        with pytest.raises(ValueError):
            bootstrap_cv_curve([], "mean")
        with pytest.raises(ValueError):
            bootstrap_cv_curve(data, "mean", B_values=[1])
        with pytest.raises(ValueError):
            bootstrap_cv_vs_n(data, [2, 1000], "mean")
        with pytest.raises(ValueError):
            bootstrap_cv_vs_n(data, [1], "mean")
