"""Tests for categorical-data support (Appendix A)."""

import numpy as np
import pytest

from repro.core.categorical import (
    proportion_estimate,
    required_sample_size_proportion,
    z_test_proportion,
)


class TestProportionEstimate:
    def test_basic(self):
        est = proportion_estimate(30, 100)
        assert est.proportion == pytest.approx(0.3)
        assert est.variance == pytest.approx(0.3 * 0.7 / 100)
        assert est.n == 100

    def test_interval_contains_estimate(self):
        est = proportion_estimate(40, 200)
        assert est.ci_low < est.proportion < est.ci_high

    def test_interval_clipped_to_unit(self):
        est = proportion_estimate(0, 10)
        assert est.ci_low == 0.0
        est2 = proportion_estimate(10, 10)
        assert est2.ci_high == 1.0

    def test_cv_decreases_with_n(self):
        small = proportion_estimate(30, 100)
        large = proportion_estimate(3000, 10_000)
        assert large.cv < small.cv

    def test_meets_semantics(self):
        est = proportion_estimate(5000, 10_000)
        assert est.meets(0.05)
        tiny = proportion_estimate(5, 10)
        assert not tiny.meets(0.05)

    def test_zero_successes_cv_inf(self):
        est = proportion_estimate(0, 100)
        assert est.cv == 0.0  # std is 0 when p_hat is 0 -> degenerate

    def test_validation(self):
        with pytest.raises(ValueError):
            proportion_estimate(11, 10)
        with pytest.raises(ValueError):
            proportion_estimate(-1, 10)
        with pytest.raises(ValueError):
            proportion_estimate(1, 10, confidence=1.0)

    def test_coverage_simulation(self):
        """~95% of intervals should contain the true proportion."""
        rng = np.random.default_rng(1)
        p_true = 0.35
        hits = 0
        trials = 300
        for _ in range(trials):
            successes = int(rng.binomial(400, p_true))
            est = proportion_estimate(successes, 400)
            if est.ci_low <= p_true <= est.ci_high:
                hits += 1
        assert hits / trials > 0.90


class TestZTest:
    def test_null_not_rejected_at_truth(self):
        z, p_value = z_test_proportion(50, 100, 0.5)
        assert abs(z) < 1e-9
        assert p_value == pytest.approx(1.0)

    def test_far_from_null_rejected(self):
        z, p_value = z_test_proportion(90, 100, 0.5)
        assert abs(z) > 5
        assert p_value < 0.001

    def test_two_sided_symmetry(self):
        z_hi, p_hi = z_test_proportion(60, 100, 0.5)
        z_lo, p_lo = z_test_proportion(40, 100, 0.5)
        assert z_hi == pytest.approx(-z_lo)
        assert p_hi == pytest.approx(p_lo)

    def test_calibration_under_null(self):
        """p-values should be roughly uniform under H0."""
        rng = np.random.default_rng(2)
        p_values = []
        for _ in range(400):
            successes = int(rng.binomial(500, 0.4))
            _, p = z_test_proportion(successes, 500, 0.4)
            p_values.append(p)
        # ~5% should fall below 0.05
        frac = np.mean(np.asarray(p_values) < 0.05)
        assert 0.01 < frac < 0.12


class TestRequiredSampleSize:
    def test_formula(self):
        # n = (1-p)/(p sigma^2); p=0.5, sigma=0.1 -> 100
        assert required_sample_size_proportion(0.5, 0.1) == 100

    def test_rare_events_need_more(self):
        assert required_sample_size_proportion(0.01, 0.05) > \
            required_sample_size_proportion(0.5, 0.05)

    def test_achieves_target_cv(self):
        p, sigma = 0.2, 0.05
        n = required_sample_size_proportion(p, sigma)
        est = proportion_estimate(int(p * n), n)
        assert est.cv <= sigma * 1.1
