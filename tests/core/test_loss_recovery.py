"""§3.4 sample-loss recovery: the engines degrade instead of dying.

Covers the three engines' ``report_loss`` APIs: rows lost mid-session
are dropped, the bootstrap is re-estimated from the survivors, bounds
stay valid, results are flagged ``degraded`` with their lost fraction,
and — crucially — a run that reports no loss is byte-identical to the
pre-fault-tolerance behavior.
"""

import numpy as np
import pytest

from repro.core import EarlConfig, EarlSession
from repro.core.grouped import GroupedEarlSession, Measure
from repro.streaming import SessionManager


@pytest.fixture(scope="module")
def data():
    return np.random.default_rng(7).lognormal(0.0, 1.0, 200_000)


@pytest.fixture(scope="module")
def grouped_table():
    rng = np.random.default_rng(8)
    keys = rng.choice(["a", "b", "c"], size=120_000, p=[0.6, 0.3, 0.1])
    vals = rng.lognormal(3.0, 1.0, 120_000)
    return keys, vals


def _stream_with_loss(data, loss_at, fraction, *, sigma=0.02, seed=1):
    session = EarlSession(data, "mean", config=EarlConfig(sigma=sigma,
                                                          seed=seed))
    snaps = []
    for i, snap in enumerate(session.stream()):
        snaps.append(snap)
        if loss_at is not None and i == loss_at:
            session.report_loss(fraction)
    return session, snaps


class TestEarlSession:
    def test_loss_marks_result_degraded(self, data):
        _, snaps = _stream_with_loss(data, 0, 0.4)
        result = snaps[-1].result
        assert result.degraded
        assert 0.3 < result.lost_fraction < 0.5
        assert result.population_size < len(data)
        assert np.isfinite(result.estimate)
        assert result.accuracy.ci_low <= result.accuracy.ci_high

    def test_snapshots_carry_degraded_flag(self, data):
        _, snaps = _stream_with_loss(data, 0, 0.3)
        assert not snaps[0].degraded
        assert snaps[-1].degraded
        payload = snaps[-1].to_dict()
        assert payload["degraded"] is True
        assert 0.0 < payload["lost_fraction"] < 1.0

    def test_faulted_run_is_deterministic(self, data):
        _, a = _stream_with_loss(data, 0, 0.4)
        _, b = _stream_with_loss(data, 0, 0.4)
        ra, rb = a[-1].result, b[-1].result
        assert ra.estimate == rb.estimate
        assert ra.n == rb.n
        assert ra.lost_fraction == rb.lost_fraction

    def test_no_loss_is_byte_identical(self, data):
        _, clean = _stream_with_loss(data, None, 0.0)
        _, faulted = _stream_with_loss(data, 0, 0.4)
        reference = EarlSession(data, "mean",
                                config=EarlConfig(sigma=0.02, seed=1)).run()
        result = clean[-1].result
        assert result.estimate == reference.estimate
        assert result.n == reference.n
        assert not result.degraded and result.lost_fraction == 0.0
        # the faulted run diverged, proving the comparison is not vacuous
        assert faulted[-1].result.population_size != result.population_size

    def test_explicit_seed_pins_loss_pattern(self, data):
        session = EarlSession(data, "mean",
                              config=EarlConfig(sigma=0.02, seed=1))
        snaps = []
        for i, snap in enumerate(session.stream()):
            snaps.append(snap)
            if i == 0:
                session.report_loss(0.4, seed=123)
        other = EarlSession(data, "mean",
                            config=EarlConfig(sigma=0.02, seed=1))
        snaps2 = []
        for i, snap in enumerate(other.stream()):
            snaps2.append(snap)
            if i == 0:
                other.report_loss(0.4, seed=123)
        assert snaps[-1].result.estimate == snaps2[-1].result.estimate

    def test_invalid_fraction_rejected(self, data):
        session = EarlSession(data, "mean", config=EarlConfig(seed=1))
        for bad in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                session.report_loss(bad)


class TestSessionManager:
    def _run(self, data, loss_at=None, fraction=0.5, sigma=0.015):
        # sigma chosen so "mean" needs two rounds while "p90" meets its
        # bound in round 1 — a loss after round 1 hits only the former.
        mgr = SessionManager(data, config=EarlConfig(sigma=sigma, seed=1))
        mgr.submit("mean")
        mgr.submit("p90", sigma=0.06)
        seen = 0
        results = {}
        for query, snap in mgr.stream():
            seen += 1
            if loss_at is not None and seen == loss_at:
                mgr.report_loss(fraction)
            if snap.final:
                results[query.name] = snap
        return mgr, results

    def test_live_queries_degrade_finished_keep_results(self, data):
        clean_mgr, clean = self._run(data)
        mgr, results = self._run(data, loss_at=1, fraction=0.5)
        assert mgr.degraded and 0.4 < mgr.lost_fraction < 0.6
        # p90 terminated before the loss: its result stands untouched
        assert not results["p90"].result.degraded
        assert (results["p90"].result.estimate
                == clean["p90"].result.estimate)
        # mean was live: re-planned over survivors, flagged degraded
        res = results["mean"].result
        assert res.degraded and res.lost_fraction == mgr.lost_fraction
        assert res.accuracy.ci_low <= res.accuracy.ci_high
        assert results["mean"].to_dict()["degraded"] is True

    def test_no_loss_is_byte_identical(self, data):
        _, a = self._run(data)
        _, b = self._run(data)
        for name in a:
            assert a[name].result.estimate == b[name].result.estimate
            assert not a[name].result.degraded

    def test_heavy_loss_finalizes_instead_of_hanging(self, data):
        mgr, results = self._run(data, loss_at=2, fraction=0.98)
        assert len(results) == 2  # every query produced a final snapshot
        assert mgr.degraded

    def test_faulted_run_is_deterministic(self, data):
        _, a = self._run(data, loss_at=1, fraction=0.5)
        _, b = self._run(data, loss_at=1, fraction=0.5)
        for name in a:
            assert a[name].result.estimate == b[name].result.estimate


class TestGroupedSession:
    def _run(self, table, loss_round=None, fraction=0.5, keys=None):
        group_keys, vals = table
        session = GroupedEarlSession(
            group_keys, [Measure("m", "mean", vals)],
            config=EarlConfig(sigma=0.02, seed=1))
        final = None
        for snap in session.stream():
            final = snap
            if loss_round is not None and snap.round == loss_round:
                session.report_loss(fraction, keys=keys)
        return session, final

    def test_loss_degrades_live_groups_only(self, grouped_table):
        session, final = self._run(grouped_table, loss_round=1,
                                   fraction=0.5)
        assert session.degraded and final.degraded
        assert final.result is not None and final.result.degraded
        assert 0.0 < final.lost_fraction < 1.0
        entries = {key: by["m"] for key, by in final.groups.items()}
        degraded = [e for e in entries.values() if e.degraded]
        assert degraded  # the laggard group was live and took the hit
        for entry in degraded:
            assert 0.0 < entry.lost_fraction <= 1.0
            assert entry.ci_low <= entry.ci_high
        payload = final.to_dict()
        assert payload["degraded"] is True
        assert payload["lost_fraction"] > 0.0

    def test_dead_stratum_finalizes_best_so_far(self, grouped_table):
        # "a" is the laggard still expanding after round 1; killing it
        # outright must finalize with the estimate it already had.
        session, final = self._run(grouped_table, loss_round=1,
                                   fraction=1.0, keys=["a"])
        res = final.result.groups["a"]["m"]
        assert res.degraded and res.lost_fraction == 1.0
        assert np.isfinite(res.estimate)
        # the surviving strata keep answering normally
        others = [by["m"] for key, by in final.result.groups.items()
                  if key != "a"]
        assert others and all(r.achieved for r in others)

    def test_no_loss_is_byte_identical(self, grouped_table):
        _, a = self._run(grouped_table)
        _, b = self._run(grouped_table)
        assert a.to_dict() == b.to_dict()
        assert not a.degraded

    def test_faulted_run_is_deterministic(self, grouped_table):
        _, a = self._run(grouped_table, loss_round=1, fraction=0.5)
        _, b = self._run(grouped_table, loss_round=1, fraction=0.5)
        assert a.to_dict() == b.to_dict()

    def test_heavy_loss_terminates(self, grouped_table):
        _, final = self._run(grouped_table, loss_round=1, fraction=0.95)
        assert final.final and final.result is not None

    def test_invalid_fraction_rejected(self, grouped_table):
        group_keys, vals = grouped_table
        session = GroupedEarlSession(group_keys,
                                     [Measure("m", "mean", vals)],
                                     config=EarlConfig(seed=1))
        with pytest.raises(ValueError):
            session.report_loss(0.0)
        with pytest.raises(ValueError):
            session.report_loss(1.2)
