"""Tests for record-count estimation under partial data loss."""

import pytest

from repro.cluster import Cluster
from repro.core.earl import estimate_record_count
from repro.hdfs.errors import BlockUnavailableError
from repro.workloads import load_numeric, numeric_dataset


@pytest.fixture
def cluster() -> Cluster:
    return Cluster(n_nodes=4, block_size=4096, replication=1, seed=1)


class TestEstimateRecordCount:
    def test_probes_first_available_block_after_loss(self, cluster):
        values = numeric_dataset(3000, "lognormal", seed=2)
        ds = load_numeric(cluster, "/data", values)
        meta = cluster.hdfs.namenode.get(ds.path)
        # kill the node holding block 0 (replication=1: block 0 is gone)
        first_replica = meta.blocks[0].replicas[0]
        node_idx = first_replica.split("-")[1]
        cluster.fail_node(f"node-{node_idx}")
        if cluster.hdfs.block_available(meta.blocks[0]):
            pytest.skip("replica landed elsewhere; scenario not formed")
        n, seconds = estimate_record_count(cluster, ds.path)
        assert n == pytest.approx(ds.records, rel=0.05)
        assert seconds > 0

    def test_total_loss_raises_clearly(self, cluster):
        values = numeric_dataset(500, "lognormal", seed=3)
        ds = load_numeric(cluster, "/data", values)
        for node in list(cluster.nodes):
            cluster.fail_node(node.node_id)
        with pytest.raises(BlockUnavailableError):
            estimate_record_count(cluster, ds.path)

    def test_single_line_no_newline_in_probe(self, cluster):
        cluster.hdfs.write_text("/one", "x" * 100)  # no newline at all
        n, _ = estimate_record_count(cluster, "/one")
        assert n == 1
