"""Tests for the Accuracy Estimation Stage."""

import numpy as np
import pytest

from repro.core.accuracy import (
    ERROR_METRICS,
    AccuracyEstimationStage,
    get_error_metric,
    summarize_distribution,
)


class TestSummarizeDistribution:
    def test_basic_fields(self):
        estimates = np.array([9.0, 10.0, 11.0, 10.0])
        est = summarize_distribution(estimates, 10.0, n=100)
        assert est.estimate == pytest.approx(10.0)
        assert est.point_estimate == 10.0
        assert est.n == 100
        assert est.B == 4
        assert est.std == pytest.approx(np.std(estimates, ddof=1))
        assert est.variance == pytest.approx(est.std ** 2)

    def test_cv_and_meets(self):
        estimates = np.array([9.0, 10.0, 11.0])
        est = summarize_distribution(estimates, 10.0, n=10)
        assert est.cv == pytest.approx(1.0 / 10.0)
        assert est.meets(0.2)
        assert not est.meets(0.05)

    def test_ci_ordering(self):
        estimates = np.random.default_rng(1).normal(100, 5, 200)
        est = summarize_distribution(estimates, 100.0, n=50)
        assert est.ci_low < est.estimate < est.ci_high

    def test_bias(self):
        estimates = np.array([11.0, 12.0, 13.0])
        est = summarize_distribution(estimates, 10.0, n=5)
        assert est.bias == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_distribution(np.array([]), 1.0, n=1)

    def test_alternative_metrics(self):
        estimates = np.array([9.0, 10.0, 11.0])
        var = summarize_distribution(estimates, 10.0, n=5, metric="variance")
        assert var.error == pytest.approx(1.0)
        bias = summarize_distribution(estimates, 9.0, n=5, metric="bias")
        assert bias.error == pytest.approx(1.0)
        ci = summarize_distribution(estimates, 10.0, n=5,
                                    metric="relative_ci")
        assert ci.error == pytest.approx(1.96 / 10.0)


class TestErrorMetricRegistry:
    def test_all_metrics_callable(self):
        estimates = np.array([1.0, 2.0, 3.0])
        for name in ERROR_METRICS:
            metric = get_error_metric(name)
            assert isinstance(metric(estimates, 2.0), float)

    def test_unknown_metric(self):
        with pytest.raises(KeyError):
            get_error_metric("vibes")


class TestAccuracyEstimationStage:
    @pytest.fixture
    def population(self):
        return np.random.default_rng(2).lognormal(3.0, 1.0, 20_000)

    def test_offer_initializes_then_expands(self, population):
        stage = AccuracyEstimationStage("mean", B=30, seed=3)
        first = stage.offer(population[:500])
        assert stage.sample_size == 500
        second = stage.offer(population[500:1500])
        assert stage.sample_size == 1500
        assert second.n == 1500
        assert len(stage.history) == 2
        # more data → tighter error, statistically (allow slack)
        assert second.cv < first.cv * 1.5

    def test_error_decreases_over_expansions(self, population):
        stage = AccuracyEstimationStage("mean", B=40, seed=4)
        cvs = []
        consumed = 0
        for size in [250, 500, 1000, 2000, 4000]:
            cvs.append(stage.offer(population[consumed:size]).cv)
            consumed = size
        assert cvs[-1] < cvs[0]

    def test_error_stability(self, population):
        stage = AccuracyEstimationStage("mean", B=30, seed=5)
        assert stage.error_stability() is None
        stage.offer(population[:300])
        assert stage.error_stability() is None
        stage.offer(population[300:600])
        assert stage.error_stability() is not None
        assert stage.error_stability() >= 0

    def test_median_statistic(self, population):
        stage = AccuracyEstimationStage("median", B=25, seed=6)
        est = stage.offer(population[:1000])
        assert est.estimate == pytest.approx(np.median(population[:1000]),
                                             rel=0.1)

    def test_unknown_metric_rejected_eagerly(self):
        with pytest.raises(KeyError):
            AccuracyEstimationStage("mean", B=10, metric="nope")

    def test_estimate_tracks_point_estimate(self, population):
        stage = AccuracyEstimationStage("mean", B=50, seed=7)
        est = stage.offer(population[:2000])
        assert est.estimate == pytest.approx(est.point_estimate, rel=0.05)
