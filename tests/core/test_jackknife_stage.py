"""Tests for jackknife-based estimation (the §8 future-work extension)."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core import (
    EarlConfig,
    EarlJob,
    EarlSession,
    JackknifeEstimationStage,
)
from repro.workloads import load_numeric, numeric_dataset


@pytest.fixture(scope="module")
def population():
    return np.random.default_rng(1).lognormal(3.0, 1.0, 150_000)


class TestJackknifeStage:
    def test_offer_and_history(self, population):
        stage = JackknifeEstimationStage("mean")
        first = stage.offer(population[:500])
        second = stage.offer(population[500:1500])
        assert stage.sample_size == 1500
        assert len(stage.history) == 2
        assert second.cv < first.cv * 1.5

    def test_estimate_matches_sample_mean(self, population):
        stage = JackknifeEstimationStage("mean")
        est = stage.offer(population[:2000])
        assert est.estimate == pytest.approx(np.mean(population[:2000]))

    def test_cv_matches_clt_for_mean(self, population):
        """Jackknife std of the mean is exactly s/√n."""
        sample = population[:3000]
        stage = JackknifeEstimationStage("mean")
        est = stage.offer(sample)
        clt = np.std(sample, ddof=1) / np.sqrt(len(sample))
        assert est.std == pytest.approx(clt, rel=1e-9)

    def test_refuses_non_smooth_statistics(self):
        with pytest.raises(ValueError):
            JackknifeEstimationStage("median")
        with pytest.raises(ValueError):
            JackknifeEstimationStage("p90")

    def test_work_ops_linear_in_n(self, population):
        stage = JackknifeEstimationStage("mean")
        stage.offer(population[:100])
        assert stage.work_ops == 100
        stage.offer(population[100:300])
        assert stage.work_ops == 100 + 300

    def test_ci_contains_estimate(self, population):
        stage = JackknifeEstimationStage("mean")
        est = stage.offer(population[:500])
        assert est.ci_low < est.estimate < est.ci_high

    def test_error_stability(self, population):
        stage = JackknifeEstimationStage("mean")
        assert stage.error_stability() is None
        stage.offer(population[:200])
        stage.offer(population[200:400])
        assert stage.error_stability() is not None

    def test_too_few_observations_rejected(self):
        stage = JackknifeEstimationStage("mean")
        with pytest.raises(ValueError):
            stage.offer([1.0])


class TestJackknifeInSession:
    def test_session_with_jackknife_estimation(self, population):
        cfg = EarlConfig(sigma=0.05, seed=2, estimation="jackknife")
        res = EarlSession(population, "mean", config=cfg).run()
        truth = population.mean()
        assert abs(res.estimate - truth) / truth < 0.1
        assert res.achieved == (res.error <= 0.05)

    def test_jackknife_does_less_work_than_bootstrap(self, population):
        """For the mean at equal n: n jackknife ops vs B×n bootstrap ops."""
        from repro.core import AccuracyEstimationStage

        sample = population[:2000]
        jk = JackknifeEstimationStage("mean")
        jk.offer(sample)
        bs = AccuracyEstimationStage("mean", B=30, seed=3)
        bs.offer(sample)
        assert jk.work_ops < bs.work_ops / 10

    def test_agreement_with_bootstrap_error(self, population):
        """Both estimators target the same quantity — the std of the
        sample mean — and must agree for a smooth statistic."""
        from repro.core import AccuracyEstimationStage

        sample = population[:4000]
        jk = JackknifeEstimationStage("mean").offer(sample)
        bs = AccuracyEstimationStage("mean", B=200, seed=4).offer(sample)
        assert jk.std == pytest.approx(bs.std, rel=0.3)


class TestJackknifeInJob:
    def test_earl_job_with_jackknife(self):
        cluster = Cluster(n_nodes=5, block_size=1 << 20, seed=5)
        values = numeric_dataset(30_000, "lognormal", seed=6)
        ds = load_numeric(cluster, "/jk", values, logical_scale=500.0)
        cfg = EarlConfig(sigma=0.05, seed=7, estimation="jackknife")
        res = EarlJob(cluster, ds.path, statistic="mean", config=cfg).run()
        truth = ds.truth["mean"]
        assert abs(res.estimate - truth) / truth < 0.12

    def test_config_validates_estimation(self):
        with pytest.raises(ValueError):
            EarlConfig(estimation="crystal-ball")
