"""Many-group stability: a grouped session over >= 1k distinct keys.

Marked ``slow``: the default tier-1 run skips it (``make test-all``
includes it).  Guards against per-group state blow-ups — 1k groups mean
1k pilots, 1k resample sets and a 1k-segment broadcast — and against
quadratic behaviour in the round loop's bookkeeping.
"""

import numpy as np
import pytest

from repro.core import EarlConfig
from repro.query import Query, agg

pytestmark = pytest.mark.slow


class TestManyGroups:
    def test_thousand_group_session_completes_and_answers(self):
        n_keys = 1_024
        rows_per_key = 40
        rng = np.random.default_rng(29)
        keys = np.repeat(
            np.array([f"k{i:04d}" for i in range(n_keys)], dtype=object),
            rows_per_key)
        rng.shuffle(keys)
        values = rng.lognormal(3.0, 0.8, len(keys))
        q = Query([agg("mean", "value")], group_by="key").on(
            {"key": keys, "value": values},
            config=EarlConfig(sigma=0.1, seed=7))
        snaps = list(q.stream())
        final = snaps[-1]
        assert final.final and final.result is not None
        result = final.result
        assert len(result.groups) == n_keys
        assert result.rows_processed <= len(keys)
        # tiny groups resolve exactly (B*n >= N_g), so every bound holds
        assert result.achieved
        for by_agg in result.groups.values():
            res = by_agg["mean(value)"]
            assert res.population_size == rows_per_key
            assert np.isfinite(res.estimate)

    def test_mixed_sizes_with_dominant_head(self):
        rng = np.random.default_rng(31)
        head = np.array(["head"], dtype=object).repeat(120_000)
        tail = np.repeat(
            np.array([f"t{i:03d}" for i in range(1_000)], dtype=object), 30)
        keys = np.concatenate([head, tail])
        rng.shuffle(keys)
        values = rng.lognormal(3.0, 1.0, len(keys))
        q = Query([agg("mean", "value")], group_by="key").on(
            {"key": keys, "value": values},
            config=EarlConfig(sigma=0.05, seed=13))
        result = q.run()
        assert len(result.groups) == 1_001
        head_res = result.groups["head"]["mean(value)"]
        assert not head_res.used_fallback     # the big group sampled
        assert head_res.sample_fraction < 1.0
        assert result.achieved
