"""GroupedEarlSession: per-group early stopping, snapshots, streaming
integration, budgeted allocation, executor backends."""

import numpy as np
import pytest

from repro.core import EarlConfig
from repro.core.grouped import GroupedEarlSession, Measure
from repro.query import Query, agg
from repro.streaming import StreamConsumer


def skewed_table(n=60_000, seed=0, p=(0.5, 0.3, 0.2),
                 sigmas=(0.3, 1.0, 1.6)):
    """Three groups with very different dispersion: 'calm' converges in
    one round, 'wild' is the laggard."""
    rng = np.random.default_rng(seed)
    names = np.array(["calm", "mid", "wild"], dtype=object)
    ranks = rng.choice(3, size=n, p=list(p))
    values = rng.lognormal(3.0, 1.0, n)
    for i, s in enumerate(sigmas):
        idx = ranks == i
        values[idx] = rng.lognormal(3.0, s, int(idx.sum()))
    return names[ranks], values


#: Pin (B, n) so every group genuinely samples (B*n well below each
#: group's population) instead of tripping the exact fallback — the
#: behavioural tests below are about the expansion loop.
SAMPLING_CFG = dict(B_override=15, n_override=300)


class TestStreamingContract:
    def test_snapshot_stream_shape(self):
        keys, values = skewed_table()
        session = GroupedEarlSession(
            keys, [Measure("m", "mean", values)],
            config=EarlConfig(sigma=0.05, seed=1))
        snaps = list(session.stream())
        assert snaps, "stream yielded nothing"
        assert all(not s.final for s in snaps[:-1])
        final = snaps[-1]
        assert final.final and final.result is not None
        assert [s.round for s in snaps] == list(range(1, len(snaps) + 1))
        # cumulative board covers every group from the first full round
        assert set(final.groups) == {"calm", "mid", "wild"}
        assert final.result.rows_processed == final.rows_processed
        assert final.active_groups == 0

    def test_session_streams_once(self):
        keys, values = skewed_table(n=5_000)
        session = GroupedEarlSession(
            keys, [Measure("m", "mean", values)],
            config=EarlConfig(sigma=0.05, seed=1))
        session.run()
        with pytest.raises(RuntimeError):
            next(session.stream())

    def test_stream_consumer_integration(self):
        keys, values = skewed_table()
        q = Query([agg("mean", "value")], group_by="key").on(
            {"key": keys, "value": values},
            config=EarlConfig(sigma=0.05, seed=1))
        consumer = StreamConsumer()
        result = consumer.consume(q)
        assert result is not None and result.achieved
        assert consumer.snapshots[-1].final
        assert not consumer.stopped_early

    def test_stream_consumer_early_stop(self):
        keys, values = skewed_table()
        q = Query([agg("mean", "value")], group_by="key").on(
            {"key": keys, "value": values},
            # unreachable bound, pinned (B, n): the stream would run
            # many rounds if the consumer did not walk away
            config=EarlConfig(sigma=0.001, seed=1, **SAMPLING_CFG))
        consumer = StreamConsumer(max_snapshots=1)
        result = consumer.consume(q)
        assert result is None
        assert consumer.stopped_early
        assert len(consumer.snapshots) == 1


class TestPerGroupEarlyStop:
    def test_laggard_keeps_sampling_after_others_stop(self):
        keys, values = skewed_table()
        session = GroupedEarlSession(
            keys, [Measure("m", "mean", values)],
            config=EarlConfig(sigma=0.05, seed=3, **SAMPLING_CFG))
        result = session.run()
        assert result.achieved
        calm = result.groups["calm"]["m"]
        wild = result.groups["wild"]["m"]
        assert not calm.used_fallback and not wild.used_fallback
        # the calm group stopped in fewer expansion rounds than the
        # dispersed one, and consumed a smaller fraction of its rows
        assert calm.num_iterations < wild.num_iterations
        assert calm.sample_fraction < wild.sample_fraction

    def test_done_group_sample_frozen_in_snapshots(self):
        keys, values = skewed_table()
        session = GroupedEarlSession(
            keys, [Measure("m", "mean", values)],
            config=EarlConfig(sigma=0.05, seed=3, **SAMPLING_CFG))
        seen_done_n = {}
        for snap in session.stream():
            for key, by_agg in snap.groups.items():
                entry = by_agg.get("m")
                if entry is None:
                    continue
                if key in seen_done_n:
                    assert entry.sample_size == seen_done_n[key]
                elif entry.done:
                    seen_done_n[key] = entry.sample_size
        assert seen_done_n, "no group ever finished"

    def test_tiny_group_exact_fallback(self):
        rng = np.random.default_rng(7)
        keys = np.array(["big"] * 20_000 + ["tiny"] * 40, dtype=object)
        values = np.concatenate([
            rng.lognormal(3.0, 1.0, 20_000), rng.normal(5.0, 1.0, 40)])
        session = GroupedEarlSession(
            keys, [Measure("m", "mean", values)],
            config=EarlConfig(sigma=0.05, seed=5))
        result = session.run()
        tiny = result.groups["tiny"]["m"]
        assert tiny.used_fallback and tiny.achieved
        assert tiny.estimate == pytest.approx(float(np.mean(values[-40:])))

    def test_unmet_bound_reported_not_achieved(self):
        keys, values = skewed_table(n=20_000)
        session = GroupedEarlSession(
            keys, [Measure("m", "mean", values)],
            config=EarlConfig(sigma=0.0005, seed=5, max_iterations=2,
                              B_override=10, n_override=50))
        result = session.run()
        assert not result.achieved
        assert any(not res.achieved
                   for by in result.groups.values()
                   for res in by.values())


class TestMultiAggregate:
    def test_per_aggregate_sigma_and_independent_stop(self):
        keys, values = skewed_table()
        session = GroupedEarlSession(
            keys,
            [Measure("mean", "mean", values, sigma=0.03),
             Measure("p90", "p90", values, sigma=0.15)],
            config=EarlConfig(seed=9))
        result = session.run()
        for by_agg in result.groups.values():
            assert set(by_agg) == {"mean", "p90"}
            assert by_agg["mean"].sigma == 0.03
            assert by_agg["p90"].sigma == 0.15
        assert result.achieved

    def test_mixed_fallback_rows_not_double_counted(self):
        # regression: a group where one measure answers exactly and
        # another samples touches its rows once, not size + consumed
        rng = np.random.default_rng(3)
        keys = np.array(["g"] * 4_300, dtype=object)
        values = rng.lognormal(3.0, 1.0, 4_300)
        session = GroupedEarlSession(
            keys,
            [Measure("loose", "mean", values, sigma=0.2),
             Measure("tight", "mean", values, sigma=0.01)],
            config=EarlConfig(seed=5))
        result = session.run()
        assert result.rows_processed <= result.population_size
        states = {m.used_fallback for m in result.groups["g"].values()}
        assert states == {True, False}, \
            "scenario must mix exact and sampled measures"

    def test_duplicate_measure_names_rejected(self):
        keys, values = skewed_table(n=1_000)
        with pytest.raises(ValueError):
            GroupedEarlSession(
                keys, [Measure("m", "mean", values),
                       Measure("m", "sum", values)])

    def test_misaligned_measure_rejected(self):
        keys, values = skewed_table(n=1_000)
        with pytest.raises(ValueError):
            GroupedEarlSession(keys, [Measure("m", "mean", values[:-1])])


class TestBudgetedAllocation:
    @pytest.mark.parametrize("allocation",
                             ["uniform", "proportional", "neyman"])
    def test_policies_reach_the_bounds(self, allocation):
        # milder dispersion than the laggard scenario: every group's
        # bound is comfortably reachable from its own rows
        keys, values = skewed_table(n=30_000, sigmas=(0.3, 0.8, 1.1))
        session = GroupedEarlSession(
            keys, [Measure("m", "mean", values)],
            config=EarlConfig(sigma=0.08, seed=11, **SAMPLING_CFG),
            allocation=allocation, round_budget=4_000)
        result = session.run()
        assert result.achieved
        assert result.rows_processed <= 30_000

    def test_budget_trickle_finalizes_best_effort(self):
        keys, values = skewed_table(n=30_000)
        session = GroupedEarlSession(
            keys, [Measure("m", "mean", values)],
            config=EarlConfig(sigma=0.001, seed=11, B_override=10,
                              n_override=100),
            allocation="uniform", round_budget=200)
        result = session.run()   # must terminate, not spin
        assert set(result.groups) == {"calm", "mid", "wild"}


def _fingerprint(result):
    return {
        (key, name): (res.estimate, res.error, res.n, res.B,
                      res.achieved, res.num_iterations)
        for key, by_agg in result.groups.items()
        for name, res in by_agg.items()}


class TestBackends:
    @staticmethod
    def _run(backend):
        keys, values = skewed_table(n=20_000)
        cfg = EarlConfig(sigma=0.04, seed=13, executor=backend,
                         max_workers=2)
        return GroupedEarlSession(
            keys,
            [Measure("mean", "mean", values),
             Measure("p90", "p90", values, sigma=0.1)],
            config=cfg).run()

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_results_byte_identical_across_backends(self, backend):
        assert _fingerprint(self._run(backend)) \
            == _fingerprint(self._run("serial"))
