"""Grouped-vs-solo equivalence: each group of a single-aggregate
grouped session is byte-identical to an independent EarlSession run on
that group's rows alone with the group's seed — across backends."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core import EarlConfig, EarlSession
from repro.core.grouped import GroupedEarlSession, Measure

BACKENDS = ["serial", "threads", "processes"]


def keyed_data(seed=21, n=50_000):
    rng = np.random.default_rng(seed)
    keys = rng.choice(np.array(["x", "y", "z"], dtype=object),
                      size=n, p=[0.6, 0.3, 0.1])
    values = rng.lognormal(3.0, 1.2, n)
    return keys, values


def result_fields(res):
    """Every field a consumer can act on, exact (no tolerance)."""
    acc = res.accuracy
    return (
        res.estimate, res.uncorrected_estimate, res.error, res.achieved,
        res.sigma, res.statistic, res.n, res.B, res.population_size,
        res.sample_fraction, res.used_fallback, res.num_iterations,
        None if acc is None else (acc.estimate, acc.point_estimate,
                                  acc.error, acc.cv, acc.std, acc.bias,
                                  acc.ci_low, acc.ci_high, acc.n, acc.B),
        tuple((it.iteration, it.sample_size, it.expanded,
               it.accuracy.estimate, it.accuracy.error)
              for it in res.iterations),
    )


class TestGroupedSoloEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("statistic", ["mean", "p90"])
    def test_byte_identical_per_group(self, backend, statistic):
        keys, values = keyed_data()
        cfg = EarlConfig(sigma=0.04, seed=99, executor=backend,
                         max_workers=2)
        session = GroupedEarlSession(
            keys, [Measure("m", statistic, values)], config=cfg)
        grouped = session.run()
        seeds = session.group_seeds
        for key in grouped.groups:
            solo_cfg = replace(cfg, seed=seeds[key], executor="serial")
            solo = EarlSession(values[keys == key], statistic,
                               config=solo_cfg).run()
            assert result_fields(grouped.groups[key]["m"]) \
                == result_fields(solo), f"group {key!r} diverged"

    def test_exact_fallback_groups_equivalent_too(self):
        rng = np.random.default_rng(5)
        keys = np.array(["big"] * 30_000 + ["tiny"] * 60, dtype=object)
        values = np.concatenate([rng.lognormal(3.0, 1.0, 30_000),
                                 rng.normal(10.0, 2.0, 60)])
        cfg = EarlConfig(sigma=0.05, seed=17)
        session = GroupedEarlSession(
            keys, [Measure("m", "mean", values)], config=cfg)
        grouped = session.run()
        for key in ("big", "tiny"):
            solo = EarlSession(
                values[keys == key], "mean",
                config=replace(cfg, seed=session.group_seeds[key])).run()
            assert result_fields(grouped.groups[key]["m"]) \
                == result_fields(solo)
        assert grouped.groups["tiny"]["m"].used_fallback

    def test_group_seeds_stable_for_fixed_config_seed(self):
        keys, values = keyed_data()
        cfg = EarlConfig(sigma=0.05, seed=4)
        a = GroupedEarlSession(keys, [Measure("m", "mean", values)],
                               config=cfg)
        b = GroupedEarlSession(keys, [Measure("m", "mean", values)],
                               config=cfg)
        a.run()
        b.run()
        assert a.group_seeds == b.group_seeds

    def test_overrides_shortcut_matches_solo(self):
        keys, values = keyed_data(n=30_000)
        cfg = EarlConfig(sigma=0.05, seed=31, B_override=20,
                         n_override=400)
        session = GroupedEarlSession(
            keys, [Measure("m", "mean", values)], config=cfg)
        grouped = session.run()
        for key in grouped.groups:
            solo = EarlSession(
                values[keys == key], "mean",
                config=replace(cfg, seed=session.group_seeds[key])).run()
            assert result_fields(grouped.groups[key]["m"]) \
                == result_fields(solo)
