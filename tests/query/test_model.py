"""Query/agg declarative model: validation and binding."""

import numpy as np
import pytest

from repro.core import EarlConfig
from repro.query import Aggregate, Query, agg, plan_query


def small_table(n=400, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "key": rng.choice(["a", "b"], size=n),
        "value": rng.lognormal(2.0, 0.5, n),
        "x": rng.normal(size=n),
        "y": rng.normal(size=n),
    }


class TestAgg:
    def test_default_name(self):
        assert agg("mean", "value").name == "mean(value)"
        assert agg("correlation", ("x", "y")).name == "correlation(x, y)"

    def test_explicit_name_and_sigma(self):
        a = agg("p90", "value", sigma=0.1, name="tail")
        assert (a.name, a.sigma) == ("tail", 0.1)

    def test_unknown_statistic_rejected(self):
        with pytest.raises(KeyError):
            agg("nope", "value")

    def test_bad_sigma_rejected(self):
        with pytest.raises(ValueError):
            agg("mean", "value", sigma=0.0)
        with pytest.raises(ValueError):
            agg("mean", "value", sigma=1.5)

    def test_scalar_statistic_refuses_column_pair(self):
        with pytest.raises(ValueError):
            agg("mean", ("x", "y"))

    def test_row_statistic_requires_column_pair(self):
        with pytest.raises(ValueError):
            agg("correlation", "x")
        with pytest.raises(ValueError):
            agg("correlation", ("x", "y", "z"))

    def test_columns_property(self):
        assert agg("mean", "value").columns == ("value",)
        assert agg("correlation", ("x", "y")).columns == ("x", "y")


class TestQueryValidation:
    def test_empty_select_rejected(self):
        with pytest.raises(ValueError):
            Query([])

    def test_non_aggregate_select_rejected(self):
        with pytest.raises(TypeError):
            Query(["mean"])

    def test_duplicate_aggregate_names_rejected(self):
        with pytest.raises(ValueError):
            Query([agg("mean", "value"), agg("mean", "value")])

    def test_bad_where_shapes_rejected(self):
        with pytest.raises(ValueError):
            Query([agg("mean", "value")], where=("value", "~", 1))
        with pytest.raises(ValueError):
            Query([agg("mean", "value")], where=("value",))

    def test_unbound_query_refuses_execution(self):
        q = Query([agg("mean", "value")], group_by="key")
        with pytest.raises(RuntimeError):
            q.run()

    def test_bad_allocation_rejected_at_plan(self):
        q = Query([agg("mean", "value")], group_by="key",
                  allocation="nope").on(small_table())
        with pytest.raises(ValueError):
            q.plan()

    def test_round_budget_requires_policy(self):
        q = Query([agg("mean", "value")], group_by="key",
                  round_budget=100).on(small_table())
        with pytest.raises(ValueError):
            q.plan()


class TestBindingAndPlanning:
    def test_on_returns_bound_copy(self):
        q = Query([agg("mean", "value")], group_by="key")
        bound = q.on(small_table(), config=EarlConfig(seed=1))
        assert q.source is None and bound.source is not None
        assert bound.config is not None

    def test_missing_column_named(self):
        q = Query([agg("mean", "missing")], group_by="key") \
            .on(small_table())
        with pytest.raises(KeyError, match="missing"):
            q.plan()

    def test_mismatched_column_lengths_rejected(self):
        table = small_table()
        table["value"] = table["value"][:-1]
        q = Query([agg("mean", "value")], group_by="key").on(table)
        with pytest.raises(ValueError):
            q.plan()

    def test_where_triple_filters_population(self):
        table = small_table()
        cutoff = float(np.median(table["value"]))
        q = Query([agg("mean", "value")], group_by="key",
                  where=("value", ">", cutoff)) \
            .on(table, config=EarlConfig(seed=2))
        session = q.plan()
        expected = int((table["value"] > cutoff).sum())
        result = session.run()
        assert result.population_size == expected

    def test_where_callable_mask(self):
        table = small_table()
        q = Query([agg("mean", "value")], group_by="key",
                  where=lambda cols: cols["key"] == "a") \
            .on(table, config=EarlConfig(seed=2))
        result = q.plan().run()
        assert list(result.groups) == ["a"]

    def test_where_filtering_everything_rejected(self):
        q = Query([agg("mean", "value")], group_by="key",
                  where=("value", "<", -1.0)).on(small_table())
        with pytest.raises(ValueError):
            q.plan()

    def test_where_mask_shape_checked(self):
        q = Query([agg("mean", "value")], group_by="key",
                  where=lambda cols: np.array([1, 2, 3])) \
            .on(small_table())
        with pytest.raises(ValueError):
            q.plan()

    def test_ungrouped_query_uses_all_rows_key(self):
        table = small_table()
        result = Query([agg("mean", "value")]) \
            .on(table, config=EarlConfig(seed=3)).run()
        assert list(result.groups) == ["all"]
        # small table -> exact fallback; the answer is the exact mean
        res = result.groups["all"]["mean(value)"]
        assert res.estimate == pytest.approx(float(np.mean(table["value"])))

    def test_plan_builds_fresh_session_per_execution(self):
        q = Query([agg("mean", "value")], group_by="key") \
            .on(small_table(), config=EarlConfig(seed=4))
        first = q.run()
        second = q.run()   # a session streams once; Query re-plans
        assert first.groups.keys() == second.groups.keys()

    def test_aggregate_is_frozen_value_object(self):
        a = agg("mean", "value")
        assert isinstance(a, Aggregate)
        with pytest.raises(AttributeError):
            a.name = "other"
