"""Keyed columnar ingest + Query.from_hdfs + the grouped MR reference."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core import EarlConfig, run_grouped_stock_job
from repro.hdfs import BARE_LINE_KEY, read_keyed_column
from repro.mapreduce import GroupStateCombiner
from repro.query import Query, agg
from repro.workloads import keyed_value_lines, skewed_keyed_values


def keyed_cluster(n=6_000, n_keys=4, seed=3):
    cluster = Cluster(n_nodes=4, block_size=1 << 16, seed=seed)
    keys, values = skewed_keyed_values(n, n_keys, seed=seed)
    cluster.hdfs.write_lines("/keyed", keyed_value_lines(keys, values))
    return cluster, keys, values


class TestReadKeyedColumn:
    def test_roundtrip(self):
        cluster, keys, values = keyed_cluster()
        got_keys, got_values = read_keyed_column(cluster.hdfs, "/keyed")
        assert list(got_keys) == list(keys)
        np.testing.assert_allclose(got_values, values, rtol=0, atol=1e-6)

    def test_second_read_replays_cache(self):
        cluster, _, _ = keyed_cluster()
        first = read_keyed_column(cluster.hdfs, "/keyed")
        second = read_keyed_column(cluster.hdfs, "/keyed")
        # cache hit: the same read-only arrays, by reference
        assert first[0] is second[0] and first[1] is second[1]
        assert not first[0].flags.writeable
        assert not first[1].flags.writeable

    def test_cached_charges_match_scalar(self):
        cluster, _, _ = keyed_cluster()
        cached_ledger = cluster.new_ledger()
        read_keyed_column(cluster.hdfs, "/keyed", ledger=cached_ledger)
        scalar_ledger = cluster.new_ledger()
        scalar = read_keyed_column(cluster.hdfs, "/keyed",
                                   ledger=scalar_ledger, cached=False)
        assert cached_ledger.total_seconds == scalar_ledger.total_seconds
        # replayed (hit) scan charges identically as well
        replay_ledger = cluster.new_ledger()
        read_keyed_column(cluster.hdfs, "/keyed", ledger=replay_ledger)
        assert replay_ledger.total_seconds == scalar_ledger.total_seconds
        assert scalar[1].flags.writeable  # uncached result is a fresh array

    def test_rewrite_invalidates(self):
        cluster, _, _ = keyed_cluster()
        first = read_keyed_column(cluster.hdfs, "/keyed")
        cluster.hdfs.delete("/keyed")
        cluster.hdfs.write_lines("/keyed", ["a\t1.0", "b\t2.0"])
        keys, values = read_keyed_column(cluster.hdfs, "/keyed")
        assert list(keys) == ["a", "b"]
        assert list(values) == [1.0, 2.0]
        assert keys is not first[0]

    def test_bare_lines_use_constant_key(self):
        cluster = Cluster(n_nodes=3, seed=1)
        cluster.hdfs.write_lines("/bare", ["1.5", "2.5", "k\t3.5"])
        keys, values = read_keyed_column(cluster.hdfs, "/bare")
        assert list(keys) == [BARE_LINE_KEY, BARE_LINE_KEY, "k"]
        assert list(values) == [1.5, 2.5, 3.5]


class TestQueryFromHdfs:
    def test_estimates_close_to_exact_groupby(self):
        cluster, keys, values = keyed_cluster(n=40_000, n_keys=3)
        q = Query([agg("mean", "value")], group_by="key").from_hdfs(
            cluster.hdfs, "/keyed",
            config=EarlConfig(sigma=0.05, seed=11))
        result = q.run()
        assert result.achieved
        for key in np.unique(list(keys)):
            true = float(np.mean(values[keys == key]))
            est = result.groups[key]["mean(value)"].estimate
            assert est == pytest.approx(true, rel=0.15)

    def test_from_hdfs_requires_group_by(self):
        cluster, _, _ = keyed_cluster()
        with pytest.raises(ValueError):
            Query([agg("mean", "value")]).from_hdfs(cluster.hdfs, "/keyed")

    def test_from_hdfs_charges_ledger(self):
        cluster, _, _ = keyed_cluster()
        ledger = cluster.new_ledger()
        Query([agg("mean", "value")], group_by="key").from_hdfs(
            cluster.hdfs, "/keyed", ledger=ledger,
            config=EarlConfig(seed=1))
        assert ledger.total_seconds > 0.0


class TestGroupedStockJob:
    def test_matches_numpy_groupby_exactly(self):
        cluster, keys, values = keyed_cluster()
        got, _ = run_grouped_stock_job(cluster, "/keyed", "mean")
        for key in np.unique(list(keys)):
            # values were rendered through the fixed-width line format,
            # so compare against the parsed column
            parsed = np.array([round(v, 6) for v in values[keys == key]])
            assert got[key] == pytest.approx(float(np.mean(parsed)),
                                             abs=1e-9)

    def test_combiner_output_equivalent_to_plain(self):
        cluster, _, _ = keyed_cluster()
        with_combiner, _ = run_grouped_stock_job(
            cluster, "/keyed", "mean", combine=True, n_reducers=2, seed=5)
        without, _ = run_grouped_stock_job(
            cluster, "/keyed", "mean", combine=False, n_reducers=2, seed=5)
        assert sorted(with_combiner) == sorted(without)
        for key, value in without.items():
            # map-side pre-aggregation reorders the float summation, so
            # equality holds to round-off, not bit-for-bit
            assert with_combiner[key] == pytest.approx(value, rel=1e-12)

    def test_combiner_rejects_holistic_statistics(self):
        with pytest.raises(ValueError):
            GroupStateCombiner("median")
