"""Unit tests for the metrics registry (repro.obs.metrics)."""

import threading

import pytest

from repro.obs.metrics import DEFAULT_BUCKETS, Counter, MetricsRegistry


@pytest.fixture
def reg():
    return MetricsRegistry(enabled=True)


class TestCounters:
    def test_inc_defaults_to_one(self, reg):
        reg.counter("requests_total").inc()
        reg.counter("requests_total").inc()
        assert reg.value("requests_total") == 2.0

    def test_inc_by_amount(self, reg):
        reg.counter("bytes_total").inc(2048.5)
        assert reg.value("bytes_total") == 2048.5

    def test_negative_increment_rejected(self, reg):
        with pytest.raises(ValueError):
            reg.counter("requests_total").inc(-1)

    def test_labels_create_distinct_series(self, reg):
        reg.counter("ops_total", labels={"op": "submit"}).inc()
        reg.counter("ops_total", labels={"op": "poll"}).inc(3)
        assert reg.value("ops_total", {"op": "submit"}) == 1.0
        assert reg.value("ops_total", {"op": "poll"}) == 3.0
        assert len(reg.series("ops_total")) == 2

    def test_label_order_is_irrelevant(self, reg):
        reg.counter("x_total", labels={"a": 1, "b": 2}).inc()
        reg.counter("x_total", labels={"b": 2, "a": 1}).inc()
        assert reg.value("x_total", {"a": 1, "b": 2}) == 2.0

    def test_absent_series_reads_zero(self, reg):
        assert reg.value("never_touched_total") == 0.0

    def test_same_series_is_cached(self, reg):
        a = reg.counter("c_total", labels={"k": "v"})
        b = reg.counter("c_total", labels={"k": "v"})
        assert a is b

    def test_kind_conflict_raises(self, reg):
        reg.counter("thing")
        with pytest.raises(ValueError):
            reg.gauge("thing")
        with pytest.raises(ValueError):
            reg.histogram("thing")


class TestGauges:
    def test_set_inc_dec(self, reg):
        g = reg.gauge("inflight")
        g.set(5)
        g.inc()
        g.dec(2)
        assert reg.value("inflight") == 4.0

    def test_gauge_can_go_negative(self, reg):
        reg.gauge("drift").dec(3)
        assert reg.value("drift") == -3.0


class TestHistograms:
    def test_observations_land_in_cumulative_buckets(self, reg):
        h = reg.histogram("lat_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        sample = h._sample()
        # cumulative counts per upper bound, +Inf last
        assert [b["count"] for b in sample["buckets"]] == [1, 2, 3, 4]
        assert sample["buckets"][-1]["le"] == "+Inf"
        assert sample["count"] == 4
        assert sample["sum"] == pytest.approx(55.55)

    def test_bounds_are_sorted_at_creation(self, reg):
        h = reg.histogram("h2", buckets=(5.0, 1.0, 2.0))
        assert h.buckets == (1.0, 2.0, 5.0)

    def test_default_buckets_used_when_unspecified(self, reg):
        h = reg.histogram("h")
        assert h.buckets == DEFAULT_BUCKETS

    def test_empty_buckets_rejected(self, reg):
        with pytest.raises(ValueError):
            reg.histogram("h3", buckets=())


class TestDisabled:
    def test_disabled_registry_records_nothing(self):
        r = MetricsRegistry()   # disabled by default
        assert not r.enabled
        r.counter("c_total").inc()
        r.gauge("g").set(7)
        r.histogram("h").observe(1.0)
        assert r.value("c_total") == 0.0
        assert r.value("g") == 0.0
        assert r.histogram("h").count == 0

    def test_instruments_created_disabled_activate_later(self):
        r = MetricsRegistry()
        c = r.counter("c_total")
        c.inc(5)               # dropped: disabled
        r.enable()
        c.inc(5)               # recorded: same instrument object
        assert r.value("c_total") == 5.0

    def test_reset_zeroes_but_keeps_switch_and_registration(self, reg):
        reg.counter("c_total").inc(9)
        reg.histogram("h").observe(1.0)
        reg.reset()
        assert reg.enabled
        assert reg.value("c_total") == 0.0
        assert reg.histogram("h").count == 0
        assert isinstance(reg.counter("c_total"), Counter)


class TestExport:
    def test_snapshot_shape(self, reg):
        reg.counter("jobs_total", help="jobs run",
                    labels={"kind": "stock"}).inc(2)
        snap = reg.snapshot()
        assert snap["enabled"] is True
        metric = snap["metrics"]["jobs_total"]
        assert metric["type"] == "counter"
        assert metric["help"] == "jobs run"
        assert metric["series"] == [
            {"labels": {"kind": "stock"}, "value": 2.0}]

    def test_prometheus_text(self, reg):
        reg.counter("jobs_total", help="jobs run",
                    labels={"kind": "stock"}).inc(2)
        reg.gauge("inflight").set(1.5)
        text = reg.render_prometheus()
        assert "# TYPE jobs_total counter" in text
        assert "# HELP jobs_total jobs run" in text
        assert 'jobs_total{kind="stock"} 2' in text
        assert "# TYPE inflight gauge" in text
        assert "inflight 1.5" in text
        assert text.endswith("\n")

    def test_prometheus_histogram_exposition(self, reg):
        h = reg.histogram("lat", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        text = reg.render_prometheus()
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="2"} 2' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_sum 2" in text
        assert "lat_count 2" in text

    def test_label_values_escaped(self, reg):
        reg.counter("e_total", labels={"msg": 'a"b\\c\nd'}).inc()
        text = reg.render_prometheus()
        assert 'msg="a\\"b\\\\c\\nd"' in text

    def test_empty_registry_renders_empty(self, reg):
        assert reg.render_prometheus() == ""
        assert reg.snapshot()["metrics"] == {}


class TestConcurrency:
    def test_parallel_increments_are_not_lost(self, reg):
        c = reg.counter("hits_total")

        def worker():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.value("hits_total") == 8000.0
