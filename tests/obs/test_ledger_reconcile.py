"""Ledger ↔ registry reconciliation and the zero-perturbation property.

Two contracts from DESIGN.md §12:

* **Reconciliation** — with telemetry enabled, the registry's
  ``repro_sim_cost_seconds_total{category=...}`` series equal the
  :class:`~repro.mapreduce.runtime.JobResult` breakdown *exactly*, on
  every executor backend (the delta-publish in
  :meth:`CostLedger.publish` must neither drop nor double-count).
* **Zero perturbation** — flipping telemetry on and off around identical
  runs changes no result: same estimates, same breakdowns, same RNG
  streams.
"""

import pytest

from repro import EarlConfig, EarlSession, run_stock_job
from repro.cluster import Cluster
from repro.cluster.costmodel import CostLedger
from repro.obs import REGISTRY, enable_telemetry, reset_telemetry
from repro.workloads import load_numeric, numeric_dataset

BACKENDS = ["serial", "threads", "processes"]

COST_METRIC = "repro_sim_cost_seconds_total"
COUNTER_METRIC = "repro_mr_counter_total"


@pytest.fixture(autouse=True)
def _no_env_override(monkeypatch):
    monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
    monkeypatch.delenv("REPRO_MAX_WORKERS", raising=False)


def _fresh_env():
    cluster = Cluster(n_nodes=4, block_size=8 * 1024, replication=2,
                      seed=30)
    values = numeric_dataset(6_000, "lognormal", seed=31)
    ds = load_numeric(cluster, "/data", values, logical_scale=100.0)
    return cluster, ds


def _registry_costs():
    return {
        dict(inst.labels)["category"]: inst.value
        for inst in REGISTRY.series(COST_METRIC)
        if inst.value
    }


class TestReconciliation:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_registry_matches_job_breakdown_exactly(self, backend):
        enable_telemetry()
        reset_telemetry()
        cluster, ds = _fresh_env()
        _, result = run_stock_job(cluster, ds.path, "mean", seed=40,
                                  executor=backend)
        published = _registry_costs()
        expected = {cat: secs for cat, secs in result.breakdown.items()
                    if secs > 0}
        assert set(published) == set(expected)
        for cat, secs in expected.items():
            assert published[cat] == pytest.approx(secs, abs=1e-9), cat

    def test_registry_sums_over_multiple_jobs(self):
        enable_telemetry()
        reset_telemetry()
        cluster, ds = _fresh_env()
        totals = {}
        for seed in (41, 42):
            _, result = run_stock_job(cluster, ds.path, "mean", seed=seed)
            for cat, secs in result.breakdown.items():
                totals[cat] = totals.get(cat, 0.0) + secs
        published = _registry_costs()
        for cat, secs in totals.items():
            if secs > 0:
                assert published[cat] == pytest.approx(secs, abs=1e-9)
        assert REGISTRY.value("repro_mr_jobs_total") == 2.0

    def test_mr_counters_mirror_job_counters(self):
        enable_telemetry()
        reset_telemetry()
        cluster, ds = _fresh_env()
        _, result = run_stock_job(cluster, ds.path, "mean", seed=43)
        for name, value in result.counters.as_dict().items():
            if value:
                assert REGISTRY.value(
                    COUNTER_METRIC, {"name": name}) == float(value)

    def test_ledger_publish_is_delta_not_cumulative(self):
        enable_telemetry()
        reset_telemetry()
        ledger = CostLedger()
        ledger.charge_cpu_seconds(2.0)
        ledger.publish()
        ledger.publish()                  # repeat: no double count
        ledger.charge_cpu_seconds(1.5)
        ledger.publish()                  # only the new 1.5 lands
        assert REGISTRY.value(COST_METRIC,
                              {"category": "cpu"}) == pytest.approx(3.5)


class TestZeroPerturbation:
    """enabled-off runs are byte-identical to runs that never saw
    telemetry, and enabling it changes no result."""

    def _stock(self):
        cluster, ds = _fresh_env()
        return run_stock_job(cluster, ds.path, "mean", seed=50)

    def _earl(self):
        import numpy as np
        population = np.random.default_rng(8).lognormal(3.0, 1.0, 50_000)
        return EarlSession(population, "mean",
                           config=EarlConfig(sigma=0.05, seed=9)).run()

    def test_results_identical_disabled_enabled_disabled(self):
        value_off, result_off = self._stock()
        earl_off = self._earl()

        enable_telemetry()
        value_on, result_on = self._stock()
        earl_on = self._earl()

        from repro.obs import disable_telemetry
        disable_telemetry()
        value_off2, result_off2 = self._stock()
        earl_off2 = self._earl()

        assert value_off == value_on == value_off2
        assert result_off.breakdown == result_on.breakdown \
            == result_off2.breakdown
        assert result_off.simulated_seconds == result_on.simulated_seconds
        assert earl_off.estimate == earl_on.estimate == earl_off2.estimate
        assert earl_off.n == earl_on.n == earl_off2.n
        assert earl_off.num_iterations == earl_on.num_iterations \
            == earl_off2.num_iterations

    def test_disabled_run_publishes_nothing(self):
        self._stock()
        assert REGISTRY.value(COST_METRIC, {"category": "cpu"}) == 0.0
        assert REGISTRY.value("repro_mr_jobs_total") == 0.0
