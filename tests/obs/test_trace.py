"""Unit tests for span tracing (repro.obs.trace)."""

import threading

import pytest

from repro.obs.trace import NULL_SPAN, Span, SpanContext, Tracer


@pytest.fixture
def tracer():
    t = Tracer()
    t.enable()
    return t


class TestDisabled:
    def test_disabled_returns_shared_null_span(self):
        t = Tracer()
        assert not t.enabled
        s = t.span("anything")
        assert s is NULL_SPAN
        # the null span is inert under every operation
        with s as inner:
            assert inner is NULL_SPAN
            inner.set(k=1)
        s.finish()
        assert t.spans() == []

    def test_disabled_current_and_activate_are_noops(self):
        t = Tracer()
        assert t.current() is None
        assert t.activate(SpanContext("t1", "s1")) is None
        t.deactivate(None)

    def test_disabled_adopt_orphans_is_noop(self, tracer):
        with tracer.span("a", trace_id="tx"):
            pass
        root = tracer.span("root", trace_id="tx")
        tracer.disable()
        assert tracer.adopt_orphans("tx", root) == 0


class TestSpans:
    def test_root_span_gets_fresh_trace_id(self, tracer):
        with tracer.span("root") as s:
            assert s.trace_id.startswith("t")
            assert s.parent_id is None

    def test_pinned_trace_id(self, tracer):
        with tracer.span("root", trace_id="t-pin") as s:
            assert s.trace_id == "t-pin"

    def test_ambient_parenting_within_thread(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id

    def test_explicit_parent_overrides_ambient(self, tracer):
        base = tracer.span("base")
        base.finish()
        with tracer.span("ambient"):
            child = tracer.span("child", parent=base)
            child.finish()
        assert child.parent_id == base.span_id
        assert child.trace_id == base.trace_id

    def test_parent_accepts_span_context(self, tracer):
        base = tracer.span("base")
        child = tracer.span("child", parent=base.context)
        assert child.parent_id == base.span_id

    def test_finish_is_idempotent_and_records_once(self, tracer):
        s = tracer.span("once")
        s.finish()
        end = s.end
        s.finish()
        assert s.end == end
        assert len(tracer.spans()) == 1

    def test_span_ids_are_sequential_not_random(self, tracer):
        a = tracer.span("a")
        b = tracer.span("b")
        na = int(a.span_id.lstrip("s"))
        nb = int(b.span_id.lstrip("s"))
        assert nb == na + 1

    def test_attrs_via_set_and_kwarg(self, tracer):
        with tracer.span("s", attrs={"a": 1}) as s:
            s.set(b=2)
        assert s.attrs == {"a": 1, "b": 2}

    def test_new_threads_start_without_ambient_parent(self, tracer):
        seen = {}

        def worker():
            with tracer.span("worker") as s:
                seen["span"] = s

        with tracer.span("outer") as outer:
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        # contextvars do not flow into a fresh Thread: the worker span
        # is a new root, not a child of "outer".
        assert seen["span"].parent_id is None
        assert seen["span"].trace_id != outer.trace_id

    def test_activate_propagates_context_across_threads(self, tracer):
        seen = {}

        def worker(ctx):
            token = tracer.activate(ctx)
            try:
                with tracer.span("worker") as s:
                    seen["span"] = s
            finally:
                tracer.deactivate(token)

        with tracer.span("outer") as outer:
            t = threading.Thread(target=worker, args=(outer.context,))
            t.start()
            t.join()
        assert seen["span"].trace_id == outer.trace_id
        assert seen["span"].parent_id == outer.span_id


class TestAnalysis:
    def _tree(self, tracer):
        with tracer.span("root", trace_id="tt") as root:
            with tracer.span("mid"):
                with tracer.span("leaf"):
                    pass
        return root

    def test_is_connected_true_for_single_tree(self, tracer):
        self._tree(tracer)
        assert tracer.is_connected("tt")

    def test_is_connected_false_for_two_roots(self, tracer):
        self._tree(tracer)
        tracer.span("stray", trace_id="tt").finish()
        assert not tracer.is_connected("tt")

    def test_is_connected_false_for_missing_parent(self, tracer):
        root = tracer.span("root", trace_id="tt")
        child = tracer.span("child", parent=root)
        child.finish()          # recorded
        # root never finishes -> never recorded: child's parent missing
        assert not tracer.is_connected("tt")

    def test_is_connected_false_for_empty_trace(self, tracer):
        assert not tracer.is_connected("nope")

    def test_root_returns_earliest_parentless_span(self, tracer):
        root = self._tree(tracer)
        assert tracer.root("tt") is root

    def test_coverage_unions_overlapping_intervals(self, tracer):
        root = tracer.span("root", trace_id="tt")
        a = tracer.span("a", parent=root)
        b = tracer.span("b", parent=root)
        for s in (a, b, root):
            s.finish()
        # fabricate a known timeline: overlap must be counted once
        root.start, root.end = 0.0, 10.0
        a.start, a.end = 0.0, 4.0
        b.start, b.end = 3.0, 6.0
        assert tracer.coverage("tt") == pytest.approx(0.6)

    def test_coverage_clips_children_to_root_window(self, tracer):
        root = tracer.span("root", trace_id="tt")
        a = tracer.span("a", parent=root)
        a.finish()
        root.finish()
        root.start, root.end = 2.0, 12.0
        a.start, a.end = 0.0, 20.0   # overhangs both edges
        assert tracer.coverage("tt") == pytest.approx(1.0)

    def test_coverage_zero_without_root(self, tracer):
        assert tracer.coverage("tt") == 0.0

    def test_adopt_orphans_reconnects_after_crash(self, tracer):
        # pre-crash: root opened but killed before finish (never recorded)
        dead_root = tracer.span("session", trace_id="tc")
        with tracer.span("work", parent=dead_root):
            pass
        assert not tracer.is_connected("tc")
        # restart: new root on the same trace adopts the dangling span
        new_root = tracer.span("session-restart", trace_id="tc")
        moved = tracer.adopt_orphans("tc", new_root)
        new_root.finish()
        assert moved == 1
        assert tracer.is_connected("tc")

    def test_adopt_orphans_keeps_intact_subtrees(self, tracer):
        with tracer.span("a", trace_id="tc") as a:
            with tracer.span("b"):
                pass
        new_root = tracer.span("root2", trace_id="tc")
        moved = tracer.adopt_orphans("tc", new_root)
        new_root.finish()
        # only "a" (whose parent is None) moves; "b" stays under "a"
        assert moved == 1
        spans = {s.name: s for s in tracer.spans("tc")}
        assert spans["b"].parent_id == a.span_id
        assert tracer.is_connected("tc")


class TestExport:
    def test_chrome_export_shape(self, tracer):
        with tracer.span("root", trace_id="tt", attrs={"q": "mean"}):
            with tracer.span("child"):
                pass
        doc = tracer.export_chrome("tt")
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert len(events) == 2
        by_name = {e["name"]: e for e in events}
        root_ev, child_ev = by_name["root"], by_name["child"]
        assert root_ev["ph"] == "X"
        assert root_ev["args"]["q"] == "mean"
        assert child_ev["args"]["parent_id"] == \
            root_ev["args"]["span_id"]
        assert all(e["ts"] >= 0 for e in events)

    def test_export_filters_by_trace_id(self, tracer):
        tracer.span("a", trace_id="t1").finish()
        tracer.span("b", trace_id="t2").finish()
        assert len(tracer.export_chrome("t1")["traceEvents"]) == 1
        assert len(tracer.export_chrome()["traceEvents"]) == 2

    def test_ring_buffer_bounds_memory(self):
        t = Tracer(max_spans=10)
        t.enable()
        for i in range(25):
            t.span(f"s{i}").finish()
        assert len(t.spans()) == 10
        assert t.spans()[0].name == "s15"

    def test_clear_drops_spans(self, tracer):
        tracer.span("a").finish()
        tracer.clear()
        assert tracer.spans() == []
