"""Shared fixtures for the telemetry suite.

Telemetry is process-global (one ``REGISTRY``, one ``TRACER``), so every
test here starts from the zero-perturbation default and leaves it there —
a leaked ``enable_telemetry()`` would silently change what the
byte-identity suites measure.
"""

import pytest

from repro.obs import disable_telemetry, reset_telemetry


@pytest.fixture(autouse=True)
def clean_telemetry():
    disable_telemetry()
    reset_telemetry()
    yield
    disable_telemetry()
    reset_telemetry()
