"""Unit tests for convergence introspection (repro.obs.convergence)."""

import json
import threading

import pytest

from repro.obs.convergence import ConvergenceTrace


@pytest.fixture
def trace():
    t = ConvergenceTrace(name="q1", trace_id="t0000000000000001")
    t.record_round("value", round=1, rows=100, error=0.20, target=0.05,
                   wall_seconds=0.01, sim_seconds=1.5)
    t.record_round("value", round=2, rows=260, error=0.08, target=0.05,
                   wall_seconds=0.02, sim_seconds=2.9)
    t.record_round("value", round=3, rows=420, error=0.04, target=0.05,
                   wall_seconds=0.04, sim_seconds=4.1)
    t.record_event("loss", key="value", round=2, fraction=0.4)
    t.record_allocation(2, {"value": 160, "other": 40}, total=200)
    return t


class TestRecording:
    def test_points_in_order(self, trace):
        assert [p.round for p in trace.points] == [1, 2, 3]
        assert [p.rows for p in trace.points] == [100, 260, 420]

    def test_error_trajectory_is_captured(self, trace):
        errors = [p.error for p in trace.points]
        assert errors == [0.20, 0.08, 0.04]
        assert errors[-1] <= trace.points[-1].target

    def test_none_error_allowed(self):
        t = ConvergenceTrace()
        t.record_round("k", round=1, rows=10, error=None)
        assert t.points[0].error is None

    def test_events_and_allocations(self, trace):
        (ev,) = trace.events
        assert ev.kind == "loss"
        assert ev.key == "value"
        assert ev.detail == {"fraction": 0.4}
        (alloc,) = trace.allocations
        assert alloc.grants == {"value": 160, "other": 40}
        assert alloc.total == 200

    def test_keys_and_last_point(self, trace):
        trace.record_round("other", round=1, rows=50, error=0.3)
        assert trace.keys() == ["value", "other"]
        assert trace.last_point("value").round == 3
        assert trace.last_point("other").rows == 50
        assert trace.last_point("missing") is None

    def test_len_counts_points(self, trace):
        assert len(trace) == 3

    def test_values_are_coerced(self):
        t = ConvergenceTrace()
        t.record_round(7, round="2", rows=10.0, error="0.5")
        p = t.points[0]
        assert p.key == "7" and p.round == 2
        assert p.rows == 10 and p.error == 0.5


class TestSerialisation:
    def test_round_trip_preserves_everything(self, trace):
        doc = trace.to_dict()
        # the dict must be plain JSON
        restored = ConvergenceTrace.from_dict(json.loads(json.dumps(doc)))
        assert restored.to_dict() == doc
        assert restored.name == "q1"
        assert restored.trace_id == "t0000000000000001"

    def test_rows_tabular_view(self, trace):
        rows = trace.rows("value")
        assert rows[0] == ("value", 1, 100, 0.20, 0.01)
        assert len(rows) == 3
        assert trace.rows("absent") == []
        assert len(trace.rows()) == 3


class TestThreadSafety:
    def test_concurrent_appends_are_all_kept(self):
        t = ConvergenceTrace()

        def worker(key):
            for i in range(500):
                t.record_round(key, round=i, rows=i, error=0.1)
                t.record_event("tick", key=key, round=i)

        threads = [threading.Thread(target=worker, args=(f"k{j}",))
                   for j in range(4)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert len(t) == 2000
        assert len(t.events) == 2000
        assert sorted(t.keys()) == ["k0", "k1", "k2", "k3"]
