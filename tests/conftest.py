"""Shared fixtures for the EARL test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for tests that need randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_cluster() -> Cluster:
    """5-node cluster with small blocks (multi-block files stay cheap)."""
    return Cluster(n_nodes=5, block_size=4096, replication=3, seed=7)


@pytest.fixture
def tiny_cluster() -> Cluster:
    """Single-node cluster for degenerate-topology tests."""
    return Cluster(n_nodes=1, block_size=1024, replication=1, seed=11)


@pytest.fixture
def lognormal_values(rng) -> np.ndarray:
    """Right-skewed positive values (the paper's interesting regime)."""
    return rng.lognormal(3.0, 1.0, 4000)


@pytest.fixture
def numeric_file(small_cluster, lognormal_values):
    """A numeric dataset loaded into the small cluster's HDFS."""
    from repro.workloads import load_numeric

    return load_numeric(small_cluster, "/data/values", lognormal_values)
