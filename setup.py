"""Setup shim for environments without the `wheel` package.

The offline test environment lacks `wheel`, so PEP 660 editable installs
fail; this shim lets pip fall back to the legacy `setup.py develop` path.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
