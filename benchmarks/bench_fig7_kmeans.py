"""Figure 7: K-Means with EARL vs stock Hadoop (§6.3).

Paper claims: EARL speeds K-Means up "without changing the underlying
algorithm" for two reasons — it runs over a small sample, and K-Means
converges more quickly on smaller data; the found centroids are "within
5% of the optimal".
"""

import pytest

from repro.evaluation import FIG7_SIZES_GB, fig7_sweep

class TestFig7:
    def test_fig7_kmeans_earl_vs_stock(self, benchmark, series_report):
        def run():
            return fig7_sweep(FIG7_SIZES_GB, seed=700)

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [(r["gb"], round(r["stock_s"], 1), round(r["earl_s"], 1),
                 round(r["speedup"], 2), r["stock_iters"], r["earl_n"],
                 round(r["stock_opt_err"], 4), round(r["earl_opt_err"], 4))
                for r in results]
        series_report(
            "fig7_kmeans", "Fig 7: K-Means, EARL vs stock Hadoop",
            ["GB", "stock_s", "earl_s", "speedup", "stock_iters",
             "earl_n", "stock_vs_opt", "earl_vs_opt"],
            rows,
            notes="paper: EARL speeds up K-Means via sampling + faster "
                  "convergence; centroids within 5% of optimal")
        for r in results:
            # EARL wins at every size and the gap grows with the data
            assert r["speedup"] > 1.0
            # §6.3's headline accuracy claim
            assert r["earl_opt_err"] < 0.05
        assert results[-1]["speedup"] > results[0]["speedup"]
        assert results[-1]["speedup"] > 3.0
