"""Figure 9: pre-map vs post-map sampling processing times (§6.5).

Paper claims: pre-map sampling is faster in total processing time
(it never loads the whole input), while post-map sampling pays the full
load but knows the exact ``(key, value)`` count — "the pre-map sampler
should be used [to decrease load-times]; the post-map sampler should be
used when load-times are of low concern" and an exact correction basis
is needed.
"""

import pytest

from repro.cluster import Cluster
from repro.evaluation import FIG9_SIZES_GB, fig9_sweep
from repro.sampling import PostMapSampler, PreMapSampler
from repro.workloads import load_stand_in

RECORDS = 30_000

class TestFig9:
    def test_fig9_premap_vs_postmap(self, benchmark, series_report):
        def run():
            return fig9_sweep(FIG9_SIZES_GB, seed=900)

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [(r["gb"], round(r["premap_s"], 1), round(r["postmap_s"], 1),
                 round(r["post_over_pre"], 2), round(r["premap_err"], 4),
                 round(r["postmap_err"], 4)) for r in results]
        series_report(
            "fig9_sampling_modes",
            "Fig 9: pre-map vs post-map sampling processing time",
            ["GB", "premap_s", "postmap_s", "post/pre", "premap_err",
             "postmap_err"],
            rows,
            notes="paper: pre-map total time < post-map (no full load); "
                  "both deliver comparable accuracy")
        for r in results:
            assert r["premap_s"] < r["postmap_s"]
            assert r["premap_err"] < 0.15
            assert r["postmap_err"] < 0.15
        # the gap grows with the data size (the full load dominates)
        assert results[-1]["post_over_pre"] > results[0]["post_over_pre"]

    def test_fig9_kv_count_accuracy(self, benchmark, series_report):
        """The flip side of Fig 9: post-map knows the exact pair count;
        pre-map only estimates it (§3.3)."""

        def run():
            cluster = Cluster(n_nodes=5, block_size=1 << 20, seed=950)
            ds = load_stand_in(cluster, "/data/kv", logical_gb=5.0,
                               records=RECORDS, seed=951)
            import numpy as np

            rng = np.random.default_rng(952)
            pre = PreMapSampler(cluster.hdfs, ds.path)
            pre.set_total_target(500)
            ledger = cluster.new_ledger()
            for split in pre.splits:
                for _ in pre.read(cluster.hdfs, split, ledger, rng):
                    pass
            post = PostMapSampler(cluster.hdfs, ds.path)
            post.set_total_target(500)
            for split in post.splits:
                for _ in post.read(cluster.hdfs, split, ledger, rng):
                    pass
            return ds.records, post.total_pairs()

        true_records, post_count = benchmark.pedantic(run, rounds=1,
                                                      iterations=1)
        series_report(
            "fig9_kv_counts", "Fig 9 companion: exact pair counting",
            ["variant", "kv_count"],
            [("true", true_records),
             ("post-map (exact)", post_count),
             ("pre-map", "estimate only (probe-based)")])
        assert post_count == true_records
