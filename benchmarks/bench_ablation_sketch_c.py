"""Ablation: the sketch constant ``c`` (paper §4.1).

"Determining an appropriate c is a trade-off between memory space and
the computation time.  A larger c will cost more memory space but will
introduce less randomized update latency."  This bench sweeps ``c`` and
measures both sides of the trade: resident sketch items (memory) versus
disk reloads (latency).
"""

import pytest

from repro.cluster.costmodel import CostLedger
from repro.core.delta import ResampleSet
from repro.workloads import numeric_dataset

C_VALUES = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0]


def run_with_c(c: float, data) -> dict:
    ledger = CostLedger()
    rs = ResampleSet("mean", 20, maintenance="optimized", sketch_c=c,
                     seed=1200, ledger=ledger, io_scale=1000.0)
    rs.initialize(data[:4000])
    for lo, hi in [(4000, 6000), (6000, 8000), (8000, 10000),
                   (10000, 12000)]:
        rs.expand(data[lo:hi])
    maintainer = rs._maintainer
    sketch_items = sum(len(s._items) for s in maintainer._delta_sketches)
    return {
        "c": c,
        "sketch_items": sketch_items,
        "disk_accesses": rs.counters.disk_accesses,
        "sketch_draws": rs.counters.sketch_draws,
        "disk_seconds": round(ledger.seconds("disk_read")
                              + ledger.seconds("disk_seek"), 3),
    }


class TestSketchConstantAblation:
    def test_sketch_c_memory_vs_latency(self, benchmark, series_report):
        data = numeric_dataset(12_000, "lognormal", seed=1201)

        def run():
            return [run_with_c(c, data) for c in C_VALUES]

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [(r["c"], r["sketch_items"], r["disk_accesses"],
                 r["sketch_draws"], r["disk_seconds"]) for r in results]
        series_report(
            "ablation_sketch_c",
            "Ablation §4.1: sketch constant c — memory vs update latency",
            ["c", "resident_items", "disk_reload_draws", "memory_draws",
             "disk_seconds"],
            rows,
            notes="larger c: more resident memory, fewer disk touches "
                  "(the paper's stated trade-off)")
        # memory grows monotonically with c
        items = [r["sketch_items"] for r in results]
        assert items == sorted(items)
        # disk reloads shrink as c grows (compare the extremes)
        assert results[-1]["disk_accesses"] < results[0]["disk_accesses"]
        # at a generous c almost all draws are served from memory
        big = results[-1]
        total = big["disk_accesses"] + big["sketch_draws"]
        assert big["sketch_draws"] / total > 0.95
