"""Kernel throughput: vectorized vs scalar resampling/delta maintenance.

EARL's §4.1 argument is that maintaining resamples across sample
expansions costs O(|Δs|) per resample — but the constant matters.  This
benchmark measures ``ResampleSet.initialize`` and ``expand`` throughput
(items/sec) for the item-at-a-time scalar reference
(``vectorized=False``) against the NumPy batch kernel (the default) at
n ∈ {10⁴, 10⁵, 10⁶}, for both the naive and the optimized maintainer.
Both kernels consume the identical random stream (same drawn items,
same counters — see ``tests/core/test_delta.py``), so the ratio is a
pure constant-factor comparison.

Outputs machine-readable ``BENCH_kernel.json``; the committed copy at
``benchmarks/BENCH_kernel.json`` is the baseline the CI regression gate
(``tools/check_bench_regression.py``) compares fresh runs against.
Because raw items/sec is machine-dependent, the stable quantity — and
the gated one — is the vectorized/scalar *speedup* ratio.

Run standalone::

    python benchmarks/bench_kernel.py --smoke --out benchmarks/results/BENCH_kernel.json

or through pytest (``make bench`` / ``make bench-json``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.delta import (  # noqa: E402 (path bootstrap above)
    MAINTENANCE_NAIVE,
    MAINTENANCE_OPTIMIZED,
    ResampleSet,
)

#: Full sweep (the committed baseline) and the CI smoke subset.
FULL_SIZES = (10_000, 100_000, 1_000_000)
SMOKE_SIZES = (10_000, 100_000)
#: Resamples per size — smaller B at large n keeps the scalar reference
#: runnable while items/sec (= B·n / seconds) stays comparable.
B_FOR_SIZE = {10_000: 20, 100_000: 10, 1_000_000: 5}
#: The acceptance gate: vectorized expand must be >= 10x scalar here.
ASSERT_AT_N = 100_000
MIN_EXPAND_SPEEDUP = 10.0
SEED = 7
MODES = (MAINTENANCE_NAIVE, MAINTENANCE_OPTIMIZED)


def _time_once(mode: str, vectorized: bool, data: np.ndarray, n: int,
               B: int) -> Dict[str, float]:
    """One initialize(n) + expand(Δ = n) run; returns stage seconds."""
    rs = ResampleSet("mean", B, maintenance=mode, seed=SEED,
                     vectorized=vectorized)
    t0 = time.perf_counter()
    rs.initialize(data[:n])
    t1 = time.perf_counter()
    rs.expand(data[n:])
    t2 = time.perf_counter()
    return {"initialize": t1 - t0, "expand": t2 - t1}


def _best_of(mode: str, vectorized: bool, data: np.ndarray, n: int, B: int,
             repeats: int) -> Dict[str, float]:
    best = {"initialize": float("inf"), "expand": float("inf")}
    for _ in range(repeats):
        run = _time_once(mode, vectorized, data, n, B)
        for stage in best:
            best[stage] = min(best[stage], run[stage])
    return best


def run_kernel_bench(sizes: Sequence[int], *,
                     repeats: int = 2) -> List[Dict[str, object]]:
    """Measure every (n, maintainer) combination; returns result rows."""
    rows: List[Dict[str, object]] = []
    for n in sizes:
        B = B_FOR_SIZE.get(n, max(3, 1_000_000 // max(n, 1)))
        # delta == n: the sample doubles, the regime Fig. 10 measures.
        data = np.random.default_rng(0).lognormal(3.0, 1.0, 2 * n)
        reps = 1 if n >= 1_000_000 else repeats
        for mode in MODES:
            # Identical best-of protocol for both kernels — the gated
            # ratio must not owe anything to asymmetric measurement.
            scalar = _best_of(mode, False, data, n, B, reps)
            vector = _best_of(mode, True, data, n, B, reps)
            row: Dict[str, object] = {"n": n, "B": B, "mode": mode}
            for stage in ("initialize", "expand"):
                items = B * n
                s_tp = items / scalar[stage]
                v_tp = items / vector[stage]
                row[stage] = {
                    "scalar_items_per_s": round(s_tp),
                    "vectorized_items_per_s": round(v_tp),
                    "speedup": round(v_tp / s_tp, 2),
                }
            rows.append(row)
    return rows


def check_speedups(rows: List[Dict[str, object]],
                   *, min_speedup: float = MIN_EXPAND_SPEEDUP,
                   at_n: int = ASSERT_AT_N) -> None:
    """The headline claim: >= ``min_speedup``x expand throughput for
    both vectorized maintainers at ``at_n``."""
    gated = [row for row in rows if row["n"] == at_n]
    assert gated, f"no measurements at n={at_n}"
    for row in gated:
        speedup = row["expand"]["speedup"]
        assert speedup >= min_speedup, (
            f"{row['mode']} maintainer: vectorized expand only "
            f"{speedup:.1f}x scalar at n={at_n} (need >= {min_speedup}x)")


def write_json(rows: List[Dict[str, object]], out: Path, *,
               smoke: bool) -> None:
    payload = {
        "benchmark": "kernel_throughput",
        "statistic": "mean",
        "seed": SEED,
        "smoke": smoke,
        "delta": "equal to n (sample doubles per expand)",
        "units": "items/sec where items = B * n state additions",
        "results": rows,
    }
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")


class TestKernelThroughput:
    """Pytest entry point (``make bench``): smoke sizes, same gate."""

    def test_vectorized_expand_speedup(self, benchmark, series_report):
        rows = benchmark.pedantic(
            lambda: run_kernel_bench(SMOKE_SIZES), rounds=1, iterations=1)
        series_report(
            "kernel_throughput",
            "Vectorized kernel: initialize/expand items per second",
            ["n", "B", "mode", "init_scalar", "init_vec", "init_x",
             "expand_scalar", "expand_vec", "expand_x"],
            [(r["n"], r["B"], r["mode"],
              r["initialize"]["scalar_items_per_s"],
              r["initialize"]["vectorized_items_per_s"],
              r["initialize"]["speedup"],
              r["expand"]["scalar_items_per_s"],
              r["expand"]["vectorized_items_per_s"],
              r["expand"]["speedup"]) for r in rows],
            notes="same random stream both kernels; speedup is the "
                  "machine-independent quantity (see BENCH_kernel.json)")
        write_json(rows, Path(__file__).parent / "results"
                   / "BENCH_kernel.json", smoke=True)
        check_speedups(rows)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help=f"sizes {SMOKE_SIZES} instead of {FULL_SIZES}")
    parser.add_argument("--sizes", type=int, nargs="*",
                        help="explicit n values (overrides --smoke)")
    parser.add_argument("--out", type=Path,
                        default=Path("benchmarks/results/BENCH_kernel.json"),
                        help="where to write the JSON report")
    parser.add_argument("--no-assert", action="store_true",
                        help="measure and report only; skip the >=10x gate")
    args = parser.parse_args(argv)

    sizes = tuple(args.sizes) if args.sizes \
        else (SMOKE_SIZES if args.smoke else FULL_SIZES)
    # Smoke runs feed the CI regression gate: extra repeats tighten the
    # best-of timing so runner noise cannot masquerade as a regression.
    rows = run_kernel_bench(sizes, repeats=3 if args.smoke else 2)
    write_json(rows, args.out, smoke=sizes != FULL_SIZES)
    for row in rows:
        print(f"n={row['n']:>9,}  B={row['B']:>3}  {row['mode']:<9} "
              f"init {row['initialize']['speedup']:>6.1f}x  "
              f"expand {row['expand']['speedup']:>6.1f}x  "
              f"({row['expand']['vectorized_items_per_s'] / 1e6:.1f}M items/s)")
    print(f"wrote {args.out}")
    if not args.no_assert and any(r["n"] == ASSERT_AT_N for r in rows):
        check_speedups(rows)
        print(f"speedup gate OK (>= {MIN_EXPAND_SPEEDUP}x expand at "
              f"n={ASSERT_AT_N:,})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
