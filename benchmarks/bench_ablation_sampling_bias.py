"""Ablation: block sampling bias on clustered layouts (§3.3 / §7).

The paper rejects naive block-level sampling because "each of the Bi and
each of the splits can contain dependencies (e.g., consider the case
where data is clustered on a particular attribute)".  This bench
quantifies that: the same sample volume drawn as whole blocks versus
drawn uniformly (pre-map style), on clustered and shuffled layouts of
the same values.
"""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.sampling import reservoir_sample, sample_blocks
from repro.workloads import clustered_lines, numeric_dataset, numeric_lines

SAMPLE_LINES = 300
TRIALS = 25


def mean_of(lines) -> float:
    return float(np.mean([float(line) for line in lines]))


def estimate_errors(cluster, path, true_mean, seed) -> dict:
    rng = np.random.default_rng(seed)
    block_errs, uniform_errs = [], []
    all_lines = cluster.hdfs.read_lines(path)
    for _ in range(TRIALS):
        blocks = sample_blocks(cluster.hdfs, path, SAMPLE_LINES, seed=rng)
        block_errs.append(abs(mean_of(blocks) - true_mean) / true_mean)
        uniform = reservoir_sample(all_lines, SAMPLE_LINES, seed=rng)
        uniform_errs.append(abs(mean_of(uniform) - true_mean) / true_mean)
    return {
        "block": float(np.mean(block_errs)),
        "uniform": float(np.mean(uniform_errs)),
    }


class TestBlockSamplingBias:
    def test_clustered_layout_breaks_block_sampling(self, benchmark,
                                                    series_report):
        values = numeric_dataset(6000, "lognormal", seed=1300)
        true_mean = float(np.mean(values))

        def run():
            cluster = Cluster(n_nodes=4, block_size=512, seed=1301)
            cluster.hdfs.write_lines("/clustered", clustered_lines(values))
            shuffled = values[np.random.default_rng(1302).permutation(
                len(values))]
            cluster.hdfs.write_lines("/shuffled", numeric_lines(shuffled))
            return {
                "clustered": estimate_errors(cluster, "/clustered",
                                             true_mean, 1303),
                "shuffled": estimate_errors(cluster, "/shuffled",
                                            true_mean, 1304),
            }

        res = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [
            ("clustered", res["clustered"]["block"],
             res["clustered"]["uniform"]),
            ("shuffled", res["shuffled"]["block"],
             res["shuffled"]["uniform"]),
        ]
        series_report(
            "ablation_block_bias",
            "Ablation §3.3/§7: mean relative error of block vs uniform "
            f"sampling ({SAMPLE_LINES} lines, {TRIALS} trials)",
            ["layout", "block_sampling_err", "uniform_sampling_err"],
            rows,
            notes="paper: on clustered layouts block samples are "
                  "inaccurate; on random layouts they match uniform "
                  "samples")
        # clustered layout: block sampling is far worse than uniform
        assert res["clustered"]["block"] > 3 * res["clustered"]["uniform"]
        # random layout: the two are comparable
        assert res["shuffled"]["block"] < 3 * res["shuffled"]["uniform"]
