"""Grouped-query sampling efficiency: stratified vs uniform rows processed.

The grouped query engine (``repro.query``) samples **within** each
group, so a rare key's estimate converges from that key's own rows; a
uniform table sample hands a rare key only its population share of
every round and the whole query waits on it.  This benchmark measures
the cost of that difference directly — *rows processed until every
group meets the per-group accuracy target* — over a Zipf-skewed key
distribution (head key ~50 % of rows, rarest ~2 %):

* ``stratified`` — ``Query(select=[agg("mean", "value")],
  group_by="key")``: per-group sampling with per-group early stopping.
* ``uniform`` — the same per-group stopping rule and bootstrap
  machinery fed by uniform table sampling in doubling rounds: each
  round's delta is a prefix slice of one global permutation, and each
  group receives whatever rows happened to land in it.

Both designs use the same pinned bootstrap protocol
(``B=30, n=75`` per group — no SSABE noise in the comparison), the
same per-group σ and the same seeds; rows processed is **simulated
sampling work, not wall-clock**, so the reported speedup is fully
machine-independent and deterministic for the committed seed.

Outputs ``BENCH_query.json``; the committed baseline at
``benchmarks/BENCH_query.json`` is what the CI regression gate
(``tools/check_bench_regression.py --stages rows``) compares fresh
runs against.  The ``balanced`` mode (equal key shares) is reported at
a sub-gate size as an informational sanity row: what remains there is
only the per-group *scheduling* advantage (a shared scan's doubling
overshoots for every group at once), while the gated skewed row adds
the rare-key starvation the stratified design exists to fix.

Run standalone::

    python benchmarks/bench_query.py --out benchmarks/results/BENCH_query.json

or through pytest (``make bench`` / ``make bench-json``).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import EarlConfig  # noqa: E402 (path bootstrap above)
from repro.core.accuracy import AccuracyEstimationStage  # noqa: E402
from repro.query import Query, agg  # noqa: E402
from repro.workloads import skewed_keyed_values  # noqa: E402

#: The gated skewed workload and the informational balanced one.
SKEWED_N = 120_000
BALANCED_N = 20_000
N_KEYS = 8
SEED = 23
SIGMA = 0.02
#: Pinned bootstrap protocol shared by both designs (no SSABE noise).
B_PINNED = 30
N_PINNED = 75
#: Value dispersion: lognormal sigma — mild enough that every group's
#: bound is reachable well before exhaustion.
VALUE_SIGMA = 0.6
#: The acceptance gate: stratified must process >= this factor fewer
#: rows than uniform on the skewed workload.
MIN_SPEEDUP = 3.0


def _workload(n: int, skew: float):
    return skewed_keyed_values(n, N_KEYS, skew=skew,
                               value_sigma=VALUE_SIGMA, seed=SEED)


def stratified_rows(keys, values) -> int:
    """Rows processed by the grouped query engine (per-group design)."""
    query = Query([agg("mean", "value")], group_by="key").on(
        {"key": keys, "value": values},
        config=EarlConfig(sigma=SIGMA, seed=SEED + 1,
                          B_override=B_PINNED, n_override=N_PINNED))
    result = query.run()
    assert result.achieved, \
        "stratified design failed its per-group accuracy targets"
    return result.rows_processed


def uniform_rows(keys, values) -> int:
    """Rows processed by uniform table sampling to the same targets.

    One global permutation, doubling rounds; every unmet group's stage
    is offered the delta rows that landed in it, and a group stops when
    its bootstrap error meets σ (or the table is exhausted).  Returned
    is the table prefix length consumed when the *last* group stopped —
    uniform sampling cannot stop per group, the scan is shared.
    """
    N = len(keys)
    rng = np.random.default_rng(SEED + 1)
    order = rng.permutation(N)
    group_names = sorted(set(keys))
    stage_rngs = rng.integers(0, 2**63 - 1, size=len(group_names))
    stages: Dict[object, AccuracyEstimationStage] = {
        name: AccuracyEstimationStage("mean", B_PINNED,
                                      seed=int(stage_rngs[i]))
        for i, name in enumerate(group_names)}
    active = set(group_names)
    consumed = 0
    target = min(N, N_PINNED)
    while active:
        delta = order[consumed:target]
        consumed = target
        delta_keys = keys[delta]
        delta_values = values[delta]
        for name in sorted(active):
            landed = delta_values[delta_keys == name]
            if landed.size == 0:
                continue
            estimate = stages[name].offer(landed)
            if estimate.error <= SIGMA:
                active.discard(name)
        if consumed >= N:
            break
        target = min(N, math.ceil(consumed * 2.0))
    return consumed


def run_query_bench(sizes: Sequence[int]) -> List[Dict[str, object]]:
    """Measure both designs; returns result rows keyed ``(n, mode)``."""
    rows: List[Dict[str, object]] = []
    for n in sizes:
        for mode, skew in (("skewed", 1.5), ("balanced", 0.0)):
            size = n if mode == "skewed" else min(n, BALANCED_N)
            keys, values = _workload(size, skew)
            uni = uniform_rows(keys, values)
            strat = stratified_rows(keys, values)
            rows.append({
                "n": size, "mode": mode,
                "rows": {
                    "uniform_rows": int(uni),
                    "stratified_rows": int(strat),
                    "speedup": round(uni / strat, 2),
                },
            })
    return rows


def check_speedups(rows: List[Dict[str, object]], *,
                   min_speedup: float = MIN_SPEEDUP,
                   at_n: int = SKEWED_N) -> None:
    """The headline claim: the stratified design reaches every group's
    accuracy target processing >= ``min_speedup``x fewer rows than
    uniform table sampling on the skewed workload."""
    gated = [row for row in rows
             if row["n"] == at_n and row["mode"] == "skewed"]
    assert gated, f"no skewed measurement at n={at_n}"
    for row in gated:
        speedup = row["rows"]["speedup"]
        assert speedup >= min_speedup, (
            f"stratified sampling only {speedup:.1f}x fewer rows than "
            f"uniform at n={at_n} (need >= {min_speedup}x)")


def write_json(rows: List[Dict[str, object]], out: Path) -> None:
    payload = {
        "benchmark": "query_rows_processed",
        "seed": SEED,
        "sigma": SIGMA,
        "n_keys": N_KEYS,
        "protocol": (f"pinned B={B_PINNED}, n={N_PINNED} per group for "
                     "both designs; rows processed until every group "
                     "meets its bound (simulated sampling work, "
                     "machine-independent)"),
        "units": "rows",
        "results": rows,
    }
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")


class TestQuerySamplingEfficiency:
    """Pytest entry point (``make bench``): same sizes, same gate."""

    def test_stratified_beats_uniform_on_skewed_keys(self, benchmark,
                                                     series_report):
        rows = benchmark.pedantic(
            lambda: run_query_bench([SKEWED_N]), rounds=1, iterations=1)
        series_report(
            "query_rows_processed",
            "Grouped query: rows processed to per-group accuracy targets",
            ["n", "mode", "uniform", "stratified", "speedup"],
            [(r["n"], r["mode"],
              r["rows"]["uniform_rows"],
              r["rows"]["stratified_rows"],
              r["rows"]["speedup"]) for r in rows],
            notes="same pinned (B, n), sigma and seeds on both designs; "
                  "rows processed is simulated sampling work, so the "
                  "speedup is machine-independent (see BENCH_query.json)")
        write_json(rows, Path(__file__).parent / "results"
                   / "BENCH_query.json")
        check_speedups(rows)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="*",
                        help=f"explicit n values (default {SKEWED_N})")
    parser.add_argument("--smoke", action="store_true",
                        help="alias for the default size (the benchmark "
                             "is deterministic simulated work either way)")
    parser.add_argument("--out", type=Path,
                        default=Path("benchmarks/results/BENCH_query.json"),
                        help="where to write the JSON report")
    parser.add_argument("--no-assert", action="store_true",
                        help="measure and report only; skip the "
                             f">={MIN_SPEEDUP}x gate")
    args = parser.parse_args(argv)

    sizes = tuple(args.sizes) if args.sizes else (SKEWED_N,)
    rows = run_query_bench(sizes)
    write_json(rows, args.out)
    for row in rows:
        r = row["rows"]
        print(f"n={row['n']:>9,}  {row['mode']:<9} "
              f"uniform {r['uniform_rows']:>9,} rows  "
              f"stratified {r['stratified_rows']:>9,} rows  "
              f"{r['speedup']:>6.1f}x")
    print(f"wrote {args.out}")
    if not args.no_assert and any(
            r["n"] == SKEWED_N and r["mode"] == "skewed" for r in rows):
        check_speedups(rows)
        print(f"speedup gate OK (>= {MIN_SPEEDUP}x at n={SKEWED_N:,})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
