"""Figure 5: computing the mean — EARL vs stock Hadoop across data sizes.

Paper claims (§6.1): for data ≥100 GB EARL delivers an impressive gain
(4x speed-up) even for the mean; below ~1 GB it "intelligently switches
back to the original work flow ... without incurring a big overhead";
standard Hadoop data loading is much less efficient than pre-map
sampling.
"""

import pytest

from repro.cluster import Cluster
from repro.core import EarlConfig, EarlJob, run_stock_job
from repro.evaluation import FIG5_SIZES_GB, fig5_sweep
from repro.workloads import load_stand_in

RECORDS = 30_000

class TestFig5:
    def test_fig5_mean_earl_vs_stock(self, benchmark, series_report):
        def run():
            return fig5_sweep(FIG5_SIZES_GB, seed=500)

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [(r["gb"], round(r["stock_s"], 1), round(r["earl_s"], 1),
                 round(r["speedup"], 2), round(r["stock_load_s"], 1),
                 r["sampled"], r["fallback"], round(r["rel_err"], 4))
                for r in results]
        series_report(
            "fig5_mean_speedup",
            "Fig 5: mean computation, EARL vs stock Hadoop",
            ["GB", "stock_s", "earl_s", "speedup", "stock_load_s",
             "sampled", "fallback", "rel_err"],
            rows,
            notes="paper: ~4x speed-up at >=100 GB; graceful fallback "
                  "below ~1 GB; stock load >> pre-map sampling")

        by_gb = {r["gb"]: r for r in results}
        # headline: large data wins big (paper: ~4x at >=100 GB; we
        # land in the 3-5x band depending on the SSABE-chosen sample)
        assert by_gb[100.0]["speedup"] > 3.0
        assert by_gb[200.0]["speedup"] > 3.0
        # speed-up grows with data size across the sweep
        assert by_gb[200.0]["speedup"] > by_gb[2.0]["speedup"]
        # small-data regime: EARL must not blow up (graceful fallback /
        # cheap pilot) — within 2.5x of stock even when approximation
        # cannot help
        assert by_gb[0.5]["earl_s"] < by_gb[0.5]["stock_s"] * 2.5
        # answers stay accurate everywhere
        for r in results:
            assert r["rel_err"] < 0.15

    def test_fig5_loading_premap_vs_full_scan(self, benchmark,
                                              series_report):
        """The paper's loading comparison: pre-map sampling touches a
        tiny fraction of the bytes a stock scan reads."""

        def run():
            cluster = Cluster(n_nodes=5, block_size=1 << 20, seed=555)
            ds = load_stand_in(cluster, "/data/load", logical_gb=50.0,
                               records=RECORDS, seed=556)
            _, stock = run_stock_job(cluster, ds.path, "mean", seed=557)
            earl = EarlJob(cluster, ds.path, statistic="mean",
                           config=EarlConfig(sigma=0.05, seed=558)).run()
            return stock, earl

        stock, earl = benchmark.pedantic(run, rounds=1, iterations=1)
        stock_load = stock.breakdown["disk_read"]
        series_report(
            "fig5_loading", "Fig 5 companion: data loading comparison "
            "(50 GB)",
            ["variant", "disk_read_s", "total_s"],
            [("stock full scan", round(stock_load, 1),
              round(stock.simulated_seconds, 1)),
             ("EARL (pre-map)", "-", round(earl.simulated_seconds, 1))])
        assert earl.simulated_seconds < stock_load
