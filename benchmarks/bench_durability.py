"""Durability overhead: the WAL-backed service vs the in-memory store.

Crash recovery is only worth shipping if the clean path stays cheap:
journaling every admission, event and ack through
:class:`~repro.service.durable.DurableSessionStore` must cost at most
**1.25x** the in-memory clean-run wall clock for the same batched
workload — and must not change a single output byte (durability is a
persistence property, never a behavioral one; the byte-identity
assertion rides along on every measurement).

The measured unit is wall-clock seconds for one full service round
trip (submit a shared-pilot statistic batch, flush, drain every
session), best-of-``REPEATS`` per mode to shed scheduler noise.  The
gated mode journals with ``fsync=False`` — restart durability, the
recovery guarantee the test suite pins — because fsync latency is a
property of the CI runner's disk, not of this code.  The fsync'd
power-loss profile is reported as an informational row.

Outputs ``BENCH_durability.json``; the committed baseline at
``benchmarks/BENCH_durability.json`` is what the CI regression gate
(``tools/check_bench_regression.py --stages durability``) compares
fresh runs against.

Run standalone::

    python benchmarks/bench_durability.py \
        --out benchmarks/results/BENCH_durability.json

or through pytest (``make bench`` / ``make bench-json``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.core import EarlConfig  # noqa: E402
from repro.service import (  # noqa: E402
    ApproxQueryService,
    DurableSessionStore,
    InMemorySessionStore,
    LocalClient,
)

#: The gated workload size (rows in the registered dataset).
N = 150_000
SEED = 47
#: The acceptance gate: journaling may cost at most this factor over
#: the in-memory clean run's wall clock.
MAX_OVERHEAD = 1.25
#: Best-of repeats per mode (wall clock sheds OS noise at the minimum).
REPEATS = 3
#: One shared-pilot dispatch window: every statistic of the batch.
STATISTICS = ("mean", "std", "sum", "median")
#: Forces a genuinely multi-round stream so the journal sees a
#: realistic event volume (a bare tiny sigma would hit the exact
#: fallback and emit one snapshot).
CFG = dict(sigma=0.01, B_override=15, n_override=100,
           expansion_factor=1.6, max_iterations=12)


def _build(store, n: int) -> ApproxQueryService:
    service = ApproxQueryService(
        config=EarlConfig(**CFG), seed=1234, batch_window=5.0,
        event_capacity=64, store=store)
    service.register_dataset(
        "pop", np.random.default_rng(SEED).lognormal(1.0, 0.5, n))
    return service


async def _round_trip(store, n: int) -> Tuple[float, List[List[str]]]:
    """One full clean run: submit the batch, flush, drain everything.

    Returns (wall seconds, per-session raw event bytes)."""
    service = _build(store, n)
    await service.start()
    try:
        client = LocalClient(service)
        start = time.perf_counter()
        sids = [await client.submit({"kind": "statistic",
                                     "dataset": "pop",
                                     "statistic": stat})
                for stat in STATISTICS]
        await service.flush()
        streams = [[e.raw for e in await client.drain(sid)]
                   for sid in sids]
        elapsed = time.perf_counter() - start
    finally:
        await service.stop()
    return elapsed, streams


def _measure(n: int, make_store) -> Tuple[float, List[List[str]]]:
    """Best-of-``REPEATS`` wall clock; every repeat gets a fresh store."""
    best, streams = float("inf"), None
    for _ in range(REPEATS):
        store, cleanup = make_store()
        try:
            elapsed, got = asyncio.run(_round_trip(store, n))
        finally:
            cleanup()
        if streams is None:
            streams = got
        else:
            assert got == streams, \
                "service output varied between repeats; seeds leaked"
        best = min(best, elapsed)
    return best, streams


def _durable_factory(fsync: bool):
    def make():
        path = tempfile.mkdtemp(prefix="bench-durability-")
        store = DurableSessionStore(path, fsync=fsync)
        return store, lambda: shutil.rmtree(path, ignore_errors=True)
    return make


def durability_cost(n: int) -> List[Dict[str, object]]:
    """In-memory vs journaled wall clock for the identical workload."""
    inmem_s, inmem_streams = _measure(
        n, lambda: (InMemorySessionStore(), lambda: None))
    rows: List[Dict[str, object]] = []
    for mode, fsync in (("durable", False), ("durable-fsync", True)):
        wal_s, wal_streams = _measure(n, _durable_factory(fsync))
        assert wal_streams == inmem_streams, \
            f"{mode} store changed the service's output bytes"
        overhead = wal_s / inmem_s
        rows.append({
            "n": n, "mode": mode,
            "durability": {
                "inmem_seconds": round(inmem_s, 4),
                "durable_seconds": round(wal_s, 4),
                "fsync": fsync,
                "overhead": round(overhead, 4),
                "speedup": round(1.0 / overhead, 4),
            }})
    return rows


def run_durability_bench(sizes: Sequence[int]) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for n in sizes:
        rows.extend(durability_cost(n))
    return rows


def check_overhead(rows: List[Dict[str, object]], *,
                   max_overhead: float = MAX_OVERHEAD,
                   at_n: int = N) -> None:
    """The headline claim: restart-durable journaling costs at most
    ``max_overhead``x the in-memory clean run."""
    gated = [row for row in rows
             if row["n"] == at_n and row["mode"] == "durable"]
    assert gated, f"no 'durable' measurement at n={at_n}"
    for row in gated:
        overhead = row["durability"]["overhead"]
        assert overhead <= max_overhead, (
            f"durable store cost {overhead:.2f}x the in-memory run at "
            f"n={at_n} (gate: <= {max_overhead}x)")


def write_json(rows: List[Dict[str, object]], out: Path) -> None:
    payload = {
        "benchmark": "durability_overhead",
        "seed": SEED,
        "max_overhead": MAX_OVERHEAD,
        "protocol": ("same shared-pilot statistic batch submitted, "
                     "flushed and drained through the service; "
                     "InMemorySessionStore vs DurableSessionStore "
                     f"(WAL journaling), best-of-{REPEATS} wall clock; "
                     "outputs asserted byte-identical across stores; "
                     "speedup = inmem/durable (higher = cheaper "
                     "journaling); the fsync'd power-loss profile is "
                     "informational, only mode 'durable' is gated"),
        "units": "wall-clock seconds",
        "results": rows,
    }
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")


class TestDurabilityOverhead:
    """Pytest entry point (``make bench``): same sizes, same gate."""

    def test_journaling_stays_within_budget(self, benchmark,
                                            series_report):
        rows = benchmark.pedantic(lambda: run_durability_bench([N]),
                                  rounds=1, iterations=1)
        series_report(
            "durability_overhead",
            "Durability overhead: WAL journaling vs in-memory store",
            ["n", "mode", "inmem_s", "durable_s", "overhead"],
            [(r["n"], r["mode"],
              r["durability"]["inmem_seconds"],
              r["durability"]["durable_seconds"],
              r["durability"]["overhead"]) for r in rows],
            notes="outputs byte-identical across stores; only the "
                  "fsync=False restart-durability mode is gated (see "
                  "BENCH_durability.json)")
        write_json(rows, Path(__file__).parent / "results"
                   / "BENCH_durability.json")
        check_overhead(rows)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="*",
                        help=f"explicit n values (default {N})")
    parser.add_argument("--smoke", action="store_true",
                        help="alias for the default size (the workload "
                             "is already smoke-sized and deterministic)")
    parser.add_argument("--out", type=Path,
                        default=Path("benchmarks/results/"
                                     "BENCH_durability.json"),
                        help="where to write the JSON report")
    parser.add_argument("--no-assert", action="store_true",
                        help="measure and report only; skip the "
                             f"<= {MAX_OVERHEAD}x overhead gate")
    args = parser.parse_args(argv)

    sizes = tuple(args.sizes) if args.sizes else (N,)
    rows = run_durability_bench(sizes)
    write_json(rows, args.out)
    for row in rows:
        r = row["durability"]
        print(f"n={row['n']:>9,}  {row['mode']:<14} "
              f"inmem {r['inmem_seconds']:>7.3f}s  "
              f"durable {r['durable_seconds']:>7.3f}s  "
              f"overhead {r['overhead']:>5.2f}x")
    print(f"wrote {args.out}")
    if not args.no_assert and any(r["n"] == N and r["mode"] == "durable"
                                  for r in rows):
        check_overhead(rows)
        print(f"overhead gate OK (<= {MAX_OVERHEAD}x at n={N:,})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
