"""Extension bench: fault tolerance through approximation (§3.4).

The paper argues (without a dedicated figure) that EARL "can be made
more robust against node failures by delivering results with an
estimated accuracy despite node failures", avoiding restarts entirely.
This bench sweeps the number of failed nodes and records what each
system can still deliver.
"""

import pytest

from repro.evaluation import fault_sweep

class TestFaultTolerance:
    def test_section34_failures_sweep(self, benchmark, series_report):
        def run():
            return fault_sweep([0, 1, 2, 3], seed=1100)

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [(r["failed"], round(r["available"], 3), r["stock"],
                 round(r["earl_estimate_err"], 4), round(r["earl_cv"], 4),
                 round(r["earl_input"], 3)) for r in results]
        series_report(
            "fault_tolerance", "§3.4: results under node failures "
            "(5 nodes, replication 2, 20 GB)",
            ["failed_nodes", "data_available", "stock_job", "earl_err",
             "earl_cv", "earl_input_frac"],
            rows,
            notes="paper §3.4: EARL returns an estimate with an error "
                  "bound despite node failures; stock Hadoop cannot "
                  "complete once any block loses all replicas")

        # one failure is always survivable with replication 2
        assert results[1]["stock"] == "ok"
        assert results[1]["earl_estimate_err"] < 0.15
        # at >=2 failures data loss is expected: stock fails, EARL keeps
        # answering with a bound
        heavy = [r for r in results if r["failed"] >= 2
                 and r["available"] < 1.0]
        assert heavy, "sweep never lost data; weaken replication"
        for r in heavy:
            assert r["stock"] == "FAILED"
            # a usable (if degraded) estimate, with a finite bound
            assert r["earl_estimate_err"] < 0.35
            assert r["earl_cv"] < 1.0
        # the reported error bound honestly degrades as data disappears
        assert results[-1]["earl_cv"] > results[0]["earl_cv"]
