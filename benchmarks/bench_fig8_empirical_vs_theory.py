"""Figure 8: empirical (SSABE) vs theoretical sample size & bootstraps.

Paper claims (§6.4): theoretical sample-size prediction is
*over*-estimated at low error tolerances and *under*-estimated at high
ones; theoretical bootstrap-count prediction is frequently off in both
directions; empirically, "for a 5% error threshold, a 1% uniform sample
and 30 bootstraps are required" on their workload.
"""

import numpy as np
import pytest

from repro.core.ssabe import (
    estimate_parameters,
    theoretical_sample_size_mean,
)
from repro.core.bootstrap import theoretical_num_bootstraps
from repro.workloads import numeric_dataset

SIGMAS = [0.01, 0.02, 0.05, 0.10, 0.20]
POPULATION = 200_000


class TestFig8:
    def test_fig8_empirical_vs_theoretical(self, benchmark, series_report):
        population = numeric_dataset(POPULATION, "lognormal", seed=800)
        pop_cv = float(np.std(population, ddof=1) / np.mean(population))
        pilot = population[:2000]

        def run():
            rows = []
            for sigma in SIGMAS:
                res = estimate_parameters(pilot, POPULATION, "mean",
                                          sigma=sigma, seed=801)
                theory_n = theoretical_sample_size_mean(pop_cv, sigma)
                theory_B = theoretical_num_bootstraps(sigma)
                rows.append({
                    "sigma": sigma,
                    "ssabe_n": res.n, "theory_n": theory_n,
                    "ssabe_B": res.B, "theory_B": theory_B,
                    "n_ratio": res.n / theory_n,
                    "fraction": res.n / POPULATION,
                })
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        series_report(
            "fig8_empirical_vs_theory",
            "Fig 8: SSABE estimates vs theoretical predictions (mean)",
            ["sigma", "ssabe_n", "theory_n", "n_ratio", "ssabe_B",
             "theory_B", "sample_fraction"],
            [(r["sigma"], r["ssabe_n"], r["theory_n"],
              round(r["n_ratio"], 3), r["ssabe_B"], r["theory_B"],
              round(r["fraction"], 5)) for r in rows],
            notes="paper: theory over-estimates n at tight sigma, "
                  "under-estimates at loose sigma; empirical B "
                  "(~15-30) is far below the 1/(2 eps^2) rule")

        by_sigma = {r["sigma"]: r for r in rows}
        # theory over-estimates n at the tight end...
        assert by_sigma[0.01]["n_ratio"] < 1.0
        # ...and under-estimates at the loose end (empirical n has a
        # floor: a handful of records never yields a stable estimate)
        assert by_sigma[0.20]["n_ratio"] > 1.0
        # theoretical B is off in both directions (§6.4): dramatically
        # high at tight tolerances...
        for r in rows:
            if r["sigma"] <= 0.05:
                assert r["theory_B"] > 3 * r["ssabe_B"]
        # ...and below the practical requirement at loose ones ("
        # theoretical bootstrap prediction frequently under-estimates")
        assert by_sigma[0.20]["theory_B"] < by_sigma[0.20]["ssabe_B"]
        # the paper's headline data point: at sigma=5% a ~1% sample and
        # a few tens of bootstraps suffice (order-of-magnitude check)
        assert by_sigma[0.05]["fraction"] < 0.05
        assert 10 <= by_sigma[0.05]["ssabe_B"] <= 60

    def test_fig8_ssabe_estimates_actually_deliver(self, benchmark,
                                                   series_report):
        """The point of Fig 8: SSABE's (B, n) reach the requested error.
        Validate by running the bootstrap at the estimated parameters
        and measuring the realized accuracy against the true mean."""
        population = numeric_dataset(POPULATION, "lognormal", seed=802)
        true_mean = float(np.mean(population))
        rng = np.random.default_rng(803)

        def run():
            rows = []
            for sigma in [0.02, 0.05, 0.10]:
                res = estimate_parameters(population[:2000], POPULATION,
                                          "mean", sigma=sigma, seed=804)
                errors = []
                for _ in range(30):
                    sample = rng.choice(population, size=res.n,
                                        replace=False)
                    errors.append(abs(np.mean(sample) - true_mean)
                                  / true_mean)
                rows.append((sigma, res.n, res.B,
                             float(np.mean(errors)),
                             float(np.quantile(errors, 0.9))))
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        series_report(
            "fig8_delivery", "Fig 8 check: realized error at SSABE's n",
            ["sigma", "n", "B", "mean_rel_err", "p90_rel_err"], rows)
        for sigma, n, B, mean_err, p90_err in rows:
            # the mean realized error must be at/below the bound
            assert mean_err < sigma * 1.2
