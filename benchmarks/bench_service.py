"""Service throughput smoke: N concurrent sessions over one shared pilot.

Measures the approximate-query service end to end through the
in-process client: submit ``--sessions`` statistic specs in one
dispatch window (they share a single pilot and engine loop), drain
every session concurrently with ack-as-you-go polling, and report

* wall-clock elapsed and sessions/second,
* poll round-trip latency percentiles (p50/p90/p99/max),
* the high-water mark of any session's event buffer (must stay at
  most ``capacity + 1`` — backpressure, not growth).

Unlike the kernel/ingest/query benchmarks this one measures real
wall-clock (asyncio scheduling + engine compute), so there is no
committed-baseline regression gate; the JSON report is informational
and uploaded by the CI load job next to the 1,000-session harness's
latency report (``tests/service/test_load.py``).

Run standalone::

    python benchmarks/bench_service.py --sessions 200 \
        --out benchmarks/results/BENCH_service.json

or through pytest (``make bench`` collects it at the smoke size).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import EarlConfig  # noqa: E402 (path bootstrap above)
from repro.service import ApproxQueryService, LocalClient  # noqa: E402

SMOKE_SESSIONS = 200
EVENT_CAPACITY = 8
STATISTICS = ["mean", "sum", "std", "min", "max", "count"]
CFG = dict(sigma=0.05, B_override=10, n_override=100,
           expansion_factor=2.0, max_iterations=4)
SEED = 2024


async def _drain(client: LocalClient, sid: str,
                 latencies: List[float]) -> int:
    events, committed = 0, 0
    while True:
        t0 = time.perf_counter()
        page = await client.poll(sid, after=committed, wait=True,
                                 timeout=10.0)
        latencies.append(time.perf_counter() - t0)
        if page.events:
            events += len(page.events)
            committed = page.events[-1].seq
        elif page.terminal:
            assert page.state == "done", f"{sid} ended {page.state}"
            return events


async def _run(n_sessions: int) -> Dict[str, object]:
    service = ApproxQueryService(
        config=EarlConfig(**CFG), seed=SEED, batch_window=5.0,
        event_capacity=EVENT_CAPACITY, max_batch=n_sessions)
    service.register_dataset(
        "pop", np.random.default_rng(1).lognormal(1.0, 0.6, 50_000))
    await service.start()
    try:
        client = LocalClient(service)
        latencies: List[float] = []
        t0 = time.perf_counter()
        sids = [await client.submit(
            {"kind": "statistic", "dataset": "pop",
             "statistic": STATISTICS[i % len(STATISTICS)]})
            for i in range(n_sessions)]
        await service.flush()
        counts = await asyncio.gather(*[_drain(client, sid, latencies)
                                        for sid in sids])
        elapsed = time.perf_counter() - t0
        stats = await client.stats()
    finally:
        await service.stop()

    lat = np.sort(np.asarray(latencies))

    def pct(q: float) -> float:
        return float(lat[min(len(lat) - 1, int(q / 100 * len(lat)))])

    high_water = int(stats["max_retained_events"])
    assert high_water <= EVENT_CAPACITY + 1, \
        f"event buffers grew past the bound: {high_water}"
    return {
        "sessions": n_sessions,
        "events_total": int(sum(counts)),
        "polls": len(latencies),
        "elapsed_seconds": round(elapsed, 3),
        "sessions_per_second": round(n_sessions / elapsed, 1),
        "max_retained_events": high_water,
        "poll_latency_seconds": {
            "p50": pct(50), "p90": pct(90), "p99": pct(99),
            "max": float(lat[-1]),
        },
    }


def run_service_bench(n_sessions: int) -> Dict[str, object]:
    return asyncio.run(_run(n_sessions))


def write_json(report: Dict[str, object], out: Path) -> None:
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")


class TestServiceThroughput:
    """Pytest entry point (``make bench``): smoke size, bound checks."""

    def test_concurrent_sessions_share_one_pilot(self):
        report = run_service_bench(SMOKE_SESSIONS)
        print("\nservice bench:", json.dumps(report, indent=2))
        write_json(report, Path(__file__).parent / "results"
                   / "BENCH_service.json")
        assert report["sessions"] == SMOKE_SESSIONS
        assert report["max_retained_events"] <= EVENT_CAPACITY + 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=SMOKE_SESSIONS,
                        help=f"concurrent sessions (default "
                             f"{SMOKE_SESSIONS})")
    parser.add_argument("--out", type=Path,
                        default=Path("benchmarks/results/"
                                     "BENCH_service.json"),
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    report = run_service_bench(args.sessions)
    write_json(report, args.out)
    lat = report["poll_latency_seconds"]
    print(f"{report['sessions']} sessions in "
          f"{report['elapsed_seconds']}s "
          f"({report['sessions_per_second']}/s), "
          f"{report['events_total']} events, poll p50 "
          f"{lat['p50'] * 1e3:.2f}ms p99 {lat['p99'] * 1e3:.2f}ms, "
          f"buffer high-water {report['max_retained_events']}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
