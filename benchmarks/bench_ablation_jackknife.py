"""Ablation (§8 future work): jackknife vs bootstrap error estimation.

The paper's conclusion names the jackknife as a future direction that
"although not as general and as robust as bootstrapping can still
provide better performance in specific situations".  This bench
quantifies the specific situation: for the (smooth) mean, one jackknife
pass replaces B bootstrap passes; for the (non-smooth) median the
jackknife is refused because its variance estimate is inconsistent.
"""

import numpy as np
import pytest

from repro.core import (
    AccuracyEstimationStage,
    EarlConfig,
    EarlSession,
    JackknifeEstimationStage,
)
from repro.workloads import numeric_dataset

SAMPLE_SIZES = [500, 1000, 2000, 4000, 8000]


class TestJackknifeAblation:
    def test_jackknife_vs_bootstrap_cost_and_agreement(self, benchmark,
                                                       series_report):
        population = numeric_dataset(100_000, "lognormal", seed=1400)

        def run():
            rows = []
            for n in SAMPLE_SIZES:
                sample = population[:n]
                jk = JackknifeEstimationStage("mean")
                jk_est = jk.offer(sample)
                bs = AccuracyEstimationStage("mean", B=30, seed=1401)
                bs_est = bs.offer(sample)
                rows.append((n, jk.work_ops, bs.work_ops,
                             round(bs.work_ops / jk.work_ops, 1),
                             round(jk_est.std, 4), round(bs_est.std, 4)))
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        series_report(
            "ablation_jackknife",
            "Ablation §8: jackknife vs bootstrap (mean, B=30)",
            ["n", "jackknife_ops", "bootstrap_ops", "ops_ratio",
             "jk_std", "bs_std"],
            rows,
            notes="jackknife: n ops and a deterministic estimate; "
                  "bootstrap: ~B×n ops; both target std(mean)")
        for n, jk_ops, bs_ops, ratio, jk_std, bs_std in rows:
            assert jk_ops == n
            assert ratio > 10          # ~B× cheaper
            assert jk_std == pytest.approx(bs_std, rel=0.5)

    def test_end_to_end_driver_comparison(self, benchmark, series_report):
        population = numeric_dataset(200_000, "lognormal", seed=1402)
        truth = float(np.mean(population))

        def run():
            rows = []
            for estimation in ("bootstrap", "jackknife"):
                errs, ns = [], []
                for seed in range(5):
                    cfg = EarlConfig(sigma=0.05, seed=seed,
                                     estimation=estimation)
                    res = EarlSession(population, "mean", config=cfg).run()
                    errs.append(abs(res.estimate - truth) / truth)
                    ns.append(res.n)
                rows.append((estimation, round(float(np.mean(errs)), 4),
                             int(np.mean(ns))))
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        series_report(
            "ablation_jackknife_e2e",
            "Ablation §8: end-to-end EARL with each estimator (mean, "
            "5 seeds)",
            ["estimation", "mean_rel_err", "mean_n"], rows)
        for estimation, err, n in rows:
            assert err < 0.06
