"""Fault-recovery overhead: flaky tasks under a FaultPolicy vs a clean run.

§3.4's "degrade, don't die" only pays off if surviving faults is cheap:
a job that loses 10% of its task attempts to injected failures must
recover (same output, bit for bit) for at most **2x** the clean run's
simulated ledger cost — retries, backoff waits and wasted attempts all
included.  The chaos harness's deterministic
:class:`repro.chaos.FlakyMapper` injects the failures, so the measured
costs are pure functions of the seeds and reproduce exactly.

* ``retries`` (gated) — 10% of map tasks fail their first attempt;
  ``FaultPolicy(max_task_retries=3)`` retries them in place.  The
  ``speedup`` is ``clean_seconds / faulted_seconds`` (<= 1.0; higher is
  cheaper recovery) and must stay >= ``1 / MAX_OVERHEAD``.
* ``storm`` (informational) — 30% of tasks fail their first two
  attempts: the heavy-weather curve, reported but not gated.
* the §3.4 failed-node sweep (pytest only) — kill 0..3 of 5 nodes and
  record what each system still delivers: stock Hadoop dies once any
  block loses every replica, EARL keeps answering with an honestly
  wider bound over the surviving sample.

Costs are **simulated ledger seconds, not wall-clock**, so the ratios
are machine-independent and deterministic for the committed seeds.

Outputs ``BENCH_faults.json``; the committed baseline at
``benchmarks/BENCH_faults.json`` is what the CI regression gate
(``tools/check_bench_regression.py --stages recovery``) compares fresh
runs against.

Run standalone::

    python benchmarks/bench_faults.py \
        --out benchmarks/results/BENCH_faults.json

or through pytest (``make bench`` / ``make bench-json``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.chaos import FlakyMapper  # noqa: E402
from repro.cluster import Cluster  # noqa: E402
from repro.mapreduce import (  # noqa: E402
    FaultPolicy,
    JobClient,
    JobConf,
    MeanReducer,
    ProjectionMapper,
)
from repro.mapreduce import counters as C  # noqa: E402
from repro.evaluation import fault_sweep  # noqa: E402

import numpy as np  # noqa: E402

#: The gated workload size (records in the input file).
N = 120_000
SEED = 31
#: The acceptance gate: recovering from 10% injected task failures may
#: cost at most this factor over the clean run's ledger seconds.
MAX_OVERHEAD = 2.0
#: Injection profiles: (mode, failure rate, attempts each victim loses,
#: retry budget the policy grants).
PROFILES = (
    ("retries", 0.10, 1, 3),
    ("storm", 0.30, 2, 4),
)


def _loaded_cluster(n: int) -> Cluster:
    cluster = Cluster(n_nodes=5, block_size=32 * 1024, replication=2,
                      seed=SEED)
    values = np.random.default_rng(SEED + 1).normal(50.0, 5.0, n)
    cluster.hdfs.write_lines("/in", [f"{v:.6f}" for v in values])
    return cluster


def _run(cluster: Cluster, mapper, policy: Optional[FaultPolicy]):
    conf = JobConf(name="mean", input_path="/in", mapper=mapper,
                   reducer=MeanReducer(), seed=SEED + 2,
                   fault_policy=policy)
    return JobClient(cluster).run(conf)


def recovery_cost(n: int, *, rate: float, extra_attempts: int,
                  retries: int) -> Dict[str, object]:
    """Clean ledger cost vs the same job with injected flaky tasks."""
    cluster = _loaded_cluster(n)
    clean = _run(cluster, ProjectionMapper(),
                 FaultPolicy(max_task_retries=retries))
    flaky = FlakyMapper(ProjectionMapper(), rate=rate,
                        extra_attempts=extra_attempts, seed=SEED + 3)
    faulted = _run(cluster, flaky,
                   FaultPolicy(max_task_retries=retries))
    assert faulted.output == clean.output, \
        "recovered job diverged from the clean output"
    assert faulted.counters[C.TASK_RETRIES] > 0, \
        "no injected fault actually fired; raise the rate"
    overhead = faulted.simulated_seconds / clean.simulated_seconds
    return {
        "clean_seconds": round(clean.simulated_seconds, 4),
        "faulted_seconds": round(faulted.simulated_seconds, 4),
        "task_retries": int(faulted.counters[C.TASK_RETRIES]),
        "overhead": round(overhead, 4),
        "speedup": round(1.0 / overhead, 4),
    }


def run_fault_bench(sizes: Sequence[int]) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for n in sizes:
        for mode, rate, extra, retries in PROFILES:
            rows.append({"n": n, "mode": mode,
                         "recovery": recovery_cost(
                             n, rate=rate, extra_attempts=extra,
                             retries=retries)})
    return rows


def check_overhead(rows: List[Dict[str, object]], *,
                   max_overhead: float = MAX_OVERHEAD,
                   at_n: int = N) -> None:
    """The headline claim: 10% injected task failures recover exactly
    for at most ``max_overhead``x the clean ledger cost."""
    gated = [row for row in rows
             if row["n"] == at_n and row["mode"] == "retries"]
    assert gated, f"no 'retries' measurement at n={at_n}"
    for row in gated:
        overhead = row["recovery"]["overhead"]
        assert overhead <= max_overhead, (
            f"recovery cost {overhead:.2f}x the clean run at n={at_n} "
            f"(gate: <= {max_overhead}x)")


def write_json(rows: List[Dict[str, object]], out: Path) -> None:
    payload = {
        "benchmark": "fault_recovery_overhead",
        "seed": SEED,
        "max_overhead": MAX_OVERHEAD,
        "protocol": ("same MapReduce mean job, clean vs chaos-injected "
                     "flaky tasks recovered by FaultPolicy retries; "
                     "simulated ledger seconds, machine-independent; "
                     "speedup = clean/faulted (higher = cheaper "
                     "recovery)"),
        "units": "simulated seconds",
        "results": rows,
    }
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")


class TestFaultRecoveryOverhead:
    """Pytest entry point (``make bench``): same sizes, same gate."""

    def test_injected_failures_recover_within_budget(self, benchmark,
                                                     series_report):
        rows = benchmark.pedantic(lambda: run_fault_bench([N]),
                                  rounds=1, iterations=1)
        series_report(
            "fault_recovery_overhead",
            "Recovery overhead: flaky tasks under FaultPolicy retries",
            ["n", "mode", "clean_s", "faulted_s", "retries", "overhead"],
            [(r["n"], r["mode"],
              r["recovery"]["clean_seconds"],
              r["recovery"]["faulted_seconds"],
              r["recovery"]["task_retries"],
              r["recovery"]["overhead"]) for r in rows],
            notes="outputs are bit-identical to the clean run; costs "
                  "are deterministic ledger seconds (see "
                  "BENCH_faults.json)")
        write_json(rows, Path(__file__).parent / "results"
                   / "BENCH_faults.json")
        check_overhead(rows)


class TestFaultToleranceSweep:
    """§3.4 failed-node sweep: what each system can still deliver.

    The paper argues (without a dedicated figure) that EARL "can be
    made more robust against node failures by delivering results with
    an estimated accuracy despite node failures", avoiding restarts
    entirely.  Pytest-only — the sweep has no speedup ratio to gate,
    so it reports a table instead of joining ``BENCH_faults.json``.
    """

    def test_section34_failures_sweep(self, benchmark, series_report):
        def run():
            return fault_sweep([0, 1, 2, 3], seed=1100)

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [(r["failed"], round(r["available"], 3), r["stock"],
                 round(r["earl_estimate_err"], 4), round(r["earl_cv"], 4),
                 round(r["earl_input"], 3)) for r in results]
        series_report(
            "fault_tolerance", "§3.4: results under node failures "
            "(5 nodes, replication 2, 20 GB)",
            ["failed_nodes", "data_available", "stock_job", "earl_err",
             "earl_cv", "earl_input_frac"],
            rows,
            notes="paper §3.4: EARL returns an estimate with an error "
                  "bound despite node failures; stock Hadoop cannot "
                  "complete once any block loses all replicas")

        # one failure is always survivable with replication 2
        assert results[1]["stock"] == "ok"
        assert results[1]["earl_estimate_err"] < 0.15
        # at >=2 failures data loss is expected: stock fails, EARL keeps
        # answering with a bound
        heavy = [r for r in results if r["failed"] >= 2
                 and r["available"] < 1.0]
        assert heavy, "sweep never lost data; weaken replication"
        for r in heavy:
            assert r["stock"] == "FAILED"
            # a usable (if degraded) estimate, with a finite bound
            assert r["earl_estimate_err"] < 0.35
            assert r["earl_cv"] < 1.0
        # the reported error bound honestly degrades as data disappears
        assert results[-1]["earl_cv"] > results[0]["earl_cv"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="*",
                        help=f"explicit n values (default {N})")
    parser.add_argument("--smoke", action="store_true",
                        help="alias for the default size (the benchmark "
                             "is deterministic simulated work either way)")
    parser.add_argument("--out", type=Path,
                        default=Path("benchmarks/results/"
                                     "BENCH_faults.json"),
                        help="where to write the JSON report")
    parser.add_argument("--no-assert", action="store_true",
                        help="measure and report only; skip the "
                             f"<= {MAX_OVERHEAD}x overhead gate")
    args = parser.parse_args(argv)

    sizes = tuple(args.sizes) if args.sizes else (N,)
    rows = run_fault_bench(sizes)
    write_json(rows, args.out)
    for row in rows:
        r = row["recovery"]
        print(f"n={row['n']:>9,}  {row['mode']:<8} "
              f"clean {r['clean_seconds']:>10.2f}s  "
              f"faulted {r['faulted_seconds']:>10.2f}s  "
              f"retries {r['task_retries']:>3}  "
              f"overhead {r['overhead']:>5.2f}x")
    print(f"wrote {args.out}")
    if not args.no_assert and any(
            r["n"] == N and r["mode"] == "retries" for r in rows):
        check_overhead(rows)
        print(f"overhead gate OK (<= {MAX_OVERHEAD}x at n={N:,})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
