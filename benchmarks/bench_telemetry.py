"""Telemetry overhead on the hot resample loop: enabled vs disabled.

The zero-perturbation contract (DESIGN.md §12) has a quantitative
half: with telemetry *enabled*, the per-round span + counter work must
cost <= 10 % of the engine's hot loop.  This benchmark drives the most
telemetry-dense path — an :class:`repro.core.EarlSession` pinned to a
fixed number of expansion rounds (an unreachable sigma with a hard
iteration cap), so each timing sample performs an identical, seed-
deterministic sequence of resample rounds — once with telemetry off
and once with it on, and gates the ratio.

Both sides use min-of-R timing (R runs, best wall time) to shed
scheduler noise, and the benchmark re-asserts the byte-identity half
of the contract on the way: the enabled run must produce exactly the
same estimate, sample size and iteration count as the disabled run.

* ``telemetry`` (gated) — ``speedup`` is enabled-throughput over
  disabled-throughput (<= 1.0 by construction); the acceptance gate is
  ``speedup >= 1/1.10``, i.e. enabled overhead <= 1.10x disabled.

Outputs ``BENCH_telemetry.json``; the committed baseline at
``benchmarks/BENCH_telemetry.json`` is what the CI regression gate
(``tools/check_bench_regression.py --stages telemetry``) compares
fresh runs against.

Run standalone::

    python benchmarks/bench_telemetry.py \
        --out benchmarks/results/BENCH_telemetry.json

or through pytest (``make bench`` / ``make bench-json``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import EarlConfig, EarlSession  # noqa: E402
from repro.obs import (  # noqa: E402
    REGISTRY,
    disable_telemetry,
    enable_telemetry,
    reset_telemetry,
)

import numpy as np  # noqa: E402

N = 200_000
SEED = 17
#: Unreachable bound + hard cap: every run performs exactly
#: ``ROUNDS`` expansion rounds, so enabled and disabled sides time an
#: identical instruction stream (modulo the telemetry under test).
ROUNDS = 15
CFG = dict(sigma=0.001, n_override=500, B_override=30,
           expansion_factor=1.3, max_iterations=ROUNDS)
#: Sessions per timing sample — amortises per-call noise.
SESSIONS_PER_SAMPLE = 4
#: The acceptance gate: enabled wall time <= this factor of disabled.
MAX_OVERHEAD = 1.10


def _data(n: int) -> np.ndarray:
    return np.random.default_rng(SEED).lognormal(1.0, 0.7, n)


def _run_sessions(data: np.ndarray):
    """One timing sample: a fixed batch of fixed-round sessions."""
    results = []
    for k in range(SESSIONS_PER_SAMPLE):
        cfg = EarlConfig(seed=SEED + 1 + k, **CFG)
        results.append(EarlSession(data, "mean", config=cfg).run())
    return results


def _best_of(data: np.ndarray, repeats: int):
    """Min-of-R wall time for the sample, plus the last results."""
    best = float("inf")
    results = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        results = _run_sessions(data)
        best = min(best, time.perf_counter() - t0)
    return best, results


def telemetry_overhead(n: int, repeats: int) -> Dict[str, object]:
    data = _data(n)
    try:
        disable_telemetry()
        reset_telemetry()
        _run_sessions(data)                       # warm-up (both paths)
        off_seconds, off_results = _best_of(data, repeats)

        enable_telemetry()
        reset_telemetry()
        on_seconds, on_results = _best_of(data, repeats)
        rounds_seen = REGISTRY.value("repro_engine_rounds_total",
                                     {"engine": "earl_session"})
    finally:
        disable_telemetry()
        reset_telemetry()

    # Zero perturbation, re-asserted where the overhead is measured:
    # telemetry may cost time, never bytes.
    for off, on in zip(off_results, on_results):
        assert off.estimate == on.estimate, "telemetry changed a result"
        assert off.n == on.n
        assert off.num_iterations == on.num_iterations == ROUNDS

    return {
        "disabled_seconds": round(off_seconds, 6),
        "enabled_seconds": round(on_seconds, 6),
        "rounds_per_side": ROUNDS * SESSIONS_PER_SAMPLE,
        "instrumented_rounds_seen": int(rounds_seen),
        "overhead": round(on_seconds / off_seconds, 4),
        "speedup": round(off_seconds / on_seconds, 4),
    }


def run_telemetry_bench(sizes: Sequence[int],
                        repeats: int) -> List[Dict[str, object]]:
    return [{"n": n, "mode": "hot-loop",
             "telemetry": telemetry_overhead(n, repeats)}
            for n in sizes]


def check_overhead(rows: List[Dict[str, object]], *,
                   max_overhead: float = MAX_OVERHEAD) -> None:
    """The gate: enabled telemetry costs <= ``max_overhead``x disabled
    on the hot resample loop."""
    for row in rows:
        overhead = row["telemetry"]["overhead"]
        assert overhead <= max_overhead, (
            f"telemetry overhead {overhead:.3f}x exceeds the "
            f"{max_overhead:.2f}x budget at n={row['n']}")


def write_json(rows: List[Dict[str, object]], out: Path) -> None:
    payload = {
        "benchmark": "telemetry_overhead",
        "seed": SEED,
        "rounds": ROUNDS,
        "sessions_per_sample": SESSIONS_PER_SAMPLE,
        "protocol": ("min-of-R wall time for a fixed batch of fixed-"
                     "round EarlSessions, telemetry disabled vs "
                     "enabled; speedup = disabled/enabled wall time "
                     "(<= 1.0 means enabled is slower); gate: "
                     f"overhead <= {MAX_OVERHEAD}x"),
        "units": "seconds",
        "results": rows,
    }
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")


class TestTelemetryOverhead:
    """Pytest entry point (``make bench``): same sizes, same gate."""

    def test_enabled_overhead_within_budget(self, benchmark,
                                            series_report):
        rows = benchmark.pedantic(
            lambda: run_telemetry_bench([N], repeats=5),
            rounds=1, iterations=1)
        series_report(
            "telemetry_overhead",
            "Telemetry overhead on the hot resample loop",
            ["n", "mode", "disabled_s", "enabled_s", "overhead"],
            [(r["n"], r["mode"],
              r["telemetry"]["disabled_seconds"],
              r["telemetry"]["enabled_seconds"],
              r["telemetry"]["overhead"]) for r in rows],
            notes="min-of-5 wall time over identical fixed-round "
                  "sessions; results byte-identical on both sides "
                  "(see BENCH_telemetry.json)")
        write_json(rows, Path(__file__).parent / "results"
                   / "BENCH_telemetry.json")
        check_overhead(rows)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="*",
                        help=f"explicit n values (default {N})")
    parser.add_argument("--smoke", action="store_true",
                        help="fewer timing repeats (3 instead of 5)")
    parser.add_argument("--out", type=Path,
                        default=Path("benchmarks/results/"
                                     "BENCH_telemetry.json"),
                        help="where to write the JSON report")
    parser.add_argument("--no-assert", action="store_true",
                        help="measure and report only; skip the "
                             f"<={MAX_OVERHEAD}x overhead gate")
    args = parser.parse_args(argv)

    sizes = tuple(args.sizes) if args.sizes else (N,)
    rows = run_telemetry_bench(sizes, repeats=3 if args.smoke else 5)
    write_json(rows, args.out)
    for row in rows:
        t = row["telemetry"]
        print(f"n={row['n']:>9,}  {row['mode']:<9} "
              f"disabled {t['disabled_seconds']:.4f}s  "
              f"enabled {t['enabled_seconds']:.4f}s  "
              f"overhead {t['overhead']:.3f}x")
    if not args.no_assert:
        check_overhead(rows)
        print(f"OK: telemetry overhead within {MAX_OVERHEAD:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
