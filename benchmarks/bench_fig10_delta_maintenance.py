"""Figure 10: processing time with and without the update procedure.

Paper claims (§6.6): computing the mean *with* incremental processing —
"executing the function on half of the data and merging the results with
the previously saved state" — is ~3x (300%) faster than the
without-optimization strategy of reprocessing the entire dataset, at
4 GB.  The second test measures the same effect inside the bootstrap:
delta-maintained resamples versus full re-bootstraps.
"""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.cluster.costmodel import CostLedger
from repro.core import run_stock_job
from repro.core.delta import (
    MAINTENANCE_NONE,
    MAINTENANCE_OPTIMIZED,
    ResampleSet,
)
from repro.core.earl import StatisticReducer
from repro.workloads import load_stand_in, numeric_dataset

SIZES_GB = [0.5, 1.0, 2.0, 4.0]
RECORDS = 30_000


def run_one_size(gb: float, seed: int) -> dict:
    """Process a dataset that doubled since the last run: without the
    update procedure the whole file is reprocessed; with it, only the new
    half is processed and merged into the saved state."""
    cluster = Cluster(n_nodes=5, block_size=1 << 20, seed=seed)
    full = load_stand_in(cluster, "/data/full", logical_gb=gb,
                         records=RECORDS, seed=seed + 1)
    # the second half alone (the delta that arrived since the snapshot)
    half = load_stand_in(cluster, "/data/half", logical_gb=gb / 2,
                         records=RECORDS // 2, seed=seed + 2)

    _, without = run_stock_job(cluster, full.path, "mean", seed=seed + 3)

    _, with_update = run_stock_job(cluster, half.path, "mean", seed=seed + 4)
    # merging the saved state costs one state merge (negligible, charged):
    merge_ledger = cluster.new_ledger()
    merge_ledger.charge_cpu_records(1)
    with_seconds = with_update.simulated_seconds + merge_ledger.total_seconds

    return {
        "gb": gb,
        "without_s": without.simulated_seconds,
        "with_s": with_seconds,
        "speedup": without.simulated_seconds / with_seconds,
    }


class TestFig10:
    def test_fig10_incremental_processing(self, benchmark, series_report):
        def run():
            return [run_one_size(gb, seed=1000 + 10 * i)
                    for i, gb in enumerate(SIZES_GB)]

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [(r["gb"], round(r["without_s"], 1), round(r["with_s"], 1),
                 round(r["speedup"], 2)) for r in results]
        series_report(
            "fig10_update_procedure",
            "Fig 10: processing time with/without the update procedure",
            ["GB", "without_s", "with_s", "speedup"],
            rows,
            notes="paper: ~300% speed-up at 4 GB from processing only "
                  "the delta and merging saved state")
        largest = results[-1]
        assert largest["speedup"] > 1.8   # paper: ~3x at 4 GB
        for r in results:
            assert r["with_s"] < r["without_s"]

    def test_fig10_resampling_delta_maintenance(self, benchmark,
                                                series_report):
        """The same effect inside the accuracy-estimation stage: delta-
        maintained resamples vs full re-bootstraps over a doubling
        sample (work in state operations and simulated I/O)."""
        data = numeric_dataset(64_000, "lognormal", seed=1050)

        def run():
            rows = []
            # fine-grained expansion (fixed +8k deltas on a 32k base):
            # the regime where delta maintenance shines — a full
            # re-bootstrap reprocesses the whole 40-64k sample for every
            # small delta
            steps = [(32000, 40000), (40000, 48000), (48000, 56000),
                     (56000, 64000)]
            for mode in (MAINTENANCE_NONE, MAINTENANCE_OPTIMIZED):
                ledger = CostLedger()
                rs = ResampleSet("mean", 30, maintenance=mode, seed=1051,
                                 ledger=ledger, io_scale=1000.0)
                rs.initialize(data[:32000])
                ops_base = rs.counters.state_ops
                for lo, hi in steps:
                    rs.expand(data[lo:hi])
                rows.append((mode, rs.counters.state_ops - ops_base,
                             rs.counters.disk_accesses,
                             round(ledger.total_seconds, 2)))
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        series_report(
            "fig10_resampling", "Fig 10 companion: resample maintenance "
            "work per expansion (B=30, sample 32k->64k in +8k deltas)",
            ["mode", "expansion_state_ops", "disk_accesses",
             "sim_seconds"], rows)
        none_row = next(r for r in rows if r[0] == MAINTENANCE_NONE)
        opt_row = next(r for r in rows if r[0] == MAINTENANCE_OPTIMIZED)
        # the optimized strategy does a small fraction of the work
        # (paper: ~300% gains from maintenance instead of rebuild)
        assert opt_row[1] < none_row[1] / 2
        assert opt_row[3] < none_row[3] / 2
