"""Shared infrastructure for the figure-reproduction benchmarks.

Each benchmark regenerates one table/figure of the paper's evaluation:
it runs the relevant workload on the simulated substrate, prints the
same series the paper plots, writes the series to
``benchmarks/results/<name>.txt`` (pytest captures stdout, so the files
are the durable record), and asserts the *shape* claims — who wins, by
roughly what factor, where crossovers fall.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, List, Sequence

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def _format_table(title: str, header: Sequence[str],
                  rows: Sequence[Sequence[object]], notes: str = "") -> str:
    widths = [max(len(str(header[i])),
                  max((len(_fmt(row[i])) for row in rows), default=0))
              for i in range(len(header))]
    lines = [f"== {title} =="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(_fmt(cell).ljust(w)
                               for cell, w in zip(row, widths)))
    if notes:
        lines.append("")
        lines.append(notes)
    return "\n".join(lines) + "\n"


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


@pytest.fixture
def series_report() -> Callable[..., str]:
    """Write a labelled series table to stdout and results/<name>.txt."""

    def write(name: str, title: str, header: Sequence[str],
              rows: Sequence[Sequence[object]], notes: str = "") -> str:
        text = _format_table(title, header, rows, notes)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text)
        print("\n" + text)
        return text

    return write
