"""Execution-backend benchmark: real wall-clock, not simulated seconds.

Everything else under ``benchmarks/`` measures the *simulated* cost
model; this file measures the one thing the cost model cannot: how long
the reproduction itself takes to run.  A bootstrap sweep (several
``B >= 200`` Monte-Carlo bootstraps over a sizeable sample) is executed
on each backend of :mod:`repro.exec`; the acceptance claims are

* byte-identical result distributions on every backend (always
  asserted), and
* ``>= 2x`` wall-clock improvement for ``processes`` over ``serial``
  on a multi-core machine (asserted only when ``>= 4`` CPUs are
  available — on the 1-2 core CI containers the numbers are recorded
  but the speed-up claim is skipped, since a process pool cannot beat
  serial without cores to spread over).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.bootstrap import bootstrap
from repro.exec import get_executor

#: Sweep shape: a handful of independent bootstraps, each B >= 200.
SWEEP_SEEDS = [101, 102, 103, 104, 105, 106]
B = 240
CHUNK_B = 24
SAMPLE_N = 50_000
STATISTIC = "median"  # sort-heavy numpy kernel: releases the GIL poorly,
#                       so "processes" is the interesting backend


@pytest.fixture(scope="module")
def sample() -> np.ndarray:
    return np.random.default_rng(77).lognormal(3.0, 1.0, SAMPLE_N)


def _sweep(sample: np.ndarray, backend: str, workers=None):
    """Run the bootstrap sweep on one backend; return (results, seconds)."""
    with get_executor(backend, max_workers=workers) as ex:
        start = time.perf_counter()
        results = [bootstrap(sample, STATISTIC, B=B, seed=seed,
                             executor=ex, chunk_b=CHUNK_B)
                   for seed in SWEEP_SEEDS]
        elapsed = time.perf_counter() - start
    return results, elapsed


def test_backend_wallclock_and_identity(sample, series_report):
    cpus = os.cpu_count() or 1
    timings = {}
    distributions = {}
    for backend in ("serial", "threads", "processes"):
        results, elapsed = _sweep(sample, backend)
        timings[backend] = elapsed
        distributions[backend] = np.stack([r.estimates for r in results])

    # Determinism first: a backend that changes a single number is a bug
    # no speed-up can excuse.
    assert np.array_equal(distributions["serial"], distributions["threads"])
    assert np.array_equal(distributions["serial"], distributions["processes"])

    speedup_proc = timings["serial"] / timings["processes"]
    speedup_thr = timings["serial"] / timings["threads"]
    rows = [
        ("serial", timings["serial"], 1.0),
        ("threads", timings["threads"], speedup_thr),
        ("processes", timings["processes"], speedup_proc),
    ]
    series_report(
        "exec_backends",
        f"Executor backends: {len(SWEEP_SEEDS)} x bootstrap(B={B}, "
        f"n={SAMPLE_N:,}, {STATISTIC}), wall-clock on {cpus} CPU(s)",
        ["backend", "seconds", "speedup_vs_serial"], rows,
        notes=("results byte-identical on all backends; >=2x processes "
               "speed-up asserted only on >=4 CPUs"))

    if cpus >= 4:
        assert speedup_proc >= 2.0, (
            f"processes backend only {speedup_proc:.2f}x faster than "
            f"serial on {cpus} CPUs (expected >= 2x)")
    else:
        pytest.skip(f"only {cpus} CPU(s): recorded timings, skipping the "
                    f">=2x speed-up assertion (processes: "
                    f"{speedup_proc:.2f}x)")


def test_worker_count_does_not_change_results(sample):
    """Chunk decomposition is fixed, so pool size is invisible in the
    numbers — only in the wall-clock."""
    with get_executor("processes", max_workers=1) as ex1:
        one = bootstrap(sample, STATISTIC, B=B, seed=5, executor=ex1,
                        chunk_b=CHUNK_B)
    with get_executor("processes", max_workers=4) as ex4:
        four = bootstrap(sample, STATISTIC, B=B, seed=5, executor=ex4,
                         chunk_b=CHUNK_B)
    assert np.array_equal(one.estimates, four.estimates)
