"""Ingest throughput: columnar split cache + batched samplers vs scalar.

EARL re-touches its input on every expansion iteration: pre-map
sampling probes random offsets (backtracking to line starts) and the
record reader re-scans splits.  PR 4's columnar ingest plane
(:mod:`repro.hdfs.split_cache`) newline-indexes a split once and turns
both operations into array lookups; this benchmark measures the two
resulting hot paths against their scalar references at n ∈ {2·10⁴,
10⁵, 10⁶} lines:

* ``premap`` — lines/sec drawing a sample through
  :class:`~repro.sampling.premap.PreMapSampler` (``batched=True`` incl.
  the cold index build, vs ``batched=False``).  Both consume the
  identical RNG stream and charge identical simulated costs — the
  ratio is a pure constant-factor comparison, like ``bench_kernel``'s.
* ``reread`` — lines/sec re-scanning every split (three warm passes,
  the M3R regime an iterative driver lives in), cached vs scalar.

Outputs machine-readable ``BENCH_ingest.json``; the committed copy at
``benchmarks/BENCH_ingest.json`` is the baseline the CI regression gate
(``tools/check_bench_regression.py``) compares fresh runs against.
Raw lines/sec is machine-dependent, so the gated quantity is the
cached/scalar *speedup* ratio.

Run standalone::

    python benchmarks/bench_ingest.py --smoke --out benchmarks/results/BENCH_ingest.json

or through pytest (``make bench`` / ``make bench-json``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cluster import Cluster  # noqa: E402 (path bootstrap above)
from repro.hdfs.record_reader import LineRecordReader  # noqa: E402
from repro.sampling.premap import PreMapSampler  # noqa: E402

#: Full sweep (the committed baseline) and the CI smoke subset.
FULL_SIZES = (20_000, 100_000, 1_000_000)
SMOKE_SIZES = (20_000, 100_000)
#: The acceptance gate: cached ingest must be >= 5x scalar here.
ASSERT_AT_N = 100_000
MIN_SPEEDUP = 5.0
SEED = 7
#: Splits per file — enough map tasks to exercise per-split state.
N_SPLITS = 8
#: Warm re-scan passes per measurement (the per-iteration regime).
REREAD_PASSES = 3


def _build_cluster(n: int) -> Cluster:
    cluster = Cluster(n_nodes=5, block_size=1 << 20, seed=3)
    cluster.hdfs.write_lines("/bench", [f"{i:012d}" for i in range(n)])
    return cluster


def _splits(cluster: Cluster):
    size = cluster.hdfs.file_size("/bench")
    return cluster.hdfs.get_splits("/bench", max(1, size // N_SPLITS))


def _premap_target(n: int) -> int:
    return min(n // 2, 50_000)


def _time_premap(n: int, batched: bool) -> float:
    """Seconds to draw the target sample on a fresh cluster.

    The batched timing includes the cold newline-index build — the
    cache pays for itself within a single iteration's probes.
    """
    cluster = _build_cluster(n)
    size = cluster.hdfs.file_size("/bench")
    sampler = PreMapSampler(cluster.hdfs, "/bench", batched=batched,
                            split_logical_bytes=max(1, size // N_SPLITS))
    sampler.set_total_target(_premap_target(n))
    rng = np.random.default_rng(SEED)
    ledger = cluster.new_ledger()
    t0 = time.perf_counter()
    for split in sampler.splits:
        for _ in sampler.read(cluster.hdfs, split, ledger, rng):
            pass
    elapsed = time.perf_counter() - t0
    assert sampler.sampled_count == _premap_target(n)
    return elapsed


def _time_reread(n: int, cached: bool) -> float:
    """Seconds for ``REREAD_PASSES`` warm re-scans of every split."""
    cluster = _build_cluster(n)
    splits = _splits(cluster)
    # one untimed warm-up pass: the cached path materializes its index
    # here, the scalar path gets the same OS/alloc warm-up
    for split in splits:
        for _ in LineRecordReader(cluster.hdfs, split,
                                  cached=cached).read_records():
            pass
    t0 = time.perf_counter()
    for _ in range(REREAD_PASSES):
        for split in splits:
            for _ in LineRecordReader(cluster.hdfs, split,
                                      cached=cached).read_records():
                pass
    return time.perf_counter() - t0


def run_ingest_bench(sizes: Sequence[int], *,
                     repeats: int = 2) -> List[Dict[str, object]]:
    """Measure both modes at every size; returns result rows."""
    rows: List[Dict[str, object]] = []
    for n in sizes:
        reps = 1 if n >= 1_000_000 else repeats
        for mode, timer, fast_flag, items in (
                ("premap", _time_premap, True, _premap_target(n)),
                ("reread", _time_reread, True, n * REREAD_PASSES)):
            # identical best-of protocol for both implementations
            scalar = min(timer(n, False) for _ in range(reps))
            cached = min(timer(n, fast_flag) for _ in range(reps))
            s_tp = items / scalar
            c_tp = items / cached
            rows.append({
                "n": n, "mode": mode,
                "throughput": {
                    "scalar_lines_per_s": round(s_tp),
                    "cached_lines_per_s": round(c_tp),
                    "speedup": round(c_tp / s_tp, 2),
                },
            })
    return rows


def check_speedups(rows: List[Dict[str, object]], *,
                   min_speedup: float = MIN_SPEEDUP,
                   at_n: int = ASSERT_AT_N) -> None:
    """The headline claim: >= ``min_speedup``x pre-map sampling *and*
    record re-read throughput at ``at_n`` lines."""
    gated = [row for row in rows if row["n"] == at_n]
    assert gated, f"no measurements at n={at_n}"
    for row in gated:
        speedup = row["throughput"]["speedup"]
        assert speedup >= min_speedup, (
            f"{row['mode']}: cached ingest only {speedup:.1f}x scalar "
            f"at n={at_n} (need >= {min_speedup}x)")


def write_json(rows: List[Dict[str, object]], out: Path, *,
               smoke: bool) -> None:
    payload = {
        "benchmark": "ingest_throughput",
        "seed": SEED,
        "smoke": smoke,
        "premap_target": "min(n/2, 50000) sampled lines, cold cache",
        "reread_passes": REREAD_PASSES,
        "units": "lines/sec",
        "results": rows,
    }
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")


class TestIngestThroughput:
    """Pytest entry point (``make bench``): smoke sizes, same gate."""

    def test_cached_ingest_speedup(self, benchmark, series_report):
        rows = benchmark.pedantic(
            lambda: run_ingest_bench(SMOKE_SIZES), rounds=1, iterations=1)
        series_report(
            "ingest_throughput",
            "Columnar ingest: pre-map sampling / record re-read lines per second",
            ["n", "mode", "scalar", "cached", "speedup"],
            [(r["n"], r["mode"],
              r["throughput"]["scalar_lines_per_s"],
              r["throughput"]["cached_lines_per_s"],
              r["throughput"]["speedup"]) for r in rows],
            notes="identical RNG stream and simulated charges on both "
                  "paths; speedup is the machine-independent quantity "
                  "(see BENCH_ingest.json)")
        write_json(rows, Path(__file__).parent / "results"
                   / "BENCH_ingest.json", smoke=True)
        check_speedups(rows)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help=f"sizes {SMOKE_SIZES} instead of {FULL_SIZES}")
    parser.add_argument("--sizes", type=int, nargs="*",
                        help="explicit n values (overrides --smoke)")
    parser.add_argument("--out", type=Path,
                        default=Path("benchmarks/results/BENCH_ingest.json"),
                        help="where to write the JSON report")
    parser.add_argument("--no-assert", action="store_true",
                        help="measure and report only; skip the >=5x gate")
    args = parser.parse_args(argv)

    sizes = tuple(args.sizes) if args.sizes \
        else (SMOKE_SIZES if args.smoke else FULL_SIZES)
    # Smoke runs feed the CI regression gate: extra repeats tighten the
    # best-of timing so runner noise cannot masquerade as a regression.
    rows = run_ingest_bench(sizes, repeats=3 if args.smoke else 2)
    write_json(rows, args.out, smoke=sizes != FULL_SIZES)
    for row in rows:
        tp = row["throughput"]
        print(f"n={row['n']:>9,}  {row['mode']:<7} "
              f"scalar {tp['scalar_lines_per_s'] / 1e3:>8.0f}k/s  "
              f"cached {tp['cached_lines_per_s'] / 1e3:>8.0f}k/s  "
              f"{tp['speedup']:>6.1f}x")
    print(f"wrote {args.out}")
    if not args.no_assert and any(r["n"] == ASSERT_AT_N for r in rows):
        check_speedups(rows)
        print(f"speedup gate OK (>= {MIN_SPEEDUP}x at n={ASSERT_AT_N:,})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
