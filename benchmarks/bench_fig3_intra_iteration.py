"""Figure 3: work saved by the intra-iteration optimization vs sample size.

Paper claims (§4.2): the expected saving is ``P(X=y)·y`` (Eq. 4), e.g.
35% of resamples share 30% of their data at n=29; "on average we save
over 20% of work"; the optimum can be found by binary search; the
technique is "best suited for small sample sizes".
"""

import pytest

from repro.core.intra import (
    average_optimal_saving,
    optimal_sharing,
    prob_identical_fraction,
    shared_prefix_bootstrap,
    work_saved,
)
from repro.workloads import numeric_dataset

Y_SERIES = [0.1, 0.2, 0.3, 0.4, 0.5]
N_SERIES = [5, 10, 15, 20, 29, 40, 60, 80, 100]


class TestFig3:
    def test_fig3_work_saved_surface(self, benchmark, series_report):
        def run():
            rows = []
            for n in N_SERIES:
                y_star, saved_star = optimal_sharing(n)
                rows.append([n] + [work_saved(n, y) for y in Y_SERIES]
                            + [y_star, saved_star])
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        header = ["n"] + [f"saved@y={y}" for y in Y_SERIES] \
            + ["y*", "saved@y*"]
        series_report(
            "fig3_work_saved", "Fig 3: intra-iteration work saved vs n",
            header, rows,
            notes="paper: P(n=29, y=0.3) ~ 0.35; avg optimal saving > 20% "
                  "for small n; saving declines as n grows")
        # paper's worked example:
        assert prob_identical_fraction(29, 0.3) == pytest.approx(0.35,
                                                                 abs=0.02)
        # declining with n:
        savings_at_optimum = [row[-1] for row in rows]
        assert savings_at_optimum[0] > savings_at_optimum[-1]
        # headline average over the small-sample regime:
        assert average_optimal_saving(range(2, 31)) > 0.20

    def test_fig3_measured_savings_match_model(self, benchmark,
                                               series_report):
        """The analytic surface must match *measured* op counts from the
        shared-prefix bootstrap implementation."""
        data = numeric_dataset(29, "lognormal", seed=31)

        def run():
            rows = []
            for y in Y_SERIES:
                res = shared_prefix_bootstrap(data, "mean", B=3000, y=y,
                                              seed=32)
                k = int(y * len(data))
                predicted = prob_identical_fraction(len(data), y) \
                    * (k / len(data))
                rows.append((y, predicted, res.ops_saved_fraction))
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        series_report(
            "fig3_measured", "Fig 3 check: predicted vs measured saving "
            "(n=29, B=3000)",
            ["y", "predicted", "measured"], rows)
        for _, predicted, measured in rows:
            assert measured == pytest.approx(predicted, abs=0.04)
