"""Cross-query scheduler efficiency: shared scans vs independent runs.

k concurrent statistic queries over the same hot table each need a
permuted-sample prefix of that table.  Run independently they draw k
separate samples — the table is scanned and sampled k times.  Admitted
to one :class:`repro.scheduler.QueryScheduler` they share a single
scan-group engine (one permutation, one pilot, one growing sample), so
the table's rows are drawn **once**, sized by the slowest query's need
instead of the sum of everyone's:

* ``shared`` (gated) — k statistic queries over one 120k-row table:
  total rows drawn by k solo ``EarlSession`` runs vs one scheduled
  run.  The speedup is roughly ``sum(need_i) / max(need_i)`` and must
  stay >= 2x.
* ``grouped`` (informational) — two grouped queries over one skewed
  table: the scheduler's global per-round budget lets finished groups
  donate rows to laggards *across* queries, so every per-group target
  is met with fewer total rows than two independent runs.

Rows processed is **simulated sampling work, not wall-clock**, so the
reported speedup is machine-independent and deterministic for the
committed seed.

Outputs ``BENCH_scheduler.json``; the committed baseline at
``benchmarks/BENCH_scheduler.json`` is what the CI regression gate
(``tools/check_bench_regression.py --stages rows``) compares fresh
runs against.

Run standalone::

    python benchmarks/bench_scheduler.py \
        --out benchmarks/results/BENCH_scheduler.json

or through pytest (``make bench`` / ``make bench-json``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import EarlConfig, EarlSession  # noqa: E402
from repro.query import Query, agg  # noqa: E402
from repro.scheduler import QueryScheduler  # noqa: E402
from repro.workloads import skewed_keyed_values  # noqa: E402

import numpy as np  # noqa: E402

#: The gated shared-table workload and the informational grouped one.
SHARED_N = 120_000
GROUPED_N = 24_000
SEED = 29
SIGMA = 0.03
#: The concurrent statistic queries dashboards actually issue together.
STATISTICS = ("mean", "median", "p90", "std")
#: The acceptance gate: the scheduled run must draw >= this factor
#: fewer rows than the independent runs on the shared hot table.
MIN_SPEEDUP = 2.0


def _table(n: int) -> np.ndarray:
    return np.random.default_rng(SEED).lognormal(1.0, 0.8, n)


def shared_rows(n: int) -> Dict[str, object]:
    """k solo sessions vs one scheduled scan group, same seeds."""
    data = _table(n)
    cfg = EarlConfig(sigma=SIGMA, seed=SEED + 1)

    independent = 0
    for stat in STATISTICS:
        result = EarlSession(data, stat, config=cfg).run()
        assert result.achieved, f"solo {stat} missed its bound"
        independent += result.n

    sched = QueryScheduler()
    for stat in STATISTICS:
        sched.submit_statistic(data, stat, config=cfg, table="hot")
    results = sched.run()
    assert all(r is not None and r.achieved for r in results.values()), \
        "scheduled run missed a bound"
    scheduled = sched.rows_processed
    return {"independent_rows": int(independent),
            "scheduled_rows": int(scheduled),
            "speedup": round(independent / scheduled, 2)}


def grouped_rows(n: int) -> Dict[str, object]:
    """Two grouped queries, independent vs globally budgeted."""
    keys, values = skewed_keyed_values(n, 6, skew=1.4, value_sigma=0.6,
                                       seed=SEED)
    table = {"key": keys, "value": values}
    cfgs = [EarlConfig(sigma=0.04, seed=SEED + 2,
                       B_override=30, n_override=75),
            EarlConfig(sigma=0.06, seed=SEED + 3,
                       B_override=30, n_override=75)]

    def query(cfg):
        return Query([agg("mean", "value")], group_by="key").on(
            table, config=cfg)

    independent = 0
    for cfg in cfgs:
        result = query(cfg).run()
        assert result.achieved, "independent grouped run missed a bound"
        independent += result.rows_processed

    sched = QueryScheduler()
    for i, cfg in enumerate(cfgs):
        sched.submit_grouped(query(cfg).plan(), name=f"q{i}")
    results = sched.run()
    assert all(r is not None and r.achieved for r in results.values()), \
        "scheduled grouped run missed a bound"
    scheduled = sched.rows_processed
    return {"independent_rows": int(independent),
            "scheduled_rows": int(scheduled),
            "speedup": round(independent / scheduled, 2)}


def run_scheduler_bench(sizes: Sequence[int]) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for n in sizes:
        rows.append({"n": n, "mode": "shared", "rows": shared_rows(n)})
    rows.append({"n": GROUPED_N, "mode": "grouped",
                 "rows": grouped_rows(GROUPED_N)})
    return rows


def check_speedups(rows: List[Dict[str, object]], *,
                   min_speedup: float = MIN_SPEEDUP,
                   at_n: int = SHARED_N) -> None:
    """The headline claim: the scheduled run reaches every query's
    accuracy target drawing >= ``min_speedup``x fewer rows than the
    same queries run independently over the shared hot table."""
    gated = [row for row in rows
             if row["n"] == at_n and row["mode"] == "shared"]
    assert gated, f"no shared measurement at n={at_n}"
    for row in gated:
        speedup = row["rows"]["speedup"]
        assert speedup >= min_speedup, (
            f"scheduled run only {speedup:.1f}x fewer rows than "
            f"independent at n={at_n} (need >= {min_speedup}x)")
    # Grouped reallocation is informational, but must never cost rows.
    for row in rows:
        if row["mode"] == "grouped":
            assert row["rows"]["speedup"] >= 1.0, \
                "budgeted grouped run drew MORE rows than independent"


def write_json(rows: List[Dict[str, object]], out: Path) -> None:
    payload = {
        "benchmark": "scheduler_rows_processed",
        "seed": SEED,
        "sigma": SIGMA,
        "statistics": list(STATISTICS),
        "protocol": ("rows drawn to every query's accuracy target: k "
                     "independent engine runs vs one QueryScheduler "
                     "run (shared scan group / global round budget); "
                     "simulated sampling work, machine-independent"),
        "units": "rows",
        "results": rows,
    }
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")


class TestSchedulerEfficiency:
    """Pytest entry point (``make bench``): same sizes, same gate."""

    def test_shared_scan_beats_independent_runs(self, benchmark,
                                                series_report):
        rows = benchmark.pedantic(
            lambda: run_scheduler_bench([SHARED_N]), rounds=1,
            iterations=1)
        series_report(
            "scheduler_rows_processed",
            "Cross-query scheduler: rows drawn to accuracy targets",
            ["n", "mode", "independent", "scheduled", "speedup"],
            [(r["n"], r["mode"],
              r["rows"]["independent_rows"],
              r["rows"]["scheduled_rows"],
              r["rows"]["speedup"]) for r in rows],
            notes="same seeds and sigmas on both sides; rows processed "
                  "is simulated sampling work, so the speedup is "
                  "machine-independent (see BENCH_scheduler.json)")
        write_json(rows, Path(__file__).parent / "results"
                   / "BENCH_scheduler.json")
        check_speedups(rows)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="*",
                        help=f"explicit n values (default {SHARED_N})")
    parser.add_argument("--smoke", action="store_true",
                        help="alias for the default size (the benchmark "
                             "is deterministic simulated work either way)")
    parser.add_argument("--out", type=Path,
                        default=Path("benchmarks/results/"
                                     "BENCH_scheduler.json"),
                        help="where to write the JSON report")
    parser.add_argument("--no-assert", action="store_true",
                        help="measure and report only; skip the "
                             f">={MIN_SPEEDUP}x gate")
    args = parser.parse_args(argv)

    sizes = tuple(args.sizes) if args.sizes else (SHARED_N,)
    rows = run_scheduler_bench(sizes)
    write_json(rows, args.out)
    for row in rows:
        r = row["rows"]
        print(f"n={row['n']:>9,}  {row['mode']:<8} "
              f"independent {r['independent_rows']:>9,} rows  "
              f"scheduled {r['scheduled_rows']:>9,} rows  "
              f"{r['speedup']:>6.1f}x")
    print(f"wrote {args.out}")
    if not args.no_assert and any(
            r["n"] == SHARED_N and r["mode"] == "shared" for r in rows):
        check_speedups(rows)
        print(f"speedup gate OK (>= {MIN_SPEEDUP}x at n={SHARED_N:,})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
