"""Figure 6: approximate median — three implementations compared.

Paper claims (§6.2): (1) a naive Monte-Carlo bootstrap gives a reliable
median estimate with a ~3x speed-up over standard Hadoop (smaller sample
requirement); (2) the optimized resampling algorithm (delta maintenance +
sketches + pipelined sample expansion) gives another ~4x over the naive
resampling algorithm.
"""

import pytest

from repro.evaluation import FIG6_SIZES_GB, fig6_sweep

class TestFig6:
    def test_fig6_median_three_implementations(self, benchmark,
                                               series_report):
        def run():
            return fig6_sweep(FIG6_SIZES_GB, seed=600)

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [(r["gb"], round(r["stock_s"], 1), round(r["naive_s"], 1),
                 round(r["optimized_s"], 1),
                 round(r["stock_over_naive"], 2),
                 round(r["naive_over_opt"], 2),
                 round(r["naive_err"], 4), round(r["opt_err"], 4))
                for r in results]
        series_report(
            "fig6_median",
            "Fig 6: median — stock Hadoop vs naive vs optimized resampling",
            ["GB", "stock_s", "naive_s", "opt_s", "stock/naive",
             "naive/opt", "naive_err", "opt_err"],
            rows,
            notes="paper: naive bootstrap ~3x over stock Hadoop; "
                  "optimized resampling another ~4x over naive")

        largest = results[-1]
        # ordering holds at every size (small sizes can be near-ties:
        # the paper's curves also converge at the left edge)
        for r in results:
            assert r["naive_s"] < r["stock_s"] * 1.1
            assert r["optimized_s"] < r["naive_s"] * 1.05
        # naive bootstrap clearly beats stock at scale (paper: ~3x)
        assert largest["stock_over_naive"] > 2.0
        # optimized resampling clearly beats naive (paper: ~4x)
        assert largest["naive_over_opt"] > 2.0
        # both stay accurate
        assert largest["naive_err"] < 0.15
        assert largest["opt_err"] < 0.15
