"""Figure 2: effect of B and n on the estimated error cv.

Paper claims: (a) "roughly 30 bootstraps are required to provide a
confident estimate of the error"; (b) "a larger n results in a lower
error" (the cv decays like n^-1/2 for the mean).
"""

import numpy as np
import pytest

from repro.core.bootstrap import bootstrap_cv_curve, bootstrap_cv_vs_n
from repro.workloads import numeric_dataset


@pytest.fixture(scope="module")
def population():
    return numeric_dataset(200_000, "lognormal", seed=2024)


class TestFig2a:
    def test_fig2a_effect_of_B_on_cv(self, benchmark, population,
                                     series_report):
        sample = population[:2000]

        def run():
            return bootstrap_cv_curve(sample, "mean", B_max=60, seed=7)

        curve = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [(b, cv) for b, cv in curve]
        # Stability: the spread of the cv over B in [30, 60] must be far
        # smaller than over B in [2, 15] — the "stabilizes around 30"
        # shape of Fig. 2(a).
        early = [cv for b, cv in curve if b <= 15]
        late = [cv for b, cv in curve if b >= 30]
        early_spread = max(early) - min(early)
        late_spread = max(late) - min(late)
        series_report(
            "fig2a_cv_vs_B", "Fig 2(a): effect of B on cv (mean, n=2000)",
            ["B", "cv"], rows,
            notes=(f"spread cv over B in [2,15]: {early_spread:.4f}; "
                   f"over B in [30,60]: {late_spread:.4f} "
                   "(paper: curve flattens by B~30)"))
        assert late_spread < early_spread / 2

    def test_fig2a_median_statistic(self, benchmark, population,
                                    series_report):
        """Same stabilization for a non-smooth statistic (the median)."""
        sample = population[:2000]

        def run():
            return bootstrap_cv_curve(sample, "median", B_max=60, seed=8)

        curve = benchmark.pedantic(run, rounds=1, iterations=1)
        late = [cv for b, cv in curve if b >= 30]
        series_report(
            "fig2a_cv_vs_B_median",
            "Fig 2(a) variant: effect of B on cv (median, n=2000)",
            ["B", "cv"], curve)
        assert max(late) - min(late) < 0.02


class TestFig2b:
    def test_fig2b_effect_of_n_on_cv(self, benchmark, population,
                                     series_report):
        sizes = [50, 100, 200, 400, 800, 1600, 3200, 6400, 12800]

        def run():
            return bootstrap_cv_vs_n(population, sizes, "mean", B=60,
                                     seed=9)

        curve = benchmark.pedantic(run, rounds=1, iterations=1)
        cvs = [cv for _, cv in curve]
        series_report(
            "fig2b_cv_vs_n", "Fig 2(b): effect of n on cv (mean, B=60)",
            ["n", "cv"], curve,
            notes="paper: larger n -> lower cv (~n^-1/2 for the mean)")
        # monotone-ish decrease end to end, and the rate is ~ n^-1/2:
        assert cvs[-1] < cvs[0] / 4
        slope = np.polyfit(np.log([n for n, _ in curve]), np.log(cvs), 1)[0]
        assert -0.8 < slope < -0.25
