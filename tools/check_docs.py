#!/usr/bin/env python
"""docs-check: every ``*.md`` file referenced anywhere must exist.

Scans Python sources, docs, tests, benchmarks and examples for
references to Markdown files (``DESIGN.md``, ``[text](FILE.md)``, …)
and fails if a referenced file is missing from the repository —
the guard against the dangling-doc-reference class of rot (this repo
once shipped ``runners.py`` citing a DESIGN.md that did not exist).

Usage: python tools/check_docs.py   (exit 0 = clean, 1 = dangling refs)
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Directories scanned for references.
SCAN_DIRS = ["src", "tests", "benchmarks", "examples", "tools"]
#: Root-level files scanned for references (docs cite each other).
SCAN_GLOBS = ["*.md", "Makefile"]

#: A Markdown-file reference: a word ending in ``.md``, optionally with
#: a leading relative path.
_REF = re.compile(r"(?<![\w/.-])((?:[\w.-]+/)*[A-Za-z][\w.-]*\.md)\b")

#: Names that look like references but are not repo files — currently
#: only this script's own docstring/comment examples.
IGNORED = {
    "FILE.md",
    "benchmarks/results/x.md",
}


def references() -> dict[str, set[str]]:
    """Map of referenced .md path -> set of files referencing it."""
    refs: dict[str, set[str]] = {}
    files: list[Path] = []
    for d in SCAN_DIRS:
        files.extend((REPO / d).rglob("*.py"))
    for pattern in SCAN_GLOBS:
        files.extend(REPO.glob(pattern))
    for path in files:
        try:
            text = path.read_text(encoding="utf-8")
        except (UnicodeDecodeError, OSError):  # pragma: no cover
            continue
        for match in _REF.finditer(text):
            name = match.group(1)
            if name in IGNORED:
                continue
            refs.setdefault(name, set()).add(str(path.relative_to(REPO)))
    return refs


def main() -> int:
    refs = references()
    missing = []
    for name, sources in sorted(refs.items()):
        # A bare name ("DESIGN.md") resolves at the repo root; a path
        # ("benchmarks/results/x.md") resolves relative to the root.
        if not (REPO / name).exists():
            missing.append((name, sorted(sources)))
    if missing:
        print("docs-check: dangling Markdown references:")
        for name, sources in missing:
            print(f"  {name}  (referenced from: {', '.join(sources)})")
        return 1
    print(f"docs-check: ok ({len(refs)} distinct .md references all resolve)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
