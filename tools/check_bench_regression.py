"""CI gate: fail when a benchmark's speedup ratio regresses vs baseline.

Usage::

    python tools/check_bench_regression.py FRESH.json BASELINE.json \
        [--tolerance 0.2] [--min-n 100000] [--stages expand,...]

Compares a fresh benchmark report against its committed baseline
(``benchmarks/BENCH_kernel.json``, ``benchmarks/BENCH_ingest.json``).
Raw items/sec is machine-dependent — CI runners are not the laptop that
produced the baseline — so the gated quantity is the fast/reference
*speedup* ratio, which largely divides the machine out.

Both report schemas share one shape: ``payload["results"]`` is a list
of rows keyed by ``(n, mode)``, where each stage of a row is a dict
containing a ``"speedup"`` entry (``initialize``/``expand`` for the
kernel benchmark, ``throughput`` for the ingest benchmark).  The gate
fails when, for any ``(n, mode, stage)`` present in both reports with
``n >= --min-n`` (default 100 000), the fresh speedup falls more than
``tolerance`` (default 20%) below the baseline's.  Smaller sizes are
reported but not gated: their ratios are dominated by fixed overheads
(sketch-reload RNG, cold index builds) that do not scale uniformly
across machines and carry no stable regression signal.

``--stages`` restricts gating to a comma-separated list of stage names
(default: every stage found); the kernel gate passes ``expand`` to keep
its historical single-stage contract.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple


def load_rows(path: Path) -> Dict[Tuple[int, str], dict]:
    payload = json.loads(path.read_text())
    return {(row["n"], row["mode"]): row for row in payload["results"]}


def stages_of(row: dict) -> List[str]:
    """Stage names of a result row: its dict-valued speedup entries."""
    return sorted(k for k, v in row.items()
                  if isinstance(v, dict) and "speedup" in v)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", type=Path, help="just-measured report")
    parser.add_argument("baseline", type=Path, help="committed baseline")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional speedup drop (default 0.2)")
    parser.add_argument("--min-n", type=int, default=100_000,
                        help="gate only sizes >= this n (smaller sizes "
                             "are informational; default 100000)")
    parser.add_argument("--stages", type=str, default=None,
                        help="comma-separated stage names to gate "
                             "(default: every stage present in both "
                             "reports)")
    args = parser.parse_args(argv)

    fresh = load_rows(args.fresh)
    baseline = load_rows(args.baseline)
    only = set(args.stages.split(",")) if args.stages else None
    shared = sorted(set(fresh) & set(baseline))
    gated_keys = [key for key in shared if key[0] >= args.min_n]
    if not gated_keys:
        print(f"error: no shared (n, mode) pairs with n >= {args.min_n}",
              file=sys.stderr)
        return 2

    failures = []
    checked = 0
    for key in shared:
        n, mode = key
        stages = [s for s in stages_of(fresh[key])
                  if s in stages_of(baseline[key])
                  and (only is None or s in only)]
        for stage in stages:
            got = fresh[key][stage]["speedup"]
            want = baseline[key][stage]["speedup"]
            floor = (1.0 - args.tolerance) * want
            if key not in gated_keys:
                status = "info (below --min-n, not gated)"
            elif got >= floor:
                status = "ok"
                checked += 1
            else:
                status = "REGRESSED"
                failures.append((n, mode, stage))
                checked += 1
            print(f"n={n:>9,}  {mode:<9}  {stage:<10} speedup {got:6.1f}x "
                  f"(baseline {want:.1f}x, floor {floor:.1f}x)  {status}")

    if not checked:
        print("error: no gated stages shared between the reports",
              file=sys.stderr)
        return 2
    if failures:
        print(f"\nFAIL: speedup regressed >{args.tolerance:.0%} vs "
              f"baseline for {failures}", file=sys.stderr)
        return 1
    print(f"\nOK: no speedup regression beyond {args.tolerance:.0%} "
          f"on {checked} gated measurement(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
