"""CI gate: fail when kernel expand throughput regresses vs the baseline.

Usage::

    python tools/check_bench_regression.py FRESH.json BASELINE.json [--tolerance 0.2]

Compares a fresh ``benchmarks/bench_kernel.py`` report against the
committed baseline (``benchmarks/BENCH_kernel.json``).  Raw items/sec
is machine-dependent — CI runners are not the laptop that produced the
baseline — so the gated quantity is the vectorized/scalar *speedup*
ratio, which largely divides the machine out.  The gate fails when,
for any (n, maintainer) pair present in both reports with
``n >= --min-n`` (default 100 000), the fresh expand speedup falls more
than ``tolerance`` (default 20%) below the baseline's.  Smaller sizes
are reported but not gated: the optimized maintainer's ratio there is
dominated by sketch-reload RNG cost, which does *not* scale uniformly
across machines, so small-n ratios carry no stable regression signal.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_rows(path: Path) -> dict:
    payload = json.loads(path.read_text())
    return {(row["n"], row["mode"]): row for row in payload["results"]}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", type=Path, help="just-measured report")
    parser.add_argument("baseline", type=Path, help="committed baseline")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional speedup drop (default 0.2)")
    parser.add_argument("--min-n", type=int, default=100_000,
                        help="gate only sizes >= this n (smaller sizes "
                             "are informational; default 100000)")
    args = parser.parse_args(argv)

    fresh = load_rows(args.fresh)
    baseline = load_rows(args.baseline)
    shared = sorted(set(fresh) & set(baseline))
    gated = [key for key in shared if key[0] >= args.min_n]
    if not gated:
        print(f"error: no shared (n, mode) pairs with n >= {args.min_n}",
              file=sys.stderr)
        return 2

    failures = []
    for key in shared:
        n, mode = key
        got = fresh[key]["expand"]["speedup"]
        want = baseline[key]["expand"]["speedup"]
        floor = (1.0 - args.tolerance) * want
        if key not in gated:
            status = "info (below --min-n, not gated)"
        elif got >= floor:
            status = "ok"
        else:
            status = "REGRESSED"
            failures.append(key)
        print(f"n={n:>9,}  {mode:<9}  expand speedup {got:6.1f}x "
              f"(baseline {want:.1f}x, floor {floor:.1f}x)  {status}")

    if failures:
        print(f"\nFAIL: expand throughput regressed >"
              f"{args.tolerance:.0%} vs baseline for {failures}",
              file=sys.stderr)
        return 1
    print(f"\nOK: no expand-speedup regression beyond "
          f"{args.tolerance:.0%} on {len(gated)} gated measurement(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
