"""The approximate-query service: async sessions over the EARL engines.

:class:`ApproxQueryService` is the network-facing front end over
:class:`~repro.streaming.SessionManager`,
:class:`~repro.query.Query` (grouped sessions) and
:class:`~repro.core.EarlJob`.  A client submits a spec
(:mod:`repro.service.protocol`) and gets a session id; it then polls —
or long-polls — a monotonically event-id'd stream of snapshot events,
can detach and resume from any event id at or above its ack floor, and
can cancel to stop paying for sampling.

Architecture
------------
* **Stateless handlers over a pluggable store.**  Every request handler
  reads all session state from the
  :class:`~repro.service.store.SessionStore`; the service object holds
  only configuration and runtime plumbing.
* **One scheduler per dispatch window.**  Statistic *and* GROUP BY
  specs submitted within one dispatch window are admitted to a single
  :class:`~repro.scheduler.QueryScheduler` run: statistic specs over
  the same dataset share one scan, one pilot and one growing
  permutation-prefix sample (a thousand concurrent sessions cost one
  engine loop — the M3R/Shark-style hot-state reuse the ROADMAP's
  service north star asks for), and each expansion round the window's
  global sample budget is split across every ``(query, group)`` arm by
  expected error reduction.  One runner thread drives the window;
  cluster-backed job specs keep their own engines.
* **Sync engines, async front end.**  The engines are synchronous
  generators, driven by plain runner threads; each produced snapshot
  hops onto the event loop via ``run_coroutine_threadsafe`` and blocks
  on the bounded :class:`~repro.service.events.EventLog` append — the
  log's capacity is therefore end-to-end backpressure on the engine
  itself.  Handlers never block the loop; a thousand long-polls are a
  thousand condition waiters.
* **Explicit lifecycle with a TTL sweeper.**  PENDING → RUNNING →
  DONE/CANCELLED/FAILED, plus EXPIRED for sessions idle past the TTL
  (no client touch); terminal records linger for late resumes, then
  are removed.  Cancellation raises the record's cross-thread flag and
  the engine's own cancel hook, so sampling stops at the next round
  boundary and the cost ledger holds only completed iterations —
  the ``FeedbackChannel`` stop semantics of ``EarlJob.stream()``'s
  teardown do the cluster-side work.

See DESIGN.md §8 for the lifecycle state machine and the resume
protocol.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from dataclasses import replace
from typing import Any, Awaitable, Dict, List, Mapping, Optional

import numpy as np

from repro.core.config import EarlConfig
from repro.core.earl import EarlJob
from repro.core.grouped import GroupedSnapshot
from repro.query.model import Query
from repro.scheduler import QueryScheduler
from repro.service.events import EventLog
from repro.service.protocol import (
    ERR_BAD_REQUEST,
    ERR_BAD_SPEC,
    ERR_INTERNAL,
    ERR_UNKNOWN_OP,
    ERR_UNKNOWN_SESSION,
    EVENT_DEGRADED,
    EVENT_ERROR,
    EVENT_FINAL,
    EVENT_RETRY,
    EVENT_SNAPSHOT,
    EVENT_STATE,
    STATE_CANCELLED,
    STATE_DONE,
    STATE_EXPIRED,
    STATE_FAILED,
    STATE_PENDING,
    STATE_RUNNING,
    JobSpec,
    QuerySpec,
    ServiceError,
    StatisticSpec,
    parse_spec,
)
from repro.service.store import InMemorySessionStore, SessionRecord, SessionStore
from repro.util.rng import ensure_rng


class ApproxQueryService:
    """Async approximate-query sessions over the EARL engines.

    Parameters
    ----------
    config:
        Base :class:`~repro.core.EarlConfig` for every session; specs
        override σ (and B/n for statistic specs) per query, and every
        session gets its own seed drawn from ``seed`` at submit time —
        so a fixed master seed and submission order reproduce every
        event byte.
    event_capacity:
        Per-session bound on retained (unacked) events; a full log
        backpressures the producing engine.
    batch_window:
        Seconds the dispatcher waits after a statistic submit for more
        submits to share the same pilot.  ``max_batch`` caps one batch.
    ttl_seconds / linger_seconds / sweep_interval:
        Idle-session reclamation: a session with no client activity for
        ``ttl_seconds`` is cancelled into EXPIRED; terminal sessions
        are dropped from the store ``linger_seconds`` after their last
        client touch.
    engine_retries / retry_backoff:
        Fault tolerance for cluster-backed job sessions: a stream that
        raises is retried up to ``engine_retries`` times (fresh engine,
        same seed) with capped exponential backoff starting at
        ``retry_backoff`` seconds, emitting a ``retry`` event per
        attempt, before the session fails.  The default of zero
        retries preserves fail-fast semantics.
    clock:
        Monotonic clock (injectable for TTL and deadline tests).
    """

    def __init__(self, *, config: Optional[EarlConfig] = None,
                 store: Optional[SessionStore] = None,
                 seed: int = 0,
                 event_capacity: int = 64,
                 batch_window: float = 0.02,
                 max_batch: int = 1024,
                 ttl_seconds: float = 300.0,
                 linger_seconds: float = 300.0,
                 sweep_interval: float = 1.0,
                 default_poll_timeout: float = 10.0,
                 engine_retries: int = 0,
                 retry_backoff: float = 0.05,
                 clock=time.monotonic) -> None:
        self._config = config or EarlConfig()
        self._store = store or InMemorySessionStore()
        self._seed_rng = ensure_rng(seed)
        self._event_capacity = event_capacity
        self._batch_window = batch_window
        self._max_batch = max_batch
        self._ttl_seconds = ttl_seconds
        self._linger_seconds = linger_seconds
        self._sweep_interval = sweep_interval
        self._default_poll_timeout = default_poll_timeout
        self._engine_retries = max(0, int(engine_retries))
        self._retry_backoff = max(0.0, float(retry_backoff))
        self._clock = clock
        self._datasets: Dict[str, np.ndarray] = {}
        self._tables: Dict[str, Mapping[str, Any]] = {}
        self._clusters: Dict[str, Any] = {}
        self._ids = itertools.count(1)
        self._pending: List[SessionRecord] = []
        self._threads: List[threading.Thread] = []
        self._tasks: List[asyncio.Task] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pending_wakeup: Optional[asyncio.Event] = None
        self._started = False
        self._stopped = False

    # ----------------------------------------------------------- data plane
    @property
    def store(self) -> SessionStore:
        return self._store

    def register_dataset(self, name: str, values: Any) -> None:
        """Register a 1-D/2-D numeric array statistic specs can target."""
        data = np.asarray(values, dtype=float)
        if data.ndim not in (1, 2) or len(data) == 0:
            raise ValueError("dataset must be a non-empty 1-D or 2-D array")
        self._datasets[name] = data

    def register_table(self, name: str, columns: Mapping[str, Any]) -> None:
        """Register a columnar table (column name → array) for query specs."""
        if not columns:
            raise ValueError("table must have at least one column")
        self._tables[name] = dict(columns)

    def register_cluster(self, name: str, cluster: Any) -> None:
        """Register a simulated cluster job specs can target."""
        self._clusters[name] = cluster

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        """Start the dispatcher and TTL sweeper on the running loop."""
        if self._started:
            raise RuntimeError("service already started")
        self._started = True
        self._loop = asyncio.get_running_loop()
        self._pending_wakeup = asyncio.Event()
        self._tasks.append(asyncio.create_task(self._dispatch_loop()))
        self._tasks.append(asyncio.create_task(self._sweep_loop()))

    async def stop(self) -> None:
        """Cancel every live session and wind the runtime down.

        Sealing the logs releases backpressured producers; runner
        threads observe their cancel flags / sealed logs, close their
        generators (executor teardown, feedback-channel stop) and exit;
        they are joined off-loop.
        """
        if not self._started or self._stopped:
            return
        self._stopped = True
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()
        for rec in self._store.records():
            if not rec.terminal:
                rec.cancel_flag.set()
                self._engine_cancel(rec)
                await self._terminate(rec, STATE_CANCELLED)
            else:
                await rec.log.seal()
        threads, self._threads = self._threads, []
        if threads:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(
                None, lambda: [t.join(timeout=30.0) for t in threads])

    # -------------------------------------------------------------- dispatch
    async def handle(self, request: Any) -> Dict[str, Any]:
        """Serve one protocol request; always returns a response dict.

        The stateless entry point the TCP server and
        :class:`~repro.service.client.LocalClient` share.
        """
        try:
            if not isinstance(request, Mapping):
                raise ServiceError(ERR_BAD_REQUEST,
                                   "request must be a JSON object")
            if not self._started or self._stopped:
                raise ServiceError(ERR_BAD_REQUEST,
                                   "service is not running")
            op = request.get("op")
            handler = self._OPS.get(op)
            if handler is None:
                raise ServiceError(
                    ERR_UNKNOWN_OP,
                    f"unknown op {op!r}; known: {sorted(self._OPS)}")
            response = await handler(self, request)
            response["ok"] = True
            return response
        except ServiceError as exc:
            return {"ok": False, "error": exc.code, "message": str(exc)}
        except Exception as exc:  # a handler bug must not kill the server
            return {"ok": False, "error": ERR_INTERNAL,
                    "message": f"{type(exc).__name__}: {exc}"}

    # -------------------------------------------------------------- handlers
    async def _op_submit(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        spec = parse_spec(request.get("spec"))
        now = self._clock()
        if isinstance(spec, StatisticSpec):
            if spec.dataset not in self._datasets:
                raise ServiceError(
                    ERR_BAD_SPEC, f"unknown dataset {spec.dataset!r}; "
                    f"registered: {sorted(self._datasets)}")
            rec = self._new_record(spec, now)
            await self._enqueue(rec)
        elif isinstance(spec, QuerySpec):
            rec = await self._submit_query(spec, now)
        else:
            rec = await self._submit_job(spec, now)
        return {"session": rec.session_id, "state": rec.state}

    async def _enqueue(self, rec: SessionRecord) -> None:
        """PENDING → the dispatch window's scheduler batch."""
        await rec.log.append(EVENT_STATE, {"state": STATE_PENDING})
        self._pending.append(rec)
        assert self._pending_wakeup is not None
        self._pending_wakeup.set()

    async def _op_poll(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        rec = self._require_session(request)
        rec.touch(self._clock())
        after = request.get("after", 0)
        if not isinstance(after, int) or isinstance(after, bool):
            raise ServiceError(ERR_BAD_REQUEST,
                               "'after' must be an integer event id")
        wait = bool(request.get("wait", False))
        timeout = request.get("timeout", self._default_poll_timeout)
        events = await rec.log.read(
            after, wait=wait,
            timeout=None if timeout is None else float(timeout))
        rec.touch(self._clock())   # a long poll counts as activity too
        response: Dict[str, Any] = {
            "session": rec.session_id,
            "state": rec.state,            # read *after* the (long) poll
            "events": [event.raw for event in events],
            "last_event_id": rec.log.last_seq,
            "cost_seconds": rec.cost_seconds,
        }
        if rec.error is not None:
            response["error_detail"] = rec.error
        return response

    async def _op_cancel(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        rec = self._require_session(request)
        rec.touch(self._clock())
        if rec.terminal:
            return {"session": rec.session_id, "state": rec.state,
                    "already_terminal": True,
                    "cost_seconds": rec.cost_seconds}
        rec.cancel_flag.set()
        self._engine_cancel(rec)
        await self._terminate(rec, STATE_CANCELLED)
        return {"session": rec.session_id, "state": rec.state,
                "already_terminal": False, "cost_seconds": rec.cost_seconds}

    async def _op_status(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        rec = self._require_session(request)
        rec.touch(self._clock())
        return {
            "session": rec.session_id,
            "state": rec.state,
            "kind": rec.kind,
            "last_event_id": rec.log.last_seq,
            "acked": rec.log.acked,
            "retained_events": rec.log.retained,
            "cost_seconds": rec.cost_seconds,
            "error_detail": rec.error,
        }

    async def _op_stats(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        records = self._store.records()
        states: Dict[str, int] = {}
        for rec in records:
            states[rec.state] = states.get(rec.state, 0) + 1
        return {
            "sessions": len(records),
            "states": states,
            "pending_dispatch": len(self._pending),
            "runner_threads": sum(1 for t in self._threads if t.is_alive()),
            "max_retained_events": max(
                (rec.log.max_retained for rec in records), default=0),
            "datasets": sorted(self._datasets),
            "tables": sorted(self._tables),
            "clusters": sorted(self._clusters),
        }

    async def _op_ping(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        return {"pong": True}

    _OPS = {
        "submit": _op_submit,
        "poll": _op_poll,
        "cancel": _op_cancel,
        "status": _op_status,
        "stats": _op_stats,
        "ping": _op_ping,
    }

    # -------------------------------------------------------- session set-up
    def _new_record(self, spec: Any, now: float) -> SessionRecord:
        rec = SessionRecord(
            session_id=f"s{next(self._ids):06d}",
            kind=spec.kind, spec=spec,
            seed=int(self._seed_rng.integers(0, 2**63 - 1)),
            log=EventLog(capacity=self._event_capacity),
            created_at=now, last_activity=now)
        self._store.add(rec)
        return rec

    def _session_config(self, rec: SessionRecord) -> EarlConfig:
        cfg = replace(self._config, seed=rec.seed)
        sigma = getattr(rec.spec, "sigma", None)
        if sigma is not None:
            cfg = replace(cfg, sigma=sigma)
        return cfg

    async def _submit_query(self, spec: QuerySpec,
                            now: float) -> SessionRecord:
        if spec.table not in self._tables:
            raise ServiceError(
                ERR_BAD_SPEC, f"unknown table {spec.table!r}; "
                f"registered: {sorted(self._tables)}")
        rec = self._new_record(spec, now)
        try:
            query = Query(list(spec.select), group_by=spec.group_by,
                          where=spec.where).on(
                self._tables[spec.table], config=self._session_config(rec))
            session = query.plan()   # eager validation (columns, where)
        except (ValueError, TypeError, KeyError) as exc:
            self._store.remove(rec.session_id)
            raise ServiceError(ERR_BAD_SPEC, str(exc)) from None
        # The planned engine rides the record into the dispatch
        # window's scheduler; until then the session's own flag is the
        # cancel hook (dispatch skips cancelled records regardless).
        rec.engine = session
        rec.engine_cancel = session.cancel
        await self._enqueue(rec)
        return rec

    async def _submit_job(self, spec: JobSpec, now: float) -> SessionRecord:
        if spec.cluster not in self._clusters:
            raise ServiceError(
                ERR_BAD_SPEC, f"unknown cluster {spec.cluster!r}; "
                f"registered: {sorted(self._clusters)}")
        if spec.on_unavailable not in (None, "skip", "fail"):
            raise ServiceError(
                ERR_BAD_SPEC,
                f"on_unavailable must be 'skip' or 'fail', "
                f"got {spec.on_unavailable!r}")
        rec = self._new_record(spec, now)
        kwargs: Dict[str, Any] = {}
        if spec.on_unavailable is not None:
            kwargs["on_unavailable"] = spec.on_unavailable
        cluster = self._clusters[spec.cluster]
        config = self._session_config(rec)

        def make_stream() -> Any:
            # A fresh engine per attempt: retries after a transient
            # cluster failure replay with the same seed and config.
            return EarlJob(cluster, spec.path, statistic=spec.statistic,
                           config=config, **kwargs).stream()

        await rec.log.append(EVENT_STATE, {"state": STATE_PENDING})
        await self._mark_running(rec)
        self._spawn_runner(f"svc-job-{rec.session_id}",
                           self._drive_stream, make_stream(), rec,
                           grouped=False, restart=make_stream)
        return rec

    # ---------------------------------------------------- window dispatch
    async def flush(self) -> None:
        """Dispatch pending submissions right now.

        Deterministic batching for tests and embedders: everything
        submitted so far lands in this dispatch (one scheduler, one
        shared scan per dataset), regardless of ``batch_window``.
        """
        await self._dispatch_pending()

    async def _dispatch_loop(self) -> None:
        assert self._pending_wakeup is not None
        while True:
            await self._pending_wakeup.wait()
            self._pending_wakeup.clear()
            if self._batch_window > 0:
                await asyncio.sleep(self._batch_window)
            await self._dispatch_pending()

    async def _dispatch_pending(self) -> None:
        batch = self._pending[:self._max_batch]
        self._pending = self._pending[self._max_batch:]
        if self._pending and self._pending_wakeup is not None:
            self._pending_wakeup.set()
        batch = [rec for rec in batch
                 if rec.state == STATE_PENDING
                 and not rec.cancel_flag.is_set()]
        if batch:
            await self._launch_window(batch)

    async def _launch_window(self, batch: List[SessionRecord]) -> None:
        """One :class:`QueryScheduler` for everything in the window.

        Statistic specs over the same dataset share one scan/pilot/
        sample engine (the batch seed for a dataset is its first
        member's, as before); GROUP BY specs bring the engine planned
        at submit.  One runner thread drives the whole window, named
        after the datasets it scans.
        """
        sched = QueryScheduler()
        running: Dict[str, SessionRecord] = {}
        tables: List[str] = []
        batch_cfg: Dict[str, EarlConfig] = {}
        for rec in batch:
            spec = rec.spec
            if isinstance(spec, QuerySpec):
                handle = sched.submit_grouped(rec.engine,
                                              name=rec.session_id)
                label = spec.table
            else:
                cfg = batch_cfg.get(spec.dataset)
                if cfg is None:
                    cfg = replace(self._config, seed=rec.seed)
                    batch_cfg[spec.dataset] = cfg
                try:
                    handle = sched.submit_statistic(
                        self._datasets[spec.dataset], spec.statistic,
                        config=cfg, table=spec.dataset,
                        sigma=spec.sigma, error_metric=spec.error_metric,
                        B_override=spec.B, n_override=spec.n,
                        name=rec.session_id)
                except (ValueError, TypeError) as exc:
                    await self._fail(rec, f"submit rejected: {exc}")
                    continue
                label = spec.dataset
            if label not in tables:
                tables.append(label)
            rec.engine_cancel = handle.cancel
            running[rec.session_id] = rec
        if not running:
            return
        for rec in running.values():
            await self._mark_running(rec)
        self._spawn_runner(f"svc-batch-{'+'.join(sorted(tables))}",
                           self._drive_scheduler, sched, running)

    # -------------------------------------------------------- runner threads
    def _spawn_runner(self, name: str, target, *args: Any, **kwargs) -> None:
        self._threads = [t for t in self._threads if t.is_alive()]
        thread = threading.Thread(target=target, args=args, kwargs=kwargs,
                                  name=name, daemon=True)
        self._threads.append(thread)
        thread.start()

    def _drive_scheduler(self, sched: QueryScheduler,
                         records: Dict[str, SessionRecord]) -> None:
        """Drive one dispatch window's scheduler; runs in a dedicated
        thread.  Closing the stream in ``finally`` tears down every
        engine the scheduler built (executor pools included), so an
        expired or cancelled window never leaks a pool."""
        try:
            gen = sched.stream()
            try:
                for handle, snap in gen:
                    rec = records.get(handle.name)
                    if rec is None:
                        continue
                    if rec.cancel_flag.is_set():
                        handle.cancel()
                        continue
                    outcome = self._publish_snapshot(
                        rec, snap, grouped=isinstance(snap, GroupedSnapshot))
                    if outcome is None:  # sealed (cancelled/expired)
                        handle.cancel()
                    elif outcome and not snap.final:
                        handle.cancel()  # deadline finalized mid-run
            finally:
                gen.close()
        except BaseException as exc:  # noqa: BLE001 - must not die silently
            message = f"{type(exc).__name__}: {exc}"
            for rec in records.values():
                if not rec.terminal:
                    self._from_thread(self._fail(rec, message))

    def _drive_stream(self, gen: Any, rec: SessionRecord, *,
                      grouped: bool, restart=None) -> None:
        """Drive one grouped/cluster engine; runs in a dedicated thread.

        ``restart`` (a zero-arg factory returning a fresh stream) opts
        the session into transient-failure retries: up to
        ``engine_retries`` attempts with capped exponential backoff, a
        ``retry`` event per attempt, then a terminal failure.
        """
        attempts = 0
        while True:
            try:
                try:
                    for snap in gen:
                        if rec.cancel_flag.is_set():
                            break
                        outcome = self._publish_snapshot(rec, snap,
                                                         grouped=grouped)
                        if outcome is None:
                            break
                        if outcome and not snap.final:
                            break   # deadline finalized; stop sampling
                finally:
                    gen.close()   # only the driving thread may close it
                return
            except BaseException as exc:  # noqa: BLE001 - surface, don't hang
                message = f"{type(exc).__name__}: {exc}"
                if (restart is None or rec.terminal
                        or rec.cancel_flag.is_set()
                        or attempts >= self._engine_retries):
                    if not rec.terminal:
                        self._from_thread(self._fail(rec, message))
                    return
                attempts += 1
                rec.retries = attempts
                seq = self._append_from_thread(rec, EVENT_RETRY, {
                    "attempt": attempts,
                    "max_attempts": self._engine_retries,
                    "error": message})
                if seq is None:
                    return   # sealed while we were failing
                time.sleep(min(self._retry_backoff * (2 ** (attempts - 1)),
                               2.0))
                try:
                    gen = restart()
                except BaseException as exc2:  # noqa: BLE001
                    if not rec.terminal:
                        self._from_thread(self._fail(
                            rec, f"{type(exc2).__name__}: {exc2}"))
                    return

    def _publish_snapshot(self, rec: SessionRecord, snap: Any, *,
                          grouped: bool) -> Optional[bool]:
        """Append one engine snapshot with fault-tolerance bookkeeping.

        Emits the one-shot ``degraded`` event when the engine first
        reports sample loss, and finalizes with the best-so-far answer
        when the session's deadline has passed.  Returns ``None`` when
        the log is sealed, ``True`` when the event terminated the
        session (engine-final or deadline), ``False`` otherwise.
        """
        expired = (rec.deadline_at is not None
                   and self._clock() >= rec.deadline_at)
        final = bool(snap.final or expired)
        if grouped:
            payload = snap.to_dict(updated_only=not final)
        else:
            payload = snap.to_dict()
        if expired and not snap.final:
            payload = dict(payload)
            payload["final"] = True
            payload["deadline_exceeded"] = True
        # Book the snapshot before the (backpressure-blocking) append: a
        # client that consumed event k must observe a ledger at least at
        # k's running total, even if it cancels while the producer is
        # still parked in the next append.
        rec.last_snapshot = payload
        if not grouped:
            rec.cost_seconds = snap.cost_total_seconds
        if payload.get("degraded") and not rec.degraded_flagged:
            rec.degraded_flagged = True
            if self._append_from_thread(
                    rec, EVENT_DEGRADED,
                    {"lost_fraction":
                     float(payload.get("lost_fraction", 0.0))}) is None:
                return None
        seq = self._append_from_thread(
            rec, EVENT_FINAL if final else EVENT_SNAPSHOT, payload)
        if seq is None:
            return None
        if final:
            self._from_thread(self._terminate(rec, STATE_DONE))
        return final

    def _append_from_thread(self, rec: SessionRecord, event_type: str,
                            payload: Mapping[str, Any]) -> Optional[int]:
        """Append from a runner thread; blocking on the future is what
        propagates the event log's backpressure into the engine."""
        assert self._loop is not None
        try:
            return asyncio.run_coroutine_threadsafe(
                rec.log.append(event_type, payload), self._loop).result()
        except (RuntimeError, asyncio.CancelledError):
            return None   # loop gone: behave like a sealed log

    def _from_thread(self, coro: Awaitable[Any]) -> None:
        assert self._loop is not None
        try:
            asyncio.run_coroutine_threadsafe(coro, self._loop).result()
        except (RuntimeError, asyncio.CancelledError):
            pass

    # ------------------------------------------------------- state machine
    async def _mark_running(self, rec: SessionRecord) -> None:
        rec.state = STATE_RUNNING
        deadline = getattr(rec.spec, "deadline_seconds", None)
        if deadline is not None:
            rec.deadline_at = self._clock() + deadline
        await rec.log.append(EVENT_STATE, {"state": STATE_RUNNING})

    async def _terminate(self, rec: SessionRecord, state: str,
                         error: Optional[str] = None) -> None:
        """Move to a terminal state: state event, then seal (first
        terminal transition wins; later ones only re-seal)."""
        if rec.terminal:
            await rec.log.seal()
            return
        rec.state = state
        if error is not None:
            rec.error = error
        payload: Dict[str, Any] = {"state": state}
        if error is not None:
            payload["error"] = error
        await rec.log.append(EVENT_STATE, payload, force=True)
        await rec.log.seal()

    async def _fail(self, rec: SessionRecord, message: str) -> None:
        await rec.log.append(EVENT_ERROR, {"message": message}, force=True)
        await self._terminate(rec, STATE_FAILED, error=message)

    def _engine_cancel(self, rec: SessionRecord) -> None:
        if rec.engine_cancel is not None:
            try:
                rec.engine_cancel()
            except Exception:   # cancel must never fail a handler
                pass

    def _require_session(self, request: Mapping[str, Any]) -> SessionRecord:
        session_id = request.get("session")
        if not isinstance(session_id, str):
            raise ServiceError(ERR_BAD_REQUEST,
                               "'session' must be a session id string")
        rec = self._store.get(session_id)
        if rec is None:
            raise ServiceError(ERR_UNKNOWN_SESSION,
                               f"unknown session {session_id!r}")
        return rec

    # ------------------------------------------------------------ TTL sweep
    async def _sweep_loop(self) -> None:
        while True:
            await asyncio.sleep(self._sweep_interval)
            await self.sweep()

    async def sweep(self) -> None:
        """One TTL pass (public so tests can trigger it with a fake
        clock): sessions past their deadline finalize with the best
        answer so far; idle live sessions expire; old terminal records
        drop."""
        now = self._clock()
        for rec in self._store.records():
            idle = now - rec.last_activity
            if rec.terminal:
                if idle >= self._linger_seconds:
                    self._store.remove(rec.session_id)
            elif rec.deadline_at is not None and now >= rec.deadline_at:
                # The runner also checks per snapshot; the sweeper
                # catches engines stalled between rounds.
                rec.cancel_flag.set()
                self._engine_cancel(rec)
                await self._finalize_deadline(rec)
            elif idle >= self._ttl_seconds:
                rec.cancel_flag.set()
                self._engine_cancel(rec)
                await self._terminate(
                    rec, STATE_EXPIRED,
                    error=f"idle for {idle:.1f}s (ttl "
                          f"{self._ttl_seconds:.1f}s)")

    async def _finalize_deadline(self, rec: SessionRecord) -> None:
        """Deadline breach: seal with the best-so-far answer (§3.4
        degrade-don't-die — a late answer with valid bounds beats no
        answer), or fail honestly if no snapshot ever arrived."""
        if rec.terminal:
            return
        if rec.last_snapshot is not None:
            payload = dict(rec.last_snapshot)
            payload["final"] = True
            payload["deadline_exceeded"] = True
            await rec.log.append(EVENT_FINAL, payload, force=True)
            await self._terminate(rec, STATE_DONE)
        else:
            await self._fail(
                rec, "deadline exceeded before the first snapshot")
