"""The approximate-query service: async sessions over the EARL engines.

:class:`ApproxQueryService` is the network-facing front end over
:class:`~repro.streaming.SessionManager`,
:class:`~repro.query.Query` (grouped sessions) and
:class:`~repro.core.EarlJob`.  A client submits a spec
(:mod:`repro.service.protocol`) and gets a session id; it then polls —
or long-polls — a monotonically event-id'd stream of snapshot events,
can detach and resume from any event id at or above its ack floor, and
can cancel to stop paying for sampling.

Architecture
------------
* **Stateless handlers over a pluggable store.**  Every request handler
  reads all session state from the
  :class:`~repro.service.store.SessionStore`; the service object holds
  only configuration and runtime plumbing.
* **One scheduler per dispatch window.**  Statistic *and* GROUP BY
  specs submitted within one dispatch window are admitted to a single
  :class:`~repro.scheduler.QueryScheduler` run: statistic specs over
  the same dataset share one scan, one pilot and one growing
  permutation-prefix sample (a thousand concurrent sessions cost one
  engine loop — the M3R/Shark-style hot-state reuse the ROADMAP's
  service north star asks for), and each expansion round the window's
  global sample budget is split across every ``(query, group)`` arm by
  expected error reduction.  One runner thread drives the window;
  cluster-backed job specs keep their own engines.
* **Sync engines, async front end.**  The engines are synchronous
  generators, driven by plain runner threads; each produced snapshot
  hops onto the event loop via ``run_coroutine_threadsafe`` and blocks
  on the bounded :class:`~repro.service.events.EventLog` append — the
  log's capacity is therefore end-to-end backpressure on the engine
  itself.  Handlers never block the loop; a thousand long-polls are a
  thousand condition waiters.
* **Explicit lifecycle with a TTL sweeper.**  PENDING → RUNNING →
  DONE/CANCELLED/FAILED, plus EXPIRED for sessions idle past the TTL
  (no client touch); terminal records linger for late resumes, then
  are removed.  Cancellation raises the record's cross-thread flag and
  the engine's own cancel hook, so sampling stops at the next round
  boundary and the cost ledger holds only completed iterations —
  the ``FeedbackChannel`` stop semantics of ``EarlJob.stream()``'s
  teardown do the cluster-side work.

See DESIGN.md §8 for the lifecycle state machine and the resume
protocol.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import threading
import time
from dataclasses import replace
from typing import Any, Awaitable, Dict, List, Mapping, Optional

import numpy as np

from repro.core.config import EarlConfig
from repro.core.earl import EarlJob
from repro.core.grouped import GroupedSnapshot
from repro.obs.convergence import ConvergenceTrace
from repro.obs.metrics import REGISTRY as _METRICS
from repro.obs.trace import NULL_SPAN, TRACER as _TRACER
from repro.query.model import Query
from repro.scheduler import QueryScheduler
from repro.service.events import EventLog
from repro.service.protocol import (
    ERR_BAD_REQUEST,
    ERR_BAD_SPEC,
    ERR_INTERNAL,
    ERR_UNKNOWN_OP,
    ERR_UNKNOWN_SESSION,
    EVENT_DEGRADED,
    EVENT_ERROR,
    EVENT_FINAL,
    EVENT_RETRY,
    EVENT_SNAPSHOT,
    EVENT_STATE,
    STATE_CANCELLED,
    STATE_DONE,
    STATE_EXPIRED,
    STATE_FAILED,
    STATE_PENDING,
    STATE_RUNNING,
    JobSpec,
    QuerySpec,
    ServiceError,
    StatisticSpec,
    parse_spec,
    spec_to_dict,
)
from repro.service.store import InMemorySessionStore, SessionRecord, SessionStore
from repro.util.rng import ensure_rng


class ApproxQueryService:
    """Async approximate-query sessions over the EARL engines.

    Parameters
    ----------
    config:
        Base :class:`~repro.core.EarlConfig` for every session; specs
        override σ (and B/n for statistic specs) per query, and every
        session gets its own seed drawn from ``seed`` at submit time —
        so a fixed master seed and submission order reproduce every
        event byte.
    event_capacity:
        Per-session bound on retained (unacked) events; a full log
        backpressures the producing engine.
    batch_window:
        Seconds the dispatcher waits after a statistic submit for more
        submits to share the same pilot.  ``max_batch`` caps one batch.
    ttl_seconds / linger_seconds / sweep_interval:
        Idle-session reclamation: a session with no client activity for
        ``ttl_seconds`` is cancelled into EXPIRED; terminal sessions
        are dropped from the store ``linger_seconds`` after their last
        client touch.
    engine_retries / retry_backoff:
        Fault tolerance for cluster-backed job sessions: a stream that
        raises is retried up to ``engine_retries`` times (fresh engine,
        same seed) with capped exponential backoff starting at
        ``retry_backoff`` seconds, emitting a ``retry`` event per
        attempt, before the session fails.  The default of zero
        retries preserves fail-fast semantics.
    clock:
        Monotonic clock (injectable for TTL and deadline tests).
    """

    def __init__(self, *, config: Optional[EarlConfig] = None,
                 store: Optional[SessionStore] = None,
                 seed: int = 0,
                 event_capacity: int = 64,
                 batch_window: float = 0.02,
                 max_batch: int = 1024,
                 ttl_seconds: float = 300.0,
                 linger_seconds: float = 300.0,
                 sweep_interval: float = 1.0,
                 default_poll_timeout: float = 10.0,
                 engine_retries: int = 0,
                 retry_backoff: float = 0.05,
                 clock=time.monotonic) -> None:
        self._config = config or EarlConfig()
        # Not `store or ...`: stores define __len__, so an *empty*
        # store is falsy and would silently be swapped for a fresh one.
        self._store = store if store is not None else InMemorySessionStore()
        self._seed_rng = ensure_rng(seed)
        self._event_capacity = event_capacity
        self._batch_window = batch_window
        self._max_batch = max_batch
        self._ttl_seconds = ttl_seconds
        self._linger_seconds = linger_seconds
        self._sweep_interval = sweep_interval
        self._default_poll_timeout = default_poll_timeout
        self._engine_retries = max(0, int(engine_retries))
        self._retry_backoff = max(0.0, float(retry_backoff))
        self._clock = clock
        self._datasets: Dict[str, np.ndarray] = {}
        self._tables: Dict[str, Mapping[str, Any]] = {}
        self._clusters: Dict[str, Any] = {}
        self._ids = itertools.count(1)
        self._window_ids = itertools.count(1)
        self._pending: List[SessionRecord] = []
        self._threads: List[threading.Thread] = []
        self._tasks: List[asyncio.Task] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pending_wakeup: Optional[asyncio.Event] = None
        self._started = False
        self._stopped = False
        self._crashed = False
        # Telemetry (repro.obs).  The convergence trace and the span
        # bookkeeping only ever *fill* while the registry / tracer are
        # enabled; disabled, every hot-path hook is one attribute check.
        self.telemetry = ConvergenceTrace(name="service")
        self._session_spans: Dict[str, Dict[str, Any]] = {}
        self._snapshot_counts: Dict[str, int] = {}
        self._wall0: Optional[float] = None

    # ----------------------------------------------------------- data plane
    @property
    def store(self) -> SessionStore:
        return self._store

    def register_dataset(self, name: str, values: Any) -> None:
        """Register a 1-D/2-D numeric array statistic specs can target."""
        data = np.asarray(values, dtype=float)
        if data.ndim not in (1, 2) or len(data) == 0:
            raise ValueError("dataset must be a non-empty 1-D or 2-D array")
        self._datasets[name] = data

    def register_table(self, name: str, columns: Mapping[str, Any]) -> None:
        """Register a columnar table (column name → array) for query specs."""
        if not columns:
            raise ValueError("table must have at least one column")
        self._tables[name] = dict(columns)

    def register_cluster(self, name: str, cluster: Any) -> None:
        """Register a simulated cluster job specs can target."""
        self._clusters[name] = cluster

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        """Start the dispatcher and TTL sweeper on the running loop.

        When the store is durable and holds persisted sessions from a
        previous process, recovery runs first: terminal sessions serve
        their persisted tails, pending sessions are re-admitted, and
        running sessions resume by deterministic replay (or finalize
        honestly when replay is impossible) — see :meth:`_recover`.
        """
        if self._started:
            raise RuntimeError("service already started")
        self._started = True
        self._loop = asyncio.get_running_loop()
        self._pending_wakeup = asyncio.Event()
        if self._store.durable:
            await self._recover()
        self._tasks.append(asyncio.create_task(self._dispatch_loop()))
        self._tasks.append(asyncio.create_task(self._sweep_loop()))

    async def stop(self) -> None:
        """Cancel every live session and wind the runtime down.

        Sealing the logs releases backpressured producers; runner
        threads observe their cancel flags / sealed logs, close their
        generators (executor teardown, feedback-channel stop) and exit;
        they are joined off-loop.
        """
        if not self._started or self._stopped:
            return
        self._stopped = True
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()
        for rec in self._store.records():
            if not rec.terminal:
                rec.cancel_flag.set()
                self._engine_cancel(rec)
                await self._terminate(rec, STATE_CANCELLED)
            else:
                await rec.log.seal()
        threads, self._threads = self._threads, []
        if threads:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(
                None, lambda: [t.join(timeout=30.0) for t in threads])
        self._store.close()

    async def crash(self) -> None:
        """Simulate abrupt process death (the in-process SIGKILL).

        Unlike :meth:`stop`, nothing is cancelled, finalized or
        persisted: loop tasks are torn down, the event logs are sealed
        *in memory only* (releasing backpressured producers so runner
        threads exit), and the store is closed exactly as a killed
        process would have left it.  A new service opened on the same
        store sees precisely the crash-consistent WAL state.
        """
        if not self._started or self._stopped:
            return
        self._stopped = True
        self._crashed = True
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()
        for rec in self._store.records():
            await rec.log.seal()
        threads, self._threads = self._threads, []
        if threads:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(
                None, lambda: [t.join(timeout=30.0) for t in threads])
        self._store.close()

    # -------------------------------------------------------------- dispatch
    async def handle(self, request: Any) -> Dict[str, Any]:
        """Serve one protocol request; always returns a response dict.

        The stateless entry point the TCP server and
        :class:`~repro.service.client.LocalClient` share.
        """
        try:
            if not isinstance(request, Mapping):
                raise ServiceError(ERR_BAD_REQUEST,
                                   "request must be a JSON object")
            if not self._started or self._stopped:
                raise ServiceError(ERR_BAD_REQUEST,
                                   "service is not running")
            op = request.get("op")
            handler = self._OPS.get(op)
            if handler is None:
                raise ServiceError(
                    ERR_UNKNOWN_OP,
                    f"unknown op {op!r}; known: {sorted(self._OPS)}")
            response = await handler(self, request)
            response["ok"] = True
            return response
        except ServiceError as exc:
            response = {"ok": False, "error": exc.code, "message": str(exc)}
            if exc.details:
                response["details"] = exc.details
            return response
        except Exception as exc:  # a handler bug must not kill the server
            return {"ok": False, "error": ERR_INTERNAL,
                    "message": f"{type(exc).__name__}: {exc}"}

    # -------------------------------------------------------------- handlers
    async def _op_submit(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        spec = parse_spec(request.get("spec"))
        now = self._clock()
        if isinstance(spec, StatisticSpec):
            if spec.dataset not in self._datasets:
                raise ServiceError(
                    ERR_BAD_SPEC, f"unknown dataset {spec.dataset!r}; "
                    f"registered: {sorted(self._datasets)}")
            rec = self._new_record(spec, now)
            await self._enqueue(rec)
        elif isinstance(spec, QuerySpec):
            rec = await self._submit_query(spec, now)
        else:
            rec = await self._submit_job(spec, now)
        return {"session": rec.session_id, "state": rec.state}

    async def _enqueue(self, rec: SessionRecord) -> None:
        """PENDING → the dispatch window's scheduler batch."""
        await rec.log.append(EVENT_STATE, {"state": STATE_PENDING})
        self._pending.append(rec)
        assert self._pending_wakeup is not None
        self._pending_wakeup.set()

    async def _op_poll(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        rec = self._require_session(request)
        rec.touch(self._clock())
        after = request.get("after", 0)
        if not isinstance(after, int) or isinstance(after, bool):
            raise ServiceError(ERR_BAD_REQUEST,
                               "'after' must be an integer event id")
        wait = bool(request.get("wait", False))
        timeout = request.get("timeout", self._default_poll_timeout)
        events = await rec.log.read(
            after, wait=wait,
            timeout=None if timeout is None else float(timeout))
        rec.touch(self._clock())   # a long poll counts as activity too
        response: Dict[str, Any] = {
            "session": rec.session_id,
            "state": rec.state,            # read *after* the (long) poll
            "events": [event.raw for event in events],
            "last_event_id": rec.log.last_seq,
            "cost_seconds": rec.cost_seconds,
        }
        if rec.error is not None:
            response["error_detail"] = rec.error
        return response

    async def _op_cancel(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        rec = self._require_session(request)
        rec.touch(self._clock())
        if rec.terminal:
            return {"session": rec.session_id, "state": rec.state,
                    "already_terminal": True,
                    "cost_seconds": rec.cost_seconds}
        rec.cancel_flag.set()
        self._engine_cancel(rec)
        await self._terminate(rec, STATE_CANCELLED)
        return {"session": rec.session_id, "state": rec.state,
                "already_terminal": False, "cost_seconds": rec.cost_seconds}

    async def _op_status(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        rec = self._require_session(request)
        rec.touch(self._clock())
        return {
            "session": rec.session_id,
            "state": rec.state,
            "kind": rec.kind,
            "last_event_id": rec.log.last_seq,
            "acked": rec.log.acked,
            "retained_events": rec.log.retained,
            "cost_seconds": rec.cost_seconds,
            "error_detail": rec.error,
        }

    async def _op_stats(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        records = self._store.records()
        states: Dict[str, int] = {}
        for rec in records:
            states[rec.state] = states.get(rec.state, 0) + 1
        return {
            "sessions": len(records),
            "states": states,
            "pending_dispatch": len(self._pending),
            "runner_threads": sum(1 for t in self._threads if t.is_alive()),
            "max_retained_events": max(
                (rec.log.max_retained for rec in records), default=0),
            "datasets": sorted(self._datasets),
            "tables": sorted(self._tables),
            "clusters": sorted(self._clusters),
        }

    async def _op_ping(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        return {"pong": True}

    async def _op_metrics(self, request: Mapping[str, Any]) \
            -> Dict[str, Any]:
        """Telemetry snapshot: the process-wide metrics registry as
        JSON and/or Prometheus 0.0.4 text.  Read-only — does not touch
        any session, so a scraping dashboard never resets TTLs."""
        fmt = request.get("format", "both")
        if fmt not in ("json", "prometheus", "both"):
            raise ServiceError(
                ERR_BAD_REQUEST,
                "'format' must be 'json', 'prometheus' or 'both', "
                f"got {fmt!r}")
        response: Dict[str, Any] = {
            "metrics_enabled": _METRICS.enabled,
            "tracing_enabled": _TRACER.enabled,
        }
        if fmt in ("json", "both"):
            response["snapshot"] = _METRICS.snapshot()
        if fmt in ("prometheus", "both"):
            response["prometheus"] = _METRICS.render_prometheus()
        return response

    async def _op_trace(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        """One session's telemetry: its Chrome trace-event export and
        its slice of the service convergence trace.  Read-only (no TTL
        touch), so introspection never perturbs session lifecycle."""
        rec = self._require_session(request)
        trace_id = rec.trace_id
        if trace_id is None:
            trace_id = rec.trace_id = f"t{rec.seed:016x}"
        conv = self.telemetry.to_dict()
        return {
            "session": rec.session_id,
            "trace_id": trace_id,
            "chrome": _TRACER.export_chrome(trace_id),
            "convergence": {
                "points": [p for p in conv["points"]
                           if p["key"] == rec.session_id],
                "events": [e for e in conv["events"]
                           if e["key"] in (None, rec.session_id)],
            },
        }

    _OPS = {
        "submit": _op_submit,
        "poll": _op_poll,
        "cancel": _op_cancel,
        "status": _op_status,
        "stats": _op_stats,
        "ping": _op_ping,
        "metrics": _op_metrics,
        "trace": _op_trace,
    }

    # -------------------------------------------------------- session set-up
    def _new_record(self, spec: Any, now: float) -> SessionRecord:
        seed = int(self._seed_rng.integers(0, 2**63 - 1))
        rec = SessionRecord(
            session_id=f"s{next(self._ids):06d}",
            kind=spec.kind, spec=spec,
            seed=seed,
            log=EventLog(capacity=self._event_capacity),
            created_at=now, last_activity=now,
            fingerprint=(self._fingerprint(spec)
                         if self._store.durable else None),
            # Derived from the seed, not drawn: deterministic, free, and
            # recomputable after a restart — the WAL carries it so a
            # replay-resumed session continues the *same* trace.
            trace_id=f"t{seed:016x}")
        self._store.add(rec)
        if _METRICS.enabled:
            _METRICS.counter(
                "repro_service_sessions_total",
                help="Sessions submitted, by spec kind.",
                labels={"kind": rec.kind}).inc()
        self._begin_session_trace(rec)
        return rec

    # ------------------------------------------------------------ telemetry
    def _begin_session_trace(self, rec: SessionRecord, *,
                             restart: bool = False) -> None:
        """Open the session's root span (plus its first child) on the
        session's deterministic trace id.  A restart opens a *new* root
        on the *same* trace id — the pre-crash root died unrecorded with
        the old process, so the resumed trace still has a single root.
        """
        if not _TRACER.enabled:
            return
        if rec.trace_id is None:   # WAL written before tracing existed
            rec.trace_id = f"t{rec.seed:016x}"
        root = _TRACER.span(
            "service.session", trace_id=rec.trace_id,
            attrs={"session": rec.session_id, "kind": rec.kind,
                   "restart": restart})
        if restart:
            # Spans recorded before the crash dangle (their parents
            # died unfinished); hang them off the resumed root so the
            # continued trace stays one connected tree.
            _TRACER.adopt_orphans(rec.trace_id, root)
        first = ("service.run" if rec.state == STATE_RUNNING
                 else "service.queued")
        child = _TRACER.span(first, trace_id=rec.trace_id, parent=root)
        self._session_spans[rec.session_id] = {"root": root,
                                               "child": child}

    def _roll_session_span(self, rec: SessionRecord, name: str) -> None:
        """Finish the session's current child span and open ``name`` —
        together the children tile the root, which is what makes the
        ≥95 % trace-coverage acceptance check structural."""
        spans = self._session_spans.get(rec.session_id)
        if spans is None:
            return
        spans["child"].finish()
        spans["child"] = _TRACER.span(name, trace_id=rec.trace_id,
                                      parent=spans["root"])

    def _finish_session_trace(self, rec: SessionRecord) -> None:
        spans = self._session_spans.pop(rec.session_id, None)
        if spans is None:
            return
        spans["child"].finish()
        spans["root"].set(state=rec.state).finish()

    def _observe_snapshot(self, rec: SessionRecord,
                          payload: Mapping[str, Any], *,
                          grouped: bool, expired: bool) -> None:
        """One published snapshot -> one convergence point.  Runner
        thread; only called with the registry enabled."""
        if self._wall0 is None:
            self._wall0 = time.perf_counter()
        wall = time.perf_counter() - self._wall0
        sid = rec.session_id
        n = self._snapshot_counts.get(sid, 0) + 1
        self._snapshot_counts[sid] = n
        if grouped:
            rows = payload.get("rows_processed", 0)
            errors = [entry.get("error")
                      for by_agg in payload.get("groups", {}).values()
                      for entry in by_agg.values()
                      if entry.get("error") is not None]
            error = max(errors) if errors else None
        else:
            rows = payload.get("sample_size", 0)
            error = payload.get("error")
        self.telemetry.record_round(
            sid, round=n, rows=int(rows or 0), error=error,
            target=getattr(rec.spec, "sigma", None),
            wall_seconds=wall,
            sim_seconds=float(payload.get("cost_total_seconds",
                                          rec.cost_seconds)))
        _METRICS.counter(
            "repro_service_snapshots_total",
            help="Engine snapshots published to session event logs.",
            labels={"kind": rec.kind}).inc()
        if expired:
            self.telemetry.record_event("deadline", key=sid, round=n)
            _METRICS.counter(
                "repro_service_deadline_total",
                help="Sessions finalized by a deadline breach.").inc()

    def _session_config(self, rec: SessionRecord) -> EarlConfig:
        return self._spec_config(rec.spec, rec.seed)

    def _spec_config(self, spec: Any, seed: int) -> EarlConfig:
        cfg = replace(self._config, seed=seed)
        sigma = getattr(spec, "sigma", None)
        if sigma is not None:
            cfg = replace(cfg, sigma=sigma)
        return cfg

    # -------------------------------------------------- source fingerprints
    def _fingerprint(self, spec: Any) -> Optional[str]:
        """Content digest of the spec's source, taken at submit time by
        durable deployments.  Recovery replays a session only when the
        fingerprint still matches — replay against changed data would
        silently produce different bytes while claiming byte-identity.
        For job specs the digest covers the HDFS file *and* the set of
        live nodes, because §3.4 replans depend on both."""
        digest = hashlib.sha256()
        try:
            if isinstance(spec, StatisticSpec):
                self._digest_array(digest, self._datasets[spec.dataset])
            elif isinstance(spec, QuerySpec):
                for name in sorted(self._tables[spec.table]):
                    digest.update(name.encode())
                    self._digest_array(digest,
                                       self._tables[spec.table][name])
            else:
                cluster = self._clusters[spec.cluster]
                try:
                    lines = cluster.hdfs.read_lines(spec.path)
                except Exception:
                    lines = None
                if lines is None:
                    digest.update(b"<missing>")
                else:
                    for line in lines:
                        digest.update(str(line).encode())
                        digest.update(b"\n")
                alive = sorted(node.node_id for node in cluster.nodes
                               if node.alive)
                digest.update(repr(alive).encode())
        except Exception:
            return None
        return digest.hexdigest()

    @staticmethod
    def _digest_array(digest: Any, values: Any) -> None:
        arr = np.asarray(values)
        if arr.dtype.hasobject:
            digest.update(repr(arr.tolist()).encode())
        else:
            digest.update(str(arr.dtype).encode())
            digest.update(repr(arr.shape).encode())
            digest.update(arr.tobytes())

    async def _submit_query(self, spec: QuerySpec,
                            now: float) -> SessionRecord:
        if spec.table not in self._tables:
            raise ServiceError(
                ERR_BAD_SPEC, f"unknown table {spec.table!r}; "
                f"registered: {sorted(self._tables)}")
        rec = self._new_record(spec, now)
        try:
            query = Query(list(spec.select), group_by=spec.group_by,
                          where=spec.where).on(
                self._tables[spec.table], config=self._session_config(rec))
            session = query.plan()   # eager validation (columns, where)
        except (ValueError, TypeError, KeyError) as exc:
            self._store.remove(rec.session_id)
            self._session_spans.pop(rec.session_id, None)
            raise ServiceError(ERR_BAD_SPEC, str(exc)) from None
        # The planned engine rides the record into the dispatch
        # window's scheduler; until then the session's own flag is the
        # cancel hook (dispatch skips cancelled records regardless).
        rec.engine = session
        rec.engine_cancel = session.cancel
        await self._enqueue(rec)
        return rec

    async def _submit_job(self, spec: JobSpec, now: float) -> SessionRecord:
        if spec.cluster not in self._clusters:
            raise ServiceError(
                ERR_BAD_SPEC, f"unknown cluster {spec.cluster!r}; "
                f"registered: {sorted(self._clusters)}")
        if spec.on_unavailable not in (None, "skip", "fail"):
            raise ServiceError(
                ERR_BAD_SPEC,
                f"on_unavailable must be 'skip' or 'fail', "
                f"got {spec.on_unavailable!r}")
        rec = self._new_record(spec, now)
        make_stream = self._job_stream_factory(rec)
        await rec.log.append(EVENT_STATE, {"state": STATE_PENDING})
        await self._mark_running(rec)
        self._spawn_runner(f"svc-job-{rec.session_id}",
                           self._drive_stream, make_stream(), rec,
                           grouped=False, restart=make_stream)
        return rec

    def _job_stream_factory(self, rec: SessionRecord) -> Any:
        """A zero-arg factory of fresh job streams: retries after a
        transient cluster failure — and recovery replays after a crash
        — reconstruct the engine with the same seed and config."""
        spec = rec.spec
        kwargs: Dict[str, Any] = {}
        if spec.on_unavailable is not None:
            kwargs["on_unavailable"] = spec.on_unavailable
        cluster = self._clusters[spec.cluster]
        config = self._session_config(rec)

        def make_stream() -> Any:
            return EarlJob(cluster, spec.path, statistic=spec.statistic,
                           config=config, **kwargs).stream()

        return make_stream

    # ---------------------------------------------------- window dispatch
    async def flush(self) -> None:
        """Dispatch pending submissions right now.

        Deterministic batching for tests and embedders: everything
        submitted so far lands in this dispatch (one scheduler, one
        shared scan per dataset), regardless of ``batch_window``.
        """
        await self._dispatch_pending()

    async def _dispatch_loop(self) -> None:
        assert self._pending_wakeup is not None
        while True:
            await self._pending_wakeup.wait()
            self._pending_wakeup.clear()
            if self._batch_window > 0:
                await asyncio.sleep(self._batch_window)
            await self._dispatch_pending()

    async def _dispatch_pending(self) -> None:
        batch = self._pending[:self._max_batch]
        self._pending = self._pending[self._max_batch:]
        if self._pending and self._pending_wakeup is not None:
            self._pending_wakeup.set()
        batch = [rec for rec in batch
                 if rec.state == STATE_PENDING
                 and not rec.cancel_flag.is_set()]
        if batch:
            await self._launch_window(batch)

    async def _launch_window(self, batch: List[SessionRecord]) -> None:
        """One :class:`QueryScheduler` for everything in the window.

        Statistic specs over the same dataset share one scan/pilot/
        sample engine (the batch seed for a dataset is its first
        member's, as before); GROUP BY specs bring the engine planned
        at submit.  One runner thread drives the whole window, named
        after the datasets it scans.
        """
        sched = QueryScheduler()
        running: Dict[str, SessionRecord] = {}
        tables: List[str] = []
        batch_cfg: Dict[str, EarlConfig] = {}
        batch_seeds: Dict[str, int] = {}
        for rec in batch:
            spec = rec.spec
            if isinstance(spec, QuerySpec):
                handle = sched.submit_grouped(rec.engine,
                                              name=rec.session_id)
                label = spec.table
            else:
                cfg = batch_cfg.get(spec.dataset)
                if cfg is None:
                    cfg = replace(self._config, seed=rec.seed)
                    batch_cfg[spec.dataset] = cfg
                    batch_seeds[spec.dataset] = rec.seed
                try:
                    handle = sched.submit_statistic(
                        self._datasets[spec.dataset], spec.statistic,
                        config=cfg, table=spec.dataset,
                        sigma=spec.sigma, error_metric=spec.error_metric,
                        B_override=spec.B, n_override=spec.n,
                        name=rec.session_id)
                except (ValueError, TypeError) as exc:
                    await self._fail(rec, f"submit rejected: {exc}")
                    continue
                label = spec.dataset
            if label not in tables:
                tables.append(label)
            rec.engine_cancel = handle.cancel
            running[rec.session_id] = rec
        if not running:
            return
        if self._store.durable:
            # Window composition durable *before* any member is
            # observably running: recovery rebuilds the exact shared
            # scan (member order, per-dataset batch seeds) and replays.
            self._store.record_window(
                f"w{next(self._window_ids):06d}",
                {"members": [{"session": rec.session_id,
                              "kind": rec.kind,
                              "spec": spec_to_dict(rec.spec),
                              "seed": int(rec.seed),
                              "fingerprint": rec.fingerprint}
                             for rec in running.values()],
                 "seeds": batch_seeds})
        for rec in running.values():
            await self._mark_running(rec)
        self._spawn_runner(f"svc-batch-{'+'.join(sorted(tables))}",
                           self._drive_scheduler, sched, running)

    # -------------------------------------------------------- runner threads
    def _spawn_runner(self, name: str, target, *args: Any, **kwargs) -> None:
        self._threads = [t for t in self._threads if t.is_alive()]
        thread = threading.Thread(target=target, args=args, kwargs=kwargs,
                                  name=name, daemon=True)
        self._threads.append(thread)
        thread.start()

    def _drive_scheduler(self, sched: QueryScheduler,
                         records: Dict[str, SessionRecord], *,
                         skip: Optional[Dict[str, int]] = None,
                         replay: bool = False) -> None:
        """Drive one dispatch window's scheduler; runs in a dedicated
        thread.  Closing the stream in ``finally`` tears down every
        engine the scheduler built (executor pools included), so an
        expired or cancelled window never leaks a pool.

        In recovery (``replay=True``) ``skip`` holds, per session, the
        number of snapshots already published before the crash: the
        rebuilt window re-derives them deterministically and this loop
        discards them, so clients see the stream continue byte-for-byte
        where it stopped.  Sessions the window no longer tracks
        (terminal or swept members, resubmitted only to reproduce the
        shared scan) miss the ``records`` lookup and are discarded
        *without* cancelling — a cancel would perturb the shared
        rounds.  If replay dries up before a session reaches its
        recovery point, the run diverged (source changed undetected)
        and the session is finalized honestly instead.
        """
        if _TRACER.enabled:
            # The window gets its own trace: scheduler rounds, engine
            # rounds, executor waves and map/reduce waves all nest under
            # it via the ambient context this thread now carries.
            wspan = _TRACER.span(
                "service.window",
                attrs={"sessions": sorted(records), "replay": replay})
        else:
            wspan = NULL_SPAN
        try:
            with wspan:
                self._drive_scheduler_core(sched, records, skip=skip,
                                           replay=replay)
        except BaseException as exc:  # noqa: BLE001 - must not die silently
            message = f"{type(exc).__name__}: {exc}"
            for rec in records.values():
                if not rec.terminal:
                    self._from_thread(self._fail(rec, message))

    def _drive_scheduler_core(self, sched: QueryScheduler,
                              records: Dict[str, SessionRecord], *,
                              skip: Optional[Dict[str, int]],
                              replay: bool) -> None:
        gen = sched.stream()
        try:
            for handle, snap in gen:
                rec = records.get(handle.name)
                if rec is None:
                    continue
                if rec.cancel_flag.is_set():
                    handle.cancel()
                    continue
                if skip is not None and skip.get(handle.name, 0) > 0:
                    skip[handle.name] -= 1
                    continue
                outcome = self._publish_snapshot(
                    rec, snap, grouped=isinstance(snap, GroupedSnapshot))
                if outcome is None:  # sealed (cancelled/expired)
                    handle.cancel()
                elif outcome and not snap.final:
                    handle.cancel()  # deadline finalized mid-run
        finally:
            gen.close()
        if replay:
            for rec in records.values():
                if not rec.terminal and not rec.cancel_flag.is_set():
                    self._from_thread(self._finalize_recovery(
                        rec, "replay ended before the session's "
                             "recovery point"))

    def _drive_stream(self, gen: Any, rec: SessionRecord, *,
                      grouped: bool, restart=None, skip: int = 0,
                      replay: bool = False) -> None:
        """Drive one grouped/cluster engine; runs in a dedicated thread.

        ``restart`` (a zero-arg factory returning a fresh stream) opts
        the session into transient-failure retries: up to
        ``engine_retries`` attempts with capped exponential backoff, a
        ``retry`` event per attempt, then a terminal failure.

        In recovery (``replay=True``) the first ``skip`` snapshots are
        the ones already published before the crash — re-derived
        deterministically and discarded, so the resumed stream is
        byte-identical past the crash point.  A replay that ends while
        the session is still live diverged from the original run and
        finalizes honestly.
        """
        spans = self._session_spans.get(rec.session_id)
        if spans is not None and spans["child"] is not NULL_SPAN:
            # This thread drives exactly one session, so the engine /
            # mapreduce spans it opens nest under the session's own
            # "service.run" span.  The thread exits right after the
            # drive, so the activation needs no teardown.
            _TRACER.activate(spans["child"].context)
        attempts = 0
        while True:
            try:
                try:
                    for snap in gen:
                        if rec.cancel_flag.is_set():
                            break
                        if skip > 0:
                            skip -= 1
                            continue
                        outcome = self._publish_snapshot(rec, snap,
                                                         grouped=grouped)
                        if outcome is None:
                            break
                        if outcome and not snap.final:
                            break   # deadline finalized; stop sampling
                finally:
                    gen.close()   # only the driving thread may close it
                if (replay and not rec.terminal
                        and not rec.cancel_flag.is_set()):
                    self._from_thread(self._finalize_recovery(
                        rec, "replay ended before the session's "
                             "recovery point"))
                return
            except BaseException as exc:  # noqa: BLE001 - surface, don't hang
                message = f"{type(exc).__name__}: {exc}"
                if (restart is None or rec.terminal
                        or rec.cancel_flag.is_set()
                        or attempts >= self._engine_retries):
                    if not rec.terminal:
                        self._from_thread(self._fail(rec, message))
                    return
                attempts += 1
                rec.retries = attempts
                if _METRICS.enabled:
                    self.telemetry.record_event(
                        "retry", key=rec.session_id, attempt=attempts,
                        error=message)
                    _METRICS.counter(
                        "repro_service_retries_total",
                        help="Transient engine failures retried.").inc()
                seq = self._append_from_thread(rec, EVENT_RETRY, {
                    "attempt": attempts,
                    "max_attempts": self._engine_retries,
                    "error": message})
                if seq is None:
                    return   # sealed while we were failing
                time.sleep(min(self._retry_backoff * (2 ** (attempts - 1)),
                               2.0))
                try:
                    gen = restart()
                except BaseException as exc2:  # noqa: BLE001
                    if not rec.terminal:
                        self._from_thread(self._fail(
                            rec, f"{type(exc2).__name__}: {exc2}"))
                    return

    def _publish_snapshot(self, rec: SessionRecord, snap: Any, *,
                          grouped: bool) -> Optional[bool]:
        """Append one engine snapshot with fault-tolerance bookkeeping.

        Emits the one-shot ``degraded`` event when the engine first
        reports sample loss, and finalizes with the best-so-far answer
        when the session's deadline has passed.  Returns ``None`` when
        the log is sealed, ``True`` when the event terminated the
        session (engine-final or deadline), ``False`` otherwise.
        """
        expired = (rec.deadline_at is not None
                   and self._clock() >= rec.deadline_at)
        final = bool(snap.final or expired)
        if grouped:
            payload = snap.to_dict(updated_only=not final)
        else:
            payload = snap.to_dict()
        if expired and not snap.final:
            payload = dict(payload)
            payload["final"] = True
            payload["deadline_exceeded"] = True
        # Book the snapshot before the (backpressure-blocking) append: a
        # client that consumed event k must observe a ledger at least at
        # k's running total, even if it cancels while the producer is
        # still parked in the next append.
        rec.last_snapshot = payload
        if not grouped:
            rec.cost_seconds = snap.cost_total_seconds
        if _METRICS.enabled:
            self._observe_snapshot(rec, payload, grouped=grouped,
                                   expired=expired and not snap.final)
        if payload.get("degraded") and not rec.degraded_flagged:
            rec.degraded_flagged = True
            if _METRICS.enabled:
                self.telemetry.record_event(
                    "degraded", key=rec.session_id,
                    lost_fraction=float(payload.get("lost_fraction", 0.0)))
                _METRICS.counter(
                    "repro_service_degraded_total",
                    help="Sessions that first reported sample loss.").inc()
            if self._append_from_thread(
                    rec, EVENT_DEGRADED,
                    {"lost_fraction":
                     float(payload.get("lost_fraction", 0.0))}) is None:
                return None
        seq = self._append_from_thread(
            rec, EVENT_FINAL if final else EVENT_SNAPSHOT, payload)
        if seq is None:
            return None
        if final:
            self._from_thread(self._terminate(rec, STATE_DONE))
        return final

    def _append_from_thread(self, rec: SessionRecord, event_type: str,
                            payload: Mapping[str, Any]) -> Optional[int]:
        """Append from a runner thread; blocking on the future is what
        propagates the event log's backpressure into the engine."""
        assert self._loop is not None
        if self._crashed:
            return None   # the "process" is dead: nothing may land
        try:
            return asyncio.run_coroutine_threadsafe(
                rec.log.append(event_type, payload), self._loop).result()
        except (RuntimeError, asyncio.CancelledError):
            return None   # loop gone: behave like a sealed log

    def _from_thread(self, coro: Awaitable[Any]) -> None:
        assert self._loop is not None
        if self._crashed:
            coro.close()   # the "process" is dead: drop the transition
            return
        try:
            asyncio.run_coroutine_threadsafe(coro, self._loop).result()
        except (RuntimeError, asyncio.CancelledError):
            pass

    # ------------------------------------------------------- state machine
    async def _mark_running(self, rec: SessionRecord) -> None:
        rec.state = STATE_RUNNING
        deadline = getattr(rec.spec, "deadline_seconds", None)
        if deadline is not None:
            rec.deadline_at = self._clock() + deadline
        self._store.update(rec)
        self._roll_session_span(rec, "service.run")
        await rec.log.append(EVENT_STATE, {"state": STATE_RUNNING})

    async def _terminate(self, rec: SessionRecord, state: str,
                         error: Optional[str] = None) -> None:
        """Move to a terminal state: state event, then seal (first
        terminal transition wins; later ones only re-seal)."""
        if rec.terminal:
            await rec.log.seal()
            return
        rec.state = state
        if error is not None:
            rec.error = error
        self._store.update(rec)
        if _METRICS.enabled:
            self.telemetry.record_event("terminal", key=rec.session_id,
                                        state=state)
            _METRICS.counter(
                "repro_service_terminal_total",
                help="Sessions reaching a terminal state.",
                labels={"state": state}).inc()
        self._finish_session_trace(rec)
        payload: Dict[str, Any] = {"state": state}
        if error is not None:
            payload["error"] = error
        await rec.log.append(EVENT_STATE, payload, force=True)
        await rec.log.seal()

    async def _fail(self, rec: SessionRecord, message: str) -> None:
        await rec.log.append(EVENT_ERROR, {"message": message}, force=True)
        await self._terminate(rec, STATE_FAILED, error=message)

    def _engine_cancel(self, rec: SessionRecord) -> None:
        if rec.engine_cancel is not None:
            try:
                rec.engine_cancel()
            except Exception:   # cancel must never fail a handler
                pass

    def _require_session(self, request: Mapping[str, Any]) -> SessionRecord:
        session_id = request.get("session")
        if not isinstance(session_id, str):
            raise ServiceError(ERR_BAD_REQUEST,
                               "'session' must be a session id string")
        rec = self._store.get(session_id)
        if rec is None:
            raise ServiceError(ERR_UNKNOWN_SESSION,
                               f"unknown session {session_id!r}")
        return rec

    # ------------------------------------------------------------ TTL sweep
    async def _sweep_loop(self) -> None:
        while True:
            await asyncio.sleep(self._sweep_interval)
            await self.sweep()

    async def sweep(self) -> None:
        """One TTL pass (public so tests can trigger it with a fake
        clock): sessions past their deadline finalize with the best
        answer so far; idle live sessions expire; old terminal records
        drop."""
        now = self._clock()
        for rec in self._store.records():
            idle = now - rec.last_activity
            if rec.terminal:
                if idle >= self._linger_seconds:
                    self._store.remove(rec.session_id)
            elif rec.deadline_at is not None and now >= rec.deadline_at:
                # The runner also checks per snapshot; the sweeper
                # catches engines stalled between rounds.
                rec.cancel_flag.set()
                self._engine_cancel(rec)
                await self._finalize_deadline(rec)
            elif idle >= self._ttl_seconds:
                rec.cancel_flag.set()
                self._engine_cancel(rec)
                await self._terminate(
                    rec, STATE_EXPIRED,
                    error=f"idle for {idle:.1f}s (ttl "
                          f"{self._ttl_seconds:.1f}s)")

    async def _finalize_deadline(self, rec: SessionRecord) -> None:
        """Deadline breach: seal with the best-so-far answer (§3.4
        degrade-don't-die — a late answer with valid bounds beats no
        answer), or fail honestly if no snapshot ever arrived."""
        if rec.terminal:
            return
        if rec.last_snapshot is not None:
            payload = dict(rec.last_snapshot)
            payload["final"] = True
            payload["deadline_exceeded"] = True
            await rec.log.append(EVENT_FINAL, payload, force=True)
            await self._terminate(rec, STATE_DONE)
        else:
            await self._fail(
                rec, "deadline exceeded before the first snapshot")

    # ------------------------------------------------------------- recovery
    async def _recover(self) -> None:
        """Rebuild every persisted session after a restart.

        Terminal sessions only need their event tails served — they
        are materialized and left alone.  Pending sessions re-enter
        the dispatch queue (their engines re-planned from spec+seed).
        Running sessions resume by deterministic replay: their dispatch
        window is rebuilt from the journaled composition, the engines
        re-derive every pre-crash snapshot, and the runner discards the
        first ``stream_pos`` of them so the client-visible stream
        continues byte-for-byte.  Sessions replay cannot reproduce —
        source fingerprints changed, a window member was cancelled or
        truncated mid-run, a job retried — finalize honestly with the
        best persisted answer marked ``degraded`` (never silently
        vanish).  Deadlines re-arm from restart time; nothing is
        double-charged because the cost ledger rides the snapshots.
        """
        store = self._store
        ids = store.persisted_ids()
        self._ids = itertools.count(store.last_session_ord + 1)
        self._window_ids = itertools.count(store.last_window_ord + 1)
        if not ids:
            return
        now = self._clock()
        live: Dict[str, SessionRecord] = {
            sid: store.materialize(sid, now=now) for sid in ids}
        for rec in live.values():
            if rec.trace_id is None:   # WAL predates trace ids
                rec.trace_id = f"t{rec.seed:016x}"
            # Finish interrupted terminations: the final snapshot
            # landed but the crash beat the state transition.
            if (not rec.terminal and rec.last_snapshot is not None
                    and rec.last_snapshot.get("final")):
                await self._terminate(rec, STATE_DONE)
        for rec in live.values():
            if rec.terminal:
                continue
            self._begin_session_trace(rec, restart=True)
            if _METRICS.enabled:
                self.telemetry.record_event("restart", key=rec.session_id,
                                            state=rec.state)
                _METRICS.counter(
                    "repro_service_restarts_total",
                    help="Live sessions carried across a service "
                         "restart.").inc()
        windows = store.windows()
        member_of: Dict[str, str] = {}
        for wid, doc in windows.items():
            for member in doc.get("members", ()):
                member_of[member["session"]] = wid
        handled: set = set()
        for sid in ids:
            rec = live[sid]
            if sid in handled or rec.terminal:
                continue
            if rec.state == STATE_PENDING:
                await self._readmit(rec)
            elif isinstance(rec.spec, JobSpec):
                await self._recover_job(rec)
            elif sid in member_of:
                await self._recover_window(
                    windows[member_of[sid]], live, handled)
            else:
                # Running with no journaled window: the crash beat the
                # window entry; no snapshot was ever published.
                await self._finalize_recovery(
                    rec, "no dispatch window was recorded before the "
                         "crash")

    async def _readmit(self, rec: SessionRecord) -> None:
        """A pending session lost nothing: re-validate its source,
        re-plan its engine and put it back in the dispatch queue."""
        spec = rec.spec
        try:
            if isinstance(spec, StatisticSpec):
                if spec.dataset not in self._datasets:
                    raise ValueError(
                        f"dataset {spec.dataset!r} is not registered")
            elif isinstance(spec, QuerySpec):
                if spec.table not in self._tables:
                    raise ValueError(
                        f"table {spec.table!r} is not registered")
                query = Query(list(spec.select), group_by=spec.group_by,
                              where=spec.where).on(
                    self._tables[spec.table],
                    config=self._session_config(rec))
                rec.engine = query.plan()
                rec.engine_cancel = rec.engine.cancel
            elif spec.cluster not in self._clusters:
                raise ValueError(
                    f"cluster {spec.cluster!r} is not registered")
        except (ValueError, TypeError, KeyError) as exc:
            await self._fail(rec, f"recovery re-admission failed: {exc}")
            return
        # A pending session never sampled, so a changed source is fine
        # — it simply runs against the data as it now stands.  Refresh
        # the fingerprint so a *later* crash replays against the right
        # baseline.
        fingerprint = self._fingerprint(spec)
        if fingerprint != rec.fingerprint:
            rec.fingerprint = fingerprint
            self._store.update(rec)
        if rec.log.last_seq == 0:
            await rec.log.append(EVENT_STATE, {"state": STATE_PENDING})
        if isinstance(spec, JobSpec):
            make_stream = self._job_stream_factory(rec)
            await self._mark_running(rec)
            self._spawn_runner(f"svc-job-{rec.session_id}",
                               self._drive_stream, make_stream(), rec,
                               grouped=False, restart=make_stream)
        else:
            self._pending.append(rec)
            assert self._pending_wakeup is not None
            self._pending_wakeup.set()

    async def _recover_job(self, rec: SessionRecord) -> None:
        """Resume one running cluster job by replay, or finalize."""
        spec = rec.spec
        reason: Optional[str] = None
        if spec.cluster not in self._clusters:
            reason = f"cluster {spec.cluster!r} is no longer registered"
        elif rec.retries or self._store.disturbed(rec.session_id):
            reason = ("the original run was perturbed (retried or "
                      "truncated) and cannot be replayed")
        elif self._fingerprint(spec) != rec.fingerprint:
            reason = "the source file or cluster changed since submit"
        if reason is not None:
            await self._finalize_recovery(rec, reason)
            return
        deadline = getattr(spec, "deadline_seconds", None)
        if deadline is not None:
            rec.deadline_at = self._clock() + deadline
        make_stream = self._job_stream_factory(rec)
        self._spawn_runner(
            f"svc-job-{rec.session_id}", self._drive_stream,
            make_stream(), rec, grouped=False, restart=None,
            skip=self._store.stream_pos(rec.session_id), replay=True)

    async def _recover_window(self, doc: Mapping[str, Any],
                              live: Dict[str, SessionRecord],
                              handled: set) -> None:
        """Resume one dispatch window by rebuilding the exact shared
        scheduler run it was launched with.

        *Every* original member is resubmitted in order — including
        terminal and swept ones, whose replayed snapshots are discarded
        — because the shared scan, the per-dataset batch seed and the
        global budget split all depend on the full composition.  Any
        member that perturbed the run mid-flight (cancel, expiry,
        deadline truncation, retry) or whose source changed makes the
        whole window non-replayable: its live members finalize honestly
        instead.
        """
        members = list(doc.get("members", ()))
        for member in members:
            handled.add(member["session"])
        resumable = [live[m["session"]] for m in members
                     if m["session"] in live
                     and not live[m["session"]].terminal]
        if not resumable:
            return
        reason: Optional[str] = None
        for member in members:
            sid = member["session"]
            spec = parse_spec(member["spec"])
            if self._store.disturbed(sid):
                reason = (f"window member {sid} was cancelled, expired, "
                          "truncated or retried mid-run")
            elif isinstance(spec, QuerySpec):
                if spec.table not in self._tables:
                    reason = (f"table {spec.table!r} is no longer "
                              "registered")
                elif self._fingerprint(spec) != member.get("fingerprint"):
                    reason = (f"table {spec.table!r} changed since the "
                              "original run")
            elif spec.dataset not in self._datasets:
                reason = (f"dataset {spec.dataset!r} is no longer "
                          "registered")
            elif self._fingerprint(spec) != member.get("fingerprint"):
                reason = (f"dataset {spec.dataset!r} changed since the "
                          "original run")
            if reason is not None:
                break
        if reason is not None:
            for rec in resumable:
                await self._finalize_recovery(rec, reason)
            return
        sched = QueryScheduler()
        running: Dict[str, SessionRecord] = {}
        skip: Dict[str, int] = {}
        seeds = doc.get("seeds", {})
        now = self._clock()
        try:
            for member in members:
                sid = member["session"]
                spec = parse_spec(member["spec"])
                seed = int(member["seed"])
                if isinstance(spec, QuerySpec):
                    engine = Query(list(spec.select),
                                   group_by=spec.group_by,
                                   where=spec.where).on(
                        self._tables[spec.table],
                        config=self._spec_config(spec, seed)).plan()
                    handle = sched.submit_grouped(engine, name=sid)
                else:
                    engine = None
                    cfg = replace(self._config,
                                  seed=int(seeds[spec.dataset]))
                    handle = sched.submit_statistic(
                        self._datasets[spec.dataset], spec.statistic,
                        config=cfg, table=spec.dataset,
                        sigma=spec.sigma, error_metric=spec.error_metric,
                        B_override=spec.B, n_override=spec.n, name=sid)
                rec = live.get(sid)
                if rec is not None and not rec.terminal:
                    if engine is not None:
                        rec.engine = engine
                    rec.engine_cancel = handle.cancel
                    running[sid] = rec
                    skip[sid] = self._store.stream_pos(sid)
        except (ValueError, TypeError, KeyError) as exc:
            for rec in resumable:
                await self._finalize_recovery(
                    rec, f"window rebuild failed: {exc}")
            return
        if not running:
            return
        for rec in running.values():
            deadline = getattr(rec.spec, "deadline_seconds", None)
            if deadline is not None:
                rec.deadline_at = now + deadline
        self._spawn_runner("svc-recover", self._drive_scheduler,
                           sched, running, skip=skip, replay=True)

    async def _finalize_recovery(self, rec: SessionRecord,
                                 reason: str) -> None:
        """Replay is impossible: finalize with the best persisted
        answer, honestly marked degraded — a session never silently
        vanishes across a restart."""
        if rec.terminal:
            return
        if rec.last_snapshot is not None:
            payload = dict(rec.last_snapshot)
            payload["final"] = True
            payload["degraded"] = True
            payload["recovery"] = reason
            await rec.log.append(EVENT_FINAL, payload, force=True)
            await self._terminate(rec, STATE_DONE)
        else:
            await self._fail(
                rec, f"session is not recoverable: {reason}")
