"""JSON-lines TCP front end over :class:`ApproxQueryService.handle`.

One request object per line, one response object per line, in order.
The framing is deliberately minimal: every response is the canonical
JSON of the handler's dict, and events travel inside responses as the
raw canonical strings stored at append time — a JSON string round-trip
is lossless, so the byte-identical resume guarantee survives the wire.

A connection serves its requests sequentially; a long-poll therefore
occupies only its own connection (each client holds one), never the
service: the handlers park on per-session conditions, not threads.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple

from repro.service.protocol import ERR_BAD_REQUEST, canonical_json
from repro.service.service import ApproxQueryService

#: Stream buffer limit — grouped final snapshots can be large.
_STREAM_LIMIT = 2 ** 20


class ServiceServer:
    """Serve an :class:`ApproxQueryService` on a TCP socket."""

    def __init__(self, service: ApproxQueryService,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self._service = service
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (port 0 resolves on start)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._port,
            limit=_STREAM_LIMIT)

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    break   # over-long garbage; drop the connection
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                except ValueError:
                    response = {"ok": False, "error": ERR_BAD_REQUEST,
                                "message": "request is not valid JSON"}
                else:
                    response = await self._service.handle(request)
                writer.write(canonical_json(response).encode("utf-8")
                             + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass   # client went away mid-exchange; nothing to clean up
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
