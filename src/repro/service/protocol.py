"""Wire protocol of the approximate-query service.

Everything a request handler, the TCP server and the clients agree on
lives here: the session lifecycle states, the event types, the
canonical JSON encoding, the :class:`Event` envelope and the query
*specs* a client submits.

Canonical encoding
------------------
Events are encoded **once**, at append time, with
:func:`canonical_json` (sorted keys, no whitespace) and stored as the
resulting string.  Every read — live, long-polled, or a resume replay
after a disconnect — returns those stored strings verbatim, and the
responses embed them as JSON strings (a lossless round-trip), so the
byte-identical determinism contract of the engines extends to the
wire: same seed, same submissions → the same event bytes, no matter
how often a client detached and resumed.  Event payloads carry no
timestamps for the same reason.

Session lifecycle
-----------------
::

    PENDING ──> RUNNING ──> DONE
       │           ├──────> FAILED
       │           ├──────> CANCELLED
       └───────────┴──────> EXPIRED      (TTL sweeper)

Terminal states (:data:`TERMINAL_STATES`) seal the session's event log:
the terminal ``state`` event is the last one, readers drain whatever
they have not acked yet, and producers stop.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.core.estimators import get_statistic
from repro.query.model import WHERE_OPS, Aggregate, agg

# --------------------------------------------------------------- lifecycle

STATE_PENDING = "pending"      #: accepted, waiting for dispatch
STATE_RUNNING = "running"      #: engine attached, events flowing
STATE_DONE = "done"            #: engine completed with a final result
STATE_CANCELLED = "cancelled"  #: client cancelled; sampling stopped
STATE_FAILED = "failed"        #: engine raised; see the error event
STATE_EXPIRED = "expired"      #: TTL sweeper reclaimed an idle session

#: States from which a session never leaves (its event log is sealed).
TERMINAL_STATES = frozenset(
    {STATE_DONE, STATE_CANCELLED, STATE_FAILED, STATE_EXPIRED})

# ------------------------------------------------------------- event types

EVENT_STATE = "state"        #: lifecycle transition; payload {"state": ...}
EVENT_SNAPSHOT = "snapshot"  #: a progressive (non-final) engine snapshot
EVENT_FINAL = "final"        #: the engine's final snapshot
EVENT_ERROR = "error"        #: engine failure; payload {"message": ...}
#: §3.4 degraded-mode transition: the engine lost sample rows and
#: re-planned around the survivors; payload {"lost_fraction": ...}.
EVENT_DEGRADED = "degraded"
#: A transient engine failure is being retried;
#: payload {"attempt": k, "max_attempts": n, "error": ...}.
EVENT_RETRY = "retry"

# -------------------------------------------------------------- error codes

ERR_BAD_REQUEST = "bad-request"
ERR_UNKNOWN_OP = "unknown-op"
ERR_BAD_SPEC = "bad-spec"
ERR_UNKNOWN_SESSION = "unknown-session"
ERR_RESUME_GAP = "resume-gap"
ERR_INTERNAL = "internal"


class ServiceError(Exception):
    """A protocol-level failure with a machine-readable ``code``.

    Handlers raise it; the dispatch layer turns it into an
    ``{"ok": false, "error": code, "message": ...}`` response, and the
    clients raise it again on the caller's side.  ``details`` is an
    optional JSON-safe dict of structured context (e.g. the current ack
    floor of a resume gap) that travels in the error response, so
    clients can recover programmatically instead of parsing messages.
    """

    def __init__(self, code: str, message: str, *,
                 details: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(message)
        self.code = code
        self.details = details

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServiceError({self.code!r}, {str(self)!r})"


def canonical_json(obj: Any) -> str:
    """The one JSON encoding of the protocol: sorted keys, no whitespace.

    Deterministic for any given value, so byte-level comparisons of
    events (and whole responses) are meaningful.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


# ------------------------------------------------------------------ events


@dataclass(frozen=True)
class Event:
    """One monotonically-id'd entry of a session's event stream.

    ``seq`` starts at 1 and increments by exactly 1 per session —
    contiguity is the client's loss/duplication check.  ``raw`` is the
    canonical encoding produced at append time; it is the value that
    travels, and :meth:`from_raw` round-trips it bit-for-bit.
    """

    seq: int
    type: str
    payload: Mapping[str, Any]
    raw: str = field(repr=False)

    @classmethod
    def build(cls, seq: int, event_type: str,
              payload: Mapping[str, Any]) -> "Event":
        raw = canonical_json(
            {"payload": payload, "seq": seq, "type": event_type})
        return cls(seq=seq, type=event_type, payload=payload, raw=raw)

    @classmethod
    def from_raw(cls, raw: str) -> "Event":
        doc = json.loads(raw)
        return cls(seq=int(doc["seq"]), type=str(doc["type"]),
                   payload=doc["payload"], raw=raw)


# ------------------------------------------------------------------- specs


@dataclass(frozen=True)
class StatisticSpec:
    """A single-statistic query over a registered dataset.

    All statistic specs submitted within one dispatch window over the
    same dataset share a pilot and a growing sample — they become one
    :class:`~repro.streaming.SessionManager` run.
    """

    dataset: str
    statistic: str
    sigma: Optional[float] = None
    error_metric: Optional[str] = None
    B: Optional[int] = None
    n: Optional[int] = None
    #: Wall-clock budget: past it the service finalizes the session
    #: with the best bounds seen so far instead of sampling on.
    deadline_seconds: Optional[float] = None

    kind = "statistic"


@dataclass(frozen=True)
class QuerySpec:
    """A GROUP BY query over a registered columnar table
    (planned onto a :class:`~repro.core.GroupedEarlSession`)."""

    table: str
    select: Tuple[Aggregate, ...]
    group_by: Optional[str] = None
    where: Optional[Tuple[str, str, Any]] = None
    sigma: Optional[float] = None
    deadline_seconds: Optional[float] = None

    kind = "query"


@dataclass(frozen=True)
class JobSpec:
    """A cluster-backed EARL run (:class:`~repro.core.EarlJob`) over a
    file in a registered simulated cluster's HDFS."""

    cluster: str
    path: str
    statistic: str = "mean"
    sigma: Optional[float] = None
    on_unavailable: Optional[str] = None
    deadline_seconds: Optional[float] = None

    kind = "job"


SpecLike = Union[StatisticSpec, QuerySpec, JobSpec]


def _require_str(raw: Mapping[str, Any], key: str) -> str:
    value = raw.get(key)
    if not isinstance(value, str) or not value:
        raise ServiceError(
            ERR_BAD_SPEC, f"spec field {key!r} must be a non-empty string")
    return value


def _optional_sigma(raw: Mapping[str, Any]) -> Optional[float]:
    sigma = raw.get("sigma")
    if sigma is None:
        return None
    sigma = float(sigma)
    if not 0.0 < sigma <= 1.0:
        raise ServiceError(ERR_BAD_SPEC,
                           f"sigma must be in (0, 1], got {sigma}")
    return sigma


def _optional_deadline(raw: Mapping[str, Any]) -> Optional[float]:
    deadline = raw.get("deadline_seconds")
    if deadline is None:
        return None
    try:
        deadline = float(deadline)
    except (TypeError, ValueError):
        raise ServiceError(
            ERR_BAD_SPEC, "deadline_seconds must be a number") from None
    if not deadline > 0.0 or deadline != deadline or deadline == float("inf"):
        raise ServiceError(
            ERR_BAD_SPEC,
            f"deadline_seconds must be a positive finite number, "
            f"got {deadline}")
    return deadline


def _validated_statistic(name: str) -> str:
    try:
        return get_statistic(name).name
    except (KeyError, ValueError, TypeError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        raise ServiceError(ERR_BAD_SPEC, str(message)) from None


def _parse_select(entries: Any) -> Tuple[Aggregate, ...]:
    if not isinstance(entries, (list, tuple)) or not entries:
        raise ServiceError(
            ERR_BAD_SPEC, "query spec needs a non-empty 'select' list")
    out: List[Aggregate] = []
    for entry in entries:
        if not isinstance(entry, Mapping):
            raise ServiceError(
                ERR_BAD_SPEC, "each select entry must be an object with "
                "'statistic' and 'column'")
        column: Any = entry.get("column")
        if isinstance(column, (list, tuple)):
            column = tuple(column)
        try:
            out.append(agg(_require_str(entry, "statistic"), column,
                           sigma=entry.get("sigma"),
                           name=entry.get("name")))
        except (KeyError, ValueError, TypeError) as exc:
            message = exc.args[0] if exc.args else str(exc)
            raise ServiceError(ERR_BAD_SPEC, str(message)) from None
    return tuple(out)


def _parse_where(raw: Any) -> Optional[Tuple[str, str, Any]]:
    if raw is None:
        return None
    if not isinstance(raw, (list, tuple)) or len(raw) != 3 \
            or not isinstance(raw[0], str):
        raise ServiceError(
            ERR_BAD_SPEC, "'where' must be a [column, op, literal] triple")
    if raw[1] not in WHERE_OPS:
        raise ServiceError(
            ERR_BAD_SPEC,
            f"unknown where operator {raw[1]!r}; known: {sorted(WHERE_OPS)}")
    return (raw[0], raw[1], raw[2])


def parse_spec(raw: Any) -> SpecLike:
    """Validate and normalize a submitted spec document.

    ``raw`` is the ``"spec"`` object of a submit request; its
    ``"kind"`` selects :class:`StatisticSpec` (``"statistic"``),
    :class:`QuerySpec` (``"query"``) or :class:`JobSpec` (``"job"``).
    Validation is eager — unknown statistics, malformed selects and bad
    operators are rejected at submit time, before a session exists.
    """
    if not isinstance(raw, Mapping):
        raise ServiceError(ERR_BAD_SPEC, "spec must be a JSON object")
    kind = raw.get("kind")
    if kind == StatisticSpec.kind:
        B, n = raw.get("B"), raw.get("n")
        return StatisticSpec(
            dataset=_require_str(raw, "dataset"),
            statistic=_validated_statistic(_require_str(raw, "statistic")),
            sigma=_optional_sigma(raw),
            error_metric=raw.get("error_metric"),
            B=None if B is None else int(B),
            n=None if n is None else int(n),
            deadline_seconds=_optional_deadline(raw))
    if kind == QuerySpec.kind:
        group_by = raw.get("group_by")
        if group_by is not None and not isinstance(group_by, str):
            raise ServiceError(ERR_BAD_SPEC, "'group_by' must be a string")
        return QuerySpec(
            table=_require_str(raw, "table"),
            select=_parse_select(raw.get("select")),
            group_by=group_by,
            where=_parse_where(raw.get("where")),
            sigma=_optional_sigma(raw),
            deadline_seconds=_optional_deadline(raw))
    if kind == JobSpec.kind:
        statistic = raw.get("statistic", "mean")
        if not isinstance(statistic, str):
            raise ServiceError(ERR_BAD_SPEC, "'statistic' must be a string")
        return JobSpec(
            cluster=_require_str(raw, "cluster"),
            path=_require_str(raw, "path"),
            statistic=_validated_statistic(statistic),
            sigma=_optional_sigma(raw),
            on_unavailable=raw.get("on_unavailable"),
            deadline_seconds=_optional_deadline(raw))
    raise ServiceError(
        ERR_BAD_SPEC,
        f"unknown spec kind {kind!r}; known: "
        f"{[StatisticSpec.kind, QuerySpec.kind, JobSpec.kind]}")


def spec_to_dict(spec: SpecLike) -> Dict[str, Any]:
    """The inverse of :func:`parse_spec`: a JSON-safe submit document.

    ``parse_spec(spec_to_dict(s)) == s`` for every valid spec — the
    round-trip the durable session store relies on to persist specs and
    replay them after a restart.
    """
    if isinstance(spec, StatisticSpec):
        return {"kind": spec.kind, "dataset": spec.dataset,
                "statistic": spec.statistic, "sigma": spec.sigma,
                "error_metric": spec.error_metric, "B": spec.B,
                "n": spec.n, "deadline_seconds": spec.deadline_seconds}
    if isinstance(spec, QuerySpec):
        select = []
        for entry in spec.select:
            column: Any = entry.column
            if isinstance(column, tuple):
                column = list(column)
            select.append({"statistic": entry.statistic, "column": column,
                           "sigma": entry.sigma, "name": entry.name})
        return {"kind": spec.kind, "table": spec.table, "select": select,
                "group_by": spec.group_by,
                "where": None if spec.where is None else list(spec.where),
                "sigma": spec.sigma,
                "deadline_seconds": spec.deadline_seconds}
    if isinstance(spec, JobSpec):
        return {"kind": spec.kind, "cluster": spec.cluster,
                "path": spec.path, "statistic": spec.statistic,
                "sigma": spec.sigma,
                "on_unavailable": spec.on_unavailable,
                "deadline_seconds": spec.deadline_seconds}
    raise TypeError(f"not a spec: {spec!r}")
