"""Session records and the pluggable session store.

The request handlers are stateless: every fact about a session — its
spec, lifecycle state, cost, event log — lives in a
:class:`SessionRecord` held by a :class:`SessionStore`.  Any handler
on any event loop tick can serve any request by looking the record up,
which is the shape a horizontally-scaled deployment needs: to shard
the service, implement :class:`SessionStore` over an external system
and route sessions to the process that runs their engine.

Two implementations ship.  :class:`InMemorySessionStore` keeps
everything in one dict and evaporates with the process.
:class:`~repro.service.durable.DurableSessionStore` persists the
*control-plane* fields (id, kind, spec, seed, state, timestamps, cost,
error) plus each event log's retained tail and ack floor to an
append-only journal, so a restarted service can re-admit pending work,
replay running work deterministically, and serve terminal tails — see
``DESIGN.md`` §11.  The runtime attachments — the live
:class:`~repro.service.events.EventLog` condition, the ``cancel_flag``
and ``engine_cancel`` callable — are only meaningful in the process
hosting the engine and are reconstructed on load, never persisted.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.service.events import EventLog
from repro.service.protocol import STATE_PENDING, TERMINAL_STATES


@dataclass
class SessionRecord:
    """Everything the service knows about one session."""

    session_id: str
    kind: str                     # "statistic" | "query" | "job"
    spec: Any                     # the parsed spec dataclass
    seed: int                     # engine seed drawn at submit time
    log: EventLog
    state: str = STATE_PENDING
    created_at: float = 0.0
    last_activity: float = 0.0    # last *client* touch (submit/poll/cancel)
    #: Cross-thread cancellation: set by handlers, polled by the runner
    #: thread between snapshots (generators may only be closed by the
    #: thread driving them).
    cancel_flag: threading.Event = field(default_factory=threading.Event)
    #: Engine-side cancel hook (``QueryHandle.cancel``,
    #: ``GroupedEarlSession.cancel``, ...) — stops *sampling* at the
    #: next round boundary, so a cancel charges at most the iteration
    #: already in flight.
    engine_cancel: Optional[Callable[[], None]] = None
    #: Pre-planned engine (a GROUP BY spec's
    #: :class:`~repro.core.grouped.GroupedEarlSession`, validated at
    #: submit) waiting for the dispatch window's scheduler.
    engine: Optional[Any] = None
    #: Simulated seconds charged so far (the last snapshot's
    #: ``cost_total_seconds``); frozen by cancellation.
    cost_seconds: float = 0.0
    error: Optional[str] = None
    #: Absolute clock value the spec's ``deadline_seconds`` expires at
    #: (set when the session starts running); past it the service
    #: finalizes with the best bounds seen so far.
    deadline_at: Optional[float] = None
    #: Payload of the most recent snapshot event — the "best so far"
    #: answer a deadline breach finalizes with.
    last_snapshot: Optional[Dict[str, Any]] = None
    #: Whether the one-shot ``degraded`` event was already emitted.
    degraded_flagged: bool = False
    #: Transient engine failures retried so far (job sessions).
    retries: int = 0
    #: Content fingerprint of the session's source data, computed at
    #: submit time by durable deployments.  Recovery refuses to replay
    #: a session whose source no longer matches (replay would silently
    #: produce different bytes) and degrade-finalizes it instead.
    fingerprint: Optional[str] = None
    #: Telemetry trace id (``t<seed:016x>``, derived from the session
    #: seed so it is deterministic and survives restarts — a replayed
    #: session continues the *same* trace).  Always set; only consumed
    #: when :mod:`repro.obs` tracing is enabled.
    trace_id: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def touch(self, now: float) -> None:
        self.last_activity = now


class SessionStore:
    """Storage interface the stateless handlers run against."""

    #: Whether the store outlives the process.  The service consults
    #: this to decide if it should journal dispatch windows, fingerprint
    #: sources at submit, and attempt recovery at startup.
    durable = False

    def add(self, record: SessionRecord) -> None:
        raise NotImplementedError

    def get(self, session_id: str) -> Optional[SessionRecord]:
        raise NotImplementedError

    def remove(self, session_id: str) -> None:
        raise NotImplementedError

    def records(self) -> List[SessionRecord]:
        """All records (stable submission order)."""
        raise NotImplementedError

    def __len__(self) -> int:
        return len(self.records())

    # ------------------------------------------------- durability hooks
    # No-ops for volatile stores, so the service can call them
    # unconditionally on its hot paths.

    def update(self, record: SessionRecord) -> None:
        """Persist a mutated record's control-plane fields."""

    def record_window(self, window_id: str, doc: Dict[str, Any]) -> None:
        """Persist one dispatch window's composition (member order and
        batch seeds), which recovery needs to rebuild the exact shared
        scan the scheduler originally ran."""

    def close(self) -> None:
        """Release any on-disk resources.  Idempotent."""


class InMemorySessionStore(SessionStore):
    """Dict-backed store: the single-process deployment."""

    def __init__(self) -> None:
        self._records: Dict[str, SessionRecord] = {}

    def add(self, record: SessionRecord) -> None:
        if record.session_id in self._records:
            raise ValueError(f"duplicate session id {record.session_id!r}")
        self._records[record.session_id] = record

    def get(self, session_id: str) -> Optional[SessionRecord]:
        return self._records.get(session_id)

    def remove(self, session_id: str) -> None:
        self._records.pop(session_id, None)

    def records(self) -> List[SessionRecord]:
        return list(self._records.values())

    def __len__(self) -> int:
        return len(self._records)
