"""Clients for the approximate-query service.

Two transports share one convenience surface (:class:`_BaseClient`):

* :class:`ServiceClient` — the JSON-lines TCP client
  (``await ServiceClient.connect(host, port)``);
* :class:`LocalClient` — in-process calls straight into
  :meth:`~repro.service.service.ApproxQueryService.handle`, the
  transport the concurrency harness uses to drive thousands of
  sessions without a socket per client.

Both raise :class:`~repro.service.protocol.ServiceError` on error
responses and decode event envelopes into
:class:`~repro.service.protocol.Event` objects while preserving the
raw canonical bytes (``event.raw``) for byte-level comparisons.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.obs.metrics import REGISTRY as _METRICS
from repro.service.events import ResumeGapError
from repro.service.protocol import (
    ERR_RESUME_GAP,
    TERMINAL_STATES,
    Event,
    ServiceError,
    canonical_json,
)
from repro.service.server import _STREAM_LIMIT
from repro.service.service import ApproxQueryService


def _raise_error_response(response: Mapping[str, Any]) -> None:
    """Re-raise a ``{"ok": false}`` response as a typed exception.

    A resume-gap becomes :class:`ResumeGapError` carrying the server's
    current ack floor (from the structured ``details``), so a client
    that reconnects after its events were pruned can re-poll from
    ``exc.acked`` programmatically instead of parsing a message.
    """
    code = response.get("error", "internal")
    details = response.get("details")
    if code == ERR_RESUME_GAP and isinstance(details, Mapping):
        raise ResumeGapError(int(details.get("after", 0)),
                             int(details.get("acked", 0)))
    raise ServiceError(code, response.get("message", "request failed"),
                       details=dict(details) if isinstance(details, Mapping)
                       else None)


@dataclass(frozen=True)
class PollResponse:
    """One poll round-trip: decoded events plus session state."""

    session: str
    state: str
    events: List[Event]
    last_event_id: int
    cost_seconds: float
    error_detail: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES


class _BaseClient:
    """Protocol conveniences over a ``_request`` transport."""

    async def _request(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        raise NotImplementedError

    async def submit(self, spec: Mapping[str, Any]) -> str:
        """Submit a spec document; returns the new session id."""
        response = await self._request({"op": "submit", "spec": spec})
        return response["session"]

    async def poll(self, session: str, *, after: int = 0,
                   wait: bool = False,
                   timeout: Optional[float] = None) -> PollResponse:
        """Fetch events after ``after`` (acking everything ``<= after``).

        ``wait=True`` long-polls until an event, the session's seal, or
        ``timeout`` seconds.
        """
        request: Dict[str, Any] = {"op": "poll", "session": session,
                                   "after": after, "wait": wait}
        if timeout is not None:
            request["timeout"] = timeout
        response = await self._request(request)
        return PollResponse(
            session=response["session"],
            state=response["state"],
            events=[Event.from_raw(raw) for raw in response["events"]],
            last_event_id=response["last_event_id"],
            cost_seconds=response["cost_seconds"],
            error_detail=response.get("error_detail"))

    async def drain(self, session: str, *, after: int = 0,
                    poll_timeout: float = 1.0,
                    on_event: Optional[Callable[[Event], None]] = None
                    ) -> List[Event]:
        """Follow a session until terminal and fully drained.

        Returns every event after ``after`` in order; terminates
        because terminal states seal the log (no event can arrive after
        an empty read of a terminal session).
        """
        events: List[Event] = []
        while True:
            page = await self.poll(session, after=after, wait=True,
                                   timeout=poll_timeout)
            for event in page.events:
                if on_event is not None:
                    on_event(event)
                events.append(event)
            if page.events:
                after = page.events[-1].seq
                continue
            if page.terminal:
                return events

    async def cancel(self, session: str) -> Dict[str, Any]:
        return await self._request({"op": "cancel", "session": session})

    async def status(self, session: str) -> Dict[str, Any]:
        return await self._request({"op": "status", "session": session})

    async def stats(self) -> Dict[str, Any]:
        return await self._request({"op": "stats"})

    async def ping(self) -> bool:
        return bool((await self._request({"op": "ping"})).get("pong"))

    async def metrics(self, *, format: str = "both") -> Dict[str, Any]:
        """Server telemetry: metrics snapshot and/or Prometheus text."""
        return await self._request({"op": "metrics", "format": format})

    async def trace(self, session: str) -> Dict[str, Any]:
        """One session's Chrome trace export + convergence slice."""
        return await self._request({"op": "trace", "session": session})


class LocalClient(_BaseClient):
    """In-process client: handler calls without a transport."""

    def __init__(self, service: ApproxQueryService) -> None:
        self._service = service

    async def _request(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        response = await self._service.handle(request)
        if not response.get("ok"):
            _raise_error_response(response)
        return response


class ServiceClient(_BaseClient):
    """JSON-lines TCP client (one connection, sequential requests).

    Fault tolerance is opt-in and bounded: ``connect_timeout`` caps
    connection establishment, ``read_timeout`` caps each round-trip
    (stretched by the long-poll budget for ``wait=True`` polls), and
    ``max_reconnects`` allows that many reconnect-and-resend attempts
    per request.  Only idempotent ops are ever resent — a ``submit``
    whose response was lost is *not* retried, because the server may
    have created the session (the retry would double-submit); it
    surfaces as ``connection-closed``/``timeout`` for the caller to
    reconcile via ``stats``.
    """

    #: Ops safe to resend after a reconnect.  ``cancel`` is idempotent
    #: (``already_terminal`` marks a repeat); ``submit`` is not.
    _IDEMPOTENT_OPS = frozenset({"poll", "status", "stats", "cancel",
                                 "ping", "metrics", "trace"})

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, *,
                 host: Optional[str] = None,
                 port: Optional[int] = None,
                 connect_timeout: Optional[float] = None,
                 read_timeout: Optional[float] = None,
                 max_reconnects: int = 0,
                 reconnect_backoff: float = 0.0) -> None:
        self._reader: Optional[asyncio.StreamReader] = reader
        self._writer: Optional[asyncio.StreamWriter] = writer
        self._host = host
        self._port = port
        self._connect_timeout = connect_timeout
        self._read_timeout = read_timeout
        self._max_reconnects = max(0, int(max_reconnects))
        self._reconnect_backoff = max(0.0, float(reconnect_backoff))
        self._lock = asyncio.Lock()
        #: Fault-tolerance accounting: silent reconnects would otherwise
        #: be invisible to the caller (the request just succeeds late).
        self._stats: Dict[str, Any] = {
            "requests": 0, "reconnects": 0, "backoff_slept": 0.0,
            "causes": {}}

    @classmethod
    async def connect(cls, host: str, port: int, *,
                      connect_timeout: Optional[float] = None,
                      read_timeout: Optional[float] = None,
                      max_reconnects: int = 0,
                      reconnect_backoff: float = 0.0) -> "ServiceClient":
        reader, writer = await cls._open(host, port, connect_timeout)
        return cls(reader, writer, host=host, port=port,
                   connect_timeout=connect_timeout,
                   read_timeout=read_timeout,
                   max_reconnects=max_reconnects,
                   reconnect_backoff=reconnect_backoff)

    def client_stats(self) -> Dict[str, Any]:
        """A copy of the client's fault-tolerance counters: requests
        issued, silent reconnect attempts (total and by failure cause)
        and backoff seconds slept."""
        out = dict(self._stats)
        out["causes"] = dict(self._stats["causes"])
        return out

    @staticmethod
    async def _open(host: str, port: int,
                    connect_timeout: Optional[float]):
        coro = asyncio.open_connection(host, port, limit=_STREAM_LIMIT)
        if connect_timeout is None:
            return await coro
        try:
            return await asyncio.wait_for(coro, connect_timeout)
        except asyncio.TimeoutError:
            raise ServiceError(
                "timeout", f"connect to {host}:{port} timed out after "
                f"{connect_timeout}s") from None

    def _read_deadline(self, request: Mapping[str, Any]) -> Optional[float]:
        """Per-request read budget; a long poll legitimately parks for
        its own timeout, so that is added on top.  A long poll with no
        explicit timeout relies on a server default this client cannot
        know, so no deadline is enforced for it."""
        if self._read_timeout is None:
            return None
        if request.get("op") == "poll" and request.get("wait"):
            wait_budget = request.get("timeout")
            if wait_budget is None:
                return None
            return self._read_timeout + float(wait_budget)
        return self._read_timeout

    async def _exchange(self, request: Mapping[str, Any],
                        deadline: Optional[float]) -> bytes:
        assert self._reader is not None and self._writer is not None
        payload = canonical_json(request).encode("utf-8") + b"\n"

        async def roundtrip() -> bytes:
            self._writer.write(payload)
            await self._writer.drain()
            return await self._reader.readline()

        if deadline is None:
            return await roundtrip()
        return await asyncio.wait_for(roundtrip(), deadline)

    async def _abandon_connection(self) -> None:
        """Drop a connection whose framing can no longer be trusted
        (a timed-out response may still arrive and desync the stream)."""
        writer, self._writer, self._reader = self._writer, None, None
        if writer is None:
            return
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def _request(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        retriable = (op in self._IDEMPOTENT_OPS and self._host is not None)
        attempts_left = self._max_reconnects if retriable else 0
        deadline = self._read_deadline(request)
        async with self._lock:   # one in-flight request per connection
            self._stats["requests"] += 1
            attempt = 0
            while True:
                failure: ServiceError
                try:
                    if self._reader is None:
                        assert self._host is not None \
                            and self._port is not None
                        self._reader, self._writer = await self._open(
                            self._host, self._port, self._connect_timeout)
                    line = await self._exchange(request, deadline)
                    if line:
                        break
                    failure = ServiceError("connection-closed",
                                           "server closed the connection")
                except asyncio.TimeoutError:
                    failure = ServiceError(
                        "timeout", f"no response to {op!r} within "
                        f"{deadline}s")
                except ServiceError as exc:   # connect timeout
                    failure = exc
                except (ConnectionResetError, BrokenPipeError,
                        OSError) as exc:
                    failure = ServiceError("connection-closed",
                                           f"connection failed: {exc}")
                await self._abandon_connection()
                if attempts_left <= 0:
                    raise failure
                attempts_left -= 1
                attempt += 1
                cause = failure.code
                self._stats["reconnects"] += 1
                self._stats["causes"][cause] = \
                    self._stats["causes"].get(cause, 0) + 1
                if _METRICS.enabled:
                    _METRICS.counter(
                        "repro_client_reconnects_total",
                        help="Silent client reconnect-and-resend attempts.",
                        labels={"cause": cause}).inc()
                if self._reconnect_backoff > 0.0:
                    delay = min(
                        self._reconnect_backoff * (2 ** (attempt - 1)),
                        2.0)
                    await asyncio.sleep(delay)
                    self._stats["backoff_slept"] += delay
        response = json.loads(line)
        if not response.get("ok"):
            _raise_error_response(response)
        return response

    async def close(self) -> None:
        if self._writer is None:
            return
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
