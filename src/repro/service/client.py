"""Clients for the approximate-query service.

Two transports share one convenience surface (:class:`_BaseClient`):

* :class:`ServiceClient` — the JSON-lines TCP client
  (``await ServiceClient.connect(host, port)``);
* :class:`LocalClient` — in-process calls straight into
  :meth:`~repro.service.service.ApproxQueryService.handle`, the
  transport the concurrency harness uses to drive thousands of
  sessions without a socket per client.

Both raise :class:`~repro.service.protocol.ServiceError` on error
responses and decode event envelopes into
:class:`~repro.service.protocol.Event` objects while preserving the
raw canonical bytes (``event.raw``) for byte-level comparisons.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.service.protocol import (
    TERMINAL_STATES,
    Event,
    ServiceError,
    canonical_json,
)
from repro.service.server import _STREAM_LIMIT
from repro.service.service import ApproxQueryService


@dataclass(frozen=True)
class PollResponse:
    """One poll round-trip: decoded events plus session state."""

    session: str
    state: str
    events: List[Event]
    last_event_id: int
    cost_seconds: float
    error_detail: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES


class _BaseClient:
    """Protocol conveniences over a ``_request`` transport."""

    async def _request(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        raise NotImplementedError

    async def submit(self, spec: Mapping[str, Any]) -> str:
        """Submit a spec document; returns the new session id."""
        response = await self._request({"op": "submit", "spec": spec})
        return response["session"]

    async def poll(self, session: str, *, after: int = 0,
                   wait: bool = False,
                   timeout: Optional[float] = None) -> PollResponse:
        """Fetch events after ``after`` (acking everything ``<= after``).

        ``wait=True`` long-polls until an event, the session's seal, or
        ``timeout`` seconds.
        """
        request: Dict[str, Any] = {"op": "poll", "session": session,
                                   "after": after, "wait": wait}
        if timeout is not None:
            request["timeout"] = timeout
        response = await self._request(request)
        return PollResponse(
            session=response["session"],
            state=response["state"],
            events=[Event.from_raw(raw) for raw in response["events"]],
            last_event_id=response["last_event_id"],
            cost_seconds=response["cost_seconds"],
            error_detail=response.get("error_detail"))

    async def drain(self, session: str, *, after: int = 0,
                    poll_timeout: float = 1.0,
                    on_event: Optional[Callable[[Event], None]] = None
                    ) -> List[Event]:
        """Follow a session until terminal and fully drained.

        Returns every event after ``after`` in order; terminates
        because terminal states seal the log (no event can arrive after
        an empty read of a terminal session).
        """
        events: List[Event] = []
        while True:
            page = await self.poll(session, after=after, wait=True,
                                   timeout=poll_timeout)
            for event in page.events:
                if on_event is not None:
                    on_event(event)
                events.append(event)
            if page.events:
                after = page.events[-1].seq
                continue
            if page.terminal:
                return events

    async def cancel(self, session: str) -> Dict[str, Any]:
        return await self._request({"op": "cancel", "session": session})

    async def status(self, session: str) -> Dict[str, Any]:
        return await self._request({"op": "status", "session": session})

    async def stats(self) -> Dict[str, Any]:
        return await self._request({"op": "stats"})

    async def ping(self) -> bool:
        return bool((await self._request({"op": "ping"})).get("pong"))


class LocalClient(_BaseClient):
    """In-process client: handler calls without a transport."""

    def __init__(self, service: ApproxQueryService) -> None:
        self._service = service

    async def _request(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        response = await self._service.handle(request)
        if not response.get("ok"):
            raise ServiceError(response.get("error", "internal"),
                               response.get("message", "request failed"))
        return response


class ServiceClient(_BaseClient):
    """JSON-lines TCP client (one connection, sequential requests)."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=_STREAM_LIMIT)
        return cls(reader, writer)

    async def _request(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        async with self._lock:   # one in-flight request per connection
            self._writer.write(canonical_json(request).encode("utf-8")
                               + b"\n")
            await self._writer.drain()
            line = await self._reader.readline()
        if not line:
            raise ServiceError("connection-closed",
                               "server closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            raise ServiceError(response.get("error", "internal"),
                               response.get("message", "request failed"))
        return response

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
