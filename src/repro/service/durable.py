"""Durable session store: an append-only JSON write-ahead log.

:class:`DurableSessionStore` implements the :class:`SessionStore`
contract over a single journal file (``sessions.wal`` inside the store
directory).  Every control-plane mutation — a session admitted, an
event appended, an ack floor advanced, a lifecycle transition, a
dispatch window launched, a record swept — is one JSON line, written
(and, for the mutations that matter, ``fsync``'d) *before* the change
becomes observable to clients:

* :meth:`add` journals the session record before returning, so a
  client that saw a submit acknowledged will find the session after a
  crash (write-ahead admission).
* Event appends are journaled through
  :meth:`~repro.service.events.EventLog.set_journal`, which fires
  under the log's condition lock *before* the event enters the buffer
  — an event a reader could ever have observed is durable.
* Acks are journaled without fsync: losing a tail of acks merely
  rewinds the persisted floor, and resuming from a lower floor is
  always safe (events are re-deliverable; only resuming *below* the
  floor is an error).

Recovery never deserializes engine state.  What the journal captures
is provenance — specs, seeds, window composition, retained event
tails, per-session stream positions — and the service rebuilds
everything else by deterministic replay (see ``DESIGN.md`` §11).  The
store additionally derives, while applying the journal, the facts
recovery branches on: how many snapshots each session already
published (``stream_pos``), and whether its dispatch window was
*disturbed* (a member cancelled or expired mid-run, a deadline
truncation, a retried job) — disturbed windows cannot be replayed
byte-identically and are honestly degrade-finalized instead.

Compaction rewrites the journal as a snapshot of live state via the
write-to-temp + ``os.replace`` + directory-fsync dance, so a crash at
any instant leaves either the old or the new journal intact.  A
truncated final line (crash mid-write) is tolerated on load.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, List, Optional

from repro.service.events import EventLog
from repro.service.protocol import (
    EVENT_DEGRADED,
    EVENT_FINAL,
    EVENT_RETRY,
    EVENT_SNAPSHOT,
    STATE_CANCELLED,
    STATE_EXPIRED,
    STATE_RUNNING,
    TERMINAL_STATES,
    Event,
    canonical_json,
    parse_spec,
    spec_to_dict,
)
from repro.service.store import SessionRecord, SessionStore

#: Journal file name inside the store directory.
WAL_NAME = "sessions.wal"

#: Control-plane fields :meth:`DurableSessionStore.update` persists.
_MUTABLE_FIELDS = ("state", "cost_seconds", "error", "retries",
                   "degraded_flagged", "fingerprint")


def _ordinal(ident: str, prefix: str) -> int:
    """The numeric suffix of ``s000042``-style ids (0 if foreign)."""
    if ident.startswith(prefix) and ident[len(prefix):].isdigit():
        return int(ident[len(prefix):])
    return 0


class DurableSessionStore(SessionStore):
    """WAL-backed store that survives process death.

    Parameters
    ----------
    path:
        Store directory (created if missing); the journal lives at
        ``<path>/sessions.wal``.
    fsync:
        When true (the default), admission, event, lifecycle and
        window entries are fsync'd before the mutation is observable.
        Tests and benchmarks that only need restart (not power-loss)
        durability can disable it.
    """

    durable = True

    def __init__(self, path: str, *, fsync: bool = True) -> None:
        self._dir = os.fspath(path)
        os.makedirs(self._dir, exist_ok=True)
        self._wal_path = os.path.join(self._dir, WAL_NAME)
        self._fsync = bool(fsync)
        self._lock = threading.Lock()
        #: Live in-process records (same role as InMemorySessionStore).
        self._records: Dict[str, SessionRecord] = {}
        #: Persisted per-session state docs, in admission order.
        self._states: Dict[str, Dict[str, Any]] = {}
        #: Tombstones of removed sessions (recovery still needs to know
        #: whether a swept window member had disturbed its window).
        self._gone: Dict[str, Dict[str, Any]] = {}
        #: Dispatch window composition docs, in launch order.
        self._windows: Dict[str, Dict[str, Any]] = {}
        self._loaded_entries = self._load()
        self._file = open(self._wal_path, "a", encoding="utf-8")
        if self._loaded_entries:
            self.compact()

    # ---------------------------------------------------------------- journal
    def _load(self) -> int:
        if not os.path.exists(self._wal_path):
            return 0
        count = 0
        with open(self._wal_path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    break   # torn final write: everything before it holds
                self._apply(entry)
                count += 1
        return count

    def _append(self, entry: Dict[str, Any], *, sync: bool) -> None:
        """Journal one entry and apply it to the in-memory state.

        Called with the store lock held by every mutator; the write
        lands (and is optionally fsync'd) before ``_apply`` makes the
        mutation visible to :meth:`persisted` readers — the same
        write-ahead order the on-disk file guarantees across a crash.
        """
        self._file.write(canonical_json(entry) + "\n")
        self._file.flush()
        if sync and self._fsync:
            os.fsync(self._file.fileno())
        self._apply(entry)

    def _apply(self, entry: Dict[str, Any]) -> None:
        """One journal entry -> in-memory state.  Shared between load
        and live writes, so replayed state is live state by construction."""
        op = entry.get("op")
        if op == "add":
            doc = dict(entry["session"])
            self._states[doc["session_id"]] = {
                "record": doc, "events": [], "next_seq": 1, "acked": 0,
                "appended": 0, "stream_pos": 0, "disturbed": False,
            }
            self._gone.pop(doc["session_id"], None)
        elif op == "event":
            st = self._states.get(entry["session"])
            if st is None:
                return
            doc = entry["event"]
            st["events"].append(doc)
            st["next_seq"] = int(doc["seq"]) + 1
            st["appended"] += 1
            if doc["type"] in (EVENT_SNAPSHOT, EVENT_FINAL):
                st["stream_pos"] += 1
                st["record"]["last_snapshot"] = doc["payload"]
                if doc["payload"].get("deadline_exceeded"):
                    st["disturbed"] = True
            elif doc["type"] == EVENT_RETRY:
                st["disturbed"] = True
            elif doc["type"] == EVENT_DEGRADED:
                # Restored sessions must not re-emit the one-shot
                # degraded event their clients already saw.
                st["record"]["degraded_flagged"] = True
        elif op == "ack":
            st = self._states.get(entry["session"])
            if st is None:
                return
            after = int(entry["after"])
            if after > st["acked"]:
                st["acked"] = after
                st["events"] = [e for e in st["events"]
                                if int(e["seq"]) > after]
        elif op == "update":
            st = self._states.get(entry["session"])
            if st is None:
                return
            fields = entry["fields"]
            prior = st["record"].get("state")
            if (fields.get("state") in (STATE_CANCELLED, STATE_EXPIRED)
                    and prior == STATE_RUNNING):
                st["disturbed"] = True
            st["record"].update(fields)
        elif op == "remove":
            st = self._states.pop(entry["session"], None)
            if st is not None:
                self._gone[entry["session"]] = {
                    "state": st["record"].get("state"),
                    "disturbed": st["disturbed"],
                }
        elif op == "window":
            self._windows[entry["id"]] = dict(entry["doc"])
        elif op == "session":       # compaction snapshot of one session
            doc = dict(entry["state"])
            self._states[doc["record"]["session_id"]] = doc
        elif op == "gone":          # compaction snapshot of a tombstone
            self._gone[entry["session"]] = dict(entry["tombstone"])
        # Unknown ops are skipped: an older build can open a newer WAL
        # read-only-ish without crashing on entries it cannot interpret.

    def compact(self) -> None:
        """Rewrite the journal as a snapshot of current state.

        Atomic: written to a temp file, fsync'd, then ``os.replace``'d
        over the live journal (plus a directory fsync), so a crash
        leaves either journal intact, never a mix.
        """
        with self._lock:
            tmp = self._wal_path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                for wid, doc in self._windows.items():
                    fh.write(canonical_json(
                        {"op": "window", "id": wid, "doc": doc}) + "\n")
                for st in self._states.values():
                    fh.write(canonical_json(
                        {"op": "session", "state": st}) + "\n")
                for sid, tomb in self._gone.items():
                    fh.write(canonical_json(
                        {"op": "gone", "session": sid,
                         "tombstone": tomb}) + "\n")
                fh.flush()
                if self._fsync:
                    os.fsync(fh.fileno())
            if not self._file.closed:
                self._file.close()
            os.replace(tmp, self._wal_path)
            if self._fsync:
                dir_fd = os.open(self._dir, os.O_RDONLY)
                try:
                    os.fsync(dir_fd)
                finally:
                    os.close(dir_fd)
            self._file = open(self._wal_path, "a", encoding="utf-8")

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                if self._fsync:
                    os.fsync(self._file.fileno())
                self._file.close()

    # --------------------------------------------------- SessionStore contract
    def add(self, record: SessionRecord) -> None:
        with self._lock:
            if record.session_id in self._records:
                raise ValueError(
                    f"duplicate session id {record.session_id!r}")
            doc = {
                "session_id": record.session_id,
                "kind": record.kind,
                "spec": spec_to_dict(record.spec),
                "seed": int(record.seed),
                "state": record.state,
                "created_at": record.created_at,
                "capacity": record.log.capacity,
                "fingerprint": record.fingerprint,
                "cost_seconds": record.cost_seconds,
                "error": record.error,
                "retries": record.retries,
                "degraded_flagged": record.degraded_flagged,
                "last_snapshot": record.last_snapshot,
                "trace_id": record.trace_id,
            }
            self._append({"op": "add", "session": doc}, sync=True)
            self._records[record.session_id] = record
        self._attach_journal(record)

    def get(self, session_id: str) -> Optional[SessionRecord]:
        return self._records.get(session_id)

    def remove(self, session_id: str) -> None:
        with self._lock:
            if (session_id not in self._records
                    and session_id not in self._states):
                return
            self._append({"op": "remove", "session": session_id},
                         sync=False)
            self._records.pop(session_id, None)

    def records(self) -> List[SessionRecord]:
        return list(self._records.values())

    def __len__(self) -> int:
        return len(self._records)

    def update(self, record: SessionRecord) -> None:
        with self._lock:
            if record.session_id not in self._states:
                return
            fields = {name: getattr(record, name)
                      for name in _MUTABLE_FIELDS}
            self._append({"op": "update", "session": record.session_id,
                          "fields": fields}, sync=True)

    def record_window(self, window_id: str, doc: Dict[str, Any]) -> None:
        with self._lock:
            self._append({"op": "window", "id": window_id, "doc": doc},
                         sync=True)

    # ------------------------------------------------------------- durability
    def _attach_journal(self, record: SessionRecord) -> None:
        sid = record.session_id

        def on_append(event: Event) -> None:
            with self._lock:
                self._append(
                    {"op": "event", "session": sid,
                     "event": {"seq": event.seq, "type": event.type,
                               "payload": event.payload}},
                    sync=True)

        def on_ack(after: int) -> None:
            with self._lock:
                self._append({"op": "ack", "session": sid,
                              "after": int(after)}, sync=False)

        record.log.set_journal(on_append, on_ack)

    def persisted(self, session_id: str) -> Optional[Dict[str, Any]]:
        """The persisted state doc for one session (a deep-ish copy):
        ``{"record", "events", "next_seq", "acked", "appended",
        "stream_pos", "disturbed"}``."""
        st = self._states.get(session_id)
        if st is None:
            return None
        out = dict(st)
        out["record"] = dict(st["record"])
        out["events"] = [dict(e) for e in st["events"]]
        return out

    def persisted_ids(self) -> List[str]:
        """Persisted session ids in admission order."""
        return list(self._states.keys())

    def tombstone(self, session_id: str) -> Optional[Dict[str, Any]]:
        tomb = self._gone.get(session_id)
        return dict(tomb) if tomb is not None else None

    def windows(self) -> Dict[str, Dict[str, Any]]:
        """Dispatch window docs by window id, in launch order."""
        return {wid: dict(doc) for wid, doc in self._windows.items()}

    @property
    def last_session_ord(self) -> int:
        """Highest numeric session ordinal ever admitted — a restarted
        service re-seeds its id counter past this so ids never collide
        with persisted (or tombstoned) sessions."""
        ids = list(self._states) + list(self._gone)
        return max((_ordinal(sid, "s") for sid in ids), default=0)

    @property
    def last_window_ord(self) -> int:
        return max((_ordinal(wid, "w") for wid in self._windows),
                   default=0)

    def materialize(self, session_id: str, *,
                    now: float = 0.0) -> SessionRecord:
        """Rebuild a live :class:`SessionRecord` from persisted state.

        The event log is restored with its retained tail, id counters
        and seal flag (terminal states sealed their logs), and the
        journal hooks are re-attached so the resumed session keeps
        journaling.  Runtime attachments (engine, cancel hooks,
        deadline) start empty — the service re-wires them during
        recovery.  The record is registered as live.
        """
        with self._lock:
            st = self._states.get(session_id)
            if st is None:
                raise KeyError(f"no persisted session {session_id!r}")
            if session_id in self._records:
                return self._records[session_id]
            doc = st["record"]
            events = [Event.build(int(e["seq"]), str(e["type"]),
                                  e["payload"]) for e in st["events"]]
            log = EventLog.restore(
                int(doc.get("capacity", 64)), events,
                next_seq=st["next_seq"], acked=st["acked"],
                sealed=doc["state"] in TERMINAL_STATES,
                appended=st["appended"])
            record = SessionRecord(
                session_id=session_id,
                kind=doc["kind"],
                spec=parse_spec(doc["spec"]),
                seed=int(doc["seed"]),
                log=log,
                state=doc["state"],
                created_at=doc.get("created_at", 0.0),
                last_activity=now,
                cost_seconds=doc.get("cost_seconds", 0.0),
                error=doc.get("error"),
                last_snapshot=doc.get("last_snapshot"),
                degraded_flagged=bool(doc.get("degraded_flagged", False)),
                retries=int(doc.get("retries", 0)),
                fingerprint=doc.get("fingerprint"),
                trace_id=doc.get("trace_id"),
            )
            self._records[session_id] = record
        self._attach_journal(record)
        return record

    def stream_pos(self, session_id: str) -> int:
        """Snapshots (progressive + final) this session ever published
        — the replay skip count for recovery."""
        st = self._states.get(session_id)
        return int(st["stream_pos"]) if st is not None else 0

    def disturbed(self, session_id: str) -> bool:
        """Whether this session's run was perturbed in a way replay
        cannot reproduce (mid-run cancel/expiry, deadline truncation,
        engine retry).  Checks tombstones too — a swept member still
        poisons its window."""
        st = self._states.get(session_id)
        if st is not None:
            return bool(st["disturbed"])
        tomb = self._gone.get(session_id)
        return bool(tomb and tomb.get("disturbed"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DurableSessionStore({self._dir!r}, "
                f"live={len(self._records)}, "
                f"persisted={len(self._states)})")
