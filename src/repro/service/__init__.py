"""Approximate-query service: async, resumable sessions over EARL.

The network-facing layer of the reproduction — the step from an
importable engine to the long-lived multi-client serving loop the
ROADMAP's north star (and Shark / M3R in PAPERS.md) describe.  Clients
submit a query spec and get a session id; a monotonically event-id'd
stream of progressive snapshots follows, which they poll or long-poll,
resume after disconnects (byte-identical replay from the ack floor),
and cancel to stop paying for sampling.

    PENDING ──> RUNNING ──> DONE | FAILED | CANCELLED | EXPIRED

Quick start (in-process)::

    import asyncio, numpy as np
    from repro.core import EarlConfig
    from repro.service import ApproxQueryService, LocalClient

    async def main():
        service = ApproxQueryService(config=EarlConfig(sigma=0.05))
        service.register_dataset(
            "latencies", np.random.default_rng(0).lognormal(3, 1, 500_000))
        await service.start()
        client = LocalClient(service)
        sid = await client.submit({"kind": "statistic",
                                   "dataset": "latencies",
                                   "statistic": "mean"})
        for event in await client.drain(sid):
            print(event.seq, event.type, event.payload)
        await service.stop()

    asyncio.run(main())

Wrap the same service with :class:`ServiceServer` /
:class:`ServiceClient` for the TCP transport.  See DESIGN.md §8 for
the lifecycle state machine, the event-id resume protocol and the
stateful-versus-stateless tradeoffs.
"""

from repro.service.client import LocalClient, PollResponse, ServiceClient
from repro.service.durable import DurableSessionStore
from repro.service.events import EventLog, ResumeGapError
from repro.service.protocol import (
    ERR_BAD_REQUEST,
    ERR_BAD_SPEC,
    ERR_INTERNAL,
    ERR_RESUME_GAP,
    ERR_UNKNOWN_OP,
    ERR_UNKNOWN_SESSION,
    EVENT_DEGRADED,
    EVENT_ERROR,
    EVENT_FINAL,
    EVENT_RETRY,
    EVENT_SNAPSHOT,
    EVENT_STATE,
    STATE_CANCELLED,
    STATE_DONE,
    STATE_EXPIRED,
    STATE_FAILED,
    STATE_PENDING,
    STATE_RUNNING,
    TERMINAL_STATES,
    Event,
    JobSpec,
    QuerySpec,
    ServiceError,
    StatisticSpec,
    canonical_json,
    parse_spec,
    spec_to_dict,
)
from repro.service.server import ServiceServer
from repro.service.service import ApproxQueryService
from repro.service.store import (
    InMemorySessionStore,
    SessionRecord,
    SessionStore,
)

__all__ = [
    "ApproxQueryService",
    "ServiceServer",
    "ServiceClient",
    "LocalClient",
    "PollResponse",
    "EventLog",
    "ResumeGapError",
    "Event",
    "ServiceError",
    "canonical_json",
    "parse_spec",
    "spec_to_dict",
    "StatisticSpec",
    "QuerySpec",
    "JobSpec",
    "SessionStore",
    "InMemorySessionStore",
    "DurableSessionStore",
    "SessionRecord",
    "STATE_PENDING",
    "STATE_RUNNING",
    "STATE_DONE",
    "STATE_CANCELLED",
    "STATE_FAILED",
    "STATE_EXPIRED",
    "TERMINAL_STATES",
    "EVENT_STATE",
    "EVENT_SNAPSHOT",
    "EVENT_FINAL",
    "EVENT_ERROR",
    "EVENT_DEGRADED",
    "EVENT_RETRY",
    "ERR_BAD_REQUEST",
    "ERR_BAD_SPEC",
    "ERR_INTERNAL",
    "ERR_RESUME_GAP",
    "ERR_UNKNOWN_OP",
    "ERR_UNKNOWN_SESSION",
]
