"""Per-session bounded event logs with backpressure and resume.

An :class:`EventLog` is the buffer between one producer (the runner
thread driving an engine generator) and any number of detachable
readers (poll / long-poll handlers).  Its contract carries the
service's three hard guarantees:

* **Monotonic, contiguous event ids** — ``seq`` starts at 1 and
  increments by exactly 1; a client observing a gap knows it lost (or
  duplicated) events, so the load harness can assert "zero lost or
  duplicated" from ids alone.
* **Bounded memory with backpressure** — at most ``capacity`` unacked
  events are retained; :meth:`append` *waits* (an ``asyncio`` wait the
  runner thread blocks on through ``run_coroutine_threadsafe``) until a
  reader acks, so a session nobody drains stalls its producer instead
  of growing without bound.  Terminal lifecycle events bypass the cap
  (``force=True``) — they must land even on a full, abandoned log, and
  add at most a constant per session.
* **Resume from the ack floor** — :meth:`read` with ``after=k`` *acks*
  ``k``: events ``<= k`` are pruned and every event ``> k`` is
  retained.  Any later read from any ``after >= acked`` replays the
  stored canonical bytes verbatim (byte-identical resume); a read below
  the ack floor raises :class:`ResumeGapError`, because those bytes are
  gone — the client promised it had durably consumed them.

All state is touched only on the event loop (handlers are coroutines;
the producer hops onto the loop via ``run_coroutine_threadsafe``), so
no locks beyond the one :class:`asyncio.Condition` are needed, and a
thousand long-pollers are a thousand waiters on conditions, not a
thousand threads.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any, Callable, Deque, Iterable, List, Mapping, Optional

from repro.service.protocol import (
    ERR_BAD_REQUEST,
    ERR_RESUME_GAP,
    Event,
    ServiceError,
)


class ResumeGapError(ServiceError):
    """Resume requested below the ack floor: those events were pruned.

    Carries the offending ``after`` and the current ``acked`` floor both
    as attributes and as structured ``details``, so the error survives a
    wire round-trip intact and a client can re-poll from ``acked``
    without parsing the message.
    """

    def __init__(self, after: int, acked: int) -> None:
        super().__init__(
            ERR_RESUME_GAP,
            f"cannot resume from event id {after}: events up to {acked} "
            "were acked and pruned; resume from the last acked id",
            details={"after": int(after), "acked": int(acked)})
        self.after = after
        self.acked = acked


class EventLog:
    """Bounded, monotonically event-id'd buffer for one session."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._events: Deque[Event] = deque()
        self._cond = asyncio.Condition()
        self._next_seq = 1
        self._acked = 0
        self._sealed = False
        # Durability hooks (see set_journal): called synchronously under
        # the condition lock, so the write-ahead order matches the
        # in-memory order exactly.
        self._journal_append: Optional[Callable[[Event], None]] = None
        self._journal_ack: Optional[Callable[[int], None]] = None
        #: Total events ever appended (monitoring).
        self.appended = 0
        #: High-water mark of retained (unacked) events — the bounded-
        #: memory assertion of the load harness reads this.
        self.max_retained = 0

    @classmethod
    def restore(cls, capacity: int, events: Iterable[Event], *,
                next_seq: int, acked: int, sealed: bool,
                appended: int = 0) -> "EventLog":
        """Reconstruct a log from a durable store's persisted state:
        the retained (unacked) tail, the id counters and the seal flag.
        Appends continue from ``next_seq``, so a resumed session's ids
        stay contiguous with what clients already consumed."""
        log = cls(capacity)
        log._events.extend(events)
        log._next_seq = int(next_seq)
        log._acked = int(acked)
        log._sealed = bool(sealed)
        log.appended = int(appended)
        log.max_retained = len(log._events)
        return log

    def set_journal(self, on_append: Callable[[Event], None],
                    on_ack: Callable[[int], None]) -> None:
        """Attach durability callbacks: ``on_append(event)`` fires for
        every accepted append *before* the event becomes readable,
        ``on_ack(acked)`` when a read advances the ack floor.  Both run
        under the log's condition lock on the event loop, so a durable
        store sees appends and acks in exactly the observable order."""
        self._journal_append = on_append
        self._journal_ack = on_ack

    # ------------------------------------------------------------ properties
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def last_seq(self) -> int:
        """Highest event id ever assigned (0 before the first append)."""
        return self._next_seq - 1

    @property
    def acked(self) -> int:
        """The ack floor: highest event id a reader declared consumed."""
        return self._acked

    @property
    def retained(self) -> int:
        """Events currently buffered (appended, not yet acked)."""
        return len(self._events)

    @property
    def sealed(self) -> bool:
        return self._sealed

    # ------------------------------------------------------------- producer
    async def append(self, event_type: str, payload: Mapping[str, Any], *,
                     force: bool = False) -> Optional[int]:
        """Append one event; returns its ``seq``, or ``None`` if sealed.

        Blocks (cooperatively) while the buffer holds ``capacity``
        unacked events, unless ``force`` — the escape hatch for terminal
        lifecycle events, bounded to a constant per session.  Sealing
        wakes every blocked producer with the ``None`` verdict, which is
        the runner threads' signal to stop the engine.
        """
        async with self._cond:
            while (not force and not self._sealed
                   and len(self._events) >= self._capacity):
                await self._cond.wait()
            if self._sealed:
                return None
            seq = self._next_seq
            self._next_seq += 1
            event = Event.build(seq, event_type, payload)
            if self._journal_append is not None:
                self._journal_append(event)   # durable before observable
            self._events.append(event)
            self.appended += 1
            if len(self._events) > self.max_retained:
                self.max_retained = len(self._events)
            self._cond.notify_all()
            return seq

    async def seal(self) -> None:
        """No further appends; readers drain what is retained.

        Idempotent.  Wakes blocked producers (append returns ``None``)
        and blocked long-pollers (read returns what it has).
        """
        async with self._cond:
            self._sealed = True
            self._cond.notify_all()

    # --------------------------------------------------------------- readers
    async def read(self, after: int = 0, *, wait: bool = False,
                   timeout: Optional[float] = None) -> List[Event]:
        """Events with ``seq > after``; acks (and prunes) ``<= after``.

        ``wait=True`` long-polls: when nothing is pending the call
        parks on the log's condition until an append, the seal, or
        ``timeout`` seconds pass (then ``[]``).  Reads below the ack
        floor raise :class:`ResumeGapError`; reads ahead of the stream
        (``after > last_seq``) are a protocol error.
        """
        async with self._cond:
            if after < 0:
                raise ServiceError(ERR_BAD_REQUEST,
                                   "'after' must be a non-negative event id")
            if after > self.last_seq:
                raise ServiceError(
                    ERR_BAD_REQUEST,
                    f"'after'={after} is ahead of the stream "
                    f"(last event id is {self.last_seq})")
            if after > self._acked:
                self._acked = after
                while self._events and self._events[0].seq <= after:
                    self._events.popleft()
                if self._journal_ack is not None:
                    self._journal_ack(after)
                self._cond.notify_all()   # wake a backpressured producer
            elif after < self._acked:
                raise ResumeGapError(after, self._acked)

            def pending() -> List[Event]:
                return [e for e in self._events if e.seq > after]

            out = pending()
            if out or not wait or self._sealed:
                return out
            if timeout is None:
                while True:
                    await self._cond.wait()
                    out = pending()
                    if out or self._sealed:
                        return out
            loop = asyncio.get_running_loop()
            deadline = loop.time() + timeout
            while True:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    return []
                try:
                    await asyncio.wait_for(self._cond.wait(), remaining)
                except asyncio.TimeoutError:
                    return []
                out = pending()
                if out or self._sealed:
                    return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = "sealed" if self._sealed else "open"
        return (f"EventLog({flag}, last={self.last_seq}, "
                f"acked={self._acked}, retained={len(self._events)}"
                f"/{self._capacity})")
