"""Command-line entry point: regenerate a paper figure's series.

Usage::

    python -m repro.evaluation fig5
    python -m repro.evaluation fig6 --sizes 2 10
    python -m repro.evaluation fig7 --seed 123
    python -m repro.evaluation fig5 --executor processes --workers 4
    python -m repro.evaluation fault

Prints the same series the corresponding pytest benchmark records under
``benchmarks/results/``.  ``--executor`` fans the sweep's points out
over a parallel backend (the ``REPRO_EXECUTOR`` environment variable
overrides it); the printed series is identical on every backend.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List

from repro.evaluation import runners
from repro.exec.executor import available_executors, resolve_executor


def _print_table(rows: List[Dict[str, object]]) -> None:
    if not rows:
        print("(no rows)")
        return
    header = list(rows[0].keys())
    rendered = [[_fmt(row[col]) for col in header] for row in rows]
    widths = [max(len(header[i]), max(len(r[i]) for r in rendered))
              for i in range(len(header))]
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    print("  ".join("-" * w for w in widths))
    for r in rendered:
        print("  ".join(cell.ljust(w) for cell, w in zip(r, widths)))


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation",
        description="Regenerate one figure of the EARL paper's evaluation "
                    "on the simulated cluster substrate.")
    parser.add_argument("figure",
                        choices=["fig5", "fig6", "fig7", "fig9", "fault"],
                        help="which experiment to run")
    parser.add_argument("--sizes", type=float, nargs="+", default=None,
                        help="data sizes in (logical) GB, or failed-node "
                             "counts for 'fault'")
    parser.add_argument("--seed", type=int, default=None,
                        help="master seed (default: the benchmarks' seed)")
    parser.add_argument("--executor", choices=available_executors(),
                        default=None,
                        help="backend the sweep's points run on "
                             "(default: serial; REPRO_EXECUTOR overrides)")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool size for parallel backends "
                             "(default: CPU count)")
    args = parser.parse_args(argv)

    kwargs = {}
    if args.seed is not None:
        kwargs["seed"] = args.seed

    executor = resolve_executor(name=args.executor,
                                max_workers=args.workers)
    kwargs["executor"] = executor
    try:
        if args.figure == "fig5":
            rows = runners.fig5_sweep(args.sizes or runners.FIG5_SIZES_GB,
                                      **kwargs)
        elif args.figure == "fig6":
            rows = runners.fig6_sweep(args.sizes or runners.FIG6_SIZES_GB,
                                      **kwargs)
        elif args.figure == "fig7":
            rows = runners.fig7_sweep(args.sizes or runners.FIG7_SIZES_GB,
                                      **kwargs)
        elif args.figure == "fig9":
            rows = runners.fig9_sweep(args.sizes or runners.FIG9_SIZES_GB,
                                      **kwargs)
        else:
            failures = [int(s) for s in args.sizes] if args.sizes \
                else runners.FAULT_SWEEP
            rows = runners.fault_sweep(failures, **kwargs)
    finally:
        executor.close()

    _print_table(rows)
    return 0


if __name__ == "__main__":
    sys.exit(main())
