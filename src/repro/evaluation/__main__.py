"""Command-line entry point: regenerate a paper figure's series.

Usage::

    python -m repro.evaluation fig5
    python -m repro.evaluation fig6 --sizes 2 10
    python -m repro.evaluation fig7 --seed 123
    python -m repro.evaluation fig5 --executor processes --workers 4
    python -m repro.evaluation fault
    python -m repro.evaluation fig5 --stream
    python -m repro.evaluation fig6 --stream --sizes 50
    python -m repro.evaluation query
    python -m repro.evaluation query --keys 32 --sigma 0.03
    python -m repro.evaluation metrics
    python -m repro.evaluation metrics --format prometheus

Prints the same series the corresponding pytest benchmark records under
``benchmarks/results/``.  ``--executor`` fans the sweep's points out
over a parallel backend (the ``REPRO_EXECUTOR`` environment variable
overrides it); the printed series is identical on every backend.

``--stream`` switches to *progress mode*: instead of the batch sweep,
one streaming EarlJob run of the figure's statistic is traced, printing
a row per expansion iteration as the simulated cluster produces it —
the progressively-refined estimate, its CI, and the cost charged so
far.  Supported for fig5 (mean), fig6 (median) and fig9 (mean,
post-map sampler); the traced data size is the first ``--sizes`` entry.

``query`` traces one grouped approximate query (``repro.query``) over a
Zipf-skewed keyed table: a row per round showing groups finished,
rows processed and the current laggard group — per-group early stopping
made visible.  ``--keys`` sets the number of groups and ``--sigma`` the
per-group error bound.

``metrics`` flips :mod:`repro.obs` on, runs one instrumented streaming
job, and dumps the metrics registry — engine rounds, sample rows,
simulated cost by category, map/reduce counters — as a table (default),
JSON snapshot (``--format json``) or Prometheus text exposition
(``--format prometheus``, what a scraper would ingest).
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List

from repro.evaluation import runners
from repro.exec.executor import available_executors, resolve_executor


def _print_table(rows: List[Dict[str, object]]) -> None:
    if not rows:
        print("(no rows)")
        return
    header = list(rows[0].keys())
    rendered = [[_fmt(row[col]) for col in header] for row in rows]
    widths = [max(len(header[i]), max(len(r[i]) for r in rendered))
              for i in range(len(header))]
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    print("  ".join("-" * w for w in widths))
    for r in rendered:
        print("  ".join(cell.ljust(w) for cell, w in zip(r, widths)))


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


#: --stream support: figure -> (statistic, sampler) of the traced run.
_STREAM_MODES = {
    "fig5": ("mean", "premap"),
    "fig6": ("median", "premap"),
    "fig9": ("mean", "postmap"),
}


def _run_stream_mode(parser: argparse.ArgumentParser,
                     args: argparse.Namespace) -> int:
    """Trace one streaming run, printing each progress row live."""
    if args.figure not in _STREAM_MODES:
        parser.error(f"--stream supports {sorted(_STREAM_MODES)}, "
                     f"not {args.figure!r}")
    statistic, sampler = _STREAM_MODES[args.figure]
    gb = args.sizes[0] if args.sizes else 10.0
    kwargs = {"executor": args.executor, "max_workers": args.workers}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    print(f"streaming {statistic} over a {gb:g} GB stand-in "
          f"({sampler} sampling); one row per expansion iteration:")
    header_printed = False
    widths = {}

    def live(row):
        nonlocal header_printed
        cells = {col: _fmt(val) for col, val in row.items()}
        if not header_printed:
            # Live output cannot right-size columns to unseen rows;
            # pad generously instead (matches _fmt's %.4g value width).
            widths.update({col: max(len(col), 10) for col in cells})
            print("  ".join(col.ljust(widths[col]) for col in cells))
            header_printed = True
        print("  ".join(cells[col].ljust(widths[col]) for col in cells))

    rows = runners.stream_trace(gb, statistic=statistic, sampler=sampler,
                                on_snapshot=live, **kwargs)
    final = rows[-1]
    print(f"final: {statistic}={_fmt(final['estimate'])} "
          f"(error={_fmt(final['error'])}, achieved={final['achieved']}) "
          f"after {len(rows)} iteration(s), "
          f"{_fmt(final['cost_total_s'])} simulated seconds")
    return 0


def _run_query_mode(args: argparse.Namespace) -> int:
    """Trace one grouped approximate query, printing each round live."""
    print(f"grouped query: mean per key over {args.keys} Zipf-skewed "
          f"key(s), per-group sigma {args.sigma:g}; one row per round:")
    header_printed = False
    widths = {}

    def live(row):
        nonlocal header_printed
        cells = {col: _fmt(val) for col, val in row.items()}
        if not header_printed:
            widths.update({col: max(len(col), 10) for col in cells})
            print("  ".join(col.ljust(widths[col]) for col in cells))
            header_printed = True
        print("  ".join(cells[col].ljust(widths.get(col, 10))
                        for col in cells))

    kwargs = {"n_keys": args.keys, "sigma": args.sigma,
              "executor": args.executor, "max_workers": args.workers}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    rows = runners.query_trace(on_snapshot=live, **kwargs)
    final = rows[-1]
    print(f"final: {final['groups_done']} group(s) done after "
          f"{final['round']} round(s), "
          f"{final['rows_processed']:,} rows processed "
          f"({_fmt(final['sample_fraction'])} of the table); "
          f"bounds achieved: {final.get('achieved')}")
    return 0


def _run_metrics_mode(args: argparse.Namespace) -> int:
    """Run one instrumented streaming job and dump the registry."""
    import json

    from repro.obs import (
        REGISTRY,
        disable_telemetry,
        enable_telemetry,
        reset_telemetry,
    )

    gb = args.sizes[0] if args.sizes else 2.0
    kwargs = {"executor": args.executor, "max_workers": args.workers}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    enable_telemetry()
    reset_telemetry()
    try:
        rows = runners.stream_trace(gb, statistic="mean",
                                    sampler="premap", **kwargs)
        if args.format == "prometheus":
            print(REGISTRY.render_prometheus(), end="")
            return 0
        if args.format == "json":
            print(json.dumps(REGISTRY.snapshot(), indent=2))
            return 0
        final = rows[-1]
        print(f"instrumented streaming mean over a {gb:g} GB stand-in: "
              f"{len(rows)} iteration(s), "
              f"estimate {_fmt(final['estimate'])} "
              f"(error {_fmt(final['error'])})\n")
        table = []
        for name, metric in sorted(REGISTRY.snapshot()["metrics"].items()):
            for series in metric["series"]:
                labels = ",".join(
                    f"{k}={v}"
                    for k, v in sorted(series["labels"].items()))
                value = series.get("value", series.get("count"))
                table.append({"metric": name, "labels": labels or "-",
                              "value": value})
        _print_table(table)
        return 0
    finally:
        disable_telemetry()
        reset_telemetry()


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation",
        description="Regenerate one figure of the EARL paper's evaluation "
                    "on the simulated cluster substrate.")
    parser.add_argument("figure",
                        choices=["fig5", "fig6", "fig7", "fig9", "fault",
                                 "query", "metrics"],
                        help="which experiment to run")
    parser.add_argument("--sizes", type=float, nargs="+", default=None,
                        help="data sizes in (logical) GB, or failed-node "
                             "counts for 'fault'")
    parser.add_argument("--seed", type=int, default=None,
                        help="master seed (default: the benchmarks' seed)")
    parser.add_argument("--executor", choices=available_executors(),
                        default=None,
                        help="backend the sweep's points run on "
                             "(default: serial; REPRO_EXECUTOR overrides)")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool size for parallel backends "
                             "(default: CPU count)")
    parser.add_argument("--stream", action="store_true",
                        help="progress mode: trace one streaming EarlJob "
                             "run of the figure's statistic, one row per "
                             "expansion iteration (fig5/fig6/fig9)")
    parser.add_argument("--keys", type=int, default=8,
                        help="number of groups for the 'query' trace "
                             "(default 8)")
    parser.add_argument("--sigma", type=float, default=0.05,
                        help="per-group error bound for the 'query' "
                             "trace (default 0.05)")
    parser.add_argument("--format", choices=["table", "json",
                                             "prometheus"],
                        default="table",
                        help="output format for the 'metrics' mode "
                             "(default table)")
    args = parser.parse_args(argv)

    if args.figure == "metrics":
        return _run_metrics_mode(args)
    if args.figure == "query":
        return _run_query_mode(args)
    if args.stream:
        return _run_stream_mode(parser, args)

    kwargs = {}
    if args.seed is not None:
        kwargs["seed"] = args.seed

    executor = resolve_executor(name=args.executor,
                                max_workers=args.workers)
    kwargs["executor"] = executor
    try:
        if args.figure == "fig5":
            rows = runners.fig5_sweep(args.sizes or runners.FIG5_SIZES_GB,
                                      **kwargs)
        elif args.figure == "fig6":
            rows = runners.fig6_sweep(args.sizes or runners.FIG6_SIZES_GB,
                                      **kwargs)
        elif args.figure == "fig7":
            rows = runners.fig7_sweep(args.sizes or runners.FIG7_SIZES_GB,
                                      **kwargs)
        elif args.figure == "fig9":
            rows = runners.fig9_sweep(args.sizes or runners.FIG9_SIZES_GB,
                                      **kwargs)
        else:
            failures = [int(s) for s in args.sizes] if args.sizes \
                else runners.FAULT_SWEEP
            rows = runners.fault_sweep(failures, **kwargs)
    finally:
        executor.close()

    _print_table(rows)
    return 0


if __name__ == "__main__":
    sys.exit(main())
