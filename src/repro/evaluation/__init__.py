"""Programmatic runners for the paper's evaluation.

``python -m repro.evaluation <figure>`` regenerates a figure's series
from the command line; the same runners back the pytest benchmarks.
"""

from repro.evaluation.runners import (
    FAULT_SWEEP,
    FIG5_SIZES_GB,
    FIG6_SIZES_GB,
    FIG7_SIZES_GB,
    FIG9_SIZES_GB,
    fault_point,
    fault_sweep,
    fig5_point,
    fig5_sweep,
    fig6_point,
    fig6_sweep,
    fig7_point,
    fig7_sweep,
    fig9_point,
    fig9_sweep,
)

__all__ = [
    "fig5_point", "fig5_sweep", "FIG5_SIZES_GB",
    "fig6_point", "fig6_sweep", "FIG6_SIZES_GB",
    "fig7_point", "fig7_sweep", "FIG7_SIZES_GB",
    "fig9_point", "fig9_sweep", "FIG9_SIZES_GB",
    "fault_point", "fault_sweep", "FAULT_SWEEP",
]
