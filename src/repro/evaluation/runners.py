"""Programmatic experiment runners for the paper's evaluation (§6).

Each ``figN_point`` function measures one x-axis point of the
corresponding figure on a fresh simulated cluster and returns a plain
dict of the series values; ``figN_sweep`` maps it over the default
x-axis.  The pytest benchmarks under ``benchmarks/`` and the
``python -m repro.evaluation`` CLI both drive these runners, so the
reproduced numbers come from exactly one implementation.

Every sweep accepts an ``executor`` (``None``, a backend name, or an
:class:`~repro.exec.Executor`): the sweep's points are independent —
each builds its own cluster and derives its seed from the point's
*index*, never from execution order — so a whole figure can run its
points concurrently (``executor="processes"``, or
``REPRO_EXECUTOR=processes`` with the CLI) and still produce exactly
the serial series.  Process-pool workers cannot nest pools, so their
initializer strips the env override and each point's inner engine runs
``"serial"``; under a *thread* backend, inner runs may legally build
nested thread pools (deterministic either way, just extra pool
overhead).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster import Cluster, FailureInjector
from repro.exec.executor import as_executor
from repro.core import EarlConfig, EarlJob, ProgressSnapshot, run_stock_job
from repro.jobs import (
    EarlKMeans,
    centroid_relative_error,
    kmeans_inmemory,
    kmeans_mapreduce,
)
from repro.mapreduce import JobFailedError
from repro.workloads import (
    GB,
    gaussian_mixture_points,
    load_stand_in,
    point_lines,
)

#: Default x-axes of the reproduced figures.
FIG5_SIZES_GB = [0.5, 1.0, 2.0, 10.0, 50.0, 100.0, 200.0]
FIG6_SIZES_GB = [2.0, 10.0, 50.0, 100.0]
FIG7_SIZES_GB = [1.0, 5.0, 20.0, 50.0]
FIG9_SIZES_GB = [1.0, 5.0, 20.0, 50.0]
FAULT_SWEEP = [0, 1, 2, 3]

#: Default stand-in record counts (see DESIGN.md on logical scaling).
FIG5_RECORDS = 30_000
FIG6_RECORDS = 100_000
FIG7_POINTS = 40_000
FIG9_RECORDS = 30_000

FIG7_CENTERS = [[0.0, 0.0], [30.0, 30.0], [60.0, 0.0], [30.0, -25.0]]

#: One sweep point: (point function, positional args, keyword args).
_PointSpec = Tuple[Callable[..., Dict[str, object]], tuple, dict]


def _run_point(spec: _PointSpec) -> Dict[str, object]:
    """Execute one sweep point (module-level so process pools can pickle
    it by reference)."""
    fn, args, kwargs = spec
    return fn(*args, **kwargs)


def _run_sweep(specs: Sequence[_PointSpec],
               executor) -> List[Dict[str, object]]:
    """Map the sweep's point specs over the chosen backend, in order.

    Each spec carries its own seed (derived from the point's index), so
    the series is identical whether the points run serially or fan out
    over threads/processes.
    """
    ex, owned = as_executor(executor)
    try:
        return ex.map(_run_point, list(specs))
    finally:
        if owned:
            ex.close()


# ---------------------------------------------------------------------------
# Figure 5 — mean, EARL vs stock Hadoop
# ---------------------------------------------------------------------------


def fig5_point(gb: float, *, records: int = FIG5_RECORDS,
               seed: int = 500) -> Dict[str, object]:
    """One data-size point of Fig. 5 (mean: EARL vs stock Hadoop)."""
    cluster = Cluster(n_nodes=5, block_size=1 << 20, seed=seed)
    ds = load_stand_in(cluster, "/data/sweep", logical_gb=gb,
                       records=records, seed=seed + 1)
    exact, stock = run_stock_job(cluster, ds.path, "mean", seed=seed + 2)
    earl = EarlJob(cluster, ds.path, statistic="mean",
                   config=EarlConfig(sigma=0.05, seed=seed + 3)).run()
    stock_load = stock.breakdown["disk_read"] + stock.breakdown["disk_seek"]
    return {
        "gb": gb,
        "stock_s": stock.simulated_seconds,
        "earl_s": earl.simulated_seconds,
        "speedup": stock.simulated_seconds / earl.simulated_seconds,
        "stock_load_s": stock_load,
        "rel_err": abs(earl.estimate - exact) / abs(exact),
        "fallback": earl.used_fallback,
        "sampled": earl.n,
    }


def fig5_sweep(sizes_gb: Sequence[float] = FIG5_SIZES_GB, *,
               records: int = FIG5_RECORDS,
               seed: int = 500, executor=None) -> List[Dict[str, object]]:
    """Fig. 5 series over the default (or given) data sizes."""
    return _run_sweep(
        [(fig5_point, (gb,), {"records": records, "seed": seed + 10 * i})
         for i, gb in enumerate(sizes_gb)], executor)


# ---------------------------------------------------------------------------
# Figure 6 — median: stock vs naive vs optimized resampling
# ---------------------------------------------------------------------------


def _fig6_config(seed: int, maintenance: str) -> EarlConfig:
    return EarlConfig(sigma=0.05, seed=seed, maintenance=maintenance,
                      B_override=30, n_override=64,
                      expansion_factor=2.0, max_iterations=8)


def fig6_point(gb: float, *, records: int = FIG6_RECORDS,
               seed: int = 600) -> Dict[str, object]:
    """One data-size point of Fig. 6 (median, three implementations)."""
    cluster = Cluster(n_nodes=5, block_size=1 << 20, seed=seed)
    ds = load_stand_in(cluster, "/data/median", logical_gb=gb,
                       records=records, seed=seed + 1)
    exact, stock = run_stock_job(cluster, ds.path, "median", seed=seed + 2)
    naive = EarlJob(cluster, ds.path, statistic="median",
                    config=_fig6_config(seed + 3, "none"),
                    pipelined=False).run()
    optimized = EarlJob(cluster, ds.path, statistic="median",
                        config=_fig6_config(seed + 3, "optimized"),
                        pipelined=True).run()
    return {
        "gb": gb,
        "stock_s": stock.simulated_seconds,
        "naive_s": naive.simulated_seconds,
        "optimized_s": optimized.simulated_seconds,
        "stock_over_naive": stock.simulated_seconds / naive.simulated_seconds,
        "naive_over_opt": naive.simulated_seconds
        / optimized.simulated_seconds,
        "naive_err": abs(naive.estimate - exact) / abs(exact),
        "opt_err": abs(optimized.estimate - exact) / abs(exact),
    }


def fig6_sweep(sizes_gb: Sequence[float] = FIG6_SIZES_GB, *,
               records: int = FIG6_RECORDS,
               seed: int = 600, executor=None) -> List[Dict[str, object]]:
    """Fig. 6 series over the default (or given) data sizes."""
    return _run_sweep(
        [(fig6_point, (gb,), {"records": records, "seed": seed + 10 * i})
         for i, gb in enumerate(sizes_gb)], executor)


# ---------------------------------------------------------------------------
# Figure 7 — K-Means
# ---------------------------------------------------------------------------


def fig7_point(gb: float, *, points: int = FIG7_POINTS,
               centers: Optional[Sequence[Sequence[float]]] = None,
               seed: int = 700) -> Dict[str, object]:
    """One data-size point of Fig. 7 (K-Means, EARL vs stock)."""
    centers = centers or FIG7_CENTERS
    pts, _ = gaussian_mixture_points(points, centers, spread=2.5, seed=seed)
    cluster = Cluster(n_nodes=5, block_size=1 << 20, seed=seed + 1)
    lines = point_lines(pts)
    actual = sum(len(l) + 1 for l in lines)
    cluster.hdfs.write_lines("/points", lines,
                             logical_scale=max(1.0, gb * GB / actual))
    reference, _, _ = kmeans_inmemory(pts, len(centers), seed=seed + 2)

    stock = kmeans_mapreduce(cluster, "/points", len(centers), seed=seed + 3)
    earl = EarlKMeans(cluster, "/points", len(centers),
                      config=EarlConfig(sigma=0.05, seed=seed + 4),
                      initial_sample_size=500).run()
    return {
        "gb": gb,
        "stock_s": stock.simulated_seconds,
        "earl_s": earl.simulated_seconds,
        "speedup": stock.simulated_seconds / earl.simulated_seconds,
        "stock_iters": stock.iterations,
        "earl_n": earl.sample_size,
        "stock_opt_err": centroid_relative_error(reference, stock.centroids),
        "earl_opt_err": centroid_relative_error(reference, earl.centroids),
    }


def fig7_sweep(sizes_gb: Sequence[float] = FIG7_SIZES_GB, *,
               points: int = FIG7_POINTS,
               seed: int = 700, executor=None) -> List[Dict[str, object]]:
    """Fig. 7 series over the default (or given) data sizes."""
    return _run_sweep(
        [(fig7_point, (gb,), {"points": points, "seed": seed + 10 * i})
         for i, gb in enumerate(sizes_gb)], executor)


# ---------------------------------------------------------------------------
# Figure 9 — pre-map vs post-map sampling
# ---------------------------------------------------------------------------


def fig9_point(gb: float, *, records: int = FIG9_RECORDS,
               seed: int = 900) -> Dict[str, object]:
    """One data-size point of Fig. 9 (sampler comparison)."""
    row: Dict[str, object] = {"gb": gb}
    for sampler in ("premap", "postmap"):
        cluster = Cluster(n_nodes=5, block_size=1 << 20, seed=seed)
        ds = load_stand_in(cluster, "/data/s", logical_gb=gb,
                           records=records, seed=seed + 1)
        res = EarlJob(cluster, ds.path, statistic="mean",
                      config=EarlConfig(sigma=0.05, seed=seed + 2,
                                        sampler=sampler)).run()
        row[f"{sampler}_s"] = res.simulated_seconds
        row[f"{sampler}_err"] = abs(res.estimate - ds.truth["mean"]) \
            / ds.truth["mean"]
    row["post_over_pre"] = row["postmap_s"] / row["premap_s"]
    return row


def fig9_sweep(sizes_gb: Sequence[float] = FIG9_SIZES_GB, *,
               records: int = FIG9_RECORDS,
               seed: int = 900, executor=None) -> List[Dict[str, object]]:
    """Fig. 9 series over the default (or given) data sizes."""
    return _run_sweep(
        [(fig9_point, (gb,), {"records": records, "seed": seed + 10 * i})
         for i, gb in enumerate(sizes_gb)], executor)


# ---------------------------------------------------------------------------
# Progressive streaming trace (the CLI's --stream mode)
# ---------------------------------------------------------------------------

#: Default stand-in size for streaming traces.
STREAM_RECORDS = 30_000


def _snapshot_row(snap: ProgressSnapshot) -> Dict[str, object]:
    """One progress row of the --stream table."""
    return {
        "iteration": snap.iteration,
        "estimate": snap.estimate,
        "error": snap.error,
        "ci_low": snap.ci_low,
        "ci_high": snap.ci_high,
        "sampled": snap.sample_size,
        "fraction": snap.sample_fraction,
        "cost_delta_s": snap.cost_delta_seconds,
        "cost_total_s": snap.cost_total_seconds,
        "achieved": snap.achieved,
        "final": snap.final,
    }


def stream_trace(gb: float = 10.0, *, statistic: str = "mean",
                 records: int = STREAM_RECORDS, sampler: str = "premap",
                 sigma: float = 0.05, seed: int = 1500,
                 executor: Optional[str] = None,
                 max_workers: Optional[int] = None,
                 on_snapshot: Optional[Callable[[Dict[str, object]], None]]
                 = None) -> List[Dict[str, object]]:
    """Progressive rows of one streaming :class:`EarlJob` run.

    This is the engine behind ``python -m repro.evaluation <fig>
    --stream``: instead of one batch figure point, the EarlJob's
    snapshot stream is drained and every intermediate estimate becomes
    a row — the estimate/CI/cost a dashboard would have shown at that
    moment.  ``on_snapshot`` (row callback) lets the CLI print each row
    as the simulated cluster produces it.  ``executor`` (a backend
    *name* here, since the job owns its executor's lifecycle) and
    ``max_workers`` select the run's backend; rows are identical on
    every backend.
    """
    cluster = Cluster(n_nodes=5, block_size=1 << 20, seed=seed)
    ds = load_stand_in(cluster, "/data/stream", logical_gb=gb,
                       records=records, seed=seed + 1)
    job = EarlJob(cluster, ds.path, statistic=statistic,
                  config=EarlConfig(sigma=sigma, seed=seed + 2,
                                    sampler=sampler,
                                    executor=executor or "serial",
                                    max_workers=max_workers))
    rows: List[Dict[str, object]] = []
    for snap in job.stream():
        row = _snapshot_row(snap)
        if on_snapshot is not None:
            on_snapshot(row)
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# grouped approximate queries (repro.query)
# ---------------------------------------------------------------------------


def query_trace(records: int = 200_000, *, n_keys: int = 8,
                skew: float = 1.5, statistic: str = "mean",
                sigma: float = 0.05, seed: int = 1700,
                allocation: str = "schedule",
                executor: Optional[str] = None,
                max_workers: Optional[int] = None,
                on_snapshot: Optional[Callable[[Dict[str, object]], None]]
                = None) -> List[Dict[str, object]]:
    """Progressive rows of one grouped approximate query.

    Streams ``Query(select=[agg(statistic, "value")], group_by="key")``
    over a Zipf-skewed keyed table
    (:func:`repro.workloads.skewed_keyed_values`) and turns every
    :class:`~repro.core.GroupedSnapshot` into a row: groups done so
    far, rows processed, and the current laggard (the unfinished group
    with the largest error — the group the next round keeps sampling).
    The final row carries the per-group achievement summary.
    """
    from repro.query import Query, agg
    from repro.workloads import skewed_keyed_values

    keys, values = skewed_keyed_values(records, n_keys, skew=skew,
                                       seed=seed)
    query = Query([agg(statistic, "value")], group_by="key",
                  allocation=allocation).on(
        {"key": keys, "value": values},
        config=EarlConfig(sigma=sigma, seed=seed + 1,
                          executor=executor or "serial",
                          max_workers=max_workers))
    rows: List[Dict[str, object]] = []
    for snap in query.stream():
        done = sum(1 for by_agg in snap.groups.values()
                   for e in by_agg.values() if e.done)
        laggard = snap.worst
        row: Dict[str, object] = {
            "round": snap.round,
            "groups_done": done,
            "groups_active": snap.active_groups,
            "rows_processed": snap.rows_processed,
            "sample_fraction": snap.rows_processed / snap.population_size,
            "laggard": "-" if laggard is None else str(laggard.key),
            "laggard_error": 0.0 if laggard is None else laggard.error,
            "final": snap.final,
            "achieved": (snap.result.achieved
                         if snap.result is not None else "-"),
        }
        if on_snapshot is not None:
            on_snapshot(row)
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# §3.4 — fault tolerance sweep
# ---------------------------------------------------------------------------


def fault_point(n_failed: int, *, records: int = 40_000,
                logical_gb: float = 20.0, seed: int = 1100
                ) -> Dict[str, object]:
    """Outcome of stock and EARL runs after ``n_failed`` node losses.

    Deterministically scans failure patterns until one leaves *some*
    data (a total loss is uninteresting — nobody can answer from zero
    records).
    """
    for attempt in range(8):
        cluster = Cluster(n_nodes=5, block_size=64 * 1024, replication=2,
                          seed=seed)
        ds = load_stand_in(cluster, "/data/ft", logical_gb=logical_gb,
                           records=records, seed=seed + 1)
        if n_failed:
            FailureInjector(cluster, seed=seed + 2 + attempt) \
                .fail_random_nodes(n_failed)
        available = cluster.hdfs.available_fraction(ds.path)
        if available > 0.0:
            break
    else:  # pragma: no cover - 8 misses is astronomically unlikely
        raise RuntimeError("no failure pattern left any data")

    stock_status = "ok"
    try:
        run_stock_job(cluster, ds.path, "mean", seed=seed + 3)
    except JobFailedError:
        stock_status = "FAILED"

    earl = EarlJob(cluster, ds.path, statistic="mean",
                   config=EarlConfig(sigma=0.05, seed=seed + 4)).run()
    truth = ds.truth["mean"]
    return {
        "failed": n_failed,
        "available": available,
        "stock": stock_status,
        "earl_estimate_err": abs(earl.estimate - truth) / truth,
        "earl_cv": earl.error,
        "earl_input": earl.input_fraction,
    }


def fault_sweep(failures: Sequence[int] = FAULT_SWEEP, *,
                seed: int = 1100, executor=None) -> List[Dict[str, object]]:
    """§3.4 series over the given failed-node counts."""
    return _run_sweep(
        [(fault_point, (k,), {"seed": seed + 10 * k}) for k in failures],
        executor)
