"""Evaluation jobs: aggregates, correlation analysis, and K-Means."""

from repro.jobs.aggregates import (
    CountingMapper,
    aggregate_conf,
    run_aggregate,
    run_count,
)
from repro.jobs.correlation import (
    CorrelationReducer,
    PairMapper,
    bootstrap_correlation,
    run_correlation,
)
from repro.jobs.kmeans import (
    CentroidStore,
    EarlKMeans,
    KMeansAssignMapper,
    KMeansResult,
    KMeansUpdateReducer,
    centroid_relative_error,
    kmeans_inmemory,
    kmeans_mapreduce,
    match_centroids,
)

__all__ = [
    "aggregate_conf",
    "run_aggregate",
    "run_count",
    "CountingMapper",
    "PairMapper",
    "CorrelationReducer",
    "run_correlation",
    "bootstrap_correlation",
    "kmeans_inmemory",
    "kmeans_mapreduce",
    "EarlKMeans",
    "KMeansResult",
    "KMeansAssignMapper",
    "KMeansUpdateReducer",
    "CentroidStore",
    "match_centroids",
    "centroid_relative_error",
]
