"""Aggregate MR jobs used throughout the evaluation.

Thin, well-typed wrappers that assemble ``JobConf`` objects for the
paper's workhorse queries: single-group aggregates (mean, median, sum —
Figs. 5, 6, 9, 10) and per-key grouped statistics.  The heavy lifting is
:class:`repro.core.earl.StatisticReducer`, which adapts any registered
statistic to the incremental-reduce API.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.core.correction import CorrectionLike
from repro.core.earl import StatisticReducer
from repro.core.estimators import StatisticLike, get_statistic
from repro.mapreduce.job import JobConf, JobResult
from repro.mapreduce.mapper import Mapper, ProjectionMapper
from repro.mapreduce.runtime import JobClient
from repro.mapreduce.types import KeyValue, TaskContext
from repro.util.rng import SeedLike


class CountingMapper(Mapper):
    """Emit ``(key, 1)`` per record — COUNT via SUM with 1/p correction."""

    def __init__(self, *, delimiter: str = "\t",
                 constant_key: Hashable = "all") -> None:
        self.delimiter = delimiter
        self.constant_key = constant_key

    def map(self, key: Hashable, value: Any,
            ctx: TaskContext) -> Iterable[KeyValue]:
        text = value if isinstance(value, str) else str(value)
        if not text:
            return
        if self.delimiter in text:
            group, _, _ = text.partition(self.delimiter)
            yield group, 1.0
        else:
            yield self.constant_key, 1.0


def aggregate_conf(input_path: str, statistic: StatisticLike, *,
                   correction: CorrectionLike = "auto",
                   mapper: Optional[Mapper] = None,
                   n_reducers: int = 1,
                   cpu_factor: float = 1.0,
                   split_logical_bytes: Optional[int] = None,
                   params: Optional[Dict[str, Any]] = None,
                   seed: SeedLike = None) -> JobConf:
    """Build the standard aggregate job: projection map + statistic reduce."""
    stat = get_statistic(statistic)
    return JobConf(
        name=f"aggregate-{stat.name}",
        input_path=input_path,
        mapper=mapper or ProjectionMapper(),
        reducer=StatisticReducer(stat, correction=correction),
        n_reducers=n_reducers,
        cpu_factor=cpu_factor,
        split_logical_bytes=split_logical_bytes,
        params=params or {},
        seed=seed,
    )


def run_aggregate(cluster: Cluster, input_path: str,
                  statistic: StatisticLike, **conf_kwargs
                  ) -> Tuple[Dict[Hashable, float], JobResult]:
    """Run an aggregate over the full input; returns per-key values.

    This is the exact (stock) answer the approximate runs are validated
    against in tests and benchmarks.
    """
    conf = aggregate_conf(input_path, statistic, **conf_kwargs)
    result = JobClient(cluster).run(conf)
    values = {key: vals[0] for key, vals in result.grouped().items()}
    return values, result


def run_count(cluster: Cluster, input_path: str, **conf_kwargs
              ) -> Tuple[Dict[Hashable, float], JobResult]:
    """COUNT per key (via the counting mapper and SUM reduction)."""
    conf_kwargs.setdefault("mapper", CountingMapper())
    return run_aggregate(cluster, input_path, "sum", **conf_kwargs)
