"""K-Means on MapReduce, stock and EARL-accelerated (paper §6.3, Fig. 7).

The stock pipeline is the classic MR formulation (Zhao et al., cited as
[31]): each iteration is one job — mappers assign points to the nearest
centroid, reducers average each cluster's points into new centroids —
repeated until centroid movement falls below a tolerance.

EARL "compliments previous techniques by speeding up K-Means without
changing the underlying algorithm" (§6.3): the same jobs run over a
small uniform sample, which wins twice — less data per iteration *and*
faster convergence on smaller data.  The accuracy estimation stage
bootstraps the sampled K-Means solution: the statistic is the centroid
set, and its error is the mean relative displacement of matched
centroids across resamples — when it is within σ, the sample suffices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.cluster.cluster import Cluster
from repro.core.config import EarlConfig
from repro.mapreduce.job import JobConf
from repro.mapreduce.mapper import Mapper
from repro.mapreduce.reducer import Reducer
from repro.mapreduce.runtime import JobClient
from repro.mapreduce.types import KeyValue, TaskContext
from repro.sampling.premap import PreMapSampler
from repro.util.rng import SeedLike, ensure_rng, spawn_child
from repro.util.validation import check_positive, check_positive_int
from repro.workloads.synthetic import parse_point, point_lines

# ---------------------------------------------------------------------------
# In-memory Lloyd's algorithm (validation baseline + bootstrap inner loop)
# ---------------------------------------------------------------------------


def kmeanspp_init(points: np.ndarray, k: int,
                  rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: D²-weighted selection of initial centroids.

    K-Means "converges to a local optima and is also sensitive to the
    initial centroids" (§6.3); careful seeding is the standard mitigation
    and keeps both the stock and the sampled runs near the same optimum,
    so Fig. 7 compares run times rather than luck.
    """
    pts = np.asarray(points, dtype=float)
    first = int(rng.integers(0, pts.shape[0]))
    centroids = [pts[first]]
    d2 = ((pts - centroids[0]) ** 2).sum(axis=1)
    for _ in range(1, k):
        total = float(d2.sum())
        if total == 0.0:
            idx = int(rng.integers(0, pts.shape[0]))
        else:
            idx = int(rng.choice(pts.shape[0], p=d2 / total))
        centroids.append(pts[idx])
        d2 = np.minimum(d2, ((pts - centroids[-1]) ** 2).sum(axis=1))
    return np.asarray(centroids)


def kmeans_inmemory(points: np.ndarray, k: int, *,
                    max_iters: int = 50, tol: float = 1e-4,
                    init_centroids: Optional[np.ndarray] = None,
                    seed: SeedLike = None
                    ) -> Tuple[np.ndarray, float, int]:
    """Lloyd's algorithm; returns ``(centroids, inertia, iterations)``.

    Deterministic given the seed; initial centroids default to a
    k-means++ seeding over the input.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[0] == 0:
        raise ValueError("points must be a non-empty (n × d) array")
    check_positive_int("k", k)
    if k > pts.shape[0]:
        raise ValueError(f"k={k} exceeds the number of points {pts.shape[0]}")
    rng = ensure_rng(seed)
    if init_centroids is None:
        centroids = kmeanspp_init(pts, k, rng)
    else:
        centroids = np.asarray(init_centroids, dtype=float).copy()
        if centroids.shape != (k, pts.shape[1]):
            raise ValueError("init_centroids must have shape (k, d)")

    iterations = 0
    for iterations in range(1, max_iters + 1):
        dist = np.linalg.norm(pts[:, None, :] - centroids[None, :, :], axis=2)
        labels = dist.argmin(axis=1)
        new_centroids = centroids.copy()
        for c in range(k):
            members = pts[labels == c]
            if members.shape[0] > 0:
                new_centroids[c] = members.mean(axis=0)
        shift = float(np.linalg.norm(new_centroids - centroids, axis=1).max())
        centroids = new_centroids
        if shift < tol:
            break
    dist = np.linalg.norm(pts[:, None, :] - centroids[None, :, :], axis=2)
    inertia = float((dist.min(axis=1) ** 2).sum())
    return centroids, inertia, iterations


def match_centroids(reference: np.ndarray, candidate: np.ndarray
                    ) -> np.ndarray:
    """Optimal 1:1 matching (Hungarian) of candidate to reference rows."""
    ref = np.asarray(reference, dtype=float)
    cand = np.asarray(candidate, dtype=float)
    if ref.shape != cand.shape:
        raise ValueError("centroid sets must have identical shapes")
    cost = np.linalg.norm(ref[:, None, :] - cand[None, :, :], axis=2)
    rows, cols = linear_sum_assignment(cost)
    ordered = np.empty_like(cand)
    ordered[rows] = cand[cols]
    return ordered


def centroid_relative_error(reference: np.ndarray, candidate: np.ndarray
                            ) -> float:
    """Mean matched-centroid displacement relative to the data scale.

    Scale is the RMS norm of the reference centroids, so the measure is
    dimensionless and comparable across sweeps — this is the "within 5%
    of the optimal" number of §6.3.
    """
    ref = np.asarray(reference, dtype=float)
    cand = match_centroids(ref, candidate)
    scale = float(np.sqrt((ref ** 2).sum(axis=1).mean()))
    if scale == 0.0:
        return float(np.linalg.norm(ref - cand, axis=1).mean())
    return float(np.linalg.norm(ref - cand, axis=1).mean() / scale)


# ---------------------------------------------------------------------------
# MapReduce formulation
# ---------------------------------------------------------------------------


class CentroidStore:
    """Mutable centroid holder shared by the driver and the mapper.

    The driver updates it between iterations; the (persistent) mapper
    reads it at task setup — mirroring how Hadoop K-Means broadcasts
    centroids via the distributed cache.
    """

    def __init__(self, centroids: np.ndarray) -> None:
        self.centroids = np.asarray(centroids, dtype=float)

    def update(self, centroids: np.ndarray) -> None:
        self.centroids = np.asarray(centroids, dtype=float)


class KMeansAssignMapper(Mapper):
    """Assign each point to its nearest centroid: emit ``(cid, point)``."""

    def __init__(self, store: CentroidStore) -> None:
        self._store = store

    def map(self, key: Hashable, value: Any,
            ctx: TaskContext) -> Iterable[KeyValue]:
        text = value if isinstance(value, str) else str(value)
        if not text:
            return
        point = parse_point(text)
        dist = np.linalg.norm(self._store.centroids - point[None, :], axis=1)
        # Distance computation costs k×d multiply-adds per record.
        ctx.ledger.charge_cpu_records(
            ctx.record_scale * self._store.centroids.shape[0] - ctx.record_scale,
            ctx.cpu_factor)
        yield int(dist.argmin()), point


class KMeansUpdateReducer(Reducer):
    """Average a cluster's points into its new centroid."""

    def reduce(self, key: Hashable, values: Sequence[Any],
               ctx: TaskContext) -> Iterable[KeyValue]:
        pts = np.asarray(list(values), dtype=float)
        yield key, pts.mean(axis=0)


@dataclass
class KMeansResult:
    """Outcome of a (stock or sampled) MapReduce K-Means run."""

    centroids: np.ndarray
    iterations: int
    simulated_seconds: float
    converged: bool
    sample_size: Optional[int] = None
    error: Optional[float] = None
    expansions: int = 0


def _initial_centroids(cluster: Cluster, path: str, k: int,
                       rng: np.random.Generator) -> Tuple[np.ndarray, float]:
    """Probe random lines and k-means++ select the initial centroids.

    A small over-sample (≈30 points per requested centroid) is probed so
    the D²-weighted seeding has material to work with; all I/O is
    charged to the returned simulated seconds.
    """
    probe_target = max(k, min(30 * k, 1000))
    sampler = PreMapSampler(cluster.hdfs, path)
    sampler.set_total_target(probe_target)
    ledger = cluster.new_ledger()
    points: List[np.ndarray] = []
    for split in sampler.splits:
        points.extend(parse_point(line)
                      for _, line in sampler.read(cluster.hdfs, split,
                                                  ledger, rng))
    if len(points) < k:
        raise ValueError(f"could not sample {k} initial centroids from {path}")
    return kmeanspp_init(np.asarray(points), k, rng), ledger.total_seconds


def kmeans_mapreduce(cluster: Cluster, input_path: str, k: int, *,
                     max_iters: int = 20, tol: float = 1e-3,
                     seed: SeedLike = None,
                     split_logical_bytes: Optional[int] = None
                     ) -> KMeansResult:
    """Stock MR K-Means over the full input (the Fig. 7 baseline).

    Every Lloyd iteration is one full-scan MapReduce job; the first job
    pays task start-up, later iterations reuse the warm tasks (both
    systems in Fig. 7 run on the same engine — the speed-up measured for
    EARL comes from sampling, not from engine hobbling).
    """
    check_positive_int("k", k)
    check_positive("tol", tol)
    rng = ensure_rng(seed)
    centroids, init_seconds = _initial_centroids(cluster, input_path, k, rng)
    store = CentroidStore(centroids)
    conf = JobConf(name="kmeans", input_path=input_path,
                   mapper=KMeansAssignMapper(store),
                   reducer=KMeansUpdateReducer(),
                   n_reducers=min(k, max(1, cluster.total_reduce_slots)),
                   split_logical_bytes=split_logical_bytes,
                   seed=rng)
    client = JobClient(cluster)
    total_seconds = init_seconds
    converged = False
    iterations = 0
    for iterations in range(1, max_iters + 1):
        result = client.run(conf, warm_start=iterations > 1)
        total_seconds += result.simulated_seconds
        new_centroids = store.centroids.copy()
        for cid, centroid in result.output:
            new_centroids[int(cid)] = centroid
        shift = float(np.linalg.norm(new_centroids - store.centroids,
                                     axis=1).max())
        store.update(new_centroids)
        if shift < tol:
            converged = True
            break
    return KMeansResult(centroids=store.centroids, iterations=iterations,
                        simulated_seconds=total_seconds, converged=converged)


# ---------------------------------------------------------------------------
# EARL-accelerated K-Means
# ---------------------------------------------------------------------------


class EarlKMeans:
    """Sampled K-Means with bootstrap stability control (§6.3).

    Pipeline: draw a uniform sample via pre-map sampling, materialize it
    as a (small) HDFS file, run MR K-Means on it, and bootstrap the
    solution — re-cluster ``B`` resamples of the sample (in memory,
    seeded from the sampled solution) and measure the relative centroid
    dispersion.  If the dispersion exceeds σ, expand the sample and
    repeat.  Bootstrapping the whole mining algorithm is exactly the
    "arbitrary function" generality the paper claims for EARL.
    """

    def __init__(self, cluster: Cluster, input_path: str, k: int, *,
                 config: Optional[EarlConfig] = None,
                 initial_sample_size: int = 500,
                 B: int = 10,
                 max_iters: int = 20, tol: float = 1e-3,
                 split_logical_bytes: Optional[int] = None) -> None:
        check_positive_int("k", k)
        check_positive_int("initial_sample_size", initial_sample_size)
        check_positive_int("B", B)
        self._cluster = cluster
        self._path = input_path
        self._k = k
        self._config = config or EarlConfig()
        self._n0 = initial_sample_size
        self._B = B
        self._max_iters = max_iters
        self._tol = tol
        self._split_logical_bytes = split_logical_bytes

    def run(self) -> KMeansResult:
        cfg = self._config
        rng = ensure_rng(cfg.seed)
        sample_rng, boot_rng, job_rng = spawn_child(rng, 3)
        fs = self._cluster.hdfs
        sampler = PreMapSampler(fs, self._path,
                                split_logical_bytes=self._split_logical_bytes)
        total_seconds = 0.0
        sample_points: List[np.ndarray] = []
        target = self._n0
        expansions = 0
        result: Optional[KMeansResult] = None
        error = math.inf

        for round_idx in range(cfg.max_iterations):
            # -- sampling stage (charged) --------------------------------
            sampler.set_total_target(target)
            ledger = self._cluster.new_ledger()
            for split in sampler.splits:
                sample_points.extend(
                    parse_point(line)
                    for _, line in sampler.read(fs, split, ledger,
                                                sample_rng))
            total_seconds += ledger.total_seconds
            if len(sample_points) < self._k:
                raise ValueError("sample smaller than k; increase "
                                 "initial_sample_size")
            pts = np.asarray(sample_points)

            # -- user's task: MR K-Means on the materialized sample ------
            sample_path = f"/earl/kmeans/sample-{round_idx}"
            write_ledger = self._cluster.new_ledger()
            fs.write_lines(sample_path, point_lines(pts), overwrite=True,
                           ledger=write_ledger)
            total_seconds += write_ledger.total_seconds
            result = kmeans_mapreduce(
                self._cluster, sample_path, self._k,
                max_iters=self._max_iters, tol=self._tol, seed=job_rng)
            total_seconds += result.simulated_seconds

            # -- accuracy estimation stage -------------------------------
            error, aes_seconds = self._bootstrap_error(pts, result.centroids,
                                                       boot_rng)
            total_seconds += aes_seconds
            if error <= cfg.sigma or sampler.sampled_count < target:
                break
            target = math.ceil(target * cfg.expansion_factor)
            expansions += 1

        assert result is not None
        return KMeansResult(centroids=result.centroids,
                            iterations=result.iterations,
                            simulated_seconds=total_seconds,
                            converged=result.converged,
                            sample_size=len(sample_points),
                            error=error, expansions=expansions)

    def _bootstrap_error(self, points: np.ndarray, reference: np.ndarray,
                         rng: np.random.Generator) -> Tuple[float, float]:
        """Relative centroid dispersion over ``B`` resamples (the AES)."""
        n = points.shape[0]
        errors = []
        lloyd_iters = 0
        for _ in range(self._B):
            idx = rng.integers(0, n, size=n)
            centroids, _, iters = kmeans_inmemory(
                points[idx], self._k, max_iters=self._max_iters,
                tol=self._tol, init_centroids=reference, seed=rng)
            lloyd_iters += iters
            errors.append(centroid_relative_error(reference, centroids))
        # Each Lloyd pass over the sample costs ~n×k distance records.
        ledger = self._cluster.new_ledger()
        ledger.charge_cpu_records(lloyd_iters * n * self._k)
        return float(np.mean(errors)), ledger.total_seconds
