"""Correlation analysis: an example of a structure-capturing statistic.

§3.3 notes that the independence assumption "makes sampling applicable
to algorithms relying on capturing data-structure such as correlation
analysis".  This module provides the MR job (pairs → Pearson r) and the
bootstrap error estimate for it — a statistic far outside what closed-
form error analysis (or online aggregation of simple AVG/SUM) covers.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Sequence, Tuple

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.bootstrap import BootstrapResult
from repro.core.estimators import CorrelationState
from repro.mapreduce.job import JobConf, JobResult
from repro.mapreduce.mapper import Mapper
from repro.mapreduce.reducer import IncrementalReducer
from repro.mapreduce.runtime import JobClient
from repro.mapreduce.types import KeyValue, TaskContext
from repro.util.rng import SeedLike, ensure_rng
from repro.util.validation import check_positive_int


class PairMapper(Mapper):
    """Parse ``x,y`` lines into ``(key, (x, y))`` pairs."""

    def __init__(self, constant_key: Hashable = "all") -> None:
        self.constant_key = constant_key

    def map(self, key: Hashable, value: Any,
            ctx: TaskContext) -> Iterable[KeyValue]:
        text = value if isinstance(value, str) else str(value)
        if not text:
            return
        x_str, _, y_str = text.partition(",")
        yield self.constant_key, (float(x_str), float(y_str))


class CorrelationReducer(IncrementalReducer):
    """Pearson correlation as an incremental state (add/merge/finalize)."""

    def initialize(self, values: Sequence[Any]) -> CorrelationState:
        state = CorrelationState()
        for pair in values:
            state.add(pair)
        return state

    def update(self, state: CorrelationState, new_input: Any
               ) -> CorrelationState:
        if isinstance(new_input, CorrelationState):
            state.merge(new_input)
        else:
            state.add(new_input)
        return state

    def finalize(self, state: CorrelationState) -> float:
        return state.result()


def run_correlation(cluster: Cluster, input_path: str, *,
                    seed: SeedLike = None) -> Tuple[float, JobResult]:
    """Exact Pearson correlation of an ``x,y`` file via MapReduce."""
    conf = JobConf(name="correlation", input_path=input_path,
                   mapper=PairMapper(), reducer=CorrelationReducer(),
                   seed=seed)
    result = JobClient(cluster).run(conf)
    return float(result.single_value()), result


def bootstrap_correlation(pairs: Sequence[Tuple[float, float]], *,
                          B: int = 30, seed: SeedLike = None
                          ) -> BootstrapResult:
    """Bootstrap error estimate for Pearson r over a sample of pairs.

    Pairs are resampled jointly (resampling x and y independently would
    destroy the very dependence being measured).
    """
    check_positive_int("B", B)
    data = np.asarray(pairs, dtype=float)
    if data.ndim != 2 or data.shape[1] != 2 or data.shape[0] < 2:
        raise ValueError("pairs must be an (n >= 2, 2) array-like")
    rng = ensure_rng(seed)
    n = data.shape[0]

    def pearson(sample: np.ndarray) -> float:
        x, y = sample[:, 0], sample[:, 1]
        sx, sy = x.std(), y.std()
        if sx == 0.0 or sy == 0.0:
            return 0.0
        return float(np.mean((x - x.mean()) * (y - y.mean())) / (sx * sy))

    estimates = np.empty(B)
    for b in range(B):
        idx = rng.integers(0, n, size=n)
        estimates[b] = pearson(data[idx])
    return BootstrapResult(estimates=estimates, point_estimate=pearson(data),
                           n=n, B=B)
