"""Block-level sampling baseline and its bias (paper §3.3 and §7).

The naive way to sample from HDFS is to pick whole blocks at random:
cheap (sequential reads) but **not uniform** when the data layout is
clustered — "if the data is clustered on some attribute, the resulting
statistic will be inaccurate when compared to that constructed from a
uniform-random sample" (§7, citing Chaudhuri et al.).  This module
implements the baseline so benchmarks can demonstrate the bias that
motivates EARL's line-level samplers.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.cluster.costmodel import CostLedger
from repro.hdfs.filesystem import HDFS
from repro.hdfs.split_cache import trim_block_lines
from repro.util.rng import SeedLike, ensure_rng
from repro.util.validation import check_positive_int


def sample_blocks(fs: HDFS, path: str, n_lines: int, *,
                  seed: SeedLike = None,
                  ledger: Optional[CostLedger] = None,
                  cached: bool = True) -> List[str]:
    """Collect ≈ ``n_lines`` lines by reading whole random blocks.

    Blocks are drawn without replacement in random order — the block
    order is one batch draw (a single permutation) — until the line
    quota is met; the final block is consumed entirely (block sampling
    cannot stop mid-block without paying the read anyway — that is its
    selling point and its curse).

    ``cached=True`` serves each block's decoded line list from the
    filesystem's :class:`~repro.hdfs.split_cache.SplitIndexCache`, so
    repeated samples over the same file (e.g. the bias ablation's
    trials) split and decode every block once.  Simulated charges and
    returned lines are byte-identical to the scalar read
    (``cached=False``), and unreadable blocks fall back to it.
    """
    check_positive_int("n_lines", n_lines)
    rng = ensure_rng(seed)
    meta = fs.namenode.get(path)
    if not meta.blocks:
        return []
    cache = getattr(fs, "split_cache", None) if cached else None
    order = rng.permutation(len(meta.blocks))
    collected: List[str] = []
    for block_pos in order:
        block = meta.blocks[int(block_pos)]
        lines = cache.block_lines(fs, path, block) \
            if cache is not None else None
        if lines is not None:
            # Same simulated price as the scalar whole-block read.
            if ledger is not None:
                ledger.charge_seeks(1)
                ledger.charge_disk_read(block.length * meta.logical_scale)
            collected.extend(lines)
        else:
            data = fs.read_range(path, block.offset, block.end, ledger=ledger)
            # One shared edge rule with the cached path (partial
            # boundary lines dropped, empties dropped) — see
            # :func:`repro.hdfs.split_cache.trim_block_lines`.
            collected.extend(trim_block_lines(data, block.offset,
                                              block.end, meta.size))
        if len(collected) >= n_lines:
            break
    return collected


def block_sampling_bias(fs: HDFS, path: str, n_lines: int, *,
                        true_mean: float, trials: int = 20,
                        seed: SeedLike = None) -> Tuple[float, float]:
    """Estimate the bias and variance of block-sampled means.

    Returns ``(mean_abs_relative_error, std_of_estimates)`` over
    ``trials`` independent block samples, each reduced to the mean of its
    numeric lines.  On clustered layouts this error dwarfs the uniform
    sampler's — the ablation benchmark plots both.
    """
    check_positive_int("trials", trials)
    rng = ensure_rng(seed)
    estimates = []
    for _ in range(trials):
        lines = sample_blocks(fs, path, n_lines, seed=rng)
        values = [float(line.rsplit("\t", 1)[-1]) for line in lines]
        if values:
            estimates.append(float(np.mean(values)))
    if not estimates:
        raise ValueError("no estimates produced; is the file empty?")
    arr = np.asarray(estimates)
    rel_err = float(np.mean(np.abs(arr - true_mean) / abs(true_mean))) \
        if true_mean != 0 else float("nan")
    return rel_err, float(np.std(arr))
