"""Pre-map sampling (paper §3.3, Algorithm 2).

Samples lines *before* they enter the mapper: pick a random input split,
pick a random byte offset inside it, backtrack to the beginning of the
enclosing line with the record reader, and include that line if it was
not already included (a per-split set of line-start offsets — the paper's
"bit-vector" — provides the dedup).  Load time is proportional to the
*sample*, not the file, which is what makes EARL's response times beat a
full scan (Fig. 5, Fig. 9).

Two physical implementations share Algorithm 2's semantics.  The scalar
reference (``batched=False``) probes one offset at a time through the
record reader's backtracking.  The batched default draws whole blocks of
offsets per split from the same RNG stream, maps them to line ids
through the split's columnar newline index
(:mod:`repro.hdfs.split_cache`) with ``np.searchsorted``, and dedups
against a boolean inclusion mask instead of per-offset set probes.

RNG-order contract: NumPy's bounded-integer generation consumes the
PCG64 stream identically for ``rng.integers(lo, hi, size=k)`` and ``k``
scalar draws, and each batch is sized ``min(outstanding quota,
misses till exhaustion)`` — so quota fill and the 200-consecutive-miss
exhaustion can only land exactly on a batch boundary.  The batched
sampler therefore consumes *exactly* the variates the scalar loop
would: included-line sets, exhaustion behaviour, per-probe
:class:`~repro.cluster.costmodel.CostLedger` charges and even the
generator's end state are byte-identical for any seed (pinned by
``tests/sampling/test_batched_equivalence.py``).  The equivalence
assumes :meth:`PreMapSampler.read`'s iterator is drained, as the map
engine always does: batched draws and their charges are committed a
batch at a time, so a consumer that abandons the iterator mid-batch
has already paid (and consumed RNG for) the rest of that batch, where
the scalar loop would have stopped at the last consumed probe.  When a
split's region is not fully readable the batched path falls back to
the scalar loop, so failure behaviour is unchanged too.

Trade-off faithfully reproduced from the paper: because whole lines are
sampled, the number of ``(key, value)`` pairs obtained is only
approximately proportional to the byte fraction sampled, so corrections
that need an exact pair count should prefer post-map sampling (§3.3).

Caveat inherited from the paper's algorithm: offset-then-backtrack makes
a line's inclusion probability proportional to its byte length.  For the
fixed-width records of the evaluation datasets this is exactly uniform;
for variable-length records it is approximately uniform and the bias is
documented rather than corrected (the paper does likewise).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.cluster.costmodel import CostLedger
from repro.hdfs.filesystem import HDFS
from repro.hdfs.record_reader import LineRecordReader
from repro.hdfs.splits import InputSplit
from repro.mapreduce.types import KeyValue
from repro.sampling.base import allocate_per_split
from repro.util.validation import check_positive_int

#: Give up probing a split after this many consecutive duplicate hits —
#: the split is (nearly) exhausted.
_MAX_CONSECUTIVE_MISSES = 200


class PreMapSampler:
    """Stateful record source implementing Algorithm 2.

    Use :meth:`set_total_target` before each EARL iteration to raise the
    desired cumulative sample size; the engine then calls :meth:`read`
    per split and receives only the *newly* sampled lines (already-
    delivered lines live in the persistent mappers, so re-sending them
    would double-count).

    ``batched=False`` pins the probe-at-a-time scalar reference.
    """

    #: A sampled stand-in record is a proxy for ``logical_scale``
    #: records of the real sample (fraction-based sample sizing, §3.2).
    scales_with_file = True
    #: Stateful across splits (per-split dedup sets, cumulative
    #: ``sampled_count`` the driver reads) — the wave must stay serial.
    parallel_safe = False

    def __init__(self, fs: HDFS, path: str, *,
                 split_logical_bytes: Optional[int] = None,
                 batched: bool = True) -> None:
        self._fs = fs
        self._path = path
        self._splits: List[InputSplit] = fs.get_splits(path, split_logical_bytes)
        self._batched = batched
        self._included: Dict[int, Set[int]] = {s.index: set() for s in self._splits}
        #: Batched-mode accelerator: per-split boolean inclusion mask
        #: over the columnar index's line entries (always consistent
        #: with ``_included``; rebuilt after any scalar fallback).
        self._masks: Dict[int, np.ndarray] = {}
        self._exhausted: Set[int] = set()
        self._targets: Dict[int, int] = {s.index: 0 for s in self._splits}
        self._total_target = 0
        #: Incrementally maintained distinct-line count — the driver
        #: polls this every iteration, so it must not be a full
        #: recomputation over the per-split sets.
        self._sampled = 0

    # ------------------------------------------------------------- control
    @property
    def splits(self) -> List[InputSplit]:
        return list(self._splits)

    @property
    def sampled_count(self) -> int:
        """Number of distinct lines included so far (O(1))."""
        return self._sampled

    def set_total_target(self, total: int) -> None:
        """Raise the cumulative sample-size target to ``total`` lines.

        Monotone: shrinking the sample would invalidate delivered data.
        """
        check_positive_int("total", total)
        if total < self._total_target:
            raise ValueError(
                f"sample target cannot shrink ({self._total_target} -> {total})")
        self._total_target = total
        for split, count in zip(self._splits,
                                allocate_per_split(self._splits, total)):
            self._targets[split.index] = max(self._targets[split.index], count)

    # ------------------------------------------------------------ sampling
    def read(self, fs: HDFS, split: InputSplit, ledger: CostLedger,
             rng: np.random.Generator) -> Iterator[KeyValue]:
        """Probe for this split's outstanding quota; yield new lines only."""
        quota = self._targets.get(split.index, 0) - len(self._included[split.index])
        if quota <= 0 or split.index in self._exhausted:
            return
        probe = self._probe_split_batched if self._batched \
            else self._probe_split
        for offset, line in probe(split, quota, ledger, rng):
            yield offset, line

    # ------------------------------------------------------- scalar reference
    def _probe_split(self, split: InputSplit, quota: int, ledger: CostLedger,
                     rng: np.random.Generator
                     ) -> Iterator[Tuple[int, str]]:
        reader = LineRecordReader(self._fs, split, ledger=ledger,
                                  cached=False)
        included = self._included[split.index]
        misses = 0
        produced = 0
        while produced < quota and misses < _MAX_CONSECUTIVE_MISSES:
            position = int(rng.integers(split.start, split.end))
            start, line = reader.line_at(position)
            # Ownership rule: the line must start inside this split so a
            # line probed near a boundary is not sampled by two splits.
            if not (split.start <= start < split.end) and start != 0:
                misses += 1
                continue
            if start == 0 and split.start != 0:
                misses += 1
                continue
            if start in included or not line:
                misses += 1
                continue
            included.add(start)
            self._sampled += 1
            misses = 0
            produced += 1
            yield start, line
        if misses >= _MAX_CONSECUTIVE_MISSES:
            self._exhausted.add(split.index)

    # ------------------------------------------------------------ batched path
    def _probe_split_batched(self, split: InputSplit, quota: int,
                             ledger: CostLedger, rng: np.random.Generator
                             ) -> Iterator[Tuple[int, str]]:
        cache = getattr(self._fs, "split_cache", None)
        index = cache.acquire(self._fs, split) if cache is not None else None
        if index is None:
            # Region not fully readable (or no cache): the scalar loop
            # is the failure-semantics reference — and it keeps the
            # per-split sets authoritative, so drop the derived mask.
            self._masks.pop(split.index, None)
            yield from self._probe_split(split, quota, ledger, rng)
            return

        included = self._included[split.index]
        mask = self._masks.get(split.index)
        if mask is None or len(mask) != len(index.starts):
            mask = np.zeros(len(index.starts), dtype=bool)
            if included:
                offsets = np.fromiter(included, dtype=np.int64,
                                      count=len(included))
                mask[np.searchsorted(index.starts, offsets)] = True
            self._masks[split.index] = mask

        seek_counts = index.seek_counts
        scaled_bytes = index.scaled_bytes
        produced = 0
        misses = 0
        while produced < quota and misses < _MAX_CONSECUTIVE_MISSES:
            # Sized so neither quota fill nor exhaustion can land
            # mid-batch: every drawn variate is one the scalar loop
            # would also have drawn (see the module docstring).
            batch = min(quota - produced, _MAX_CONSECUTIVE_MISSES - misses)
            positions = rng.integers(split.start, split.end, size=batch)
            entries = index.entries_of(positions)
            ok = index.acceptable[entries] & ~mask[entries]
            if ok.any():
                # Within-batch dedup: only an entry's first occurrence
                # can be accepted; later duplicates are misses.
                first = np.zeros(batch, dtype=bool)
                first[np.unique(entries, return_index=True)[1]] = True
                accept = ok & first
            else:
                accept = ok
            # Per-probe simulated charges, in draw order — the same
            # sequence of ledger additions (and float rounding) the
            # scalar path makes.
            ledger.charge_probe_sequence(seek_counts[entries].tolist(),
                                         scaled_bytes[entries].tolist())
            acc_idx = np.flatnonzero(accept)
            if acc_idx.size == 0:
                misses += batch
                continue
            misses = batch - 1 - int(acc_idx[-1])
            produced += int(acc_idx.size)
            # Inclusion state is recorded alongside each yield (as the
            # scalar loop does), so a consumer abandoning the generator
            # mid-batch leaves mask and set consistent: undelivered
            # lines remain samplable.  Within-batch dedup does not rely
            # on these updates — ``accept`` already encodes it.
            acc_entries = entries[acc_idx]
            acc_lines = index.lines.take(acc_entries)
            for entry, start, line in zip(acc_entries.tolist(),
                                          index.starts[acc_entries].tolist(),
                                          acc_lines):
                mask[entry] = True
                included.add(start)
                self._sampled += 1
                yield start, line
        if misses >= _MAX_CONSECUTIVE_MISSES:
            self._exhausted.add(split.index)
