"""Pre-map sampling (paper §3.3, Algorithm 2).

Samples lines *before* they enter the mapper: pick a random input split,
pick a random byte offset inside it, backtrack to the beginning of the
enclosing line with the record reader, and include that line if it was
not already included (a per-split set of line-start offsets — the paper's
"bit-vector" — provides the dedup).  Load time is proportional to the
*sample*, not the file, which is what makes EARL's response times beat a
full scan (Fig. 5, Fig. 9).

Trade-off faithfully reproduced from the paper: because whole lines are
sampled, the number of ``(key, value)`` pairs obtained is only
approximately proportional to the byte fraction sampled, so corrections
that need an exact pair count should prefer post-map sampling (§3.3).

Caveat inherited from the paper's algorithm: offset-then-backtrack makes
a line's inclusion probability proportional to its byte length.  For the
fixed-width records of the evaluation datasets this is exactly uniform;
for variable-length records it is approximately uniform and the bias is
documented rather than corrected (the paper does likewise).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.cluster.costmodel import CostLedger
from repro.hdfs.filesystem import HDFS
from repro.hdfs.record_reader import LineRecordReader
from repro.hdfs.splits import InputSplit
from repro.mapreduce.types import KeyValue
from repro.sampling.base import allocate_per_split
from repro.util.validation import check_positive_int

#: Give up probing a split after this many consecutive duplicate hits —
#: the split is (nearly) exhausted.
_MAX_CONSECUTIVE_MISSES = 200


class PreMapSampler:
    """Stateful record source implementing Algorithm 2.

    Use :meth:`set_total_target` before each EARL iteration to raise the
    desired cumulative sample size; the engine then calls :meth:`read`
    per split and receives only the *newly* sampled lines (already-
    delivered lines live in the persistent mappers, so re-sending them
    would double-count).
    """

    #: A sampled stand-in record is a proxy for ``logical_scale``
    #: records of the real sample (fraction-based sample sizing, §3.2).
    scales_with_file = True
    #: Stateful across splits (per-split dedup sets, cumulative
    #: ``sampled_count`` the driver reads) — the wave must stay serial.
    parallel_safe = False

    def __init__(self, fs: HDFS, path: str, *,
                 split_logical_bytes: Optional[int] = None) -> None:
        self._fs = fs
        self._path = path
        self._splits: List[InputSplit] = fs.get_splits(path, split_logical_bytes)
        self._included: Dict[int, Set[int]] = {s.index: set() for s in self._splits}
        self._exhausted: Set[int] = set()
        self._targets: Dict[int, int] = {s.index: 0 for s in self._splits}
        self._total_target = 0

    # ------------------------------------------------------------- control
    @property
    def splits(self) -> List[InputSplit]:
        return list(self._splits)

    @property
    def sampled_count(self) -> int:
        """Number of distinct lines included so far."""
        return sum(len(v) for v in self._included.values())

    def set_total_target(self, total: int) -> None:
        """Raise the cumulative sample-size target to ``total`` lines.

        Monotone: shrinking the sample would invalidate delivered data.
        """
        check_positive_int("total", total)
        if total < self._total_target:
            raise ValueError(
                f"sample target cannot shrink ({self._total_target} -> {total})")
        self._total_target = total
        for split, count in zip(self._splits,
                                allocate_per_split(self._splits, total)):
            self._targets[split.index] = max(self._targets[split.index], count)

    # ------------------------------------------------------------ sampling
    def read(self, fs: HDFS, split: InputSplit, ledger: CostLedger,
             rng: np.random.Generator) -> Iterator[KeyValue]:
        """Probe for this split's outstanding quota; yield new lines only."""
        quota = self._targets.get(split.index, 0) - len(self._included[split.index])
        if quota <= 0 or split.index in self._exhausted:
            return
        for offset, line in self._probe_split(split, quota, ledger, rng):
            yield offset, line

    def _probe_split(self, split: InputSplit, quota: int, ledger: CostLedger,
                     rng: np.random.Generator
                     ) -> Iterator[Tuple[int, str]]:
        reader = LineRecordReader(self._fs, split, ledger=ledger)
        included = self._included[split.index]
        misses = 0
        produced = 0
        while produced < quota and misses < _MAX_CONSECUTIVE_MISSES:
            position = int(rng.integers(split.start, split.end))
            start, line = reader.line_at(position)
            # Ownership rule: the line must start inside this split so a
            # line probed near a boundary is not sampled by two splits.
            if not (split.start <= start < split.end) and start != 0:
                misses += 1
                continue
            if start == 0 and split.start != 0:
                misses += 1
                continue
            if start in included or not line:
                misses += 1
                continue
            included.add(start)
            misses = 0
            produced += 1
            yield start, line
        if misses >= _MAX_CONSECUTIVE_MISSES:
            self._exhausted.add(split.index)
