"""Sampling layer: EARL's samplers plus the baselines they beat.

* :class:`PreMapSampler` — Algorithm 2: random byte offsets + record-
  reader backtracking; load cost proportional to the sample.
* :class:`PostMapSampler` — Algorithm 1: full parse into a local
  hashmap, then release of a uniform without-replacement prefix.
* :func:`reservoir_sample` — exact-uniform one-pass baseline.
* :func:`sample_blocks` — biased block-level baseline (§7).
* :class:`TwoFileSampler` — Olken & Rotem's 2-file/ARHASH method (§7).
* :class:`StratifiedSampler` — per-stratum uniform sampling over keyed
  records with uniform / proportional / Neyman quota allocation (the
  grouped-query design).
"""

from repro.sampling.base import allocate_per_split, draw_sample
from repro.sampling.block_sampling import block_sampling_bias, sample_blocks
from repro.sampling.postmap import PostMapSampler
from repro.sampling.premap import PreMapSampler
from repro.sampling.reservoir import reservoir_sample, reservoir_sample_indices
from repro.sampling.stratified import (
    ALLOCATION_NEYMAN,
    ALLOCATION_PROPORTIONAL,
    ALLOCATION_UNIFORM,
    ALLOCATIONS,
    StratifiedSampler,
    allocate_with_caps,
)
from repro.sampling.twofile import TwoFileSampler

__all__ = [
    "PreMapSampler",
    "PostMapSampler",
    "reservoir_sample",
    "reservoir_sample_indices",
    "sample_blocks",
    "block_sampling_bias",
    "TwoFileSampler",
    "StratifiedSampler",
    "ALLOCATIONS",
    "ALLOCATION_UNIFORM",
    "ALLOCATION_PROPORTIONAL",
    "ALLOCATION_NEYMAN",
    "allocate_with_caps",
    "draw_sample",
    "allocate_per_split",
]
